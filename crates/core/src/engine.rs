//! The end-to-end maintenance engine.
//!
//! Wires the whole pipeline of Figures 8 and 9 together: compute the
//! PUL, apply it to the document, build Δ tables (CD±), expand and
//! prune the update expression, evaluate the surviving terms with
//! structural joins (ET-INS / ET-DEL), patch the view store
//! (PINT + PIMT for insertions, PDDT + PDMT for deletions — the
//! combined PINT/MT and PDDT/MT the paper actually runs), and keep the
//! materialized snowcaps current. Each phase is timed, producing the
//! breakdowns of the Section 6 experiments.

use crate::commit::ViewDelta;
use crate::error::Error;
use crate::pddt::{delete_terms, eval_delete_terms, DeleteContext};
use crate::pdmt::propagate_delete_modifications;
use crate::pimt::propagate_insert_modifications;
use crate::pint::{eval_insert_terms, insert_terms, InsertContext, OldLeafCache};
use crate::prune::PruneStats;
use crate::snowcap::{enumerate_snowcaps, minimal_chain, MaterializedSnowcap};
use crate::strategy::SnowcapStrategy;
use crate::timing::{timed, Timings};
use crate::view_store::ViewStore;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use xivm_pattern::compile::{canonical_relation, compile_plan_over, project_to_view, view_tuples};
use xivm_pattern::{PatternNodeId, TreePattern};
use xivm_update::{apply_pul, compute_pul, DeltaMinus, DeltaPlus, Pul, UpdateStatement};
use xivm_xml::{Document, NodeId};

/// What one propagated update did, and how long each phase took.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    pub timings: Timings,
    /// Term pruning statistics for the insertion side.
    pub insert_prune: PruneStats,
    /// Term pruning statistics for the deletion side.
    pub delete_prune: PruneStats,
    /// Distinct view tuples added / removed / text-modified.
    pub tuples_added: usize,
    pub tuples_removed: usize,
    pub tuples_modified: usize,
    /// Raw embeddings (derivations) added / removed.
    pub derivations_added: u64,
    pub derivations_removed: u64,
    /// True when the static analyzer proved the update irrelevant to
    /// this view and the engine skipped its maintenance entirely (no
    /// prepare, no Δ extraction, no delta harvest). Excluded from
    /// [`Self::same_outcome`], like timings: a skipped propagation and
    /// a dynamic one that found nothing report the same outcome.
    pub statically_skipped: bool,
    /// True when the view is under deferred maintenance and this
    /// commit batched its PUL instead of propagating: the store is
    /// untouched, the delta is empty, and the change lands later as a
    /// refresh commit. Excluded from [`Self::same_outcome`], like
    /// `statically_skipped`.
    pub deferred: bool,
    /// `Some(lo..=hi)` on the report a refresh commit makes for its
    /// deferred view: this delta folds the document changes of commits
    /// `lo..=hi` into one propagation. Forwarded onto the view's
    /// [`DeltaEvent::folded`](crate::subscribe::DeltaEvent::folded).
    pub coalesced: Option<std::ops::RangeInclusive<u64>>,
    /// The view's Δ for this update: every store patch the engine made
    /// (insertions, removals, text modifications), complete enough
    /// that replaying it on a pre-update snapshot reproduces the
    /// post-update store exactly. Empty when the engine's
    /// `collect_deltas` switch is off.
    pub delta: ViewDelta,
}

impl UpdateReport {
    /// The report of a statically-skipped propagation: default
    /// counters, empty delta, [`Self::statically_skipped`] set.
    pub fn skipped() -> UpdateReport {
        UpdateReport { statically_skipped: true, ..UpdateReport::default() }
    }

    /// The report of a deferred (batched, not propagated) view for one
    /// commit: default counters, empty delta, [`Self::deferred`] set.
    pub fn deferred_marker() -> UpdateReport {
        UpdateReport { deferred: true, ..UpdateReport::default() }
    }

    /// True when two reports describe the same propagation outcome:
    /// equal tuple / derivation counters and bit-identical deltas.
    /// Timings and prune statistics are ignored — they legitimately
    /// differ between runs (and between scheduling modes). This is
    /// the per-view half of [`Commit::same_outcome`], the comparison
    /// the differential soak harness makes between sequential, pooled
    /// and pipelined executions.
    ///
    /// [`Commit::same_outcome`]: crate::commit::Commit::same_outcome
    pub fn same_outcome(&self, other: &UpdateReport) -> bool {
        self.tuples_added == other.tuples_added
            && self.tuples_removed == other.tuples_removed
            && self.tuples_modified == other.tuples_modified
            && self.derivations_added == other.derivations_added
            && self.derivations_removed == other.derivations_removed
            && self.delta == other.delta
    }
}

/// A materialized view plus the auxiliary structures needed to
/// maintain it incrementally.
pub struct MaintenanceEngine {
    pattern: TreePattern,
    strategy: SnowcapStrategy,
    /// Cost-model-chosen sets overriding the strategy's default
    /// (see [`crate::costmodel`]).
    custom_sets: Option<Vec<BTreeSet<PatternNodeId>>>,
    /// The materialized view, behind an `Arc` so a database snapshot
    /// can hold it for free: `finish` mutates through
    /// [`Arc::make_mut`], copying the store once iff a snapshot still
    /// holds the previous version (readers never block a commit).
    store: Arc<ViewStore>,
    snowcaps: Vec<MaterializedSnowcap>,
    /// Ablation switches for the dynamic prunings (Section 6.8).
    pub use_delta_pruning: bool,
    pub use_id_pruning: bool,
    /// Whether [`Self::finish`] harvests the per-view [`ViewDelta`]
    /// into its report (on by default; the `Database` façade relies on
    /// it). Turning it off skips the tuple clones the report costs —
    /// the `fig_delta` bench measures that overhead.
    pub collect_deltas: bool,
}

impl MaintenanceEngine {
    /// Materializes the view and its auxiliary snowcaps over `doc`.
    pub fn new(doc: &Document, pattern: TreePattern, strategy: SnowcapStrategy) -> Self {
        let store = Arc::new(ViewStore::from_counted(&pattern, view_tuples(doc, &pattern)));
        let snowcaps =
            Self::materialize_sets(doc, &pattern, Self::default_sets(&pattern, strategy));
        MaintenanceEngine {
            pattern,
            strategy,
            custom_sets: None,
            store,
            snowcaps,
            use_delta_pruning: true,
            use_id_pruning: true,
            collect_deltas: true,
        }
    }

    /// Materializes the view with the snowcap set chosen by the cost
    /// model (Section 3.5's deferred optimization, implemented in
    /// [`crate::costmodel`]) for the given update profile.
    pub fn new_cost_based(
        doc: &Document,
        pattern: TreePattern,
        profile: &crate::costmodel::UpdateProfile,
    ) -> Self {
        let stats = crate::costmodel::DocStats::collect(doc);
        let sets = crate::costmodel::choose_snowcaps(&pattern, &stats, profile);
        let store = Arc::new(ViewStore::from_counted(&pattern, view_tuples(doc, &pattern)));
        let snowcaps = Self::materialize_sets(doc, &pattern, sets.clone());
        MaintenanceEngine {
            pattern,
            strategy: SnowcapStrategy::MinimalChain,
            custom_sets: Some(sets),
            store,
            snowcaps,
            use_delta_pruning: true,
            use_id_pruning: true,
            collect_deltas: true,
        }
    }

    fn default_sets(
        pattern: &TreePattern,
        strategy: SnowcapStrategy,
    ) -> Vec<BTreeSet<PatternNodeId>> {
        let k = pattern.len();
        match strategy {
            SnowcapStrategy::MinimalChain => {
                minimal_chain(pattern).into_iter().filter(|s| s.len() < k).collect()
            }
            SnowcapStrategy::AllSnowcaps => {
                enumerate_snowcaps(pattern).into_iter().filter(|s| s.len() < k).collect()
            }
            SnowcapStrategy::LeavesOnly => Vec::new(),
        }
    }

    fn materialize_sets(
        doc: &Document,
        pattern: &TreePattern,
        sets: Vec<BTreeSet<PatternNodeId>>,
    ) -> Vec<MaterializedSnowcap> {
        sets.into_iter()
            .map(|set| {
                let nodes: Vec<PatternNodeId> =
                    pattern.preorder().into_iter().filter(|n| set.contains(n)).collect();
                let plan =
                    compile_plan_over(pattern, &nodes, |n| canonical_relation(doc, pattern, n));
                MaterializedSnowcap { nodes, rel: plan.eval() }
            })
            .collect()
    }

    /// The snowcap node sets this engine maintains (strategy default
    /// or cost-model choice).
    fn current_sets(&self) -> Vec<BTreeSet<PatternNodeId>> {
        match &self.custom_sets {
            Some(s) => s.clone(),
            None => Self::default_sets(&self.pattern, self.strategy),
        }
    }

    pub fn pattern(&self) -> &TreePattern {
        &self.pattern
    }

    pub fn strategy(&self) -> SnowcapStrategy {
        self.strategy
    }

    pub fn store(&self) -> &ViewStore {
        &self.store
    }

    /// A shared handle to the materialized view, as held by database
    /// snapshots and store shards: cloning is O(1) and the engine's
    /// next mutation copies the store out from under it instead of
    /// blocking (see [`crate::snapshot::DatabaseSnapshot`]).
    pub(crate) fn store_arc(&self) -> Arc<ViewStore> {
        Arc::clone(&self.store)
    }

    pub fn snowcaps(&self) -> &[MaterializedSnowcap] {
        &self.snowcaps
    }

    /// Full recomputation (the baseline of Section 6.5); also used to
    /// re-sync in tests.
    pub fn recompute(&mut self, doc: &Document) {
        self.store =
            Arc::new(ViewStore::from_counted(&self.pattern, view_tuples(doc, &self.pattern)));
        self.snowcaps = Self::materialize_sets(doc, &self.pattern, self.current_sets());
    }

    /// Propagates a statement-level update: computes the PUL ("Find
    /// Target Nodes"), applies it to the document, and maintains the
    /// view.
    pub fn apply_statement(
        &mut self,
        doc: &mut Document,
        stmt: &UpdateStatement,
    ) -> Result<UpdateReport, Error> {
        let (pul, t_find) = timed(|| compute_pul(doc, stmt));
        let mut report = self.propagate_pul(doc, &pul)?;
        report.timings.find_target_nodes = t_find;
        Ok(report)
    }

    /// Pre-update state this view needs before a PUL touches the
    /// document: the Δ⁻ tables, the deleted subtree roots and the
    /// predicate-truth capture. Produced by [`Self::prepare`] and
    /// consumed by [`Self::finish`]; a multi-view host prepares every
    /// view, applies the PUL once, then finishes every view.
    pub fn prepare(&self, doc: &Document, pul: &Pul) -> PreparedUpdate {
        #[cfg(any(test, feature = "fault-inject"))]
        crate::fault::prepare_point();
        let start = std::time::Instant::now();
        let (dminus, delete_roots) = DeltaMinus::collect(doc, &self.pattern, pul);
        let pred_capture = crate::predflip::capture(doc, &self.pattern, pul);
        PreparedUpdate { dminus, delete_roots, pred_capture, prep_time: start.elapsed() }
    }

    /// Propagates an already-computed (possibly optimizer-reduced,
    /// Section 5) pending update list.
    pub fn propagate_pul(&mut self, doc: &mut Document, pul: &Pul) -> Result<UpdateReport, Error> {
        let prepared = self.prepare(doc, pul);
        let (apply_res, t_apply) = timed(|| apply_pul(doc, pul));
        let apply_res = apply_res?;
        let mut report = self.finish(doc, &apply_res, prepared);
        report.timings.apply_document = t_apply;
        Ok(report)
    }

    /// Completes propagation after the PUL was applied to the document
    /// (the counterpart of [`Self::prepare`]).
    ///
    /// Takes the document read-only: this phase only mutates the
    /// engine's own store and snowcaps, which is what lets a
    /// multi-view host fan `finish` out across threads
    /// (see [`crate::parallel`]).
    pub fn finish(
        &mut self,
        doc: &Document,
        apply_res: &xivm_update::ApplyResult,
        prepared: PreparedUpdate,
    ) -> UpdateReport {
        #[cfg(any(test, feature = "fault-inject"))]
        crate::fault::finish_point();
        let PreparedUpdate { dminus, delete_roots, pred_capture, prep_time: t_dm } = prepared;
        let mut report = UpdateReport::default();
        // Copy-on-write split: if a snapshot still holds this store,
        // clone it now and patch the copy — the snapshot keeps the
        // frozen version, and this commit never waits for readers.
        let store = Arc::make_mut(&mut self.store);

        // --- Compute Delta Tables, part 2: CD+.
        let (dplus, t_dp) = timed(|| DeltaPlus::compute(doc, &self.pattern, &apply_res.inserted));
        report.timings.compute_delta_tables = t_dm + t_dp;

        let inserted: HashSet<NodeId> = apply_res.inserted.iter().copied().collect();
        let has_deletes = !delete_roots.is_empty();
        let has_inserts = !apply_res.inserted.is_empty();

        // Value-predicate flips (see `predflip`): when text changes
        // under a predicate-carrying node, bindings can appear or
        // vanish without structural change. Rare; handled exactly on a
        // slower path that bypasses the snowcap shortcuts.
        let flips = crate::predflip::diff(doc, &self.pattern, &pred_capture);
        let flips_exist = flips.any();

        // --- Update Lattice, part 1: drop snowcap tuples that bind a
        // deleted node (any node under a deleted root is gone). Under
        // flips the snowcaps are rebuilt wholesale at the end instead.
        let delete_forest = xivm_xml::DeweyForest::new(delete_roots.clone());
        let (_, t_lat1) = timed(|| {
            if has_deletes && !flips_exist {
                for m in &mut self.snowcaps {
                    m.rel.rows.retain(|t| !t.fields().iter().any(|f| delete_forest.covers(&f.id)));
                }
            }
        });

        let full_order = self.pattern.preorder();
        let full_set: BTreeSet<PatternNodeId> = full_order.iter().copied().collect();

        let del_ctx = DeleteContext {
            doc,
            pattern: &self.pattern,
            deltas: &dminus,
            inserted: &inserted,
            use_delta_pruning: self.use_delta_pruning,
            use_id_pruning: self.use_id_pruning,
        };
        let ins_ctx = InsertContext {
            doc,
            pattern: &self.pattern,
            deltas: &dplus,
            targets: &apply_res.insert_targets,
            inserted: &inserted,
            use_delta_pruning: self.use_delta_pruning,
            use_id_pruning: self.use_id_pruning,
        };

        // --- Get Update Expression: expand and prune both directions.
        let ((del_terms, ins_terms), t_expr) = timed(|| {
            let d = if has_deletes {
                let (t, s) = delete_terms(&del_ctx, &full_set);
                report.delete_prune = s;
                t
            } else {
                Vec::new()
            };
            let i = if has_inserts {
                let (t, s) = insert_terms(&ins_ctx, &full_set);
                report.insert_prune = s;
                t
            } else {
                Vec::new()
            };
            (d, i)
        });
        report.timings.get_update_expression = t_expr;

        // --- Execute Update: evaluate terms and patch the store.
        // Every patch is mirrored into `report.delta` (when
        // `collect_deltas` is on): all removal phases run before all
        // insertion phases here, so replaying the delta's removals
        // then insertions then modifications onto a pre-update
        // snapshot reproduces the store exactly.
        let mut leaves = OldLeafCache::default();
        let no_snowcaps: [MaterializedSnowcap; 0] = [];
        let mut modified_keys: Vec<crate::view_store::TupleKey> = Vec::new();
        let (_, t_exec) = timed(|| {
            if has_deletes {
                // Under flips the R-parts must reflect *old* predicate
                // truth, so the lost bindings are exactly the old
                // view's (see predflip::old_truth_leaf).
                let removed = if flips_exist {
                    let mut cache: std::collections::HashMap<
                        PatternNodeId,
                        xivm_algebra::Relation,
                    > = std::collections::HashMap::new();
                    crate::etins::eval_terms(
                        &self.pattern,
                        &full_order,
                        &del_terms,
                        &no_snowcaps,
                        &mut |n| {
                            cache
                                .entry(n)
                                .or_insert_with(|| {
                                    crate::predflip::old_truth_leaf(
                                        doc,
                                        &self.pattern,
                                        n,
                                        &inserted,
                                        &flips,
                                    )
                                })
                                .clone()
                        },
                        &mut |n| dminus.relation(&self.pattern, n),
                    )
                } else {
                    eval_delete_terms(
                        &del_ctx,
                        &full_order,
                        &del_terms,
                        &self.snowcaps,
                        &mut leaves,
                    )
                };
                if !removed.is_empty() {
                    for (t, c) in project_to_view(&self.pattern, &removed) {
                        let key = t.id_key();
                        report.derivations_removed += c;
                        if store.remove_derivations(&key, c) {
                            report.tuples_removed += 1;
                        }
                        if self.collect_deltas {
                            report.delta.removed.push((key, c));
                        }
                    }
                }
                let patched =
                    propagate_delete_modifications(store, doc, &self.pattern, &delete_roots);
                report.tuples_modified += patched.len();
                modified_keys.extend(patched);
            }
            if flips_exist {
                let lost = crate::predflip::removed_by_flips(doc, &self.pattern, &flips, &inserted);
                if !lost.is_empty() {
                    for (t, c) in project_to_view(&self.pattern, &lost) {
                        let key = t.id_key();
                        report.derivations_removed += c;
                        if store.remove_derivations(&key, c) {
                            report.tuples_removed += 1;
                        }
                        if self.collect_deltas {
                            report.delta.removed.push((key, c));
                        }
                    }
                }
                let gained = crate::predflip::added_by_flips(doc, &self.pattern, &flips, &inserted);
                if !gained.is_empty() {
                    for (t, c) in project_to_view(&self.pattern, &gained) {
                        report.derivations_added += c;
                        if !store.contains(&t.id_key()) {
                            report.tuples_added += 1;
                        }
                        if self.collect_deltas {
                            report.delta.inserted.push((t.clone(), c));
                        }
                        store.add(t, c);
                    }
                }
            }
            if has_inserts {
                let mats: &[MaterializedSnowcap] =
                    if flips_exist { &no_snowcaps } else { &self.snowcaps };
                let added = eval_insert_terms(&ins_ctx, &full_order, &ins_terms, mats, &mut leaves);
                if !added.is_empty() {
                    for (t, c) in project_to_view(&self.pattern, &added) {
                        report.derivations_added += c;
                        if !store.contains(&t.id_key()) {
                            report.tuples_added += 1;
                        }
                        if self.collect_deltas {
                            report.delta.inserted.push((t.clone(), c));
                        }
                        store.add(t, c);
                    }
                }
                let patched = propagate_insert_modifications(
                    store,
                    doc,
                    &self.pattern,
                    &apply_res.insert_targets,
                );
                report.tuples_modified += patched.len();
                modified_keys.extend(patched);
            }
        });
        report.timings.execute_update = t_exec;

        // Text modifications enter the delta with their *final*
        // contents (a key PDMT and PIMT both touched appears once).
        // A modified tuple later removed by a predicate flip is
        // already covered by the delta's `removed` entries.
        if self.collect_deltas {
            if !modified_keys.is_empty() {
                let mut seen: HashSet<crate::view_store::TupleKey> = HashSet::new();
                for key in modified_keys {
                    if seen.insert(key.clone()) {
                        if let Some(tuple) = store.tuple(&key) {
                            report.delta.modified.push((key, tuple.clone()));
                        }
                    }
                }
            }
            // Hash-store walk order differs between databases; the
            // published delta is canonical (document order).
            report.delta.canonicalize();
        }

        // --- Update Lattice, part 2: add each snowcap's own new
        // bindings. All deltas are computed against the old-surviving
        // materializations before any of them is patched, keeping the
        // term bags disjoint. Under flips, rebuild from scratch — the
        // materializations embed stale predicate truth.
        let sets_for_rebuild =
            if flips_exist && !self.snowcaps.is_empty() { Some(self.current_sets()) } else { None };
        let (_, t_lat2) = timed(|| {
            if let Some(sets) = sets_for_rebuild {
                self.snowcaps = Self::materialize_sets(doc, &self.pattern, sets);
            } else if has_inserts && !self.snowcaps.is_empty() && !flips_exist {
                let mut deltas = Vec::with_capacity(self.snowcaps.len());
                for m in &self.snowcaps {
                    let (rel, _) = crate::pint::added_bindings(
                        &ins_ctx,
                        &m.nodes,
                        &self.snowcaps,
                        &mut leaves,
                    );
                    deltas.push(rel);
                }
                for (m, d) in self.snowcaps.iter_mut().zip(deltas) {
                    m.rel.rows.extend(d.rows);
                }
            }
        });
        report.timings.update_lattice = t_lat1 + t_lat2;

        report
    }
}

/// Pre-update state captured by [`MaintenanceEngine::prepare`].
pub struct PreparedUpdate {
    dminus: DeltaMinus,
    delete_roots: Vec<xivm_xml::DeweyId>,
    pred_capture: crate::predflip::PredCapture,
    prep_time: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    /// Oracle: after any propagated update, the store must equal the
    /// from-scratch evaluation on the updated document.
    fn check(
        doc_xml: &str,
        pattern: &str,
        stmts: &[&str],
        strategy: SnowcapStrategy,
    ) -> UpdateReport {
        let mut doc = parse_document(doc_xml).unwrap();
        let p = parse_pattern(pattern).unwrap();
        let mut engine = MaintenanceEngine::new(&doc, p.clone(), strategy);
        let mut last = UpdateReport::default();
        for s in stmts {
            let stmt = xivm_update::statement::parse_statement(s).unwrap();
            last = engine.apply_statement(&mut doc, &stmt).unwrap();
            let expected = ViewStore::from_counted(&p, view_tuples(&doc, &p));
            assert!(
                engine.store().same_content_as(&expected),
                "{pattern} after {s}:\n{}",
                engine.store().diff_description(&expected)
            );
        }
        last
    }

    const FIG12: &str = "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>";

    #[test]
    fn insert_new_tuples() {
        for strat in [
            SnowcapStrategy::MinimalChain,
            SnowcapStrategy::LeavesOnly,
            SnowcapStrategy::AllSnowcaps,
        ] {
            let r = check(
                "<a><b/></a>",
                "//a{id}//b{id}//c{id}",
                &["insert <c><d/></c> into //b"],
                strat,
            );
            assert_eq!(r.tuples_added, 1, "{strat:?}");
        }
    }

    #[test]
    fn insert_affecting_multiple_terms() {
        check(
            FIG12,
            "//a{id}[//c{id}]//b{id}",
            &["insert <c><b/></c> into //f", "insert <b/> into /a"],
            SnowcapStrategy::MinimalChain,
        );
    }

    #[test]
    fn delete_tuples_and_counts() {
        let r = check(
            FIG12,
            "//a{id}[//c{id}]//b{id}",
            &["delete /a/f/c"],
            SnowcapStrategy::MinimalChain,
        );
        assert_eq!(r.derivations_removed, 5, "Example 4.5: 8 embeddings drop to 3");
    }

    #[test]
    fn derivation_count_decrement_without_removal() {
        // Example 4.8: //a[//b] with two b's — deleting one keeps the
        // tuple at count 1; deleting the second removes it.
        let r = check(
            "<a><c><b/></c><f><b/></f></a>",
            "//a{id}[//b]",
            &["delete //c//b"],
            SnowcapStrategy::MinimalChain,
        );
        assert_eq!(r.tuples_removed, 0);
        assert_eq!(r.derivations_removed, 1);
        let r2 = check(
            "<a><c><b/></c><f><b/></f></a>",
            "//a{id}[//b]",
            &["delete //c//b", "delete //f//b"],
            SnowcapStrategy::MinimalChain,
        );
        assert_eq!(r2.tuples_removed, 1);
    }

    #[test]
    fn value_predicates_respected_on_both_directions() {
        check(
            "<r><a>5<b/></a><a>3<b/></a><t/></r>",
            "//a[val=\"5\"]//b{id}",
            &["insert <b/> into //t", "delete //a//b"],
            SnowcapStrategy::MinimalChain,
        );
    }

    #[test]
    fn modifications_of_stored_content() {
        let r = check(
            "<a><b><c>x</c></b></a>",
            "//b{id,cont}[//c{id,val}]",
            &["insert <extra>y</extra> into //c"],
            SnowcapStrategy::MinimalChain,
        );
        assert_eq!(r.tuples_modified, 1);
        let r2 = check(
            "<a><b><c>x</c><d>z</d></b></a>",
            "//b{id,val}",
            &["delete //d"],
            SnowcapStrategy::MinimalChain,
        );
        assert_eq!(r2.tuples_modified, 1);
    }

    #[test]
    fn update_sequences_stay_consistent() {
        check(
            "<site><people><person><name>x</name></person></people></site>",
            "/site{id}/people{id}/person{id}/name{id,val}",
            &[
                "insert <person><name>y</name></person> into /site/people",
                "insert <name>z</name> into /site/people/person",
                "delete /site/people/person/name",
                "insert <person/> into /site/people",
            ],
            SnowcapStrategy::MinimalChain,
        );
    }

    #[test]
    fn deleting_everything_empties_the_view() {
        let r =
            check(FIG12, "//a{id}[//c{id}]//b{id}", &["delete /a"], SnowcapStrategy::MinimalChain);
        assert_eq!(r.derivations_removed, 8);
    }

    #[test]
    fn no_op_updates_cost_nothing() {
        let r = check(
            "<a><b/></a>",
            "//a{id}//b{id}",
            &["delete //zz", "insert <q/> into //zz"],
            SnowcapStrategy::MinimalChain,
        );
        assert_eq!(r.tuples_added + r.tuples_removed + r.tuples_modified, 0);
    }

    #[test]
    fn wildcard_views_are_maintained() {
        check(
            "<r><x><item/></x><y><item/></y></r>",
            "/r{id}/*/item{id}",
            &["insert <item/> into //x", "delete //y"],
            SnowcapStrategy::MinimalChain,
        );
    }

    #[test]
    fn attribute_views_are_maintained() {
        check(
            "<r><p id=\"1\"/><p/></r>",
            "//p{id}[/@id{id,val}]",
            &["insert <p id=\"2\"><q/></p> into /r"],
            SnowcapStrategy::MinimalChain,
        );
    }

    #[test]
    fn snowcaps_stay_consistent_with_document() {
        let mut doc = parse_document(FIG12).unwrap();
        let p = parse_pattern("//a{id}[//c{id}]//b{id}").unwrap();
        let mut engine = MaintenanceEngine::new(&doc, p.clone(), SnowcapStrategy::MinimalChain);
        for s in ["insert <c><b/></c> into //f", "delete /a/c"] {
            let stmt = xivm_update::statement::parse_statement(s).unwrap();
            engine.apply_statement(&mut doc, &stmt).unwrap();
            // each snowcap must equal its from-scratch evaluation
            let fresh = MaintenanceEngine::new(&doc, p.clone(), SnowcapStrategy::MinimalChain);
            for (m, f) in engine.snowcaps().iter().zip(fresh.snowcaps()) {
                let mut a = m.rel.clone();
                let mut b = f.rel.clone();
                xivm_algebra::ops::sort_all(&mut a);
                xivm_algebra::ops::sort_all(&mut b);
                assert_eq!(a.rows.len(), b.rows.len(), "snowcap {:?} after {s}", m.nodes);
                assert_eq!(a.rows, b.rows, "snowcap {:?} after {s}", m.nodes);
            }
        }
    }
}
