//! Cost-based snowcap selection.
//!
//! Section 3.5 sketches — and defers to future work — how to choose
//! which snowcaps to materialize: combine (i) the expected rate of
//! changes per view node (the *update profile*, "routinely gathered as
//! part of the database server workload"), (ii) the algebraic
//! expression of each snowcap, and (iii) data statistics governing
//! sub-pattern sizes. This module implements that sketch with a
//! deliberately simple, documented cost model:
//!
//! * **statistics** — per-label cardinalities from the canonical
//!   relations ([`DocStats`]);
//! * **update profile** — per-view-node relative update rates, either
//!   given directly or extracted from a log of representative
//!   statements ([`UpdateProfile::from_log`]);
//! * **cost** — evaluating a term with Δ at node `n` costs the sum of
//!   the leaf cardinalities of its R-part that no materialized snowcap
//!   covers (structural joins are linear in their inputs); keeping a
//!   snowcap costs its estimated cardinality once per affecting
//!   update. [`choose_snowcaps`] greedily picks the chain prefixes
//!   whose expected saving exceeds their expected upkeep.

use crate::snowcap::minimal_chain;
use std::collections::{BTreeSet, HashMap};
use xivm_pattern::xpath::eval_path;
use xivm_pattern::{NodeTest, PatternNodeId, TreePattern};
use xivm_update::UpdateStatement;
use xivm_xml::Document;

/// Per-label cardinalities of a document.
#[derive(Debug, Clone, Default)]
pub struct DocStats {
    counts: HashMap<String, usize>,
    elements: usize,
}

impl DocStats {
    /// Collects the statistics the canonical relations already hold.
    pub fn collect(doc: &Document) -> Self {
        let mut counts = HashMap::new();
        let mut elements = 0usize;
        for (id, name) in doc.labels().iter() {
            let n = doc.canonical_nodes(id).len();
            if n > 0 {
                counts.insert(name.to_owned(), n);
                if !name.starts_with('@') && !name.starts_with('#') {
                    elements += n;
                }
            }
        }
        DocStats { counts, elements }
    }

    /// Cardinality of the canonical relation a pattern node scans.
    pub fn node_cardinality(&self, pattern: &TreePattern, n: PatternNodeId) -> usize {
        match &pattern.node(n).test {
            NodeTest::Name(name) => self.counts.get(name).copied().unwrap_or(0),
            NodeTest::Wildcard => self.elements,
        }
    }

    /// Crude sub-pattern cardinality estimate: bounded by its rarest
    /// node (every binding embeds that node at one position).
    pub fn subset_cardinality(&self, pattern: &TreePattern, nodes: &[PatternNodeId]) -> usize {
        nodes.iter().map(|&n| self.node_cardinality(pattern, n)).min().unwrap_or(0)
    }
}

/// Relative update rates per view node: how often updates are expected
/// to add or remove matches of each node.
#[derive(Debug, Clone, Default)]
pub struct UpdateProfile {
    rates: HashMap<PatternNodeId, f64>,
}

impl UpdateProfile {
    /// Uniform profile: every node equally likely to be touched.
    pub fn uniform(pattern: &TreePattern) -> Self {
        UpdateProfile { rates: pattern.node_ids().map(|n| (n, 1.0)).collect() }
    }

    /// Explicit rates (missing nodes default to 0).
    pub fn from_rates(rates: impl IntoIterator<Item = (PatternNodeId, f64)>) -> Self {
        UpdateProfile { rates: rates.into_iter().collect() }
    }

    /// Extracts a profile from a log of representative statements, the
    /// way a workload monitor would: each statement contributes its
    /// target count to every view node its inserted forest (or deleted
    /// subtree root) can match.
    pub fn from_log(doc: &Document, pattern: &TreePattern, log: &[UpdateStatement]) -> Self {
        let mut rates: HashMap<PatternNodeId, f64> = pattern.node_ids().map(|n| (n, 0.0)).collect();
        for stmt in log {
            let targets = eval_path(doc, stmt.target()).len() as f64;
            if targets == 0.0 {
                continue;
            }
            // A `Replace` lowers to del + ins↘, so it contributes on
            // both sides.
            if let UpdateStatement::Insert { xml, .. } | UpdateStatement::Replace { xml, .. } = stmt
            {
                for n in pattern.node_ids() {
                    if let NodeTest::Name(name) = &pattern.node(n).test {
                        if xml.contains(&format!("<{name}")) {
                            *rates.get_mut(&n).expect("prefilled") += targets;
                        }
                    }
                }
            }
            if let UpdateStatement::Delete { .. }
            | UpdateStatement::InsertFrom { .. }
            | UpdateStatement::Replace { .. } = stmt
            {
                // deletions can remove matches of any node at or
                // below the target label; approximate as uniform
                for n in pattern.node_ids() {
                    *rates.get_mut(&n).expect("prefilled") += targets / pattern.len() as f64;
                }
            }
        }
        UpdateProfile { rates }
    }

    pub fn rate(&self, n: PatternNodeId) -> f64 {
        self.rates.get(&n).copied().unwrap_or(0.0)
    }

    /// Total expected update pressure.
    pub fn total(&self) -> f64 {
        self.rates.values().sum()
    }
}

/// Expected per-update cost of maintaining the view with the given
/// materialized snowcap set (chain prefixes assumed).
pub fn expected_cost(
    pattern: &TreePattern,
    stats: &DocStats,
    profile: &UpdateProfile,
    materialized: &[BTreeSet<PatternNodeId>],
) -> f64 {
    let order = pattern.preorder();
    let mut cost = 0.0;
    for (i, &n) in order.iter().enumerate() {
        let rate = profile.rate(n);
        if rate == 0.0 {
            continue;
        }
        // Dominant term when Δ sits at `n`: R-part = nodes before `n`
        // in pre-order that are not descendants of `n` — approximated
        // by the pre-order prefix (exact for chains).
        let r_part = &order[..i];
        // best cover: the largest materialized set inside the R-part
        let covered = materialized
            .iter()
            .filter(|m| m.iter().all(|x| r_part.contains(x)))
            .map(|m| m.len())
            .max()
            .unwrap_or(0);
        let uncovered: f64 =
            r_part.iter().skip(covered).map(|&x| stats.node_cardinality(pattern, x) as f64).sum();
        let cover_scan = if covered > 0 {
            stats.subset_cardinality(pattern, &order[..covered]) as f64
        } else {
            0.0
        };
        cost += rate * (uncovered + cover_scan);
    }
    // Upkeep: every update touching any node of a materialized snowcap
    // patches it (cost ≈ its cardinality estimate, scaled down: only
    // deltas are written).
    for m in materialized {
        let nodes: Vec<PatternNodeId> = order.iter().copied().filter(|n| m.contains(n)).collect();
        let card = stats.subset_cardinality(pattern, &nodes) as f64;
        let rate: f64 = nodes.iter().map(|&n| profile.rate(n)).sum();
        cost += 0.1 * rate * card;
    }
    cost
}

/// Greedy cost-based choice among the chain snowcaps: keep adding the
/// prefix whose inclusion lowers [`expected_cost`], stop when nothing
/// helps. Returns the chosen node sets (possibly empty — for
/// insert-only-at-the-root profiles, materialization may never pay).
pub fn choose_snowcaps(
    pattern: &TreePattern,
    stats: &DocStats,
    profile: &UpdateProfile,
) -> Vec<BTreeSet<PatternNodeId>> {
    let candidates: Vec<BTreeSet<PatternNodeId>> =
        minimal_chain(pattern).into_iter().filter(|s| s.len() < pattern.len()).collect();
    let mut chosen: Vec<BTreeSet<PatternNodeId>> = Vec::new();
    let mut best = expected_cost(pattern, stats, profile, &chosen);
    loop {
        let mut improvement: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if chosen.contains(c) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(c.clone());
            let cost = expected_cost(pattern, stats, profile, &trial);
            if cost < best && improvement.is_none_or(|(_, b)| cost < b) {
                improvement = Some((i, cost));
            }
        }
        match improvement {
            Some((i, cost)) => {
                chosen.push(candidates[i].clone());
                best = cost;
            }
            None => break,
        }
    }
    chosen.sort_by_key(BTreeSet::len);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    fn doc() -> Document {
        // many b's and c's under few a's
        parse_document(
            "<r><a><b><c/><c/><c/></b><b><c/><c/></b></a>\
             <a><b><c/><c/><c/></b></a></r>",
        )
        .unwrap()
    }

    #[test]
    fn stats_reflect_canonical_cardinalities() {
        let d = doc();
        let s = DocStats::collect(&d);
        let p = parse_pattern("//a//b//c").unwrap();
        let order = p.preorder();
        assert_eq!(s.node_cardinality(&p, order[0]), 2);
        assert_eq!(s.node_cardinality(&p, order[1]), 3);
        assert_eq!(s.node_cardinality(&p, order[2]), 8);
        assert_eq!(s.subset_cardinality(&p, &order[..2]), 2, "bounded by the rarer a");
    }

    #[test]
    fn materialization_helps_leaf_heavy_profiles() {
        let d = doc();
        let s = DocStats::collect(&d);
        let p = parse_pattern("//a//b//c").unwrap();
        let order = p.preorder();
        // updates always add c's: terms need the ab snowcap
        let profile = UpdateProfile::from_rates([(order[2], 10.0)]);
        let none = expected_cost(&p, &s, &profile, &[]);
        let ab: BTreeSet<_> = order[..2].iter().copied().collect();
        let with_ab = expected_cost(&p, &s, &profile, std::slice::from_ref(&ab));
        assert!(with_ab < none, "covering the R-part must be cheaper");
        let chosen = choose_snowcaps(&p, &s, &profile);
        assert!(chosen.contains(&ab));
    }

    #[test]
    fn root_only_profiles_choose_nothing() {
        let d = doc();
        let s = DocStats::collect(&d);
        let p = parse_pattern("//a//b//c").unwrap();
        let order = p.preorder();
        // updates only ever add whole new a-subtrees: the all-Δ term
        // needs no auxiliary structures
        let profile = UpdateProfile::from_rates([(order[0], 10.0)]);
        let chosen = choose_snowcaps(&p, &s, &profile);
        assert!(chosen.is_empty(), "nothing to cover, upkeep only costs: {chosen:?}");
    }

    #[test]
    fn profile_from_log_counts_targets() {
        let d = doc();
        let p = parse_pattern("//a//b//c").unwrap();
        let log = vec![
            UpdateStatement::insert("//b", "<c/>").unwrap(),
            UpdateStatement::insert("//b", "<c/>").unwrap(),
        ];
        let profile = UpdateProfile::from_log(&d, &p, &log);
        let order = p.preorder();
        assert!(profile.rate(order[2]) > 0.0, "c insertions detected");
        assert_eq!(profile.rate(order[0]), 0.0, "no a's inserted");
        assert!(profile.total() > 0.0);
    }

    #[test]
    fn uniform_profile_covers_all_nodes() {
        let p = parse_pattern("//a//b//c").unwrap();
        let u = UpdateProfile::uniform(&p);
        assert_eq!(u.total(), 3.0);
    }
}
