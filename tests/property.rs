//! Property-based tests over random documents, views and updates.

use proptest::prelude::*;
use xivm::pattern::compile::view_tuples;
use xivm::prelude::*;
use xivm::xml::dewey::Step;
use xivm::xml::{DeweyId, LabelId};

// ---------------------------------------------------------------------
// Random document generation (small alphabets so patterns hit)
// ---------------------------------------------------------------------

fn arb_tree(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("<b/>".to_owned()),
        Just("<c/>".to_owned()),
        Just("<d>5</d>".to_owned()),
        Just("x".to_owned()),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, kids)| {
                if kids.is_empty() {
                    format!("<{tag}/>")
                } else {
                    format!("<{tag}>{}</{tag}>", kids.join(""))
                }
            })
    })
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_tree(3), 1..5).prop_map(|kids| format!("<r>{}</r>", kids.join("")))
}

const PATTERNS: [&str; 6] = [
    "//a{id}//b{id}",
    "//a{id}[//c{id}]//b{id}",
    "//a{id}//b{id}//c{id}",
    "//r{id}//d{id,val}",
    "//a{id}[//d[val=\"5\"]]//b{id}",
    "//a{id,cont}[//b]",
];

const TARGETS: [&str; 4] = ["//a", "//b", "//a//c", "//d"];
const FORESTS: [&str; 4] = ["<b/>", "<a><b/><c/></a>", "<c><b/></c>", "<d>5</d>"];

const STRATEGIES: [SnowcapStrategy; 3] =
    [SnowcapStrategy::MinimalChain, SnowcapStrategy::AllSnowcaps, SnowcapStrategy::LeavesOnly];

fn script_statement(t: usize, f: usize, is_insert: bool) -> String {
    if is_insert {
        format!("insert {} into {}", FORESTS[f], TARGETS[t])
    } else {
        format!("delete {}", TARGETS[t])
    }
}

/// A label-name-rendered, document-order form of a view's tuples.
///
/// Tuples store raw Dewey steps whose `LabelId`s are private to the
/// owning document's interner; two databases that went through
/// different (but equivalent) operation orders may intern the same
/// label names at different ids. Comparing across databases therefore
/// has to go through label *names*.
fn fingerprint(db: &Database, h: ViewHandle) -> Vec<String> {
    db.store(h)
        .sorted_tuples()
        .iter()
        .map(|(t, c)| {
            let fields: Vec<String> = t
                .fields()
                .iter()
                .map(|f| {
                    format!(
                        "{}|{:?}|{:?}",
                        f.id.display_with(|l| db.document().label_name(l).to_owned()),
                        f.val,
                        f.cont
                    )
                })
                .collect();
            format!("({})x{c}", fields.join(","))
        })
        .collect()
}

/// Every view of `db` must equal its from-scratch evaluation.
fn consistent(db: &Database) -> Result<(), TestCaseError> {
    for h in db.handles() {
        let pattern = db.pattern(h).clone();
        let expected = ViewStore::from_counted(&pattern, view_tuples(db.document(), &pattern));
        prop_assert!(
            db.store(h).same_content_as(&expected),
            "view {} diverged:\n{}",
            db.name(h),
            db.store(h).diff_description(&expected)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The central invariant: incrementally maintained views ==
    /// from-scratch evaluation, for random docs and update sequences
    /// streamed through the `Database` façade one statement at a time.
    #[test]
    fn database_equals_recompute(
        doc_xml in arb_doc(),
        pattern_idx in 0usize..PATTERNS.len(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..4
        ),
        strategy_idx in 0usize..3,
    ) {
        let mut db = Database::builder()
            .document(doc_xml.as_str())
            .view_with_strategy("v", PATTERNS[pattern_idx], STRATEGIES[strategy_idx])
            .build()
            .unwrap();
        for (t, f, is_insert) in script {
            let stmt = script_statement(t, f, is_insert);
            db.apply(stmt.as_str()).unwrap();
            consistent(&db)?;
            db.document().check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Transaction semantics: a sequential transaction of N statements
    /// leaves the document and every view's tuple set identical to
    /// applying the N statements one by one via `apply`.
    #[test]
    fn transaction_equals_sequential_apply(
        doc_xml in arb_doc(),
        view_idx in 0usize..PATTERNS.len(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..5
        ),
        strategy_idx in 0usize..3,
    ) {
        // two views so the shared propagation pass is exercised
        let other = (view_idx + 1) % PATTERNS.len();
        let build = || Database::builder()
            .document(doc_xml.as_str())
            .view_with_strategy("primary", PATTERNS[view_idx], STRATEGIES[strategy_idx])
            .view("secondary", PATTERNS[other])
            .build()
            .unwrap();

        let mut one_by_one = build();
        for &(t, f, is_insert) in &script {
            one_by_one.apply(script_statement(t, f, is_insert).as_str()).unwrap();
        }

        let mut batched = build();
        let mut tx = batched.transaction();
        for &(t, f, is_insert) in &script {
            tx = tx.statement(script_statement(t, f, is_insert).as_str());
        }
        let report = tx.commit().unwrap();
        prop_assert_eq!(report.statements, script.len());
        prop_assert!(report.optimized_ops <= report.naive_ops);

        prop_assert!(
            one_by_one.serialize() == batched.serialize(),
            "doc={doc_xml} script={script:?}\nseq={}\nbat={}",
            one_by_one.serialize(),
            batched.serialize()
        );
        for (a, b) in one_by_one.handles().into_iter().zip(batched.handles()) {
            prop_assert!(
                fingerprint(&one_by_one, a) == fingerprint(&batched, b),
                "view {} diverged: doc={doc_xml} script={script:?}\nseq={:?}\nbat={:?}",
                one_by_one.name(a),
                fingerprint(&one_by_one, a),
                fingerprint(&batched, b)
            );
        }
        consistent(&batched)?;
        batched.document().check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Parallel propagation output is identical to sequential, for
    /// random documents × random view sets × random PULs — including
    /// the degenerate 1-worker pool and more views than workers.
    /// Statements run both one-by-one (raw PULs) and batched through
    /// a transaction (optimizer-reduced PULs).
    #[test]
    fn parallel_propagation_equals_sequential(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..6),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..4
        ),
        workers in 1usize..6,
        batched in prop::bool::ANY,
    ) {
        // duplicate patterns are fine (and interesting): names differ
        let build = |workers: usize| {
            let mut b = Database::builder().document(doc_xml.as_str()).workers(workers);
            for (i, &p) in view_idxs.iter().enumerate() {
                b = b.view(format!("v{i}"), PATTERNS[p]);
            }
            b.build().unwrap()
        };
        let mut seq = build(1);
        let mut par = build(workers);
        prop_assert_eq!(par.workers(), workers);
        if batched {
            let (mut tx_seq, mut tx_par) = (seq.transaction(), par.transaction());
            for &(t, f, is_insert) in &script {
                tx_seq = tx_seq.statement(script_statement(t, f, is_insert).as_str());
                tx_par = tx_par.statement(script_statement(t, f, is_insert).as_str());
            }
            tx_seq.commit().unwrap();
            tx_par.commit().unwrap();
        } else {
            for &(t, f, is_insert) in &script {
                let stmt = script_statement(t, f, is_insert);
                let seq_reports = seq.apply(stmt.as_str()).unwrap();
                let par_reports = par.apply(stmt.as_str()).unwrap();
                // reports come back in declaration order with equal
                // counters and deltas (timings legitimately differ)
                for ((n1, r1), (n2, r2)) in seq_reports.iter().zip(par_reports.iter()) {
                    prop_assert_eq!(n1, n2);
                    prop_assert_eq!(r1.tuples_added, r2.tuples_added);
                    prop_assert_eq!(r1.tuples_removed, r2.tuples_removed);
                    prop_assert_eq!(r1.tuples_modified, r2.tuples_modified);
                    prop_assert_eq!(r1.derivations_added, r2.derivations_added);
                    prop_assert_eq!(r1.derivations_removed, r2.derivations_removed);
                    prop_assert_eq!(&r1.delta, &r2.delta, "deltas must be bit-identical");
                }
            }
        }
        prop_assert_eq!(seq.serialize(), par.serialize());
        for (a, b) in seq.handles().into_iter().zip(par.handles()) {
            prop_assert!(
                fingerprint(&seq, a) == fingerprint(&par, b),
                "view {} diverged under {workers} workers: doc={doc_xml} script={script:?}",
                seq.name(a)
            );
        }
        consistent(&par)?;
    }

    /// The delta-first contract: for random documents, view sets and
    /// update scripts — applied one by one or batched, at any worker
    /// count — replaying each commit's per-view deltas onto snapshots
    /// of the pre-commit stores reproduces the post-commit stores
    /// *exactly* (keys, derivation counts and stored text), and the
    /// commit sequence numbers are gapless.
    #[test]
    fn deltas_replay_to_store(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..4),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..4
        ),
        workers in 1usize..5,
        batched in prop::bool::ANY,
    ) {
        let mut b = Database::builder().document(doc_xml.as_str()).workers(workers);
        for (i, &p) in view_idxs.iter().enumerate() {
            b = b.view(format!("v{i}"), PATTERNS[p]);
        }
        let mut db = b.build().unwrap();
        // replicas start as snapshots; from here on only deltas flow
        let mut replicas: Vec<ViewStore> =
            db.handles().into_iter().map(|h| db.store(h).clone()).collect();
        let subs: Vec<Subscription> =
            db.handles().into_iter().map(|h| db.subscribe(h)).collect();

        let mut expected_commits = 0u64;
        if batched {
            let mut tx = db.transaction();
            for &(t, f, is_insert) in &script {
                tx = tx.statement(script_statement(t, f, is_insert).as_str());
            }
            let commit = tx.commit().unwrap();
            expected_commits += 1;
            prop_assert_eq!(commit.seq, expected_commits);
        } else {
            for &(t, f, is_insert) in &script {
                let commit = db.apply(script_statement(t, f, is_insert).as_str()).unwrap();
                expected_commits += 1;
                prop_assert_eq!(commit.seq, expected_commits, "gapless sequence numbers");
                // per-commit replay of the commit's own deltas
                for (replica, h) in replicas.iter_mut().zip(db.handles()) {
                    commit.delta(h).replay(replica);
                }
            }
        }
        // In batched mode the single commit's deltas are replayed from
        // the subscription feed below, exercising that path too.
        for ((replica, h), sub) in replicas.iter_mut().zip(db.handles()).zip(&subs) {
            let events = db.drain(sub);
            prop_assert_eq!(events.len() as u64, expected_commits, "one event per commit");
            let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
            prop_assert_eq!(seqs, (1..=expected_commits).collect::<Vec<u64>>(), "gapless");
            if batched {
                for event in &events {
                    event.delta.replay(replica);
                }
            }
            prop_assert!(
                replica.identical_to(db.store(h)),
                "snapshot + Σ deltas must equal the final store exactly \
                 (doc={doc_xml} script={script:?} workers={workers} batched={batched})"
            );
        }
        consistent(&db)?;
    }

    /// A typed-builder statement must produce bit-identical results to
    /// its textual equivalent: same document, same stores, same
    /// commit deltas.
    #[test]
    fn typed_builders_equal_text(
        doc_xml in arb_doc(),
        view_idx in 0usize..PATTERNS.len(),
        t in 0usize..TARGETS.len(),
        f in 0usize..FORESTS.len(),
        kind in 0usize..3,
    ) {
        use xivm::update::builder::{delete, insert, replace, UpdateBuilder};
        let build = || Database::builder()
            .document(doc_xml.as_str())
            .view("v", PATTERNS[view_idx])
            .build()
            .unwrap();
        let (builder, text): (UpdateBuilder, String) = match kind {
            0 => (delete(TARGETS[t]), format!("delete {}", TARGETS[t])),
            1 => (
                insert(FORESTS[f]).into(TARGETS[t]),
                format!("insert {} into {}", FORESTS[f], TARGETS[t]),
            ),
            _ => (
                replace(TARGETS[t]).with(FORESTS[f]),
                format!("replace {} with {}", TARGETS[t], FORESTS[f]),
            ),
        };
        let mut typed = build();
        let mut textual = build();
        let ct = typed.apply(builder).unwrap();
        let cx = textual.apply(text.as_str()).unwrap();
        prop_assert_eq!(typed.serialize(), textual.serialize());
        let (h1, h2) = (typed.view("v").unwrap(), textual.view("v").unwrap());
        prop_assert!(typed.store(h1).identical_to(textual.store(h2)), "{}", text);
        prop_assert_eq!(ct.delta(h1), cx.delta(h2), "deltas must be bit-identical: {}", text);
        consistent(&typed)?;
        consistent(&textual)?;
    }

    /// Independent (order-independent) transactions either reject with
    /// `Error::Conflict` — leaving the database untouched — or commit
    /// to a state where every view equals recomputation.
    #[test]
    fn independent_transaction_rejects_or_commits_consistently(
        doc_xml in arb_doc(),
        view_idx in 0usize..PATTERNS.len(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..4
        ),
    ) {
        let mut db = Database::builder()
            .document(doc_xml.as_str())
            .view("v", PATTERNS[view_idx])
            .build()
            .unwrap();
        let before = db.serialize();
        let mut tx = db.transaction().independent();
        for &(t, f, is_insert) in &script {
            tx = tx.statement(script_statement(t, f, is_insert).as_str());
        }
        match tx.commit() {
            Err(Error::Conflict(conflicts)) => {
                prop_assert!(!conflicts.is_empty());
                prop_assert_eq!(db.serialize(), before, "rejected batch must be a no-op");
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
            Ok(_) => {}
        }
        consistent(&db)?;
    }

    /// Algebraic evaluation == embedding semantics on random documents.
    #[test]
    fn algebra_equals_embeddings(doc_xml in arb_doc(), pattern_idx in 0usize..PATTERNS.len()) {
        let doc = parse_document(&doc_xml).unwrap();
        let pattern = parse_pattern(PATTERNS[pattern_idx]).unwrap();
        let algebraic: Vec<(Vec<DeweyId>, u64)> = view_tuples(&doc, &pattern)
            .into_iter()
            .map(|(t, c)| (t.id_key(), c))
            .collect();
        let by_embedding = xivm::pattern::embed::view_tuples_by_embedding(&doc, &pattern);
        prop_assert_eq!(algebraic, by_embedding);
    }

    /// Dewey encode/decode roundtrip on arbitrary step sequences.
    #[test]
    fn dewey_roundtrip(steps in prop::collection::vec((0u32..500, 1u64..u64::MAX / 2), 0..12)) {
        let id = DeweyId::from_steps(
            steps.into_iter().map(|(l, o)| Step::new(LabelId(l), o)).collect(),
        );
        let decoded = DeweyId::decode(&id.encode());
        prop_assert_eq!(decoded, Some(id));
    }

    /// Document order is a total order consistent with the ancestor
    /// relation.
    #[test]
    fn dewey_order_laws(
        a in prop::collection::vec((0u32..4, 1u64..6), 1..5),
        b in prop::collection::vec((0u32..4, 1u64..6), 1..5),
    ) {
        let x = DeweyId::from_steps(a.into_iter().map(|(l, o)| Step::new(LabelId(l), o)).collect());
        let y = DeweyId::from_steps(b.into_iter().map(|(l, o)| Step::new(LabelId(l), o)).collect());
        // antisymmetry (over ordinal paths: labels don't affect order)
        if x.doc_cmp(&y).is_eq() && y.doc_cmp(&x).is_eq() {
            // same ordinal path: ancestor of each other only if equal length
            prop_assert_eq!(x.depth(), y.depth());
        }
        // ancestors precede descendants
        if x.is_ancestor_of(&y) {
            prop_assert!(x.doc_cmp(&y).is_lt());
            prop_assert!(!y.is_ancestor_of(&x));
        }
    }

    /// PUL reduction preserves the final document.
    #[test]
    fn reduction_is_semantics_preserving(
        doc_xml in arb_doc(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..5
        ),
    ) {
        let d0 = parse_document(&doc_xml).unwrap();
        let mut ops = Vec::new();
        for (t, f, is_insert) in script {
            let stmt = if is_insert {
                UpdateStatement::insert(TARGETS[t], FORESTS[f]).unwrap()
            } else {
                UpdateStatement::delete(TARGETS[t]).unwrap()
            };
            ops.extend(xivm::update::compute_pul(&d0, &stmt).ops);
        }
        let pul = xivm::update::Pul::new(ops);
        let (reduced, trace) = xivm::pulopt::reduce(&pul);
        prop_assert!(trace.ops_after <= trace.ops_before);

        let mut plain = parse_document(&doc_xml).unwrap();
        xivm::update::apply_pul(&mut plain, &pul).unwrap();
        let mut optimized = parse_document(&doc_xml).unwrap();
        xivm::update::apply_pul(&mut optimized, &reduced).unwrap();
        prop_assert_eq!(
            serialize_document(&plain),
            serialize_document(&optimized)
        );
    }

    /// View snapshots roundtrip for arbitrary documents and patterns.
    #[test]
    fn snapshot_roundtrip(doc_xml in arb_doc(), pattern_idx in 0usize..PATTERNS.len()) {
        use xivm::core::snapshot::{decode_store, encode_store};
        let doc = parse_document(&doc_xml).unwrap();
        let pattern = parse_pattern(PATTERNS[pattern_idx]).unwrap();
        let store = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
        let back = decode_store(&encode_store(&store)).unwrap();
        prop_assert!(store.same_content_as(&back));
        prop_assert_eq!(store.schema(), back.schema());
    }

    /// Parser/serializer roundtrip stability: serialize(parse(x))
    /// serializes to itself again.
    #[test]
    fn serializer_fixpoint(doc_xml in arb_doc()) {
        let d = parse_document(&doc_xml).unwrap();
        let s1 = serialize_document(&d);
        let d2 = parse_document(&s1).unwrap();
        prop_assert_eq!(s1, serialize_document(&d2));
    }
}

/// Subscriptions across `independent()` transactions: a rejected
/// batch consumes no sequence number and emits no event; committed
/// batches (conflict-free, or resolved by policy) stream replayable
/// deltas with consecutive sequence numbers.
#[test]
fn deltas_subscription_across_independent_transactions() {
    let mut db = Database::builder()
        .document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>")
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .view("ab", "//a{id}//b{id}")
        .build()
        .unwrap();
    let acb = db.view("acb").unwrap();
    let feed = db.subscribe(acb);
    let mut replica = db.store(acb).clone();

    // 1. a conflict-free independent batch commits and streams
    db.transaction()
        .independent()
        .statement("insert <b/> into /a/c")
        .statement("delete /a/f")
        .commit()
        .unwrap();

    // 2. a conflicting batch is rejected: no commit, no event
    let err = db
        .transaction()
        .independent()
        .statement("delete /a/c")
        .statement("insert <b/> into /a/c")
        .commit()
        .unwrap_err();
    assert!(matches!(err, Error::Conflict(_)));
    assert_eq!(db.pending(&feed), 1, "rejected batches must not emit events");
    assert_eq!(db.last_seq(), 1, "rejected batches must not consume sequence numbers");

    // 3. the same conflict under a resolving policy commits
    db.transaction()
        .independent()
        .on_conflict(ConflictPolicy::FirstWins)
        .statement("delete /a/c")
        .statement("insert <b/> into /a/c")
        .commit()
        .unwrap();

    let events = db.drain(&feed);
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![1, 2], "gapless across the rejected batch");
    for event in &events {
        event.delta.replay(&mut replica);
    }
    assert!(replica.identical_to(db.store(acb)), "snapshot + Σ deltas == final store");
    db.unsubscribe(feed);
}

/// Unsubscribing between two *overlapped* (pipelined) batches: the
/// cancelled feed stops cleanly at a commit boundary, the surviving
/// feed keeps a gapless, replayable stream across both batches, and
/// a subscriber added between batches sees exactly the later commits.
#[test]
fn unsubscribe_between_overlapped_commits() {
    let mut db = Database::builder()
        .document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>")
        .view("ab", "//a{id}//b{id}")
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .view("c_cont", "//c{id,cont}")
        .workers(3)
        .pipeline(3)
        .build()
        .unwrap();
    let ab = db.view("ab").unwrap();
    let early = db.subscribe(ab);
    let survivor = db.subscribe(ab);
    assert_eq!(db.subscriptions(), 2);
    let mut replica = db.store(ab).clone();

    db.apply_pipelined(["insert <b/> into /a/c", "delete /a/f/c", "insert <c><b/></c> into /a"])
        .unwrap();

    // drop one feed between the overlapped batches: its events are
    // discarded with it, the other feed is untouched
    let drained_early = db.drain(&early);
    assert_eq!(drained_early.len(), 3);
    db.unsubscribe(early);
    assert_eq!(db.subscriptions(), 1);

    let late = db.subscribe(ab);
    db.apply_pipelined(["insert <b/> into //c", "delete //c//b"]).unwrap();

    let events = db.drain(&survivor);
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5], "gapless across both overlapped batches");
    for e in &events {
        e.delta.replay(&mut replica);
    }
    assert!(replica.identical_to(db.store(ab)), "snapshot + Σ deltas == final store");

    let late_events = db.drain(&late);
    let late_seqs: Vec<u64> = late_events.iter().map(|e| e.seq).collect();
    assert_eq!(late_seqs, vec![4, 5], "a mid-stream subscriber sees exactly the later commits");
    db.unsubscribe(survivor);
    db.unsubscribe(late);
    assert_eq!(db.subscriptions(), 0);
}

/// N subscribers of one view cost one delta allocation per commit
/// (`Arc`-shared), on the plain path and on the pipelined path alike
/// — and subscribers of *different* views never alias.
#[test]
fn multiple_subscribers_on_one_view_share_the_delta_allocation() {
    let mut db = Database::builder()
        .document("<a><c><b/><b/></c><f><b/></f></a>")
        .view("ab", "//a{id}//b{id}")
        .view("ac", "//a{id}//c{id}")
        .workers(2)
        .pipeline(2)
        .build()
        .unwrap();
    let ab = db.view("ab").unwrap();
    let ac = db.view("ac").unwrap();
    let s1 = db.subscribe(ab);
    let s2 = db.subscribe(ab);
    let other = db.subscribe(ac);

    db.apply("insert <b/> into /a/c").unwrap();
    db.apply_pipelined(["insert <c><b/></c> into /a", "delete /a/f/b"]).unwrap();

    let (e1, e2, eo) = (db.drain(&s1), db.drain(&s2), db.drain(&other));
    assert_eq!(e1.len(), 3);
    assert_eq!(e2.len(), 3);
    for (a, b) in e1.iter().zip(&e2) {
        assert_eq!(a.seq, b.seq);
        assert!(
            std::sync::Arc::ptr_eq(&a.delta, &b.delta),
            "same-view subscribers must share one allocation per commit"
        );
    }
    for (a, o) in e1.iter().zip(&eo) {
        assert!(!std::sync::Arc::ptr_eq(&a.delta, &o.delta), "different views never share a delta");
    }
    db.unsubscribe(s1);
    db.unsubscribe(s2);
    db.unsubscribe(other);
}

/// A rejected pipelined batch is a perfect no-op: a malformed
/// statement (parse error or unparseable insert forest) rejects the
/// *whole* batch before anything is applied — no commit, no sequence
/// number, no event, no document or view change.
#[test]
fn rejected_pipelined_batch_emits_nothing() {
    let mut db = Database::builder()
        .document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>")
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .workers(2)
        .pipeline(2)
        .build()
        .unwrap();
    let acb = db.view("acb").unwrap();
    let feed = db.subscribe(acb);
    let before = db.serialize();

    let parse_err = db.apply_pipelined(["insert <b/> into /a/c", "frobnicate //a", "delete /a/f"]);
    assert!(matches!(parse_err, Err(Error::Statement(_))));
    let forest_err = db.apply_pipelined(["delete /a/f", "insert <b><broken> into /a/c"]);
    assert!(matches!(forest_err, Err(Error::Xml(_))));

    assert_eq!(db.serialize(), before, "rejected batches must touch nothing");
    assert_eq!(db.last_seq(), 0, "no sequence number is consumed");
    assert_eq!(db.pending(&feed), 0, "no event is emitted");

    // and the database still works afterwards
    let commits = db.apply_pipelined(["insert <b/> into /a/c", "delete /a/f"]).unwrap();
    assert_eq!(commits.len(), 2);
    let events = db.drain(&feed);
    assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
    db.unsubscribe(feed);
}

// ---------------------------------------------------------------------
// Slow-consumer policies (bounded subscription queues)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// [`SlowConsumerPolicy::DropAndMark`]: overflowing a capacity-k
    /// queue by n commits drops the n *oldest* events and marks the
    /// stream with the exact missed range `1..=n`; the documented
    /// recovery recipe — re-seed a mirror from [`Database::snapshot`]
    /// and replay only events newer than the snapshot — reconverges
    /// bit-identically with the live store.
    #[test]
    fn drop_and_mark_reports_exact_lag_and_snapshot_reseed_reconverges(
        capacity in 1usize..4,
        overflow in 1usize..5,
        workers in 1usize..4,
    ) {
        let mut db = Database::builder()
            .document("<r><a><b/></a><a><c/></a></r>")
            .view("ab", PATTERNS[0])
            .workers(workers)
            .build()
            .unwrap();
        let h = db.view("ab").unwrap();
        let sub = db.subscribe_with(h, Some(capacity), SlowConsumerPolicy::DropAndMark);

        let total = capacity + overflow;
        for i in 0..total {
            db.apply(script_statement(i % 2, i % FORESTS.len(), true).as_str()).unwrap();
        }

        let events = sub.drain();
        prop_assert_eq!(events.len(), capacity + 1, "lag marker + the retained tail");
        match &events[0] {
            FeedEvent::Lagged(lag) => prop_assert_eq!(
                lag.missed_range.clone(),
                1..=(overflow as u64),
                "the missed range names exactly the dropped commits"
            ),
            other => prop_assert!(false, "expected the lag marker first, got {:?}", other),
        }
        let tail: Vec<u64> = events[1..].iter().filter_map(|e| e.delta()).map(|d| d.seq).collect();
        prop_assert_eq!(
            tail,
            ((overflow as u64 + 1)..=total as u64).collect::<Vec<u64>>(),
            "the retained tail is the newest `capacity` events, gapless"
        );

        // The recovery recipe: freeze a snapshot, seed the mirror from
        // it, and from here on replay only events newer than its seq.
        let snap = db.snapshot();
        let resume = snap.seq();
        let mut mirror = snap.store(h).clone();
        for i in 0..2 {
            db.apply(script_statement(i % 2, (i + 1) % FORESTS.len(), true).as_str()).unwrap();
            // a keeping-up consumer: drained every commit, so even a
            // capacity-1 queue never drops again
            for ev in sub.drain() {
                match ev {
                    FeedEvent::Delta(d) => {
                        prop_assert!(d.seq > resume, "post-reseed events resume gaplessly");
                        d.delta.replay(&mut mirror);
                    }
                    FeedEvent::Lagged(lag) => {
                        prop_assert!(false, "a drained queue never lags: {:?}", lag.missed_range)
                    }
                }
            }
        }
        prop_assert!(
            mirror.identical_to(db.store(h)),
            "snapshot re-seed + replayed tail must equal the live store"
        );
        db.unsubscribe(sub);
    }
}

/// [`SlowConsumerPolicy::Block`]: a full queue makes the *producer*
/// (the async service sealing commits, not the submitting thread)
/// wait for the consumer — observably, via the flush that cannot
/// complete before the sleeping consumer starts draining — and not a
/// single event is lost or reordered.
#[test]
fn block_policy_backpressure_waits_and_loses_nothing() {
    use std::time::{Duration, Instant};

    const PAUSE: Duration = Duration::from_millis(50);
    let mut db = Database::builder()
        .document("<r><a><b/></a></r>")
        .view("ab", PATTERNS[0])
        .workers(2)
        .pipeline(2)
        .build()
        .unwrap();
    let h = db.view("ab").unwrap();
    let sub = db.subscribe_with(h, Some(1), SlowConsumerPolicy::Block);

    let consumer = std::thread::spawn(move || {
        std::thread::sleep(PAUSE);
        let mut seqs: Vec<u64> = Vec::new();
        while seqs.len() < 4 {
            for ev in sub.drain() {
                match ev {
                    FeedEvent::Delta(d) => seqs.push(d.seq),
                    FeedEvent::Lagged(lag) => {
                        panic!("Block never drops (missed {:?})", lag.missed_range)
                    }
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        (seqs, sub)
    });

    let start = Instant::now();
    let tickets: Vec<Ticket> =
        (0..4).map(|_| db.apply_async(["insert <b/> into //a"]).unwrap()).collect();
    let submitted = start.elapsed();
    db.flush().unwrap();
    let flushed = start.elapsed();

    assert!(submitted < PAUSE, "submission never blocks on backpressure ({submitted:?})");
    assert!(flushed >= PAUSE, "sealing had to wait for the sleeping consumer ({flushed:?})");
    for t in tickets {
        t.wait().unwrap();
    }
    let (seqs, sub) = consumer.join().unwrap();
    assert_eq!(seqs, vec![1, 2, 3, 4], "nothing lost, nothing reordered");
    db.unsubscribe(sub);
}

/// [`SlowConsumerPolicy::Disconnect`]: overflowing the queue drops the
/// subscription — its queue empties, the registry forgets it at the
/// next commit (so later commits stop paying for it), and surviving
/// subscriptions are untouched.
#[test]
fn disconnect_policy_drops_the_subscription() {
    let mut db =
        Database::builder().document("<r><a><b/></a></r>").view("ab", PATTERNS[0]).build().unwrap();
    let h = db.view("ab").unwrap();
    let keeper = db.subscribe(h);
    let fragile = db.subscribe_with(h, Some(1), SlowConsumerPolicy::Disconnect);
    assert_eq!(db.subscriptions(), 2);

    db.apply("insert <b/> into //a").unwrap(); // fills the queue
    db.apply("insert <b/> into //a").unwrap(); // overflows: disconnect
    assert!(fragile.is_disconnected());
    assert_eq!(fragile.pending(), 0, "the queue is emptied on disconnect");
    assert!(fragile.drain().is_empty(), "no events and no lag marker survive");

    db.apply("insert <b/> into //a").unwrap(); // registry sweep
    assert_eq!(db.subscriptions(), 1, "later commits do not pay for the dead feed");
    assert!(fragile.drain().is_empty(), "nothing is delivered after the disconnect");

    let seqs: Vec<u64> = db.drain(&keeper).iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![1, 2, 3], "survivors keep a gapless stream");

    db.unsubscribe(fragile); // tolerated: already swept
    db.unsubscribe(keeper);
    assert_eq!(db.subscriptions(), 0);
}

// ---------------------------------------------------------------------
// Lagged resume contract across sealing modes (feed wire depends on it)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The resume contract the socket replication layer builds on:
    /// whatever sealed the commits — the pipelined window path or the
    /// async service thread — a [`DropAndMark`] overflow delivers the
    /// `Lagged` marker first, the very next delta's `seq` is exactly
    /// `missed_range.end() + 1`, and the tail runs gapless to the last
    /// commit. A consumer that re-seeds at the marker never replays a
    /// hole and never skips a live event.
    #[test]
    fn lagged_marker_resumes_exactly_past_the_missed_range(
        capacity in 1usize..4,
        overflow in 2usize..6,
        pipeline in 1usize..5,
        use_async in prop::bool::ANY,
    ) {
        let mut db = Database::builder()
            .document("<r><a><b/></a><a><c/></a></r>")
            .view("ab", PATTERNS[0])
            .workers(2)
            .pipeline(pipeline)
            .build()
            .unwrap();
        let h = db.view("ab").unwrap();
        let sub = db.subscribe_with(h, Some(capacity), SlowConsumerPolicy::DropAndMark);

        let total = capacity + overflow;
        let stmts: Vec<String> =
            (0..total).map(|i| script_statement(i % 2, i % FORESTS.len(), true)).collect();
        if use_async {
            for s in &stmts {
                db.apply_async([s.as_str()]).unwrap();
            }
            db.flush().unwrap();
        } else {
            db.apply_pipelined(stmts.iter().map(|s| s.as_str())).unwrap();
        }
        prop_assert_eq!(db.last_seq(), total as u64);

        let events = sub.drain();
        let lag = match &events[0] {
            FeedEvent::Lagged(lag) => lag.missed_range.clone(),
            other => return Err(TestCaseError::fail(format!("expected marker first, got {other:?}"))),
        };
        let tail: Vec<u64> = events[1..].iter().filter_map(|e| e.delta()).map(|d| d.seq).collect();
        prop_assert_eq!(
            tail.first().copied(),
            Some(lag.end() + 1),
            "first delta after the marker resumes exactly past the missed range"
        );
        prop_assert_eq!(
            tail,
            (lag.end() + 1..=total as u64).collect::<Vec<u64>>(),
            "the retained tail is gapless through the last commit"
        );
        db.unsubscribe(sub);
    }
}

// ---------------------------------------------------------------------
// Snapshot / event codec hardening (adversarial single-byte corruption)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Flipping any single byte of an encoded store or event frame
    /// must never panic or over-allocate: `decode_*` either rejects
    /// the blob, or accepts it into a value whose canonical
    /// re-encoding is a decode fixpoint (decode → encode → decode is
    /// stable). This is the property the feed's `read_frame` +
    /// `decode_event` path relies on against a corrupted peer.
    #[test]
    fn single_byte_corruption_is_rejected_or_decodes_stably(
        doc_xml in arb_doc(),
        pattern_idx in 0usize..PATTERNS.len(),
        pos_seed in 0usize..65536,
        xor in 1u8..255,
    ) {
        use xivm::core::snapshot::{decode_event, decode_store, encode_event, encode_store};

        let mut db = Database::builder()
            .document(doc_xml.as_str())
            .view("v", PATTERNS[pattern_idx])
            .build()
            .unwrap();
        let h = db.view("v").unwrap();
        let sub = db.subscribe(h);
        db.apply("insert <a><b/><d>5</d></a> into /r").unwrap();
        let event = sub.drain().into_iter().next().unwrap();
        db.unsubscribe(sub);

        // Store blob: corrupt one byte, decode, check the contract.
        let store_bytes = encode_store(db.store(h));
        let mut corrupt = store_bytes.clone();
        let pos = pos_seed % corrupt.len();
        corrupt[pos] ^= xor;
        if let Ok(decoded) = decode_store(&corrupt) {
            let re = encode_store(&decoded);
            let again = decode_store(&re).map_err(|e| {
                TestCaseError::fail(format!("accepted store must re-decode: {e:?}"))
            })?;
            prop_assert_eq!(encode_store(&again), re, "decode→encode must reach a fixpoint");
        }

        // Event frame: same contract on the feed path.
        let event_bytes = encode_event(&event);
        let mut corrupt = event_bytes.clone();
        let pos = pos_seed % corrupt.len();
        corrupt[pos] ^= xor;
        if let Ok(decoded) = decode_event(&corrupt) {
            let re = encode_event(&decoded);
            let again = decode_event(&re).map_err(|e| {
                TestCaseError::fail(format!("accepted event must re-decode: {e:?}"))
            })?;
            prop_assert_eq!(encode_event(&again), re, "decode→encode must reach a fixpoint");
        }
    }
}

// ---------------------------------------------------------------------
// Deferred maintenance ≡ immediate maintenance (random refresh points)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Differential proof for deferred views: the same random script
    /// with refreshes interleaved at random points converges to the
    /// immediately-maintained store, the changefeed stays gapless
    /// (deferred commits carry empty deltas, each refresh commit folds
    /// exactly the batch since the previous refresh), and replaying
    /// the whole stream on a mirror reproduces the store byte for
    /// byte.
    #[test]
    fn deferred_refresh_at_random_points_equals_immediate(
        doc_xml in arb_doc(),
        pattern_idx in 0usize..PATTERNS.len(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..8
        ),
        refresh_mask in prop::collection::vec(prop::bool::ANY, 8..9),
    ) {
        let mut immediate = Database::builder()
            .document(doc_xml.as_str())
            .view("v", PATTERNS[pattern_idx])
            .view("anchor", PATTERNS[0])
            .build()
            .unwrap();
        let mut deferred = Database::builder()
            .document(doc_xml.as_str())
            .view_deferred("v", PATTERNS[pattern_idx])
            .view("anchor", PATTERNS[0])
            .build()
            .unwrap();
        let hv = deferred.view("v").unwrap();
        let sub = deferred.subscribe_with(hv, None, SlowConsumerPolicy::Block);
        let mut mirror = deferred.store(hv).clone();

        for (k, (t, f, is_insert)) in script.iter().enumerate() {
            let stmt = script_statement(*t, *f, *is_insert);
            let a = immediate.apply(stmt.as_str());
            let b = deferred.apply(stmt.as_str());
            prop_assert_eq!(a.is_ok(), b.is_ok(), "both modes accept/reject identically");
            if refresh_mask[k] {
                deferred.refresh(hv).unwrap();
            }
        }
        deferred.refresh(hv).unwrap();
        prop_assert_eq!(deferred.deferred_commits(hv), 0, "nothing left pending after refresh");
        consistent(&deferred)?;
        prop_assert_eq!(
            fingerprint(&deferred, hv),
            fingerprint(&immediate, immediate.view("v").unwrap()),
            "deferred-then-refreshed must equal immediate maintenance"
        );

        // The stream: gapless seqs, refresh events carry the exact
        // folded range, and a replayed mirror lands byte-identical.
        let mut next_fold_start = 1u64;
        for (expect, ev) in (1u64..).zip(sub.drain()) {
            let d = match ev {
                FeedEvent::Delta(d) => d,
                FeedEvent::Lagged(lag) => {
                    return Err(TestCaseError::fail(format!(
                        "unbounded feed never lags: {:?}", lag.missed_range
                    )))
                }
            };
            prop_assert_eq!(d.seq, expect, "deferred commits never leave a hole");
            if let Some(folded) = &d.folded {
                // Empty-PUL commits fold nothing, so a range may start
                // after the previous refresh — but never before it.
                prop_assert!(*folded.start() >= next_fold_start, "fold ranges never overlap");
                prop_assert_eq!(*folded.end() + 1, d.seq, "a refresh folds everything before it");
                next_fold_start = d.seq + 1;
            }
            d.delta.replay(&mut mirror);
        }
        prop_assert!(
            mirror.identical_to(deferred.store(hv)),
            "replaying the stream (folds included) reproduces the store"
        );
        db_cleanup(deferred, sub);
    }
}

fn db_cleanup(mut db: Database, sub: Subscription) {
    db.unsubscribe(sub);
}
