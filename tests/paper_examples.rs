//! End-to-end walkthroughs of the paper's running examples, checked
//! numerically.

use xivm::core::{MaintenanceEngine, SnowcapStrategy, ViewStore};
use xivm::pattern::compile::view_tuples;
use xivm::pattern::parse_pattern;
use xivm::update::statement::parse_statement;
use xivm::xml::parse_document;

/// Figure 2 / Figure 11: the sample document, and Example 4.1's
/// deletion of //c//b from the view //a//b.
#[test]
fn example_4_1() {
    let mut doc = parse_document("<a><c><b/></c><f><b/></f></a>").unwrap();
    let view = parse_pattern("//a{id}//b{id}").unwrap();
    let mut engine = MaintenanceEngine::new(&doc, view.clone(), SnowcapStrategy::MinimalChain);
    assert_eq!(engine.store().len(), 2);
    let stmt = parse_statement("delete //c//b").unwrap();
    let report = engine.apply_statement(&mut doc, &stmt).unwrap();
    assert_eq!(report.tuples_removed, 1, "the tuple (a1, a1.c1.b1) must go");
    assert_eq!(engine.store().len(), 1);
}

/// Figure 12 + Example 4.5: the 8-tuple view //a[//c]//b reduced to
/// tuples 1, 2 and 4 by deleting //a/f/c.
#[test]
fn example_4_5() {
    let mut doc = parse_document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>").unwrap();
    let view = parse_pattern("//a{id}[//c{id}]//b{id}").unwrap();
    let mut engine = MaintenanceEngine::new(&doc, view.clone(), SnowcapStrategy::MinimalChain);
    assert_eq!(engine.store().len(), 8, "Figure 12 lists 8 tuples");
    let stmt = parse_statement("delete /a/f/c").unwrap();
    let report = engine.apply_statement(&mut doc, &stmt).unwrap();
    assert_eq!(report.derivations_removed, 5);
    assert_eq!(engine.store().len(), 3, "tuples 1, 2 and 4 remain");
    // Proposition 4.2 leaves 4 terms; Δ⁻_a = ∅ leaves 3.
    assert_eq!(report.delete_prune.before, 4);
    assert_eq!(report.delete_prune.after_delta_emptiness, 3);
}

/// Example 4.8: derivation counts on //a[//b] under successive
/// deletions.
#[test]
fn example_4_8() {
    let mut doc = parse_document("<a><c><b/></c><f><b/></f></a>").unwrap();
    let view = parse_pattern("//a{id}[//b]").unwrap();
    let mut engine = MaintenanceEngine::new(&doc, view.clone(), SnowcapStrategy::MinimalChain);
    let key = engine.store().sorted_tuples()[0].0.id_key();
    assert_eq!(engine.store().count_of(&key), Some(2), "two b-witnesses");

    let stmt = parse_statement("delete //c//b").unwrap();
    engine.apply_statement(&mut doc, &stmt).unwrap();
    assert_eq!(engine.store().count_of(&key), Some(1), "count drops to 1, tuple stays");

    let stmt = parse_statement("delete //f//b").unwrap();
    engine.apply_statement(&mut doc, &stmt).unwrap();
    assert_eq!(engine.store().count_of(&key), None, "count reaches 0, tuple removed");
}

/// Example 3.1 / 3.2: inserting xml1 into a document, only the three
/// surviving terms contribute; the view gains the right tuples.
#[test]
fn examples_3_1_and_3_2() {
    let mut doc = parse_document("<root><a><b><t/></b></a></root>").unwrap();
    let view = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
    let mut engine = MaintenanceEngine::new(&doc, view.clone(), SnowcapStrategy::MinimalChain);
    assert_eq!(engine.store().len(), 0);
    // u1 inserts xml1 = <a><b/><b><c/></b></a> under //t
    let stmt = parse_statement("insert <a><b/><b><c/></b></a> into //t").unwrap();
    let report = engine.apply_statement(&mut doc, &stmt).unwrap();
    assert_eq!(report.insert_prune.before, 3, "3 of 7 terms survive Prop 3.3");
    // new embeddings: outer a and b with new c, plus all-new chains
    let expected = ViewStore::from_counted(&view, view_tuples(&doc, &view));
    assert!(engine.store().same_content_as(&expected));
    assert!(!engine.store().is_empty());
}

/// Example 3.14: an insertion that only modifies stored content.
#[test]
fn example_3_14() {
    let mut doc = parse_document("<a><b><c><d/></c></b></a>").unwrap();
    let view = parse_pattern("/a{id}/b{id}//c{id,cont}").unwrap();
    let mut engine = MaintenanceEngine::new(&doc, view.clone(), SnowcapStrategy::MinimalChain);
    let stmt = parse_statement("insert <extra>some value</extra> into //d").unwrap();
    let report = engine.apply_statement(&mut doc, &stmt).unwrap();
    assert_eq!(report.tuples_added, 0, "no Δ⁺ relation affects the view");
    assert_eq!(report.tuples_modified, 1, "but c.cont changed");
    let cont = engine.store().sorted_tuples()[0].0.field(2).cont.clone().unwrap();
    assert!(cont.contains("some value"));
}

/// The Figure 3 sample view parses to the Figure 4 pattern and
/// evaluates with the documented semantics.
#[test]
fn figures_3_and_4() {
    let pattern = xivm::pattern::view::parse_view(
        "for $p in doc(\"confs\")//confs//paper, $a in $p/affiliation \
         return <result> <pid>{id($p)}</pid> <aid>{id($a)}</aid> \
         <acont>{$a}</acont> </result>",
    )
    .unwrap();
    assert_eq!(pattern.to_text(), "//confs//paper{id}/affiliation{id,cont}");
    let doc = parse_document(
        "<confs><conf><paper><affiliation>X</affiliation></paper>\
         <paper><affiliation>Y</affiliation><affiliation>Z</affiliation></paper></conf></confs>",
    )
    .unwrap();
    let tuples = view_tuples(&doc, &pattern);
    assert_eq!(tuples.len(), 3, "one row per (paper, affiliation) pair");
    assert_eq!(tuples[0].0.field(1).cont.as_deref(), Some("<affiliation>X</affiliation>"));
}

/// Figures 6 and 7: snowcap sets of the two lattice examples.
#[test]
fn figures_6_and_7_snowcaps() {
    use xivm::core::snowcap::enumerate_snowcaps;
    let v1 = parse_pattern("//a[//b//c]//d").unwrap();
    assert_eq!(enumerate_snowcaps(&v1).len(), 6);
    let v2 = parse_pattern("//a[//b][//c]//d").unwrap();
    assert_eq!(enumerate_snowcaps(&v2).len(), 8);
}

/// Section 5 / Example 5.1-shaped reduction feeding the engine: the
/// reduced PUL must leave the view exactly as the original sequence.
#[test]
fn reduced_pul_preserves_view() {
    let src = "<r><x><w/></x><y><b/></y><z/></r>";
    let view = parse_pattern("//r{id}//b{id}").unwrap();

    let build_pul = |doc: &xivm::xml::Document| {
        let mut ops = Vec::new();
        for s in [
            "insert <b/> into //w",
            "delete //x",
            "insert <b>1</b> into //z",
            "insert <b>2</b> into //z",
        ] {
            ops.extend(xivm::update::compute_pul(doc, &parse_statement(s).unwrap()).ops);
        }
        xivm::update::Pul::new(ops)
    };

    // plain propagation
    let mut d1 = parse_document(src).unwrap();
    let pul = build_pul(&d1);
    let mut e1 = MaintenanceEngine::new(&d1, view.clone(), SnowcapStrategy::MinimalChain);
    e1.propagate_pul(&mut d1, &pul).unwrap();

    // reduced propagation
    let mut d2 = parse_document(src).unwrap();
    let (reduced, trace) = xivm::pulopt::reduce(&pul);
    assert!(trace.ops_after < trace.ops_before);
    let mut e2 = MaintenanceEngine::new(&d2, view.clone(), SnowcapStrategy::MinimalChain);
    e2.propagate_pul(&mut d2, &reduced).unwrap();

    assert_eq!(
        xivm::xml::serialize_document(&d1),
        xivm::xml::serialize_document(&d2),
        "documents agree"
    );
    assert!(e1.store().same_content_as(e2.store()), "views agree");
    // and both agree with recomputation
    let fresh = ViewStore::from_counted(&view, view_tuples(&d1, &view));
    assert!(e1.store().same_content_as(&fresh));
}
