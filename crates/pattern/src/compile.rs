//! Algebraic compilation and evaluation of tree patterns (Figure 4).
//!
//! A pattern `v` over nodes `a1 … ak` is evaluated as
//! `e_v(σ_{a1}(R_{a1}) ⋈ … ⋈ σ_{ak}(R_{ak}))` where the joins follow
//! the pattern's `/` / `//` edges and `e_v` is projection onto the
//! stored columns, duplicate elimination (with derivation counts) and
//! sort. This module builds the canonical-relation scans, the join
//! plan, and exposes [`view_tuples`] — the materialized view content.

use crate::pattern::{NodeTest, PatternNodeId, TreePattern};
use std::sync::Arc;
use xivm_algebra::ops;
use xivm_algebra::{Axis, Column, Field, Plan, Predicate, Relation, Schema, Tuple};
use xivm_xml::{Document, NodeId, NodeKind};

/// Column order of a compiled pattern: pre-order over pattern nodes.
pub fn column_order(pattern: &TreePattern) -> Vec<PatternNodeId> {
    pattern.preorder()
}

/// Position of each pattern node in the compiled schema.
pub fn column_of(pattern: &TreePattern, node: PatternNodeId) -> usize {
    column_order(pattern).iter().position(|&n| n == node).expect("node belongs to pattern")
}

/// The document nodes a pattern node's test ranges over: the canonical
/// relation `R_label` for name tests, all elements for wildcards.
pub fn canonical_node_ids(
    doc: &Document,
    pattern: &TreePattern,
    node: PatternNodeId,
) -> Vec<NodeId> {
    match &pattern.node(node).test {
        NodeTest::Name(name) => doc.canonical_nodes_named(name).to_vec(),
        NodeTest::Wildcard => match doc.root() {
            Some(r) => doc
                .descendants_or_self(r)
                .into_iter()
                .filter(|&n| doc.node(n).kind == NodeKind::Element)
                .collect(),
            None => Vec::new(),
        },
    }
}

/// Builds the one-column relation `σ_{n}(R_n)` for a pattern node from
/// the document's canonical relations, materializing `val` / `cont`
/// exactly when the node's annotations (or value predicate) need them.
pub fn canonical_relation(doc: &Document, pattern: &TreePattern, node: PatternNodeId) -> Relation {
    let ids = canonical_node_ids(doc, pattern, node);
    relation_from_nodes(doc, pattern, node, &ids)
}

/// Builds the node's relation from an explicit node list (used for the
/// Δ tables, whose contents come from the pending update list).
pub fn relation_from_nodes(
    doc: &Document,
    pattern: &TreePattern,
    node: PatternNodeId,
    ids: &[NodeId],
) -> Relation {
    let pnode = pattern.node(node);
    let want_val = pnode.ann.val || pnode.val_pred.is_some();
    let want_cont = pnode.ann.cont;
    let is_root = node == pattern.root();
    let anchored = is_root && pnode.edge == Axis::Child;
    let schema = Schema::new(vec![Column::with(&pnode.name, want_val, want_cont)]);
    let mut rows = Vec::with_capacity(ids.len());
    for &n in ids {
        if !doc.is_alive(n) {
            continue;
        }
        let dewey = doc.dewey(n);
        // A `/`-rooted pattern only matches the document root element.
        if anchored && dewey.depth() != 1 {
            continue;
        }
        let val: Option<Arc<str>> = want_val.then(|| Arc::from(doc.value(n).as_str()));
        if let (Some(pred), Some(v)) = (&pnode.val_pred, &val) {
            if v.as_ref() != pred.as_str() {
                continue;
            }
        }
        let cont: Option<Arc<str>> = want_cont.then(|| Arc::from(doc.content(n).as_str()));
        rows.push(Tuple::new(vec![Field::new(dewey, val, cont)]));
    }
    let mut rel = Relation::with_rows(schema, rows);
    if !rel.is_sorted_by_col(0) {
        rel.sort_by_col(0);
    }
    rel
}

/// Like [`relation_from_nodes`] but *without* the value-predicate
/// filter — used when the caller reasons about predicate truth itself
/// (e.g. bindings that satisfied a predicate *before* an update).
pub fn relation_from_nodes_raw(
    doc: &Document,
    pattern: &TreePattern,
    node: PatternNodeId,
    ids: &[NodeId],
) -> Relation {
    let pnode = pattern.node(node);
    let want_val = pnode.ann.val;
    let want_cont = pnode.ann.cont;
    let schema = Schema::new(vec![Column::with(&pnode.name, want_val, want_cont)]);
    let mut rows = Vec::with_capacity(ids.len());
    for &n in ids {
        if !doc.is_alive(n) {
            continue;
        }
        let val: Option<Arc<str>> = want_val.then(|| Arc::from(doc.value(n).as_str()));
        let cont: Option<Arc<str>> = want_cont.then(|| Arc::from(doc.content(n).as_str()));
        rows.push(Tuple::new(vec![Field::new(doc.dewey(n), val, cont)]));
    }
    let mut rel = Relation::with_rows(schema, rows);
    if !rel.is_sorted_by_col(0) {
        rel.sort_by_col(0);
    }
    rel
}

/// Compiles the pattern into a logical plan joining per-node scans: the
/// algebraic semantics of Figure 4 with products+selections fused into
/// structural joins.
pub fn compile_plan(doc: &Document, pattern: &TreePattern) -> Plan {
    let order = column_order(pattern);
    compile_plan_over(pattern, &order, |n| canonical_relation(doc, pattern, n))
}

/// Same as [`compile_plan`] but with caller-provided leaf relations
/// (the maintenance engine substitutes Δ tables / snowcaps here).
pub fn compile_plan_over<F>(pattern: &TreePattern, order: &[PatternNodeId], mut leaf: F) -> Plan
where
    F: FnMut(PatternNodeId) -> Relation,
{
    // The pre-order guarantees a node's parent appears before it, so a
    // left-deep join tree over `order` always has the upper column
    // available.
    let mut plan = Plan::Scan(leaf(order[0]));
    let mut placed: Vec<PatternNodeId> = vec![order[0]];
    for &node in &order[1..] {
        let parent = pattern.node(node).parent.expect("non-root has a parent");
        let left_col = placed.iter().position(|&p| p == parent).expect("parent placed first");
        let axis = pattern.node(node).edge;
        plan = Plan::StructJoin {
            left: Box::new(plan),
            left_col,
            right: Box::new(Plan::Scan(leaf(node))),
            right_col: 0,
            axis,
        };
        placed.push(node);
    }
    plan
}

/// Predicate σ for value constraints of the pattern, over the full
/// (pre-order) schema. Value predicates are already pushed into the
/// scans by [`canonical_relation`], so this is only needed when leaf
/// relations come from elsewhere.
pub fn value_selection(pattern: &TreePattern, order: &[PatternNodeId]) -> Predicate {
    let mut ps = Vec::new();
    for (i, &n) in order.iter().enumerate() {
        if let Some(v) = &pattern.node(n).val_pred {
            ps.push(Predicate::ValEq(i, Arc::from(v.as_str())));
        }
    }
    Predicate::and(ps)
}

/// Full binding relation of the pattern over the document: one row per
/// embedding, columns in pre-order.
pub fn eval_bindings(doc: &Document, pattern: &TreePattern) -> Relation {
    compile_plan(doc, pattern).eval()
}

/// The materialized view content: bindings projected onto the stored
/// (annotated) columns, duplicate-eliminated with derivation counts,
/// sorted by the IDs of all stored nodes. This is `e_v` of Section 3.1.
pub fn view_tuples(doc: &Document, pattern: &TreePattern) -> Vec<(Tuple, u64)> {
    let bindings = eval_bindings(doc, pattern);
    project_to_view(pattern, &bindings)
}

/// Applies `e_v` (projection + δ with counts + sort) to a binding
/// relation over the full pre-order schema.
pub fn project_to_view(pattern: &TreePattern, bindings: &Relation) -> Vec<(Tuple, u64)> {
    let order = column_order(pattern);
    let stored = pattern.stored_nodes();
    let cols: Vec<usize> = stored
        .iter()
        .map(|&s| order.iter().position(|&n| n == s).expect("stored node in order"))
        .collect();
    let projected = ops::project(bindings, &cols);
    let mut counted = ops::dupelim_count(&projected);
    counted.sort_by(|a, b| {
        for i in 0..a.0.arity() {
            let c = a.0.field(i).id.doc_cmp(&b.0.field(i).id);
            if c.is_ne() {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    counted
}

/// Schema of the *view* (stored columns only).
pub fn view_schema(pattern: &TreePattern) -> Schema {
    Schema::new(
        pattern
            .stored_nodes()
            .iter()
            .map(|&n| {
                let p = pattern.node(n);
                Column::with(&p.name, p.ann.val, p.ann.cont)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_pattern::parse_pattern;
    use xivm_xml::parse_document;

    fn doc() -> Document {
        // Figure 12's document:
        // a { c { b, b }, f { c { b }, b } }
        parse_document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>").unwrap()
    }

    #[test]
    fn figure_12_view_has_eight_bindings() {
        let d = doc();
        let p = parse_pattern("//a{id}[//c{id}]//b{id}").unwrap();
        let bindings = eval_bindings(&d, &p);
        assert_eq!(bindings.len(), 8, "the paper's Figure 12 lists 8 tuples");
    }

    #[test]
    fn derivation_counts_match_embedding_multiplicity() {
        let d = doc();
        // //a[//c]//b with only b stored: each b appears once per
        // (a,c) pair above it.
        let p = parse_pattern("//a[//c]//b{id}").unwrap();
        let view = view_tuples(&d, &p);
        assert_eq!(view.len(), 4);
        let counts: Vec<u64> = view.iter().map(|(_, c)| *c).collect();
        // b1,b2 under a.c have derivations via c1 and c2 (2 each);
        // b3 under a.f.c likewise; b4 under a.f has both c's too.
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn existential_branch_counts() {
        let d = parse_document("<a><c/><b/><f><b/></f></a>").unwrap();
        let p = parse_pattern("//a{id}[//b]").unwrap();
        let view = view_tuples(&d, &p);
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].1, 2, "two b-witnesses for the single a tuple");
    }

    #[test]
    fn value_predicate_filters_scan() {
        let d = parse_document("<r><a>5<b/></a><a>3<b/></a></r>").unwrap();
        let p = parse_pattern("//a[val=\"5\"]//b{id}").unwrap();
        assert_eq!(view_tuples(&d, &p).len(), 1);
        let p2 = parse_pattern("//a[val=\"7\"]//b{id}").unwrap();
        assert!(view_tuples(&d, &p2).is_empty());
    }

    #[test]
    fn child_rooted_pattern_only_matches_document_root() {
        let d = parse_document("<site><site><x/></site><x/></site>").unwrap();
        let anchored = parse_pattern("/site{id}/x{id}").unwrap();
        // only the outer site is the document root; its x child is 1
        assert_eq!(view_tuples(&d, &anchored).len(), 1);
        let floating = parse_pattern("//site{id}/x{id}").unwrap();
        assert_eq!(view_tuples(&d, &floating).len(), 2);
    }

    #[test]
    fn wildcard_matches_all_elements() {
        let d = parse_document("<r><x><item/></x><y><item/></y></r>").unwrap();
        let p = parse_pattern("/r{id}/*/item{id}").unwrap();
        assert_eq!(view_tuples(&d, &p).len(), 2);
    }

    #[test]
    fn attribute_nodes_in_patterns() {
        let d = parse_document("<r><p id=\"1\"/><p/></r>").unwrap();
        let p = parse_pattern("//p{id}[/@id{id,val}]").unwrap();
        let view = view_tuples(&d, &p);
        assert_eq!(view.len(), 1);
        let val = view[0].0.field(1).val.clone().unwrap();
        assert_eq!(val.as_ref(), "1");
    }

    #[test]
    fn cont_annotation_materializes_subtree() {
        let d = parse_document("<r><a><b>x</b></a></r>").unwrap();
        let p = parse_pattern("//a{id,cont}").unwrap();
        let view = view_tuples(&d, &p);
        assert_eq!(view[0].0.field(0).cont.as_deref(), Some("<a><b>x</b></a>"));
    }

    #[test]
    fn view_schema_columns() {
        let p = parse_pattern("//a{id}[//b]//c{id,val}").unwrap();
        let s = view_schema(&p);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.columns[1].name, "c");
        assert!(s.columns[1].stores_val);
    }

    #[test]
    fn column_order_is_preorder() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let order = column_order(&p);
        let names: Vec<_> = order.iter().map(|&n| p.node(n).name.clone()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        assert_eq!(column_of(&p, order[3]), 3);
    }
}
