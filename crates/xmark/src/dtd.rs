//! The XMark auction schema as a [`xivm_dtd`] grammar.
//!
//! [`XMARK_DTD`] transcribes exactly the element hierarchy
//! [`crate::generator`] emits (the auction-site subset of the XMark
//! schema the Appendix A views and updates touch), in the Figure 5
//! rule dialect: one `label -> content-model` rule per line, `?` / `*`
//! for optional / repeated children, `()` for text-only leaves.
//! Attributes (`@id`, `@person`, …) are not part of the grammar — the
//! rule dialect models element content only — so schema-aware passes
//! (the `xivm_analyze` crate) treat `@`-labels as unconstrained.
//!
//! Every document [`crate::generate_sized`] produces conforms to this
//! grammar, which is what licenses the static analyzer's DTD-derived
//! verdicts (deadness, delete-closure, ancestor alphabets) on the
//! XMark workload.

use xivm_dtd::{parse_dtd, Dtd};

/// The XMark auction grammar, rule per line (start symbol: `site`).
pub const XMARK_DTD: &str = "\
# XMark auction site (generator subset), Figure 5 dialect.
site -> regions, people, open_auctions, closed_auctions
regions -> africa, asia, australia, europe, namerica, samerica
africa -> item*
asia -> item*
australia -> item*
europe -> item*
namerica -> item*
samerica -> item*
item -> location, quantity, name, payment, description?, mailbox?
# item descriptions wrap a parlist; auction annotations hold bare text.
description -> parlist |
parlist -> ()
mailbox -> mail*
mail -> from, date, text
from -> ()
date -> ()
text -> ()
people -> person*
person -> name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches
address -> street, city, country, zipcode
street -> ()
city -> ()
country -> ()
zipcode -> ()
profile -> interest*, education?, gender?, business, age?
interest -> ()
watches -> watch*
watch -> ()
open_auctions -> open_auction*
open_auction -> initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval
bidder -> date, time, personref, increase
personref -> ()
itemref -> ()
seller -> ()
annotation -> description
interval -> start, end
closed_auctions -> closed_auction*
closed_auction -> seller, buyer, itemref, price, date, quantity, type, annotation
buyer -> ()
location -> ()
quantity -> ()
name -> ()
payment -> ()
emailaddress -> ()
phone -> ()
homepage -> ()
creditcard -> ()
education -> ()
gender -> ()
business -> ()
age -> ()
initial -> ()
reserve -> ()
current -> ()
privacy -> ()
time -> ()
increase -> ()
price -> ()
start -> ()
end -> ()
type -> ()
";

/// Parses [`XMARK_DTD`]. The text is a compile-time constant checked
/// by this crate's tests, so the parse cannot fail at runtime.
pub fn xmark_dtd() -> Dtd {
    parse_dtd(XMARK_DTD).expect("XMARK_DTD constant parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_dtd::{mandatory_descendants_checked, reachable_label_map};

    #[test]
    fn grammar_parses_with_site_as_start() {
        let dtd = xmark_dtd();
        assert_eq!(dtd.start(), Some("site"));
        assert!(dtd.rule("open_auction").is_some());
    }

    #[test]
    fn no_required_cycles() {
        let report = mandatory_descendants_checked(&xmark_dtd());
        assert!(report.empty_language.is_empty(), "auction grammar has finite models");
        assert!(report.descendants["person"].contains("name"));
        assert!(report.descendants["bidder"].contains("increase"));
    }

    #[test]
    fn every_generated_label_is_reachable_from_site() {
        let dtd = xmark_dtd();
        let reach = reachable_label_map(&dtd);
        let from_site = &reach["site"];
        for label in dtd.element_labels() {
            if label != "site" {
                assert!(from_site.contains(label), "{label} unreachable from site");
            }
        }
    }

    /// The grammar matches what the generator actually emits: every
    /// parent→child element edge in a generated document is licensed
    /// by the corresponding rule's alphabet.
    #[test]
    fn generated_documents_use_only_licensed_edges() {
        let dtd = xmark_dtd();
        let children = xivm_dtd::child_label_map(&dtd);
        let doc = crate::generate_sized(60_000);
        let mut stack = vec![doc.root().expect("generated document has a root")];
        while let Some(n) = stack.pop() {
            let parent_label = doc.label_name(doc.node(n).label).to_owned();
            for &c in doc.children_of(n) {
                let label = doc.label_name(doc.node(c).label);
                if label.starts_with('@') || label.starts_with('#') {
                    continue; // attributes and text are outside the grammar
                }
                let allowed = children.get(&parent_label);
                assert!(
                    allowed.is_some_and(|set| set.contains(label)),
                    "generator emits {label} under {parent_label}, grammar does not license it"
                );
                stack.push(c);
            }
        }
    }
}
