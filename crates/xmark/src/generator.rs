//! Deterministic XMark-like document generator.
//!
//! Emits the element hierarchy of the XMark auction schema that the
//! paper's views and updates exercise — `site / regions / * / item`,
//! `people / person`, `open_auctions / open_auction / bidder`,
//! `closed_auctions / closed_auction` — with the optional-element
//! probabilities (phone?, homepage?, reserve?, …) that give the
//! XPathMark predicate classes non-trivial selectivities. Documents
//! are built directly in the arena store; serialized size tracks the
//! byte target within a few percent (checked by tests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xivm_xml::{Document, NodeId};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Approximate serialized size of the generated document.
    pub target_bytes: usize,
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig { target_bytes: 100 * 1024, seed: 42 }
    }
}

const REGIONS: [&str; 6] = ["africa", "asia", "australia", "europe", "namerica", "samerica"];

const WORDS: [&str; 24] = [
    "gold",
    "vintage",
    "rare",
    "auction",
    "preferred",
    "mint",
    "boxed",
    "classic",
    "large",
    "small",
    "signed",
    "limited",
    "edition",
    "antique",
    "modern",
    "series",
    "original",
    "replica",
    "premium",
    "standard",
    "deluxe",
    "compact",
    "heavy",
    "light",
];

const FIRST_NAMES: [&str; 12] =
    ["Jim", "Ann", "Bob", "Eve", "Ida", "Max", "Ola", "Pia", "Rex", "Sue", "Tom", "Zoe"];

const LAST_NAMES: [&str; 10] =
    ["Smith", "Jones", "Brown", "Diaz", "Kumar", "Lee", "Novak", "Okoro", "Park", "Weiss"];

/// The paper's Q3 filters on increase = "4.50"; keep it common.
const INCREASES: [&str; 6] = ["1.50", "3.00", "4.50", "4.50", "6.00", "7.50"];

/// Calibrated average serialized bytes contributed per entity,
/// including its share of the fixed skeleton.
const BYTES_PER_UNIT: usize = 1500;

/// Generates a document of roughly `cfg.target_bytes` serialized
/// bytes, deterministically from `cfg.seed`.
pub fn generate(cfg: &XmarkConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // One "unit" = one person + one item + one open auction + one
    // closed auction (plus skeleton amortization).
    let units = (cfg.target_bytes / BYTES_PER_UNIT).max(3);
    let n_persons = units;
    let n_items = units;
    let n_open = units.div_ceil(2);
    let n_closed = units.div_ceil(3);

    let mut doc = Document::new();
    let site = doc.set_root("site").expect("fresh document");

    // regions
    let regions = doc.append_element(site, "regions").unwrap();
    let region_nodes: Vec<NodeId> =
        REGIONS.iter().map(|r| doc.append_element(regions, r).unwrap()).collect();
    for i in 0..n_items {
        let region = region_nodes[rng.random_range(0..region_nodes.len())];
        gen_item(&mut doc, &mut rng, region, i);
    }

    // people
    let people = doc.append_element(site, "people").unwrap();
    for i in 0..n_persons {
        gen_person(&mut doc, &mut rng, people, i);
    }

    // open auctions
    let opens = doc.append_element(site, "open_auctions").unwrap();
    for i in 0..n_open {
        gen_open_auction(&mut doc, &mut rng, opens, i, n_persons, n_items);
    }

    // closed auctions
    let closeds = doc.append_element(site, "closed_auctions").unwrap();
    for i in 0..n_closed {
        gen_closed_auction(&mut doc, &mut rng, closeds, i, n_persons, n_items);
    }

    doc
}

/// Shorthand: default seed, explicit size.
pub fn generate_sized(bytes: usize) -> Document {
    generate(&XmarkConfig { target_bytes: bytes, ..Default::default() })
}

fn words(rng: &mut StdRng, n: usize) -> String {
    (0..n).map(|_| WORDS[rng.random_range(0..WORDS.len())]).collect::<Vec<_>>().join(" ")
}

fn text_child(doc: &mut Document, parent: NodeId, tag: &str, text: &str) -> NodeId {
    let e = doc.append_element(parent, tag).unwrap();
    doc.append_text(e, text).unwrap();
    e
}

fn gen_item(doc: &mut Document, rng: &mut StdRng, region: NodeId, idx: usize) {
    let item = doc.append_element(region, "item").unwrap();
    doc.append_attribute(item, "id", &format!("item{idx}")).unwrap();
    text_child(
        doc,
        item,
        "location",
        if rng.random_bool(0.5) { "United States" } else { "Internal" },
    );
    text_child(doc, item, "quantity", &format!("{}", 1 + rng.random_range(0..5)));
    let name = words(rng, 2);
    text_child(doc, item, "name", &name);
    text_child(doc, item, "payment", "Creditcard, Personal Check, Cash");
    if rng.random_bool(0.9) {
        let d = doc.append_element(item, "description").unwrap();
        let n = 6 + rng.random_range(0..10);
        let t = words(rng, n);
        text_child(doc, d, "parlist", &t);
    }
    if rng.random_bool(0.5) {
        let mb = doc.append_element(item, "mailbox").unwrap();
        for _ in 0..rng.random_range(0..3) {
            let mail = doc.append_element(mb, "mail").unwrap();
            text_child(
                doc,
                mail,
                "from",
                &format!("{} {}", pick(rng, &FIRST_NAMES), pick(rng, &LAST_NAMES)),
            );
            text_child(doc, mail, "date", &gen_date(rng));
            text_child(doc, mail, "text", &words(rng, 5));
        }
    }
}

fn gen_person(doc: &mut Document, rng: &mut StdRng, people: NodeId, idx: usize) {
    let p = doc.append_element(people, "person").unwrap();
    doc.append_attribute(p, "id", &format!("person{idx}")).unwrap();
    let name = format!("{} {}", pick(rng, &FIRST_NAMES), pick(rng, &LAST_NAMES));
    text_child(doc, p, "name", &name);
    text_child(doc, p, "emailaddress", &format!("mailto:p{idx}@example.org"));
    if rng.random_bool(0.4) {
        text_child(
            doc,
            p,
            "phone",
            &format!("+1 ({}) {}", rng.random_range(100..999), rng.random_range(1000000..9999999)),
        );
    }
    if rng.random_bool(0.3) {
        let addr = doc.append_element(p, "address").unwrap();
        text_child(
            doc,
            addr,
            "street",
            &format!("{} {} St", rng.random_range(1..99), pick(rng, &WORDS)),
        );
        text_child(doc, addr, "city", pick(rng, &LAST_NAMES));
        text_child(doc, addr, "country", "United States");
        text_child(doc, addr, "zipcode", &format!("{}", rng.random_range(10000..99999)));
    }
    if rng.random_bool(0.3) {
        text_child(doc, p, "homepage", &format!("http://www.example.org/~p{idx}"));
    }
    if rng.random_bool(0.25) {
        text_child(
            doc,
            p,
            "creditcard",
            &format!(
                "{} {} {} {}",
                rng.random_range(1000..9999),
                rng.random_range(1000..9999),
                rng.random_range(1000..9999),
                rng.random_range(1000..9999)
            ),
        );
    }
    if rng.random_bool(0.6) {
        let prof = doc.append_element(p, "profile").unwrap();
        doc.append_attribute(prof, "income", &format!("{}", rng.random_range(20000..99999)))
            .unwrap();
        for _ in 0..rng.random_range(0..3) {
            let i = doc.append_element(prof, "interest").unwrap();
            doc.append_attribute(i, "category", &format!("category{}", rng.random_range(0..20)))
                .unwrap();
        }
        if rng.random_bool(0.5) {
            text_child(doc, prof, "education", "Graduate School");
        }
        if rng.random_bool(0.5) {
            text_child(doc, prof, "gender", if rng.random_bool(0.5) { "male" } else { "female" });
        }
        text_child(doc, prof, "business", if rng.random_bool(0.5) { "Yes" } else { "No" });
        if rng.random_bool(0.4) {
            text_child(doc, prof, "age", &format!("{}", rng.random_range(18..80)));
        }
    }
    let watches = doc.append_element(p, "watches").unwrap();
    for _ in 0..rng.random_range(0..3) {
        let w = doc.append_element(watches, "watch").unwrap();
        doc.append_attribute(
            w,
            "open_auction",
            &format!("open_auction{}", rng.random_range(0..50)),
        )
        .unwrap();
    }
}

fn gen_open_auction(
    doc: &mut Document,
    rng: &mut StdRng,
    opens: NodeId,
    idx: usize,
    n_persons: usize,
    n_items: usize,
) {
    let a = doc.append_element(opens, "open_auction").unwrap();
    doc.append_attribute(a, "id", &format!("open_auction{idx}")).unwrap();
    text_child(doc, a, "initial", INCREASES[rng.random_range(0..INCREASES.len())]);
    if rng.random_bool(0.5) {
        text_child(doc, a, "reserve", &format!("{}.00", rng.random_range(10..500)));
    }
    for _ in 0..rng.random_range(0..4) {
        let b = doc.append_element(a, "bidder").unwrap();
        text_child(doc, b, "date", &gen_date(rng));
        text_child(
            doc,
            b,
            "time",
            &format!(
                "{:02}:{:02}:{:02}",
                rng.random_range(0..24),
                rng.random_range(0..60),
                rng.random_range(0..60)
            ),
        );
        let pr = doc.append_element(b, "personref").unwrap();
        doc.append_attribute(pr, "person", &format!("person{}", rng.random_range(0..n_persons)))
            .unwrap();
        text_child(doc, b, "increase", INCREASES[rng.random_range(0..INCREASES.len())]);
    }
    text_child(doc, a, "current", &format!("{}.00", rng.random_range(10..999)));
    if rng.random_bool(0.3) {
        text_child(doc, a, "privacy", "Yes");
    }
    let ir = doc.append_element(a, "itemref").unwrap();
    doc.append_attribute(ir, "item", &format!("item{}", rng.random_range(0..n_items))).unwrap();
    let seller = doc.append_element(a, "seller").unwrap();
    doc.append_attribute(seller, "person", &format!("person{}", rng.random_range(0..n_persons)))
        .unwrap();
    let ann = doc.append_element(a, "annotation").unwrap();
    let d = doc.append_element(ann, "description").unwrap();
    doc.append_text(d, &words(rng, 4)).unwrap();
    text_child(doc, a, "quantity", "1");
    text_child(doc, a, "type", "Regular");
    let iv = doc.append_element(a, "interval").unwrap();
    text_child(doc, iv, "start", &gen_date(rng));
    text_child(doc, iv, "end", &gen_date(rng));
}

fn gen_closed_auction(
    doc: &mut Document,
    rng: &mut StdRng,
    closeds: NodeId,
    _idx: usize,
    n_persons: usize,
    n_items: usize,
) {
    let a = doc.append_element(closeds, "closed_auction").unwrap();
    let seller = doc.append_element(a, "seller").unwrap();
    doc.append_attribute(seller, "person", &format!("person{}", rng.random_range(0..n_persons)))
        .unwrap();
    let buyer = doc.append_element(a, "buyer").unwrap();
    doc.append_attribute(buyer, "person", &format!("person{}", rng.random_range(0..n_persons)))
        .unwrap();
    let ir = doc.append_element(a, "itemref").unwrap();
    doc.append_attribute(ir, "item", &format!("item{}", rng.random_range(0..n_items))).unwrap();
    text_child(doc, a, "price", &format!("{}.00", rng.random_range(10..999)));
    text_child(doc, a, "date", &gen_date(rng));
    text_child(doc, a, "quantity", "1");
    text_child(doc, a, "type", "Regular");
    let ann = doc.append_element(a, "annotation").unwrap();
    let d = doc.append_element(ann, "description").unwrap();
    doc.append_text(d, &words(rng, 4)).unwrap();
}

fn gen_date(rng: &mut StdRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.random_range(1..13),
        rng.random_range(1..29),
        rng.random_range(1999..2011)
    )
}

fn pick<'a>(rng: &mut StdRng, xs: &[&'a str]) -> &'a str {
    xs[rng.random_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_xml::serialize_document;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&XmarkConfig { target_bytes: 50_000, seed: 7 });
        let b = generate(&XmarkConfig { target_bytes: 50_000, seed: 7 });
        assert_eq!(serialize_document(&a), serialize_document(&b));
        let c = generate(&XmarkConfig { target_bytes: 50_000, seed: 8 });
        assert_ne!(serialize_document(&a), serialize_document(&c));
    }

    #[test]
    fn size_tracks_target() {
        for target in [100 * 1024, 500 * 1024] {
            let d = generate_sized(target);
            let size = serialize_document(&d).len();
            let ratio = size as f64 / target as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "target {target} produced {size} bytes (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn schema_elements_are_present() {
        let d = generate_sized(100 * 1024);
        for label in [
            "site",
            "regions",
            "namerica",
            "item",
            "people",
            "person",
            "name",
            "profile",
            "open_auctions",
            "open_auction",
            "bidder",
            "increase",
            "closed_auctions",
        ] {
            assert!(!d.canonical_nodes_named(label).is_empty(), "expected at least one <{label}>");
        }
        d.check_invariants().unwrap();
    }

    #[test]
    fn optional_elements_have_expected_frequencies() {
        let d = generate_sized(200 * 1024);
        let persons = d.canonical_nodes_named("person").len() as f64;
        let phones = d.canonical_nodes_named("phone").len() as f64;
        let homepages = d.canonical_nodes_named("homepage").len() as f64;
        assert!((0.2..0.6).contains(&(phones / persons)), "phone ratio {}", phones / persons);
        assert!(
            (0.15..0.5).contains(&(homepages / persons)),
            "homepage ratio {}",
            homepages / persons
        );
    }

    #[test]
    fn q3_selectivity_nonzero() {
        // some increase must be exactly 4.50 for Q3 to be non-trivial
        let d = generate_sized(100 * 1024);
        let hits =
            d.canonical_nodes_named("increase").iter().filter(|&&n| d.value(n) == "4.50").count();
        assert!(hits > 0);
    }
}
