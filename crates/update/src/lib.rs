//! The XQuery Update subset of Section 2.3 and its runtime.
//!
//! * [`statement`] — statement-level updates: `delete q`,
//!   `insert xml into q`, `for $x in q insert xml into $x`, and
//!   `insert q1 into q2`;
//! * [`pul`] — pending update lists (`compute-pul`, Section 3.4):
//!   atomic `ins↘` / `del` operations over structural IDs;
//! * [`apply`] — applying a PUL to the document (`apply-insert`),
//!   assigning Dewey IDs to the copied trees as a side effect;
//! * [`delta`] — the Δ⁺ / Δ⁻ tables (Algorithm 2, CD+ and its deletion
//!   counterpart CD−).

pub mod apply;
pub mod delta;
pub mod pul;
pub mod statement;

pub use apply::{apply_pul, ApplyResult, DeletedNode};
pub use delta::{DeltaMinus, DeltaPlus};
pub use pul::{compute_pul, AtomicOp, Pul};
pub use statement::UpdateStatement;
