//! Static independence: the Figure 15 conflict rules lifted from
//! concrete Dewey targets to label shapes.
//!
//! At runtime, `pulopt::find_conflicts` compares every pair of atomic
//! operations by structural identifier: two `InsertInto` the same
//! target (IO), a `Delete` of an insertion target (LO), a `Delete` of
//! a proper ancestor of an insertion target (NLO); deletions never
//! conflict with each other. Here the same three rules are asked of
//! label sets: if no rule can fire for *any* pair of target nodes in
//! any conforming document, the statements are provably independent
//! and the runtime conflict scan can be skipped. Anything else is
//! [`Independence::Unknown`] and falls back to the dynamic check —
//! the lifted rules only ever say "safe", never "conflict".

use crate::shape::StatementShape;

/// Outcome of a static pairwise independence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Independence {
    /// No Figure 15 rule can fire for any target pair: the runtime
    /// conflict scan would provably find nothing.
    Independent,
    /// A rule may fire (or a label set was widened to `Any`): defer to
    /// the dynamic check.
    Unknown,
}

impl Independence {
    pub fn is_independent(self) -> bool {
        matches!(self, Independence::Independent)
    }
}

/// Checks one statement pair against the lifted IO / LO / NLO rules.
pub fn independent(a: &StatementShape, b: &StatementShape) -> Independence {
    if a.dead || b.dead {
        return Independence::Independent;
    }
    // IO: both insert into the same node — possible only if the
    // insertion-point label sets can share a label.
    let io = a.ins_finals.may_intersect(&b.ins_finals);
    // LO: one deletes the exact node the other inserts into.
    let lo = a.del_finals.may_intersect(&b.ins_finals) || b.del_finals.may_intersect(&a.ins_finals);
    // NLO: one deletes a proper ancestor of the other's insertion
    // point (the insertion would land in a doomed subtree).
    let nlo = a.del_finals.may_intersect(&b.ins_ancestors)
        || b.del_finals.may_intersect(&a.ins_ancestors);
    if io || lo || nlo {
        Independence::Unknown
    } else {
        Independence::Independent
    }
}

/// True when *every* pair in the batch is statically independent —
/// the precondition for skipping the runtime pairwise conflict scan.
pub fn pairwise_independent(shapes: &[StatementShape]) -> bool {
    for (i, a) in shapes.iter().enumerate() {
        for b in &shapes[i + 1..] {
            if !independent(a, b).is_independent() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaInfo;
    use xivm_dtd::grammar::figure_5a;
    use xivm_update::UpdateStatement;

    fn shape(s: Option<&SchemaInfo>, text_stmt: &UpdateStatement) -> StatementShape {
        StatementShape::of(s, text_stmt)
    }

    #[test]
    fn deletions_never_conflict() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let d1 = shape(Some(&s), &UpdateStatement::delete("//a").unwrap());
        let d2 = shape(Some(&s), &UpdateStatement::delete("//b").unwrap());
        assert!(independent(&d1, &d2).is_independent());
        assert!(pairwise_independent(&[d1, d2]));
    }

    #[test]
    fn same_label_inserts_may_collide() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let i1 = shape(Some(&s), &UpdateStatement::insert("//b", "<c/>").unwrap());
        let i2 = shape(Some(&s), &UpdateStatement::insert("/d1/a/b", "<c/>").unwrap());
        assert_eq!(independent(&i1, &i2), Independence::Unknown, "IO: same target label b");
        let i3 = shape(Some(&s), &UpdateStatement::insert("/d1/a", "<b/>").unwrap());
        assert!(independent(&i1, &i3).is_independent(), "targets b vs a cannot coincide");
    }

    #[test]
    fn delete_above_insert_is_caught() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let del_a = shape(Some(&s), &UpdateStatement::delete("//a").unwrap());
        let ins_b = shape(Some(&s), &UpdateStatement::insert("//b", "<c/>").unwrap());
        // NLO: a is an ancestor label of any b insertion point.
        assert_eq!(independent(&del_a, &ins_b), Independence::Unknown);
        // LO: delete b == insert-into b.
        let del_b = shape(Some(&s), &UpdateStatement::delete("//b").unwrap());
        assert_eq!(independent(&del_b, &ins_b), Independence::Unknown);
        // Deleting a leaf c cannot shadow an insert into a or b... but
        // inserting into b makes b an insertion point whose ancestors
        // exclude c, and c is no insertion target: independent.
        let del_c = shape(Some(&s), &UpdateStatement::delete("//c").unwrap());
        assert!(independent(&del_c, &ins_b).is_independent());
    }

    #[test]
    fn dead_statements_are_independent_of_everything() {
        let s = SchemaInfo::from_dtd(&figure_5a()).unwrap();
        let dead = shape(Some(&s), &UpdateStatement::insert("/d1/zzz", "<b/>").unwrap());
        let live = shape(Some(&s), &UpdateStatement::insert("//b", "<c/>").unwrap());
        assert!(independent(&dead, &live).is_independent());
    }

    #[test]
    fn widened_shapes_stay_unknown() {
        let ins1 = shape(None, &UpdateStatement::insert("//x", "<a/>").unwrap());
        let ins2 = shape(None, &UpdateStatement::insert("//y", "<b/>").unwrap());
        // Without a schema the label sets are still precise ({x}, {y})
        // so disjoint targets remain provable.
        assert!(independent(&ins1, &ins2).is_independent());
        let del = shape(None, &UpdateStatement::delete("//z").unwrap());
        // But a deletion's ancestor relation to //y is unknowable.
        assert_eq!(independent(&del, &ins2), Independence::Unknown);
    }
}
