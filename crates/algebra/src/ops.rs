//! The remaining operators of the algebra **A**: selection, projection,
//! duplicate elimination (with derivation counts), sort and cartesian
//! product.

use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::HashMap;
use xivm_xml::DeweyId;

/// σ — keeps the tuples satisfying `pred`.
pub fn select(input: &Relation, pred: &Predicate) -> Relation {
    Relation {
        schema: input.schema.clone(),
        rows: input.rows.iter().filter(|t| pred.eval(t)).cloned().collect(),
    }
}

/// π — projects onto the given columns.
pub fn project(input: &Relation, cols: &[usize]) -> Relation {
    Relation {
        schema: input.schema.project(cols),
        rows: input.rows.iter().map(|t| t.project(cols)).collect(),
    }
}

/// δ with derivation counts: collapses duplicate tuples (same ID key)
/// and reports how many input tuples produced each output tuple —
/// exactly the paper's *derivation count* (Section 2.2, last
/// paragraph). Output order is first-occurrence order.
pub fn dupelim_count(input: &Relation) -> Vec<(Tuple, u64)> {
    let mut index: HashMap<Vec<DeweyId>, usize> = HashMap::new();
    let mut out: Vec<(Tuple, u64)> = Vec::new();
    for t in &input.rows {
        let key = t.id_key();
        match index.get(&key) {
            Some(&i) => out[i].1 += 1,
            None => {
                index.insert(key, out.len());
                out.push((t.clone(), 1));
            }
        }
    }
    out
}

/// δ — plain duplicate elimination.
pub fn dupelim(input: &Relation) -> Relation {
    Relation {
        schema: input.schema.clone(),
        rows: dupelim_count(input).into_iter().map(|(t, _)| t).collect(),
    }
}

/// s — sorts by the document order of all ID columns, left to right
/// ("the order dictated by the IDs of the bindings of all nodes").
pub fn sort_all(input: &mut Relation) {
    input.rows.sort_by(|a, b| {
        for i in 0..a.arity() {
            let c = a.field(i).id.doc_cmp(&b.field(i).id);
            if c.is_ne() {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// × — n-ary cartesian product.
pub fn product(inputs: &[&Relation]) -> Relation {
    assert!(!inputs.is_empty(), "product of zero relations");
    let mut schema = inputs[0].schema.clone();
    for r in &inputs[1..] {
        schema = schema.concat(&r.schema);
    }
    let mut rows: Vec<Tuple> = inputs[0].rows.clone();
    for r in &inputs[1..] {
        let mut next = Vec::with_capacity(rows.len() * r.rows.len());
        for a in &rows {
            for b in &r.rows {
                next.push(a.concat(b));
            }
        }
        rows = next;
    }
    Relation { schema, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Axis, Predicate};
    use crate::relation::{Column, Schema};
    use crate::tuple::Field;
    use xivm_xml::{dewey::Step, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    fn one_col(name: &str, ids: Vec<DeweyId>) -> Relation {
        Relation::with_rows(
            Schema::new(vec![Column::id_only(name)]),
            ids.into_iter().map(|i| Tuple::new(vec![Field::id_only(i)])).collect(),
        )
    }

    #[test]
    fn select_structural() {
        let r = product(&[
            &one_col("a", vec![id(&[(0, 1)]), id(&[(0, 5)])]),
            &one_col("b", vec![id(&[(0, 1), (1, 2)])]),
        ]);
        let s = select(&r, &Predicate::Structural { upper: 0, lower: 1, axis: Axis::Child });
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0].field(0).id, id(&[(0, 1)]));
    }

    #[test]
    fn dupelim_counts_duplicates() {
        let a = id(&[(0, 1)]);
        let r = one_col("a", vec![a.clone(), a.clone(), id(&[(0, 2)]), a.clone()]);
        let counted = dupelim_count(&r);
        assert_eq!(counted.len(), 2);
        assert_eq!(counted[0].1, 3);
        assert_eq!(counted[1].1, 1);
        assert_eq!(dupelim(&r).len(), 2);
    }

    #[test]
    fn product_sizes_multiply() {
        let r1 = one_col("a", vec![id(&[(0, 1)]), id(&[(0, 2)])]);
        let r2 = one_col("b", vec![id(&[(1, 1)]), id(&[(1, 2)]), id(&[(1, 3)])]);
        let p = product(&[&r1, &r2]);
        assert_eq!(p.len(), 6);
        assert_eq!(p.schema.arity(), 2);
    }

    #[test]
    fn sort_all_orders_lexicographically() {
        let schema = Schema::new(vec![Column::id_only("a"), Column::id_only("b")]);
        let t = |x: u64, y: u64| {
            Tuple::new(vec![Field::id_only(id(&[(0, x)])), Field::id_only(id(&[(1, y)]))])
        };
        let mut r = Relation::with_rows(schema, vec![t(2, 1), t(1, 2), t(1, 1)]);
        sort_all(&mut r);
        let got: Vec<_> = r
            .rows
            .iter()
            .map(|t| (t.field(0).id.steps()[0].ord, t.field(1).id.steps()[0].ord))
            .collect();
        assert_eq!(got, vec![(1, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn project_keeps_selected_columns() {
        let schema = Schema::new(vec![Column::id_only("a"), Column::id_only("b")]);
        let r = Relation::with_rows(
            schema,
            vec![Tuple::new(vec![Field::id_only(id(&[(0, 1)])), Field::id_only(id(&[(1, 2)]))])],
        );
        let p = project(&r, &[1]);
        assert_eq!(p.schema.columns[0].name, "b");
        assert_eq!(p.rows[0].arity(), 1);
    }
}
