//! Snowcaps (Definition 3.11) and their materialization.
//!
//! A snowcap of a view `v` is a non-empty subtree that contains, with
//! every node, that node's parent — "snow covers mountains from the
//! top downward". Proposition 3.12 identifies the R-parts of surviving
//! insertion terms exactly with snowcaps, and Proposition 3.13 shows
//! snowcaps can be maintained from smaller snowcaps, the lattice
//! leaves and the Δ relations.

use std::collections::BTreeSet;
use xivm_algebra::Relation;
use xivm_pattern::{PatternNodeId, TreePattern};

/// True iff `set` is a snowcap of `pattern`: non-empty and closed
/// under taking parents.
pub fn is_snowcap(pattern: &TreePattern, set: &BTreeSet<PatternNodeId>) -> bool {
    !set.is_empty()
        && set.iter().all(|&n| match pattern.node(n).parent {
            Some(p) => set.contains(&p),
            None => true,
        })
}

/// Enumerates every snowcap of the pattern (including the full
/// pattern itself), in increasing size order.
///
/// The recursive structure: a snowcap contains the root, and for each
/// child subtree independently either skips it entirely or contains a
/// snowcap of it.
pub fn enumerate_snowcaps(pattern: &TreePattern) -> Vec<BTreeSet<PatternNodeId>> {
    fn rec(pattern: &TreePattern, node: PatternNodeId) -> Vec<BTreeSet<PatternNodeId>> {
        let mut result: Vec<BTreeSet<PatternNodeId>> = vec![BTreeSet::from([node])];
        for &c in &pattern.node(node).children {
            let child_caps = rec(pattern, c);
            let mut extended = Vec::with_capacity(result.len() * (child_caps.len() + 1));
            for base in &result {
                extended.push(base.clone()); // skip this child subtree
                for cc in &child_caps {
                    let mut s = base.clone();
                    s.extend(cc.iter().copied());
                    extended.push(s);
                }
            }
            result = extended;
        }
        result
    }
    let mut caps = rec(pattern, pattern.root());
    caps.sort_by_key(|s| (s.len(), s.iter().map(|n| n.0).collect::<Vec<_>>()));
    caps
}

/// The *minimal chain* used in the experiments (Section 6.7,
/// "Snowcaps"): one snowcap per level, built as pre-order prefixes
/// (pre-order guarantees parents precede children, so every prefix is
/// a snowcap), sizes `1 … k−1`. The full pattern (size `k`) is the
/// view itself and is materialized as the view store.
pub fn minimal_chain(pattern: &TreePattern) -> Vec<BTreeSet<PatternNodeId>> {
    let order = pattern.preorder();
    (1..order.len()).map(|len| order[..len].iter().copied().collect()).collect()
}

/// A materialized snowcap: the full-ID binding relation of the
/// sub-pattern induced by `nodes`, kept up to date by the engine.
#[derive(Debug, Clone)]
pub struct MaterializedSnowcap {
    /// The sub-pattern's nodes in pattern pre-order (= column order of
    /// `rel`).
    pub nodes: Vec<PatternNodeId>,
    pub rel: Relation,
}

impl MaterializedSnowcap {
    pub fn node_set(&self) -> BTreeSet<PatternNodeId> {
        self.nodes.iter().copied().collect()
    }

    /// Column index of a pattern node within this snowcap's relation.
    pub fn col_of(&self, n: PatternNodeId) -> Option<usize> {
        self.nodes.iter().position(|&x| x == n)
    }
}

/// Picks the largest materialized snowcap whose nodes are all within
/// `r_part` — the best starting point for evaluating a term.
pub fn best_cover<'a>(
    materialized: &'a [MaterializedSnowcap],
    r_part: &BTreeSet<PatternNodeId>,
) -> Option<&'a MaterializedSnowcap> {
    materialized
        .iter()
        .filter(|m| m.nodes.iter().all(|n| r_part.contains(n)))
        .max_by_key(|m| m.nodes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;

    fn names(pattern: &TreePattern, set: &BTreeSet<PatternNodeId>) -> String {
        set.iter().map(|&n| pattern.node(n).base_label()).collect::<Vec<_>>().join("")
    }

    /// Figure 6: the view //a[//b//c]//d has snowcaps
    /// a, ab, ad, abc, abd, acd?? — no: c requires b. The boxed nodes
    /// in Figure 6 are: a, ab, ad, abc, abd, abcd (and abd etc.).
    #[test]
    fn figure_6_snowcaps() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let caps = enumerate_snowcaps(&p);
        let got: Vec<String> = caps.iter().map(|s| names(&p, s)).collect();
        assert_eq!(got, vec!["a", "ab", "ad", "abc", "abd", "abcd"]);
    }

    /// Figure 7: the star view //a[//b][//c]//d has more snowcaps.
    #[test]
    fn figure_7_snowcaps() {
        let p = parse_pattern("//a[//b][//c]//d").unwrap();
        let caps = enumerate_snowcaps(&p);
        let got: Vec<String> = caps.iter().map(|s| names(&p, s)).collect();
        assert_eq!(got, vec!["a", "ab", "ac", "ad", "abc", "abd", "acd", "abcd"]);
    }

    #[test]
    fn every_enumerated_set_is_a_snowcap() {
        let p = parse_pattern("//a[//b[//x]//c]//d//e").unwrap();
        for s in enumerate_snowcaps(&p) {
            assert!(is_snowcap(&p, &s));
        }
    }

    #[test]
    fn non_snowcaps_are_rejected() {
        let p = parse_pattern("//a//b//c").unwrap();
        let no_root: BTreeSet<_> = [PatternNodeId(1), PatternNodeId(2)].into();
        assert!(!is_snowcap(&p, &no_root));
        assert!(!is_snowcap(&p, &BTreeSet::new()));
        let gap: BTreeSet<_> = [PatternNodeId(0), PatternNodeId(2)].into();
        assert!(!is_snowcap(&p, &gap));
    }

    #[test]
    fn minimal_chain_is_nested_snowcaps() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let chain = minimal_chain(&p);
        assert_eq!(chain.len(), 3); // sizes 1, 2, 3
        for (i, s) in chain.iter().enumerate() {
            assert_eq!(s.len(), i + 1);
            assert!(is_snowcap(&p, s));
            if i > 0 {
                assert!(s.is_superset(&chain[i - 1]));
            }
        }
    }

    #[test]
    fn best_cover_picks_largest_contained() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let mats: Vec<MaterializedSnowcap> = minimal_chain(&p)
            .into_iter()
            .map(|s| MaterializedSnowcap {
                nodes: p.preorder().into_iter().filter(|n| s.contains(n)).collect(),
                rel: Relation::default(),
            })
            .collect();
        // r_part = {a, b, c} (term Δ{d}): best cover is abc
        let r: BTreeSet<_> = [PatternNodeId(0), PatternNodeId(1), PatternNodeId(2)].into();
        assert_eq!(best_cover(&mats, &r).unwrap().nodes.len(), 3);
        // r_part = {a, d}: abc not contained, ab not contained; only a
        let r2: BTreeSet<_> = [PatternNodeId(0), PatternNodeId(3)].into();
        assert_eq!(best_cover(&mats, &r2).unwrap().nodes.len(), 1);
    }

    #[test]
    fn snowcap_count_formula() {
        // chain of n nodes has n snowcaps
        let p = parse_pattern("//a//b//c//d//e").unwrap();
        assert_eq!(enumerate_snowcaps(&p).len(), 5);
        // star with 3 children: root + any subset of children = 8
        let p2 = parse_pattern("//a[//b][//c]//d").unwrap();
        assert_eq!(enumerate_snowcaps(&p2).len(), 8);
    }
}
