//! Async commits & backpressure: submit without waiting for the seal.
//!
//! An ingest thread rarely wants to pay the full maintenance latency
//! per commit. [`Database::apply_async`] validates and enqueues, the
//! service thread seals strictly in order through the pipelined
//! copy-on-write machinery, and the producer holds a [`Ticket`] it can
//! wait on — or not. Consumers pick what happens when they fall
//! behind a bounded feed: `Block` the sealer, take a `Lagged` marker
//! and re-seed from a snapshot, or get disconnected.
//!
//! ```sh
//! cargo run --release --example async_service
//! ```

use std::time::Instant;

use xivm::prelude::*;

fn main() -> Result<(), Error> {
    // A ticker feed: readings stream in, one view mirrors the prices.
    let mut db = Database::builder()
        .document("<market><feed/><log/></market>")
        .view("prices", "//feed{id}/tick{id,val}")
        .workers(2)
        .pipeline(4)
        .build()?;
    let prices = db.view("prices")?;

    // --- Tickets: submission returns before the seal -----------------
    let feed = db.subscribe(prices);
    let submit = Instant::now();
    let mut tickets = Vec::new();
    for i in 0..8 {
        tickets.push(db.apply_async([format!("insert <tick>{i}</tick> into //feed")])?);
    }
    let submitted = submit.elapsed();
    // The promised order is the submission order...
    assert!(tickets.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    // ...and a ticket blocks for exactly one commit's seal.
    let third = tickets[2].wait()?;
    assert_eq!(third.seq, tickets[2].seq);
    // flush() is the everything-submitted barrier; commit_barrier(seq)
    // waits for a specific boundary instead.
    db.flush()?;
    assert_eq!(db.commit_barrier(tickets[7].seq), 8);
    println!(
        "submitted 8 commits in {submitted:?}, sealed through seq {} ({} ticks live)",
        db.last_seq(),
        db.store(prices).len()
    );

    // The feed saw every commit, gapless, exactly as a synchronous
    // loop of apply() would have produced it.
    let events = db.drain(&feed);
    assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), (1..=8).collect::<Vec<_>>());

    // --- DropAndMark: lag is explicit, recovery is a snapshot --------
    // A dashboard that only keeps the freshest state bounds its queue
    // and accepts losing intermediate deltas — but never silently.
    let dashboard = db.subscribe_with(prices, Some(2), SlowConsumerPolicy::DropAndMark);
    for i in 0..5 {
        db.apply(format!("insert <tick>d{i}</tick> into //feed"))?;
    }
    let mut lagged_over = None;
    let mut tail = Vec::new();
    for event in dashboard.drain() {
        match event {
            FeedEvent::Lagged(l) => lagged_over = Some(l.missed_range.clone()),
            FeedEvent::Delta(d) => tail.push(d.seq),
        }
    }
    let missed = lagged_over.expect("3 of 5 events overflowed the capacity-2 queue");
    println!("dashboard lagged over commits {missed:?}, then drained {tail:?}");
    // Re-seed from an MVCC snapshot and replay only what's newer: the
    // mirror converges without ever replaying the missed history.
    let snap = db.snapshot();
    let mut mirror = snap.store(prices).clone();
    db.apply("insert <tick>fresh</tick> into //feed")?;
    for event in dashboard.drain() {
        let d = event.delta().expect("a keeping-up consumer never lags");
        if d.seq > snap.seq() {
            d.delta.replay(&mut mirror);
        }
    }
    assert!(mirror.identical_to(db.store(prices)), "snapshot re-seed converges");
    db.unsubscribe(dashboard);

    // --- Block: backpressure without loss ----------------------------
    // An auditor that must see everything bounds its queue and blocks
    // the *sealer* (never the submitter) when it falls behind.
    let auditor = db.subscribe_with(prices, Some(1), SlowConsumerPolicy::Block);
    let before = db.last_seq();
    let submit = Instant::now();
    let t1 = db.apply_async(["insert <tick>a1</tick> into //feed"])?;
    let t2 = db.apply_async(["insert <tick>a2</tick> into //feed"])?;
    println!("submission stayed non-blocking under backpressure ({:?})", submit.elapsed());
    // The capacity-1 queue fills after the first seal; draining is what
    // lets the service finish the second (drain/pending skip the
    // quiescing path for exactly this reason).
    let mut audited = Vec::new();
    while audited.len() < 2 {
        audited.extend(db.drain(&auditor).into_iter().map(|e| e.seq));
    }
    assert_eq!(audited, vec![before + 1, before + 2]);
    t1.wait()?;
    t2.wait()?;
    db.unsubscribe(auditor);

    // --- Disconnect: fall behind, fall off ---------------------------
    let fragile = db.subscribe_with(prices, Some(1), SlowConsumerPolicy::Disconnect);
    db.apply("insert <tick>x</tick> into //feed")?; // fills the queue
    db.apply("insert <tick>y</tick> into //feed")?; // overflows: torn down
    assert!(fragile.is_disconnected());
    assert!(fragile.drain().is_empty(), "a disconnected feed delivers nothing");
    println!("fragile consumer disconnected at seq {}", db.last_seq());
    db.unsubscribe(fragile);

    // Whatever the interleaving, the database itself is deterministic:
    // same statements, same stores, same commit count as a synchronous
    // replay. (tests/fault_injection.rs proves this holds even when a
    // commit panics mid-seal.)
    println!("final state: {} ticks across {} commits", db.store(prices).len(), db.last_seq());
    Ok(())
}
