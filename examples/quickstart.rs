//! Quickstart: materialize a view over an XML document, run a
//! statement-level update, and watch the view stay in sync without
//! recomputation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xivm::core::{MaintenanceEngine, SnowcapStrategy};
use xivm::pattern::parse_pattern;
use xivm::update::statement::parse_statement;
use xivm::xml::parse_document;

fn main() {
    // 1. A document (the paper's Figure 12).
    let mut doc = parse_document(
        "<a>\
           <c><b/><b/></c>\
           <f><c><b/></c><b/></f>\
         </a>",
    )
    .expect("well-formed XML");

    // 2. A view: //a[//c]//b with IDs stored for a, c and b
    //    (the running example of Section 4).
    let view = parse_pattern("//a{id}[//c{id}]//b{id}").expect("valid pattern");

    // 3. Materialize it, along with the auxiliary snowcap lattice.
    let mut engine = MaintenanceEngine::new(&doc, view, SnowcapStrategy::MinimalChain);
    println!("view has {} tuples (Figure 12 lists 8 embeddings)", engine.store().len());
    for (tuple, count) in engine.store().sorted_tuples() {
        let ids: Vec<String> = tuple
            .fields()
            .iter()
            .map(|f| f.id.display_with(|l| doc.label_name(l).to_owned()))
            .collect();
        println!("  ({}) ×{count}", ids.join(", "));
    }

    // 4. The paper's Example 4.5: delete /a/f/c.
    let stmt = parse_statement("delete /a/f/c").expect("valid statement");
    let report = engine.apply_statement(&mut doc, &stmt).expect("update propagates");
    println!(
        "\nafter `delete /a/f/c`: removed {} derivations in {:.3} ms \
         ({} terms survived pruning out of {})",
        report.derivations_removed,
        report.timings.maintenance_total().as_secs_f64() * 1e3,
        report.delete_prune.after_id_reasoning,
        report.delete_prune.before,
    );
    println!("view now has {} tuples:", engine.store().len());
    for (tuple, count) in engine.store().sorted_tuples() {
        let ids: Vec<String> = tuple
            .fields()
            .iter()
            .map(|f| f.id.display_with(|l| doc.label_name(l).to_owned()))
            .collect();
        println!("  ({}) ×{count}", ids.join(", "));
    }

    // 5. Insertions are just as incremental.
    let stmt = parse_statement("insert <c><b/></c> into /a/f").expect("valid statement");
    let report = engine.apply_statement(&mut doc, &stmt).expect("update propagates");
    println!(
        "\nafter `insert <c><b/></c> into /a/f`: +{} tuples, +{} derivations",
        report.tuples_added, report.derivations_added
    );
    println!("view now has {} tuples", engine.store().len());
}
