//! Fault-injection failpoints for the propagation and commit paths.
//!
//! Compiled only under `cfg(test)` or the `fault-inject` feature, so
//! release builds carry no trace of it. Three points exist, mirroring
//! the places a production deployment can die mid-commit:
//!
//! * [`PREPARE_PANIC`] — panic inside [`MaintenanceEngine::prepare`]
//!   (a worker dies while reading the pre-apply snapshot);
//! * [`FINISH_PANIC`] — panic inside [`MaintenanceEngine::finish`]
//!   (a worker dies while patching its store);
//! * [`SEAL_DELAY`] — sleep before the async service seals a window
//!   (a slow seal, for observing submit-vs-seal latency).
//!
//! Points are **one-shot**: arming sets a bit, the first propagation
//! that reaches the point trips it (exactly one worker, atomically)
//! and the bit clears — so the recovery path that follows runs clean.
//! Arm programmatically with [`arm`] or through the environment
//! (`XIVM_FAULT=prepare_panic,finish_panic,seal_delay`, read once at
//! first use). Tests that arm faults must serialize on [`exclusive`]:
//! the armed set is process-global.
//!
//! `tests/fault_injection.rs` uses these to prove the async service's
//! containment guarantees: a panicking window drains cleanly, the
//! error surfaces on `Ticket::wait()` / `flush()`, the database equals
//! a sequential replay of the committed prefix, and surviving
//! subscriptions stay gapless.
//!
//! [`MaintenanceEngine::prepare`]: crate::engine::MaintenanceEngine::prepare
//! [`MaintenanceEngine::finish`]: crate::engine::MaintenanceEngine::finish

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, Once, PoisonError};

/// Panic at the start of `MaintenanceEngine::prepare`.
pub const PREPARE_PANIC: u32 = 1 << 0;
/// Panic at the start of `MaintenanceEngine::finish`.
pub const FINISH_PANIC: u32 = 1 << 1;
/// Sleep ~40ms before the async service seals a window.
pub const SEAL_DELAY: u32 = 1 << 2;

static ARMED: AtomicU32 = AtomicU32::new(0);
static ENV_INIT: Once = Once::new();
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// How long [`SEAL_DELAY`] sleeps.
pub const SEAL_DELAY_MS: u64 = 40;

fn ensure_env() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("XIVM_FAULT") {
            let mut bits = 0u32;
            for part in spec.split(',') {
                bits |= match part.trim() {
                    "prepare_panic" => PREPARE_PANIC,
                    "finish_panic" => FINISH_PANIC,
                    "seal_delay" => SEAL_DELAY,
                    _ => 0,
                };
            }
            ARMED.fetch_or(bits, Ordering::SeqCst);
        }
    });
}

/// Serializes fault-arming tests: the armed set is process-global, so
/// two tests arming concurrently would see each other's faults. Hold
/// the guard for the whole test (a poisoned guard — a previous test
/// panicked while holding it, which injection tests do by design — is
/// recovered, not propagated).
pub fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms the given failpoint bits (OR-ed into the armed set). Each
/// armed point trips exactly once, then disarms itself.
pub fn arm(bits: u32) {
    ensure_env();
    ARMED.fetch_or(bits, Ordering::SeqCst);
}

/// Clears every armed failpoint (tests call this on their way out so
/// a failed assertion cannot leak an armed fault into another test).
pub fn disarm_all() {
    ensure_env();
    ARMED.store(0, Ordering::SeqCst);
}

/// True while any failpoint is armed.
pub fn any_armed() -> bool {
    ensure_env();
    ARMED.load(Ordering::SeqCst) != 0
}

/// Atomically claims `bit`: returns true for exactly one caller per
/// arming, clearing the bit — several pool workers can race through a
/// point, but only one trips it.
fn trip(bit: u32) -> bool {
    ensure_env();
    if ARMED.load(Ordering::Relaxed) & bit == 0 {
        return false;
    }
    ARMED.fetch_and(!bit, Ordering::SeqCst) & bit != 0
}

/// The failpoint inside `MaintenanceEngine::prepare`.
pub(crate) fn prepare_point() {
    if trip(PREPARE_PANIC) {
        panic!("injected fault: panic in prepare");
    }
}

/// The failpoint inside `MaintenanceEngine::finish`.
pub(crate) fn finish_point() {
    if trip(FINISH_PANIC) {
        panic!("injected fault: panic in finish");
    }
}

/// The failpoint before the async service seals a window.
pub(crate) fn seal_point() {
    if trip(SEAL_DELAY) {
        std::thread::sleep(std::time::Duration::from_millis(SEAL_DELAY_MS));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_points_trip_exactly_once() {
        let _guard = exclusive();
        disarm_all();
        assert!(!trip(PREPARE_PANIC), "disarmed points never trip");
        arm(PREPARE_PANIC | SEAL_DELAY);
        assert!(any_armed());
        assert!(trip(PREPARE_PANIC));
        assert!(!trip(PREPARE_PANIC), "one-shot: the first trip disarms");
        assert!(!trip(FINISH_PANIC), "unarmed bits stay untripped");
        assert!(trip(SEAL_DELAY));
        assert!(!any_armed());
        disarm_all();
    }
}
