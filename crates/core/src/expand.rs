//! Term expansion (Sections 3.1 and 4.1).
//!
//! Distributing the view's joins over `R_a ∪ Δ⁺_a` (insertions) or
//! `R_a \ Δ⁻_a` (deletions) produces `2^k` terms; dropping the pure-R
//! term (the view itself) leaves `2^k − 1` maintenance terms. The
//! update-independent prunings (Propositions 3.3 / 4.2) are applied at
//! view-creation time, which is why [`surviving_terms`] is separate
//! from the full expansion.

use crate::term::Term;
use xivm_pattern::{PatternNodeId, TreePattern};

/// All `2^k − 1` maintenance terms (every non-empty Δ-node subset),
/// before any pruning. Exposed for the pruning ablation and for tests.
pub fn all_terms(pattern: &TreePattern) -> Vec<Term> {
    let nodes: Vec<PatternNodeId> = pattern.preorder();
    let k = nodes.len();
    assert!(k < 31, "term expansion is exponential; view too large");
    let mut out = Vec::with_capacity((1usize << k) - 1);
    for mask in 1u32..(1 << k) {
        let delta = nodes.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &n)| n);
        out.push(Term::from_iter(delta));
    }
    out.sort();
    out
}

/// The terms surviving the update-independent pruning: Δ-sets closed
/// under pattern descendants (Proposition 3.3 for insertions,
/// Proposition 4.2 for deletions — the criterion is the same because
/// both XQuery insertion and deletion move whole subtrees).
///
/// By Proposition 3.12 these are exactly the complements of snowcaps
/// (plus the all-Δ term, whose R-part is the empty snowcap).
pub fn surviving_terms(pattern: &TreePattern) -> Vec<Term> {
    all_terms(pattern).into_iter().filter(|t| t.is_delta_descendant_closed(pattern)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snowcap::enumerate_snowcaps;
    use xivm_pattern::parse_pattern;

    #[test]
    fn expansion_counts() {
        let p = parse_pattern("//a//b//c").unwrap();
        assert_eq!(all_terms(&p).len(), 7, "2^3 - 1");
        // chain: surviving Δ-sets are suffixes {c}, {b,c}, {a,b,c}
        assert_eq!(surviving_terms(&p).len(), 3);
    }

    /// Example 3.2: for v1 = //a//b//c only RaRbΔc, RaΔbΔc and
    /// ΔaΔbΔc survive.
    #[test]
    fn example_3_2_surviving_terms() {
        let p = parse_pattern("//a//b//c").unwrap();
        let surv = surviving_terms(&p);
        let mut sizes: Vec<usize> = surv.iter().map(|t| t.delta_count()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2, 3]);
        // the singleton Δ must be c (node 2)
        let singleton = surv.iter().find(|t| t.delta_count() == 1).unwrap();
        assert!(singleton.is_delta(xivm_pattern::PatternNodeId(2)));
    }

    /// Proposition 3.12: surviving terms ↔ proper snowcaps ∪ {∅}.
    #[test]
    fn surviving_terms_biject_with_snowcaps() {
        for pat in ["//a//b//c", "//a[//b//c]//d", "//a[//b][//c]//d", "//a"] {
            let p = parse_pattern(pat).unwrap();
            let surv = surviving_terms(&p);
            // snowcaps exclude ∅ but include the full pattern; terms
            // exclude the full-R term but include all-Δ. Counts match.
            assert_eq!(surv.len(), enumerate_snowcaps(&p).len(), "{pat}");
            // and each survivor's R-part is a snowcap or empty
            for t in &surv {
                let r = t.r_part(&p);
                if !r.is_empty() {
                    let set = r.iter().copied().collect();
                    assert!(crate::snowcap::is_snowcap(&p, &set));
                }
            }
        }
    }

    #[test]
    fn single_node_view() {
        let p = parse_pattern("//a{id}").unwrap();
        assert_eq!(all_terms(&p).len(), 1);
        assert_eq!(surviving_terms(&p).len(), 1);
    }
}
