//! Figure 24: impact of the view-node annotations on deletion
//! propagation. The fixed predicated update X1_L
//! (`delete /site/people/person[@id="person0"]`) runs against the five
//! Q1 annotation variants (IDs, VC Leaf, VC Root, VC All-but-root,
//! VC All).
//!
//! Expected shape: the closer `val`/`cont` sit to the root, the more
//! expensive PDDT/PDMT become (larger stored text to recompute).

use xivm_bench::{averaged, figure_header, ms, repetitions, row};
use xivm_core::SnowcapStrategy;
use xivm_update::UpdateStatement;
use xivm_xmark::sizes::small_size;
use xivm_xmark::{generate_sized, q1_variant, Q1Variant, X1_L_PRED};

fn main() {
    let size = small_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();
    figure_header(
        "Figure 24",
        &format!(
            "fixed update delete {X1_L_PRED} against Q1 with varying annotations, {} document",
            size.label
        ),
    );
    row(&["variant".to_owned(), "total_maintenance_ms".to_owned()]);
    let stmt = UpdateStatement::delete(X1_L_PRED).expect("predicated path parses");
    for variant in Q1Variant::ALL {
        let pattern = q1_variant(variant);
        let t = averaged(reps, || {
            xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain).timings
        });
        row(&[variant.name().to_owned(), format!("{:.3}", ms(t.maintenance_total()))]);
    }
}
