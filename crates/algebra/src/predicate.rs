//! Selection predicates of the algebra **A** (Section 2.2): value
//! comparisons against constants and the structural comparisons `≺`
//! (parent) and `≺≺` (ancestor) between columns.

use crate::tuple::Tuple;
use std::sync::Arc;

/// Structural axis between two pattern nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Parent-child (`/` edge, `≺` comparison).
    Child,
    /// Ancestor-descendant (`//` edge, `≺≺` comparison).
    Descendant,
}

impl Axis {
    /// Evaluates the axis over two structural IDs (upper vs. lower).
    pub fn holds(self, upper: &xivm_xml::DeweyId, lower: &xivm_xml::DeweyId) -> bool {
        match self {
            Axis::Child => upper.is_parent_of(lower),
            Axis::Descendant => upper.is_ancestor_of(lower),
        }
    }
}

/// A conjunctive selection predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `col.val = constant`.
    ValEq(usize, Arc<str>),
    /// `left ≺ right` or `left ≺≺ right` on the columns' IDs.
    Structural { upper: usize, lower: usize, axis: Axis },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Always true (σ with no condition).
    True,
}

impl Predicate {
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::ValEq(col, c) => t.field(*col).val.as_deref() == Some(c.as_ref()),
            Predicate::Structural { upper, lower, axis } => {
                axis.holds(&t.field(*upper).id, &t.field(*lower).id)
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(t)),
            Predicate::True => true,
        }
    }

    pub fn and(ps: Vec<Predicate>) -> Predicate {
        match ps.len() {
            0 => Predicate::True,
            1 => ps.into_iter().next().unwrap(),
            _ => Predicate::And(ps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Field;
    use xivm_xml::{dewey::Step, DeweyId, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    #[test]
    fn axis_holds() {
        let a = id(&[(0, 1)]);
        let ab = id(&[(0, 1), (1, 2)]);
        let abc = id(&[(0, 1), (1, 2), (2, 3)]);
        assert!(Axis::Child.holds(&a, &ab));
        assert!(!Axis::Child.holds(&a, &abc));
        assert!(Axis::Descendant.holds(&a, &abc));
    }

    #[test]
    fn val_eq_and_structural_predicates() {
        let t = Tuple::new(vec![
            Field::new(id(&[(0, 1)]), Some("5".into()), None),
            Field::id_only(id(&[(0, 1), (1, 2)])),
        ]);
        assert!(Predicate::ValEq(0, "5".into()).eval(&t));
        assert!(!Predicate::ValEq(0, "6".into()).eval(&t));
        assert!(Predicate::Structural { upper: 0, lower: 1, axis: Axis::Child }.eval(&t));
        assert!(Predicate::and(vec![
            Predicate::ValEq(0, "5".into()),
            Predicate::Structural { upper: 0, lower: 1, axis: Axis::Descendant },
        ])
        .eval(&t));
    }

    #[test]
    fn val_eq_on_missing_val_is_false() {
        let t = Tuple::new(vec![Field::id_only(id(&[(0, 1)]))]);
        assert!(!Predicate::ValEq(0, "5".into()).eval(&t));
    }

    #[test]
    fn and_flattening() {
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        let p = Predicate::ValEq(0, "x".into());
        assert_eq!(Predicate::and(vec![p.clone()]), p);
    }
}
