//! Full view recomputation — the baseline the incremental algorithms
//! are compared against in Figures 26–27.

use xivm_core::ViewStore;
use xivm_pattern::compile::view_tuples;
use xivm_pattern::TreePattern;
use xivm_xml::Document;

/// Evaluates the view from scratch over the (already updated)
/// document and builds a fresh store.
pub fn recompute_store(doc: &Document, pattern: &TreePattern) -> ViewStore {
    ViewStore::from_counted(pattern, view_tuples(doc, pattern))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    #[test]
    fn recompute_equals_initial_materialization() {
        let d = parse_document("<a><b/><b><c/></b></a>").unwrap();
        let p = parse_pattern("//a{id}//b{id}").unwrap();
        let s1 = recompute_store(&d, &p);
        let s2 = recompute_store(&d, &p);
        assert!(s1.same_content_as(&s2));
        assert_eq!(s1.len(), 2);
    }
}
