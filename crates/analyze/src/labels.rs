//! Possibly-unknown label sets.
//!
//! Every static verdict reduces to questions about sets of element
//! labels ("which labels can this statement create?", "which labels
//! can be ancestors of its targets?"). [`Labels`] is such a set with
//! an explicit *unknown* top element: [`Labels::Any`] means "could be
//! any label" and makes every may-question answer conservatively.

use std::collections::BTreeSet;
use std::fmt;

/// A set of labels, or the unknown superset of all labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Labels {
    /// Could be any label (wildcard step, unparseable forest, missing
    /// DTD): every may-question about it answers "yes".
    Any,
    /// Exactly these labels are possible.
    Set(BTreeSet<String>),
}

impl Default for Labels {
    fn default() -> Self {
        Labels::none()
    }
}

impl Labels {
    /// The empty set (nothing is possible).
    pub fn none() -> Self {
        Labels::Set(BTreeSet::new())
    }

    /// A singleton set.
    pub fn one(label: impl Into<String>) -> Self {
        let mut set = BTreeSet::new();
        set.insert(label.into());
        Labels::Set(set)
    }

    pub fn is_any(&self) -> bool {
        matches!(self, Labels::Any)
    }

    /// True when the set is provably empty (not [`Labels::Any`]).
    pub fn is_none(&self) -> bool {
        matches!(self, Labels::Set(s) if s.is_empty())
    }

    /// May this set contain `label`? True for [`Labels::Any`].
    pub fn may_contain(&self, label: &str) -> bool {
        match self {
            Labels::Any => true,
            Labels::Set(s) => s.contains(label),
        }
    }

    /// May the two sets share a label? (The conservative question:
    /// `Any` intersects anything except a provably empty set.)
    pub fn may_intersect(&self, other: &Labels) -> bool {
        match (self, other) {
            (Labels::Set(a), Labels::Set(b)) => a.intersection(b).next().is_some(),
            (Labels::Any, Labels::Set(s)) | (Labels::Set(s), Labels::Any) => !s.is_empty(),
            (Labels::Any, Labels::Any) => true,
        }
    }

    /// In-place union; `Any` absorbs everything.
    pub fn extend_with(&mut self, other: &Labels) {
        match (&mut *self, other) {
            (Labels::Any, _) => {}
            (_, Labels::Any) => *self = Labels::Any,
            (Labels::Set(a), Labels::Set(b)) => a.extend(b.iter().cloned()),
        }
    }

    /// Inserts one label (no-op on `Any`).
    pub fn insert(&mut self, label: impl Into<String>) {
        if let Labels::Set(s) = self {
            s.insert(label.into());
        }
    }

    /// Union of two sets.
    pub fn union(mut self, other: &Labels) -> Labels {
        self.extend_with(other);
        self
    }

    /// Conservative intersection: `Any` is the identity (intersecting
    /// with "could be anything" keeps the other side's knowledge).
    pub fn intersection(&self, other: &Labels) -> Labels {
        match (self, other) {
            (Labels::Any, o) => o.clone(),
            (s, Labels::Any) => s.clone(),
            (Labels::Set(a), Labels::Set(b)) => Labels::Set(a.intersection(b).cloned().collect()),
        }
    }

    /// The concrete labels, if known.
    pub fn as_set(&self) -> Option<&BTreeSet<String>> {
        match self {
            Labels::Any => None,
            Labels::Set(s) => Some(s),
        }
    }

    /// True when every known label names an attribute (`@…`) or a text
    /// node (`#text`) — nodes that can have no element children, so
    /// any further child / descendant step is dead. `Any` and the
    /// empty set answer false.
    pub fn all_leaf_kinds(&self) -> bool {
        match self {
            Labels::Any => false,
            Labels::Set(s) => {
                !s.is_empty() && s.iter().all(|l| l.starts_with('@') || l.starts_with('#'))
            }
        }
    }
}

/// A set from an iterator of labels.
impl FromIterator<String> for Labels {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Labels::Set(iter.into_iter().collect())
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Labels::Any => write!(f, "*"),
            Labels::Set(s) => {
                write!(f, "{{")?;
                for (i, l) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_conservative() {
        assert!(Labels::Any.may_intersect(&Labels::one("a")));
        assert!(Labels::Any.may_contain("zzz"));
        assert!(!Labels::Any.may_intersect(&Labels::none()), "empty set intersects nothing");
    }

    #[test]
    fn set_ops() {
        let ab = Labels::from_iter(["a".to_owned(), "b".to_owned()]);
        let bc = Labels::from_iter(["b".to_owned(), "c".to_owned()]);
        let cd = Labels::from_iter(["c".to_owned(), "d".to_owned()]);
        assert!(ab.may_intersect(&bc));
        assert!(!ab.may_intersect(&cd));
        assert_eq!(ab.union(&bc).as_set().unwrap().len(), 3);
    }

    #[test]
    fn leaf_kinds() {
        assert!(Labels::one("@id").all_leaf_kinds());
        assert!(Labels::from_iter(["@id".to_owned(), "#text".to_owned()]).all_leaf_kinds());
        assert!(!Labels::one("a").all_leaf_kinds());
        assert!(!Labels::none().all_leaf_kinds());
        assert!(!Labels::Any.all_leaf_kinds());
    }
}
