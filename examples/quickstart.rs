//! Quickstart: build a [`Database`] over an XML document, run
//! statement-level updates and batched transactions, and watch every
//! view stay in sync without recomputation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xivm::prelude::*;
use xivm::update::builder::insert;

fn main() -> Result<(), Error> {
    // 1. A database owning the paper's Figure 12 document and the
    //    running-example view //a[//c]//b (Section 4), with IDs stored
    //    for a, c and b.
    let mut db = Database::builder()
        .document(
            "<a>\
               <c><b/><b/></c>\
               <f><c><b/></c><b/></f>\
             </a>",
        )
        .view("acb", "//a{id}[//c{id}]//b{id}")
        .build()?;

    let acb = db.view("acb")?;
    println!("view has {} tuples (Figure 12 lists 8 embeddings)", db.store(acb).len());
    print_tuples(&db, acb);

    // 2. The paper's Example 4.5: delete /a/f/c. The returned Commit
    //    carries the view's exact delta alongside the usual report.
    let commit = db.apply("delete /a/f/c")?;
    let report = commit.report(acb);
    println!(
        "\nafter `delete /a/f/c` (commit #{}): removed {} derivations \
         ({} delta entries) in {:.3} ms ({} terms survived pruning out of {})",
        commit.seq,
        report.derivations_removed,
        commit.delta(acb).len(),
        report.timings.maintenance_total().as_secs_f64() * 1e3,
        report.delete_prune.after_id_reasoning,
        report.delete_prune.before,
    );
    println!("view now has {} tuples:", db.store(acb).len());
    print_tuples(&db, acb);

    // 3. Insertions are just as incremental — and statements can be
    //    built as typed values instead of strings.
    let commit = db.apply(insert(element("c").child(element("b"))).into("/a/f"))?;
    let report = commit.report(acb);
    println!(
        "\nafter inserting a typed <c><b/></c> under /a/f: +{} tuples, +{} derivations",
        report.tuples_added, report.derivations_added
    );

    // 4. Statement batches go through the Section 5 PUL optimizer:
    //    one optimized PUL, one shared propagation pass.
    let commit = db
        .transaction()
        .statement("insert <b/> into /a/c")
        .statement("insert <b/> into /a/c")
        .statement("delete /a/c")
        .commit()?;
    println!(
        "\ntransaction of {} statements propagated as {} atomic op(s) \
         (naively {}; O1 fired {}, O3 fired {}, I5 fired {})",
        commit.statements,
        commit.optimized_ops,
        commit.naive_ops,
        commit.reduction.o1_fired,
        commit.reduction.o3_fired,
        commit.reduction.i5_fired,
    );
    println!("view now has {} tuples", db.store(acb).len());
    Ok(())
}

fn print_tuples(db: &Database, view: ViewHandle) {
    // `cursor` iterates the tuples in document order without cloning.
    for (tuple, count) in db.cursor(view) {
        let ids: Vec<String> = tuple
            .fields()
            .iter()
            .map(|f| f.id.display_with(|l| db.document().label_name(l).to_owned()))
            .collect();
        println!("  ({}) ×{count}", ids.join(", "));
    }
}
