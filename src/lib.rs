//! # xivm — incremental maintenance of XML materialized views
//!
//! A reproduction of the EDBT'11 algebraic view-maintenance engine,
//! fronted by one owned façade: [`Database`] holds the document and
//! every named view, and keeps them in sync under XQuery-Update
//! statements without recomputation.
//!
//! ```
//! use xivm::prelude::*;
//! use xivm::update::builder::{element, insert};
//!
//! let mut db = Database::builder()
//!     .document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>")
//!     .view("acb", "//a{id}[//c{id}]//b{id}")
//!     .build()?;
//!
//! let acb = db.view("acb")?;
//! assert_eq!(db.store(acb).len(), 8);
//!
//! // Subscribe before committing: every commit appends this view's
//! // delta (tagged with the commit sequence number) to the feed.
//! let feed = db.subscribe(acb);
//!
//! // One statement: parsed, propagated to every view incrementally.
//! // The returned `Commit` carries the exact per-view delta.
//! let commit = db.apply("delete /a/f/c")?;
//! assert_eq!(commit.seq, 1);
//! assert_eq!(commit.delta(acb).removed.len(), 5);
//! assert_eq!(db.store(acb).len(), 3);
//!
//! // Typed statements: no stringly-typed round-trip.
//! db.apply(insert(element("b")).into("/a/c"))?;
//!
//! // Many statements: batched through the Section 5 PUL optimizer
//! // into one optimized PUL and a single propagation pass.
//! let commit = db
//!     .transaction()
//!     .statement("insert <b/> into /a/c")
//!     .statement("delete /a/c")
//!     .commit()?;
//! assert!(commit.optimized_ops < commit.naive_ops);
//!
//! // Or one commit per statement with consecutive commits pipelined
//! // (finish of commit k overlaps prepare of commit k+1 on the
//! // worker pool) — bit-identical to a loop of `apply`.
//! let commits = db.apply_pipelined(["insert <b/> into /a/f", "delete /a/f"])?;
//! assert_eq!(commits.len(), 2);
//!
//! // The changefeed: one event per commit, gapless sequence numbers,
//! // O(|delta|) per event — never a store clone.
//! let events = db.drain(&feed);
//! assert_eq!(events.len(), 5);
//! assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
//! # Ok::<(), xivm::Error>(())
//! ```
//!
//! Everything the façade returns is typed: views are addressed by
//! [`ViewHandle`], mutations report as [`Commit`]s carrying per-view
//! [`ViewDelta`]s, failures are the workspace-wide [`Error`] enum
//! (`Xml`, `Pattern`, `Statement`, `Conflict`, `UnknownView`, …).
//!
//! Propagation to many views fans out across a *persistent* worker
//! pool: set `.workers(n)` on the builder (or the `XIVM_WORKERS`
//! environment variable) and the per-view phases run on long-lived
//! pool threads (lazy-started, zero spawns in steady state, joined on
//! drop), grouped by the Figure 15 conflict partition. With
//! `.pipeline(depth)` (or `XIVM_PIPELINE`) at 2 or more,
//! [`Database::apply_pipelined`](xivm_core::database::DbInner::apply_pipelined)
//! additionally keeps up to `depth`
//! consecutive commits in flight on copy-on-write document snapshots:
//! the conflict partitions of a window are merged into write-disjoint
//! shards and one job per shard chains `prepare`/`finish` through the
//! window, so commit *k+depth−1* overlaps commit *k* on every
//! disjoint shard. Both are pure scheduling modes — results
//! (including every commit's deltas and subscription streams) are
//! bit-identical to the sequential pass at every worker count and
//! depth, which the differential soak harness (`tests/soak.rs`)
//! verifies (see [`core::parallel`] and [`core::runtime`]).
//! [`Database::snapshot`](xivm_core::database::DbInner::snapshot)
//! freezes the same copy-on-write images into
//! a [`DatabaseSnapshot`] readers can hold — cursors, stores and
//! XPath against a gapless commit boundary — without ever blocking a
//! commit.
//!
//! For a server front-end, `Database::apply_async` decouples
//! submission from sealing: it validates, reserves a sequence number
//! and returns a [`Ticket`] immediately while a background service
//! thread seals commits strictly in order through the same pipelined
//! machinery. Await one commit with [`Ticket::wait`], everything with
//! `Database::flush`, or a specific seq with
//! `Database::commit_barrier`. Subscription queues can be bounded
//! (`.subscription_capacity(n)` / `XIVM_SUB_CAPACITY`) with a
//! per-subscription [`SlowConsumerPolicy`] — block the producer, drop
//! oldest and mark the stream with an exact [`Lagged`] range, or
//! disconnect — so a stalled reader never wedges the commit path
//! (see [`core::service`] and [`core::subscribe`]).
//!
//! ## Migrating from the low-level engine API
//!
//! The plumbing stays public (the bench targets and the paper's
//! figure runners use it), but applications should not need it:
//!
//! | pre-`Database` call | façade equivalent |
//! |---|---|
//! | `parse_document(xml)?` + owning a `Document` | `Database::builder().document(xml)` |
//! | `parse_pattern(p)?` + `MaintenanceEngine::new(&doc, p, strat)` | `.view(name, p)` / `.view_with_strategy(name, p, strat)` |
//! | `MaintenanceEngine::new_cost_based(&doc, p, &profile)` | `.cost_based(profile).view(name, p)` |
//! | `MultiViewEngine::new(&doc, views)` | one builder with several `.view(..)` calls |
//! | `engine.apply_statement(&mut doc, &parse_statement(s)?)?` | `db.apply(s)?` |
//! | `compute_pul` + `pulopt::reduce` + `propagate_pul` | `db.transaction().statement(..)...commit()?` |
//! | `engine.store()` | `db.store(db.view(name)?)` |
//! | `XmlError` for every failure | [`Error`] with per-class variants |
//!
//! ## Migrating from the string-first façade (pre-delta API)
//!
//! | pre-delta call | delta-first equivalent |
//! |---|---|
//! | `db.apply(s)? : Vec<(String, UpdateReport)>` | `db.apply(s)? : Commit` — per-view reports via `commit.report(h)` / `commit.iter()` |
//! | `db.report_for(&reports, h)` | `commit.report(h)` / `commit.report_by_name(name)` |
//! | `tx.commit()? : TransactionReport` | `tx.commit()? : Commit` (same counters, plus `seq` and per-view deltas) |
//! | re-reading `db.store(h)` and diffing after a commit | `commit.delta(h)` — replayable, O(\|Δ\|) |
//! | polling stores for changes | `db.subscribe(h)` + `db.drain(&sub)` |
//! | `db.store(h).sorted_tuples()` (clones every tuple) | `db.cursor(h)` (borrowing, document order) |
//! | `format!("insert {xml} into {path}")` | `insert(element(..)).into(path)` — see [`update::builder`] |
//!
//! ## Static analysis
//!
//! With a DTD on the builder (`.dtd(text)`) and `.analyze(mode)`,
//! [`analyze`] checks the catalog once at `build()` — dead views
//! (unsatisfiable against the schema) become findings that fail
//! `AnalyzeMode::Strict` builds — and derives a static relevance
//! matrix the engine consults on every commit to skip provably
//! unaffected views, plus Figure 15 independence labels that let
//! provably disjoint `transaction().independent()` batches skip the
//! pairwise conflict scan. Both fast paths are pure scheduling:
//! commits are bit-identical with analysis on or off (verified by
//! `tests/analyze_soundness.rs`). `cargo run --example analyze_lint`
//! runs the same checks as a CI gate over the XMark catalog.
//!
//! ## Replication & deferred views
//!
//! [`feed`] replicates a view's changefeed over a socket: a
//! [`FeedServer`] frames every commit's [`DeltaEvent`] with the
//! snapshot codec and a [`ReplicaClient`] in another process
//! maintains a byte-identical copy of the store, resuming after
//! disconnects from its high-water mark (bounded replay window, full
//! snapshot fallback). Views declared with `.view_deferred(..)` (or
//! switched with `set_maintenance`) batch their maintenance out of
//! the commit path entirely: `db.refresh(view)` folds the
//! accumulated PULs in one propagation pass sealed as its own
//! commit, whose event carries the coalesced delta plus the exact
//! [`DeltaEvent::folded`] commit range — feeds, circuits and
//! replicas stay gapless throughout.
//!
//! The member crates remain available under their re-exported names:
//! [`xml`], [`algebra`], [`pattern`], [`update`], [`core`],
//! [`pulopt`], [`dtd`], [`xmark`], [`ivma`], [`analyze`], [`feed`].

pub use xivm_algebra as algebra;
pub use xivm_analyze as analyze;
pub use xivm_circuit as circuit;
pub use xivm_core as core;
pub use xivm_dtd as dtd;
pub use xivm_feed as feed;
pub use xivm_ivma as ivma;
pub use xivm_pattern as pattern;
pub use xivm_pulopt as pulopt;
pub use xivm_update as update;
pub use xivm_xmark as xmark;
pub use xivm_xml as xml;

pub use xivm_core::{
    AnalysisReport, AnalyzeMode, Analyzer, Commit, Database, DatabaseBuilder, DatabaseSnapshot,
    DeltaEvent, Error, FeedEvent, Lagged, MaintenanceMode, ShardedStores, SlowConsumerPolicy,
    Subscription, Ticket, Transaction, ViewDelta, ViewHandle, WeightedChange,
};
pub use xivm_feed::{FeedServer, ReplicaClient};

/// One-stop imports for applications built on the [`Database`] façade.
///
/// ```
/// use xivm::prelude::*;
/// ```
pub mod prelude {
    pub use xivm_circuit::{
        Circuit, CircuitBuilder, CircuitExt, Datum, DerivedStore, Row, RowDelta,
    };
    pub use xivm_core::costmodel::UpdateProfile;
    pub use xivm_core::database::{Database, DatabaseBuilder, Transaction, ViewHandle};
    pub use xivm_core::{
        AnalysisReport, AnalyzeMode, Analyzer, Commit, DatabaseSnapshot, DeltaEvent, Error,
        FeedEvent, Lagged, MaintenanceEngine, MaintenanceMode, MultiViewEngine, ShardedStores,
        SlowConsumerPolicy, SnowcapStrategy, Subscription, Ticket, UpdateReport, ViewDelta,
        ViewStore, WeightedChange,
    };
    pub use xivm_feed::{FeedError, FeedServer, ReplicaClient};
    pub use xivm_pattern::{parse_pattern, TreePattern};
    pub use xivm_pulopt::ConflictPolicy;
    pub use xivm_update::builder::{element, UpdateBuilder};
    pub use xivm_update::statement::parse_statement;
    pub use xivm_update::UpdateStatement;
    pub use xivm_xml::{parse_document, serialize_document, Document};
}
