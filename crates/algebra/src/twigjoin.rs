//! Holistic twig joins.
//!
//! The paper's complexity argument (Proposition 3.15) assumes
//! "efficient join algorithms such as the holistic twig joins \[that\]
//! allow evaluating a term in time proportional to the cumulated size
//! of its inputs". This module provides them: **PathStack**
//! [Bruno et al. 2002] for root-to-leaf chains — one coordinated sweep
//! over all input streams with a stack per query node, never
//! materializing intermediate binary-join results — and a twig
//! evaluator that decomposes a branching pattern into its root-to-leaf
//! paths, PathStacks each, and merge-joins the solutions on the shared
//! branching columns.
//!
//! With Dewey IDs the ancestor test is a prefix test, so the classic
//! region-encoding stack discipline carries over directly.

use crate::predicate::Axis;
use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::HashMap;
use xivm_xml::DeweyId;

/// One level of a chain query: its input stream and the axis
/// connecting it to the level above (ignored for the root).
pub struct ChainLevel<'a> {
    pub input: &'a Relation,
    pub axis: Axis,
}

/// Evaluates a root-to-leaf chain holistically.
///
/// Every input must be a one-column relation sorted in document order.
/// The output has one column per level (root first) and contains every
/// binding of the chain, like the equivalent cascade of binary
/// structural joins — but computed with a single synchronized scan.
pub fn path_stack(levels: &[ChainLevel<'_>]) -> Relation {
    assert!(!levels.is_empty(), "empty chain");
    for l in levels {
        debug_assert_eq!(l.input.schema.arity(), 1, "streams are one-column");
        debug_assert!(l.input.is_sorted_by_col(0), "streams are doc-ordered");
    }
    let mut schema = levels[0].input.schema.clone();
    for l in &levels[1..] {
        schema = schema.concat(&l.input.schema);
    }
    let mut out = Relation::new(schema);

    let k = levels.len();
    // Cursor into each stream.
    let mut cursor = vec![0usize; k];
    // Per-level stack: (row index in the stream, number of entries on
    // the parent stack at push time — the "pointer" of PathStack).
    let mut stacks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); k];

    let head = |lvl: usize, cur: &[usize]| -> Option<&DeweyId> {
        levels[lvl].input.rows.get(cur[lvl]).map(|t| &t.field(0).id)
    };

    loop {
        // q_min: the stream whose next element is first in doc order.
        let mut q_min = None;
        for q in 0..k {
            if let Some(id) = head(q, &cursor) {
                match q_min {
                    None => q_min = Some((q, id.clone())),
                    Some((_, ref best)) if id.doc_cmp(best).is_lt() => {
                        q_min = Some((q, id.clone()))
                    }
                    _ => {}
                }
            }
        }
        let Some((q, next)) = q_min else { break };

        // Pop every stack entry that cannot be an ancestor of anything
        // at or after `next` (its subtree closed before `next`).
        for (lvl, stack) in stacks.iter_mut().enumerate() {
            while let Some(&(row, _)) = stack.last() {
                let id = &levels[lvl].input.rows[row].field(0).id;
                if id.is_ancestor_or_self_of(&next) {
                    break;
                }
                stack.pop();
            }
        }

        // Push onto St_q with a pointer to the current parent stack.
        let parent_len = if q == 0 { 0 } else { stacks[q - 1].len() };
        // An element is only useful if its whole ancestor chain is
        // represented (for q == 0 it always is).
        if q == 0 || parent_len > 0 {
            stacks[q].push((cursor[q], parent_len));
            if q == k - 1 {
                emit(levels, &stacks, &mut out);
                stacks[q].pop(); // leaf entries never stay on the stack
            }
        }
        cursor[q] += 1;
    }
    out
}

/// Expands every root-to-leaf combination ending at the just-pushed
/// leaf entry, checking parent-child axes during expansion.
fn emit(levels: &[ChainLevel<'_>], stacks: &[Vec<(usize, usize)>], out: &mut Relation) {
    let k = levels.len();
    let (leaf_row, leaf_ptr) = *stacks[k - 1].last().expect("leaf was pushed");
    // rows[i] = candidate row indices at level i, bounded by pointers
    let mut chain: Vec<usize> = vec![0; k];
    chain[k - 1] = leaf_row;
    expand(levels, stacks, k - 1, leaf_ptr, &mut chain, out);
}

fn expand(
    levels: &[ChainLevel<'_>],
    stacks: &[Vec<(usize, usize)>],
    lvl: usize,
    parent_limit: usize,
    chain: &mut Vec<usize>,
    out: &mut Relation,
) {
    if lvl == 0 {
        let tuple: Tuple = {
            let mut t = levels[0].input.rows[chain[0]].clone();
            for (i, l) in levels.iter().enumerate().skip(1) {
                t = t.concat(&l.input.rows[chain[i]]);
            }
            t
        };
        out.rows.push(tuple);
        return;
    }
    let lower_id = levels[lvl].input.rows[chain[lvl]].field(0).id.clone();
    for &(row, ptr) in &stacks[lvl - 1][..parent_limit] {
        let upper_id = &levels[lvl - 1].input.rows[row].field(0).id;
        let ok = match levels[lvl].axis {
            Axis::Descendant => upper_id.is_ancestor_of(&lower_id),
            Axis::Child => upper_id.is_parent_of(&lower_id),
        };
        if !ok {
            continue;
        }
        chain[lvl - 1] = row;
        expand(levels, stacks, lvl - 1, ptr, chain, out);
    }
}

/// A twig query node for [`twig_join`]: parent index (None for the
/// root) and the connecting axis.
pub struct TwigNode<'a> {
    pub input: &'a Relation,
    pub parent: Option<usize>,
    pub axis: Axis,
}

/// Evaluates a twig (branching) pattern holistically: decomposes it
/// into root-to-leaf paths, PathStacks each, and hash-joins the path
/// solutions on their shared prefix columns. Output columns follow the
/// `nodes` order.
pub fn twig_join(nodes: &[TwigNode<'_>]) -> Relation {
    assert!(!nodes.is_empty());
    // Collect root-to-leaf paths (node index sequences).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        if let Some(p) = n.parent {
            children[p].push(i);
        }
    }
    let mut paths: Vec<Vec<usize>> = Vec::new();
    let mut stack = vec![vec![0usize]];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("non-empty");
        if children[last].is_empty() {
            paths.push(path);
        } else {
            for &c in &children[last] {
                let mut next = path.clone();
                next.push(c);
                stack.push(next);
            }
        }
    }
    paths.sort();

    // Evaluate each path with PathStack.
    let mut solutions: Vec<(Vec<usize>, Relation)> = paths
        .into_iter()
        .map(|path| {
            let levels: Vec<ChainLevel<'_>> = path
                .iter()
                .map(|&i| ChainLevel { input: nodes[i].input, axis: nodes[i].axis })
                .collect();
            let rel = path_stack(&levels);
            (path, rel)
        })
        .collect();

    // Merge path solutions pairwise on shared columns (the common
    // prefix of node indices).
    let (mut acc_nodes, mut acc) = solutions.remove(0);
    for (path, rel) in solutions {
        let shared: Vec<usize> = path.iter().copied().filter(|i| acc_nodes.contains(i)).collect();
        let acc_cols: Vec<usize> =
            shared.iter().map(|i| acc_nodes.iter().position(|a| a == i).expect("shared")).collect();
        let rel_cols: Vec<usize> =
            shared.iter().map(|i| path.iter().position(|a| a == i).expect("shared")).collect();
        // hash join on shared column IDs
        let mut index: HashMap<Vec<DeweyId>, Vec<usize>> = HashMap::new();
        for (r, t) in rel.rows.iter().enumerate() {
            let key: Vec<DeweyId> = rel_cols.iter().map(|&c| t.field(c).id.clone()).collect();
            index.entry(key).or_default().push(r);
        }
        let new_cols: Vec<usize> = (0..path.len()).filter(|c| !rel_cols.contains(c)).collect();
        let mut schema = acc.schema.clone();
        for &c in &new_cols {
            schema = schema.concat(&rel.schema.project(&[c]));
        }
        let mut joined = Relation::new(schema);
        for t in &acc.rows {
            let key: Vec<DeweyId> = acc_cols.iter().map(|&c| t.field(c).id.clone()).collect();
            if let Some(matches) = index.get(&key) {
                for &r in matches {
                    let mut row = t.clone();
                    for &c in &new_cols {
                        row = row.concat(&rel.rows[r].project(&[c]));
                    }
                    joined.rows.push(row);
                }
            }
        }
        for &c in &new_cols {
            acc_nodes.push(path[c]);
        }
        acc = joined;
    }

    // Reorder columns to the caller's node order.
    let cols: Vec<usize> = (0..nodes.len())
        .map(|i| acc_nodes.iter().position(|&a| a == i).expect("all nodes joined"))
        .collect();
    if cols.iter().enumerate().all(|(i, &c)| i == c) {
        acc
    } else {
        crate::ops::project(&acc, &cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Column, Schema};
    use crate::structjoin::structural_join;
    use crate::tuple::Field;
    use xivm_xml::{dewey::Step, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    fn rel(name: &str, ids: Vec<DeweyId>) -> Relation {
        let mut r = Relation::with_rows(
            Schema::new(vec![Column::id_only(name)]),
            ids.into_iter().map(|i| Tuple::new(vec![Field::id_only(i)])).collect(),
        );
        r.sort_by_col(0);
        r
    }

    /// Binary-join reference for a chain.
    fn chain_by_binary_joins(levels: &[ChainLevel<'_>]) -> Relation {
        let mut acc = levels[0].input.clone();
        for (i, l) in levels.iter().enumerate().skip(1) {
            acc.sort_by_col(i - 1);
            acc = structural_join(&acc, i - 1, l.input, 0, l.axis);
        }
        acc
    }

    fn sorted_rows(mut r: Relation) -> Vec<Tuple> {
        crate::ops::sort_all(&mut r);
        r.rows
    }

    fn random_ids(seed: &mut u64, n: usize, max_depth: usize) -> Vec<DeweyId> {
        let next = move |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        let mut out = Vec::new();
        for _ in 0..n {
            let depth = 1 + (next(seed) as usize) % max_depth;
            let steps: Vec<(u32, u64)> =
                (0..depth).map(|d| (d as u32, 1 + next(seed) % 4)).collect();
            out.push(id(&steps));
        }
        out.sort_by(|a, b| a.doc_cmp(b));
        out.dedup();
        out
    }

    #[test]
    fn path_stack_matches_binary_joins_on_random_chains() {
        let mut seed = 0xc0ffee;
        for trial in 0..25 {
            let a = rel("a", random_ids(&mut seed, 12, 2));
            let b = rel("b", random_ids(&mut seed, 16, 4));
            let c = rel("c", random_ids(&mut seed, 16, 6));
            for axis2 in [Axis::Descendant, Axis::Child] {
                let levels = [
                    ChainLevel { input: &a, axis: Axis::Descendant },
                    ChainLevel { input: &b, axis: Axis::Descendant },
                    ChainLevel { input: &c, axis: axis2 },
                ];
                let holistic = sorted_rows(path_stack(&levels));
                let binary = sorted_rows(chain_by_binary_joins(&levels));
                assert_eq!(holistic, binary, "trial {trial} axis {axis2:?}");
            }
        }
    }

    #[test]
    fn path_stack_single_level_is_identity() {
        let a = rel("a", vec![id(&[(0, 1)]), id(&[(0, 2)])]);
        let out = path_stack(&[ChainLevel { input: &a, axis: Axis::Descendant }]);
        assert_eq!(out.rows, a.rows);
    }

    #[test]
    fn path_stack_nested_ancestors_multiply() {
        // a1 ≺≺ a2 ≺≺ b : both a's pair with b
        let a = rel("a", vec![id(&[(0, 1)]), id(&[(0, 1), (0, 2)])]);
        let b = rel("b", vec![id(&[(0, 1), (0, 2), (1, 3)])]);
        let out = path_stack(&[
            ChainLevel { input: &a, axis: Axis::Descendant },
            ChainLevel { input: &b, axis: Axis::Descendant },
        ]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn twig_join_matches_pairwise_plan() {
        // pattern a[//b]//c over a small forest
        let mut seed = 0xabcdef;
        for trial in 0..25 {
            let a = rel("a", random_ids(&mut seed, 10, 2));
            let b = rel("b", random_ids(&mut seed, 14, 5));
            let c = rel("c", random_ids(&mut seed, 14, 5));
            let twig = twig_join(&[
                TwigNode { input: &a, parent: None, axis: Axis::Descendant },
                TwigNode { input: &b, parent: Some(0), axis: Axis::Descendant },
                TwigNode { input: &c, parent: Some(0), axis: Axis::Descendant },
            ]);
            // reference: (a ⋈ b) ⋈ c on column 0
            let mut ab = structural_join(&a, 0, &b, 0, Axis::Descendant);
            ab.sort_by_col(0);
            let abc = structural_join(&ab, 0, &c, 0, Axis::Descendant);
            assert_eq!(sorted_rows(twig), sorted_rows(abc), "trial {trial}");
        }
    }

    #[test]
    fn twig_join_deep_branching() {
        // a//b[//d]//c-like: branch below the second level
        let a = rel("a", vec![id(&[(0, 1)])]);
        let b = rel("b", vec![id(&[(0, 1), (1, 2)])]);
        let c = rel("c", vec![id(&[(0, 1), (1, 2), (2, 3)]), id(&[(0, 1), (1, 2), (2, 4)])]);
        let d = rel("d", vec![id(&[(0, 1), (1, 2), (3, 9)])]);
        let out = twig_join(&[
            TwigNode { input: &a, parent: None, axis: Axis::Descendant },
            TwigNode { input: &b, parent: Some(0), axis: Axis::Child },
            TwigNode { input: &c, parent: Some(1), axis: Axis::Descendant },
            TwigNode { input: &d, parent: Some(1), axis: Axis::Descendant },
        ]);
        assert_eq!(out.len(), 2, "two c's × one d under the same (a, b)");
        assert_eq!(out.schema.arity(), 4);
    }

    #[test]
    fn empty_stream_yields_empty_result() {
        let a = rel("a", vec![id(&[(0, 1)])]);
        let empty = rel("b", vec![]);
        let out = path_stack(&[
            ChainLevel { input: &a, axis: Axis::Descendant },
            ChainLevel { input: &empty, axis: Axis::Descendant },
        ]);
        assert!(out.is_empty());
    }
}
