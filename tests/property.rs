//! Property-based tests over random documents, views and updates.

use proptest::prelude::*;
use xivm::core::{MaintenanceEngine, SnowcapStrategy, ViewStore};
use xivm::pattern::compile::view_tuples;
use xivm::pattern::parse_pattern;
use xivm::update::UpdateStatement;
use xivm::xml::dewey::Step;
use xivm::xml::{parse_document, DeweyId, LabelId};

// ---------------------------------------------------------------------
// Random document generation (small alphabets so patterns hit)
// ---------------------------------------------------------------------

fn arb_tree(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("<b/>".to_owned()),
        Just("<c/>".to_owned()),
        Just("<d>5</d>".to_owned()),
        Just("x".to_owned()),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, kids)| {
                if kids.is_empty() {
                    format!("<{tag}/>")
                } else {
                    format!("<{tag}>{}</{tag}>", kids.join(""))
                }
            })
    })
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_tree(3), 1..5).prop_map(|kids| format!("<r>{}</r>", kids.join("")))
}

const PATTERNS: [&str; 6] = [
    "//a{id}//b{id}",
    "//a{id}[//c{id}]//b{id}",
    "//a{id}//b{id}//c{id}",
    "//r{id}//d{id,val}",
    "//a{id}[//d[val=\"5\"]]//b{id}",
    "//a{id,cont}[//b]",
];

const TARGETS: [&str; 4] = ["//a", "//b", "//a//c", "//d"];
const FORESTS: [&str; 4] = ["<b/>", "<a><b/><c/></a>", "<c><b/></c>", "<d>5</d>"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The central invariant: incrementally maintained view ==
    /// from-scratch evaluation, for random docs and update sequences.
    #[test]
    fn engine_equals_recompute(
        doc_xml in arb_doc(),
        pattern_idx in 0usize..PATTERNS.len(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..4
        ),
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            SnowcapStrategy::MinimalChain,
            SnowcapStrategy::AllSnowcaps,
            SnowcapStrategy::LeavesOnly,
        ][strategy_idx];
        let mut doc = parse_document(&doc_xml).unwrap();
        let pattern = parse_pattern(PATTERNS[pattern_idx]).unwrap();
        let mut engine = MaintenanceEngine::new(&doc, pattern.clone(), strategy);
        for (t, f, is_insert) in script {
            let stmt = if is_insert {
                UpdateStatement::insert(TARGETS[t], FORESTS[f]).unwrap()
            } else {
                UpdateStatement::delete(TARGETS[t]).unwrap()
            };
            engine.apply_statement(&mut doc, &stmt).unwrap();
            let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
            prop_assert!(
                engine.store().same_content_as(&expected),
                "doc={doc_xml} pattern={} stmt={stmt:?}\n{}",
                PATTERNS[pattern_idx],
                engine.store().diff_description(&expected),
            );
            doc.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Algebraic evaluation == embedding semantics on random documents.
    #[test]
    fn algebra_equals_embeddings(doc_xml in arb_doc(), pattern_idx in 0usize..PATTERNS.len()) {
        let doc = parse_document(&doc_xml).unwrap();
        let pattern = parse_pattern(PATTERNS[pattern_idx]).unwrap();
        let algebraic: Vec<(Vec<DeweyId>, u64)> = view_tuples(&doc, &pattern)
            .into_iter()
            .map(|(t, c)| (t.id_key(), c))
            .collect();
        let by_embedding = xivm::pattern::embed::view_tuples_by_embedding(&doc, &pattern);
        prop_assert_eq!(algebraic, by_embedding);
    }

    /// Dewey encode/decode roundtrip on arbitrary step sequences.
    #[test]
    fn dewey_roundtrip(steps in prop::collection::vec((0u32..500, 1u64..u64::MAX / 2), 0..12)) {
        let id = DeweyId::from_steps(
            steps.into_iter().map(|(l, o)| Step::new(LabelId(l), o)).collect(),
        );
        let decoded = DeweyId::decode(&id.encode());
        prop_assert_eq!(decoded, Some(id));
    }

    /// Document order is a total order consistent with the ancestor
    /// relation.
    #[test]
    fn dewey_order_laws(
        a in prop::collection::vec((0u32..4, 1u64..6), 1..5),
        b in prop::collection::vec((0u32..4, 1u64..6), 1..5),
    ) {
        let x = DeweyId::from_steps(a.into_iter().map(|(l, o)| Step::new(LabelId(l), o)).collect());
        let y = DeweyId::from_steps(b.into_iter().map(|(l, o)| Step::new(LabelId(l), o)).collect());
        // antisymmetry (over ordinal paths: labels don't affect order)
        if x.doc_cmp(&y).is_eq() && y.doc_cmp(&x).is_eq() {
            // same ordinal path: ancestor of each other only if equal length
            prop_assert_eq!(x.depth(), y.depth());
        }
        // ancestors precede descendants
        if x.is_ancestor_of(&y) {
            prop_assert!(x.doc_cmp(&y).is_lt());
            prop_assert!(!y.is_ancestor_of(&x));
        }
    }

    /// PUL reduction preserves the final document.
    #[test]
    fn reduction_is_semantics_preserving(
        doc_xml in arb_doc(),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..5
        ),
    ) {
        let d0 = parse_document(&doc_xml).unwrap();
        let mut ops = Vec::new();
        for (t, f, is_insert) in script {
            let stmt = if is_insert {
                UpdateStatement::insert(TARGETS[t], FORESTS[f]).unwrap()
            } else {
                UpdateStatement::delete(TARGETS[t]).unwrap()
            };
            ops.extend(xivm::update::compute_pul(&d0, &stmt).ops);
        }
        let pul = xivm::update::Pul::new(ops);
        let (reduced, trace) = xivm::pulopt::reduce(&pul);
        prop_assert!(trace.ops_after <= trace.ops_before);

        let mut plain = parse_document(&doc_xml).unwrap();
        xivm::update::apply_pul(&mut plain, &pul).unwrap();
        let mut optimized = parse_document(&doc_xml).unwrap();
        xivm::update::apply_pul(&mut optimized, &reduced).unwrap();
        prop_assert_eq!(
            xivm::xml::serialize_document(&plain),
            xivm::xml::serialize_document(&optimized)
        );
    }

    /// View snapshots roundtrip for arbitrary documents and patterns.
    #[test]
    fn snapshot_roundtrip(doc_xml in arb_doc(), pattern_idx in 0usize..PATTERNS.len()) {
        use xivm::core::snapshot::{decode_store, encode_store};
        let doc = parse_document(&doc_xml).unwrap();
        let pattern = parse_pattern(PATTERNS[pattern_idx]).unwrap();
        let store = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
        let back = decode_store(&encode_store(&store)).unwrap();
        prop_assert!(store.same_content_as(&back));
        prop_assert_eq!(store.schema(), back.schema());
    }

    /// Parser/serializer roundtrip stability: serialize(parse(x))
    /// serializes to itself again.
    #[test]
    fn serializer_fixpoint(doc_xml in arb_doc()) {
        let d = parse_document(&doc_xml).unwrap();
        let s1 = xivm::xml::serialize_document(&d);
        let d2 = parse_document(&s1).unwrap();
        prop_assert_eq!(s1, xivm::xml::serialize_document(&d2));
    }
}
