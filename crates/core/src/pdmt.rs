//! PDMT — Propagate Delete by Modifying Tuples (the deletion
//! counterpart of Algorithm 4, run from within Algorithm 6).
//!
//! A deletion strictly inside a stored node's subtree shrinks that
//! node's `val` / `cont` without removing the tuple. A surviving
//! stored node is affected iff it is a *proper ancestor* of a deleted
//! subtree root (if it were the root itself or below it, the tuple
//! would have been deleted by PDDT).

use crate::view_store::{TupleKey, ViewStore};
use std::sync::Arc;
use xivm_pattern::TreePattern;
use xivm_xml::{DeweyForest, DeweyId, Document};

/// Patches `val` / `cont` of surviving affected tuples from the
/// (already updated) document. Returns the keys of the modified tuples
/// (for the commit report's Δ), walking the store in place — no tuple
/// is cloned and no key snapshot is taken.
pub fn propagate_delete_modifications(
    store: &mut ViewStore,
    doc: &Document,
    pattern: &TreePattern,
    deleted_roots: &[DeweyId],
) -> Vec<TupleKey> {
    let cvn = pattern.cvn();
    if cvn.is_empty() || deleted_roots.is_empty() {
        return Vec::new();
    }
    let stored = pattern.stored_nodes();
    let cvn_cols: Vec<(usize, bool, bool)> = cvn
        .iter()
        .filter_map(|&n| {
            stored.iter().position(|&s| s == n).map(|col| {
                let ann = pattern.node(n).ann;
                (col, ann.val, ann.cont)
            })
        })
        .collect();
    let forest = DeweyForest::new(deleted_roots.to_vec());
    let mut modified = Vec::new();
    for (key, tuple) in store.tuples_mut() {
        let mut touched = false;
        for &(col, want_val, want_cont) in &cvn_cols {
            let id = &key[col];
            if !forest.has_proper_descendant_root(id) {
                continue;
            }
            let Some(node) = doc.find_node(id) else { continue };
            let field = tuple.field_mut(col);
            if want_val {
                field.val = Some(Arc::from(doc.value(node).as_str()));
            }
            if want_cont {
                field.cont = Some(Arc::from(doc.content(node).as_str()));
            }
            touched = true;
        }
        if touched {
            modified.push(key.clone());
        }
    }
    modified
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::compile::view_tuples;
    use xivm_pattern::parse_pattern;
    use xivm_update::{apply_pul, compute_pul, UpdateStatement};
    use xivm_xml::parse_document;

    #[test]
    fn content_shrinks_after_inner_deletion() {
        let mut d = parse_document("<a><c><x/><y>keep</y></c></a>").unwrap();
        let p = parse_pattern("//c{id,cont}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        let stmt = UpdateStatement::delete("//x").unwrap();
        let pul = compute_pul(&d, &stmt);
        let roots: Vec<DeweyId> = pul.ops.iter().map(|o| o.target().clone()).collect();
        apply_pul(&mut d, &pul).unwrap();
        let n = propagate_delete_modifications(&mut store, &d, &p, &roots);
        assert_eq!(n.len(), 1);
        let cont = store.sorted_tuples()[0].0.field(0).cont.clone().unwrap();
        assert_eq!(cont.as_ref(), "<c><y>keep</y></c>");
    }

    #[test]
    fn val_shrinks_after_text_subtree_deletion() {
        let mut d = parse_document("<a><w>hello</w><gone>noise</gone></a>").unwrap();
        let p = parse_pattern("//a{id,val}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        let stmt = UpdateStatement::delete("//gone").unwrap();
        let pul = compute_pul(&d, &stmt);
        let roots: Vec<DeweyId> = pul.ops.iter().map(|o| o.target().clone()).collect();
        apply_pul(&mut d, &pul).unwrap();
        propagate_delete_modifications(&mut store, &d, &p, &roots);
        let v = store.sorted_tuples()[0].0.field(0).val.clone().unwrap();
        assert_eq!(v.as_ref(), "hello");
    }

    #[test]
    fn deletion_of_sibling_subtree_is_ignored() {
        let mut d = parse_document("<r><a>x</a><b/></r>").unwrap();
        let p = parse_pattern("//a{id,val}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        let stmt = UpdateStatement::delete("//b").unwrap();
        let pul = compute_pul(&d, &stmt);
        let roots: Vec<DeweyId> = pul.ops.iter().map(|o| o.target().clone()).collect();
        apply_pul(&mut d, &pul).unwrap();
        assert!(propagate_delete_modifications(&mut store, &d, &p, &roots).is_empty());
    }
}
