//! Grammar analyses deriving Δ⁺ constraints.

use crate::grammar::Dtd;
use std::collections::{BTreeSet, HashMap, HashSet};

/// For every element label, the set of element labels that *must*
/// occur somewhere inside any valid subtree rooted at it.
///
/// Non-terminals are spliced transparently (their required symbols are
/// inherited by whoever requires them). Cycles through required
/// positions would make the language empty; they are cut off
/// conservatively.
pub fn mandatory_descendants(dtd: &Dtd) -> HashMap<String, BTreeSet<String>> {
    let mut out = HashMap::new();
    for label in dtd.order.iter() {
        let mut visiting = HashSet::new();
        let set = required_closure(dtd, label, &mut visiting);
        out.insert(label.clone(), set);
    }
    out
}

fn required_closure(dtd: &Dtd, symbol: &str, visiting: &mut HashSet<String>) -> BTreeSet<String> {
    if !visiting.insert(symbol.to_owned()) {
        return BTreeSet::new(); // cycle: cut off
    }
    let mut out = BTreeSet::new();
    if let Some(rx) = dtd.rule(symbol) {
        for req in rx.required_symbols() {
            let sub = required_closure(dtd, &req, visiting);
            if dtd.is_nonterminal(&req) {
                // splice the non-terminal: only its own requirements
                out.extend(sub);
            } else {
                out.insert(req.clone());
                out.extend(sub);
            }
        }
    }
    visiting.remove(symbol);
    out
}

/// Sibling co-occurrence groups: for each element label, the
/// required-symbol sets of repeated groups in its content model.
/// Inserting one member of a group as a child requires inserting the
/// others (Example 3.10).
pub fn cooccurrence_groups(dtd: &Dtd) -> HashMap<String, Vec<BTreeSet<String>>> {
    let mut out = HashMap::new();
    for label in dtd.order.iter() {
        if let Some(rx) = dtd.rule(label) {
            let groups = rx.repeated_groups();
            if !groups.is_empty() {
                out.insert(label.clone(), groups);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{figure_5a, figure_5b};

    /// Example 3.9: in d1, every b must contain a c.
    #[test]
    fn figure_5a_b_requires_c() {
        let m = mandatory_descendants(&figure_5a());
        assert!(m["b"].contains("c"));
        assert!(m["a"].contains("b"), "a → BS → b+ requires b");
        assert!(m["a"].contains("c"), "transitively through b");
        assert!(m["c"].is_empty());
    }

    /// Example 3.10: in d2, a/b/c must be inserted together under d2.
    #[test]
    fn figure_5b_abc_cooccur() {
        let g = cooccurrence_groups(&figure_5b());
        let groups = &g["d2"];
        assert_eq!(groups.len(), 1);
        let expected: BTreeSet<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(groups[0], expected);
    }

    /// In d2, `a`'s content is BS → x | ε: nothing mandatory.
    #[test]
    fn figure_5b_a_has_no_mandatory_children() {
        let m = mandatory_descendants(&figure_5b());
        assert!(m["a"].is_empty());
    }

    #[test]
    fn recursive_rules_terminate() {
        // x → x |  (recursive, nullable): the analysis must not loop.
        let m = mandatory_descendants(&figure_5b());
        assert!(m["x"].is_empty());
    }
}
