//! A small, dependency-free XML parser.
//!
//! Supports the subset the paper's workloads need: elements,
//! attributes, character data with the five predefined entities,
//! comments, processing instructions and doctype declarations (the
//! latter three are skipped). Namespaces, CDATA sections and DTD
//! internal subsets are out of scope (see DESIGN.md §8).

use crate::document::Document;
use crate::error::XmlError;
use crate::node::NodeId;

/// Parses `input` into a fresh [`Document`].
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut doc = Document::new();
    let root = parse_into(&mut doc, None, input)?;
    if root.is_none() {
        return Err(XmlError::NoRoot);
    }
    Ok(doc)
}

/// Parses an XML *forest* and appends each top-level tree as a child of
/// `parent`. Returns the ids of the appended roots. This is the
/// workhorse of `apply-insert` (Section 3.4): the inserted snippet is
/// parsed directly into its new context so the new nodes receive their
/// final Dewey IDs.
pub fn parse_forest_into(
    doc: &mut Document,
    parent: NodeId,
    input: &str,
) -> Result<Vec<NodeId>, XmlError> {
    let mut p = Parser::new(input);
    let mut roots = Vec::new();
    loop {
        p.skip_misc();
        if p.at_end() {
            break;
        }
        if p.peek() == Some('<') {
            roots.push(p.element(doc, Some(parent))?);
        } else {
            // Top-level text inside a forest: attach as a text node.
            let text = p.text()?;
            if !text.trim().is_empty() {
                roots.push(doc.append_text(parent, &text)?);
            }
        }
    }
    Ok(roots)
}

fn parse_into(
    doc: &mut Document,
    parent: Option<NodeId>,
    input: &str,
) -> Result<Option<NodeId>, XmlError> {
    let mut p = Parser::new(input);
    p.skip_misc();
    if p.at_end() {
        return Ok(None);
    }
    let root = p.element(doc, parent)?;
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err("content after document root"));
    }
    Ok(Some(root))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<char> {
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn peek2(&self) -> Option<char> {
        self.bytes.get(self.pos + 1).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, msg: &str) -> XmlError {
        XmlError::Parse { offset: self.pos, message: msg.to_owned() }
    }

    fn expect(&mut self, c: char) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{c}'")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, XML declarations, comments, PIs and doctypes.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.peek() == Some('<') {
                match self.peek2() {
                    Some('?') => {
                        self.skip_until("?>");
                        continue;
                    }
                    Some('!') => {
                        if self.starts_with("<!--") {
                            self.skip_until("-->");
                        } else {
                            self.skip_until(">");
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            break;
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, end: &str) {
        while !self.at_end() && !self.starts_with(end) {
            self.pos += 1;
        }
        self.pos = (self.pos + end.len()).min(self.bytes.len());
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned())
    }

    fn element(&mut self, doc: &mut Document, parent: Option<NodeId>) -> Result<NodeId, XmlError> {
        self.expect('<')?;
        let tag = self.name()?;
        let node = match parent {
            Some(p) => doc.append_element(p, &tag)?,
            None => doc.set_root(&tag)?,
        };
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.pos += 1;
                    self.expect('>')?;
                    return Ok(node);
                }
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let name = self.name()?;
                    self.skip_ws();
                    self.expect('=')?;
                    self.skip_ws();
                    let quote = self.bump().ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != '"' && quote != '\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.at_end() {
                            return Err(self.err("unterminated attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned();
                    self.pos += 1;
                    doc.append_attribute(node, &name, &unescape(&raw))?;
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // content
        loop {
            if self.at_end() {
                return Err(self.err("unterminated element"));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tag {
                    return Err(self.err(&format!("mismatched close tag </{close}> for <{tag}>")));
                }
                self.skip_ws();
                self.expect('>')?;
                return Ok(node);
            }
            if self.starts_with("<!--") {
                self.skip_until("-->");
                continue;
            }
            if self.starts_with("<?") {
                self.skip_until("?>");
                continue;
            }
            if self.peek() == Some('<') {
                self.element(doc, Some(node))?;
            } else {
                let text = self.text()?;
                if !text.trim().is_empty() {
                    doc.append_text(node, &text)?;
                }
            }
        }
    }

    fn text(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '<' {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in text"))?;
        Ok(unescape(raw))
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let (rep, consumed) = if rest.starts_with("&lt;") {
            ("<", 4)
        } else if rest.starts_with("&gt;") {
            (">", 4)
        } else if rest.starts_with("&amp;") {
            ("&", 5)
        } else if rest.starts_with("&quot;") {
            ("\"", 6)
        } else if rest.starts_with("&apos;") {
            ("'", 6)
        } else {
            ("&", 1)
        };
        out.push_str(rep);
        rest = &rest[consumed..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::serialize_document;

    #[test]
    fn parse_simple_document() {
        let d = parse_document("<a><b/><b><c/></b></a>").unwrap();
        let b = d.label_id("b").unwrap();
        assert_eq!(d.canonical_nodes(b).len(), 2);
        d.check_invariants().unwrap();
    }

    #[test]
    fn roundtrip_through_serializer() {
        let src = "<site><people><person id=\"person0\"><name>Jim</name></person></people></site>";
        let d = parse_document(src).unwrap();
        assert_eq!(serialize_document(&d), src);
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let d = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let root = d.root().unwrap();
        assert_eq!(d.children_of(root).len(), 2);
    }

    #[test]
    fn mixed_content_text_is_kept() {
        let d = parse_document("<a>3<b/></a>").unwrap();
        assert_eq!(d.value(d.root().unwrap()), "3");
    }

    #[test]
    fn entities_are_unescaped() {
        let d = parse_document("<a t=\"x&quot;y\">1 &lt; 2 &amp; 3</a>").unwrap();
        let r = d.root().unwrap();
        assert_eq!(d.value(r), "1 < 2 & 3");
        let at = d.children_of(r)[0];
        assert_eq!(d.value(at), "x\"y");
    }

    #[test]
    fn skips_prolog_comments_and_pis() {
        let d = parse_document(
            "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE a><a><?pi data?><!-- in --><b/></a>",
        )
        .unwrap();
        assert_eq!(serialize_document(&d), "<a><b/></a>");
    }

    #[test]
    fn errors_on_mismatched_tags() {
        assert!(matches!(parse_document("<a><b></a></b>"), Err(XmlError::Parse { .. })));
    }

    #[test]
    fn errors_on_trailing_content() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn errors_on_empty_input() {
        assert!(matches!(parse_document("   "), Err(XmlError::NoRoot)));
    }

    #[test]
    fn parse_forest_appends_children() {
        let mut d = parse_document("<a><b/></a>").unwrap();
        let root = d.root().unwrap();
        let roots = parse_forest_into(&mut d, root, "<x/><y><z/></y>").unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(serialize_document(&d), "<a><b/><x/><y><z/></y></a>");
        d.check_invariants().unwrap();
    }

    #[test]
    fn forest_preserves_existing_ids() {
        let mut d = parse_document("<a><b/></a>").unwrap();
        let root = d.root().unwrap();
        let b = d.children_of(root)[0];
        let b_id = d.dewey(b);
        parse_forest_into(&mut d, root, "<c/>").unwrap();
        assert_eq!(d.dewey(b), b_id);
    }

    #[test]
    fn unescape_handles_lone_ampersand() {
        assert_eq!(unescape("a&b"), "a&b");
        assert_eq!(unescape("no entities"), "no entities");
    }
}
