//! Compact dynamic Dewey identifiers.
//!
//! Following the paper (Section 2.1), each node carries a structural ID
//! that is a sequence of steps, one per ancestor, each step holding the
//! ancestor's *label* and its *relative position* among its siblings.
//! The properties the maintenance algorithms rely on are:
//!
//! 1. **structural** — parent / ancestor relationships are decidable by
//!    comparing two IDs (`is_parent_of`, `is_ancestor_of`);
//! 2. **self-describing** — the IDs *and labels* of all ancestors can be
//!    extracted from a node's ID (`label_path`, `ancestors`), which
//!    powers the ID-driven pruning of Propositions 3.8 and 4.7 and the
//!    `PathFilter` physical operator;
//! 3. **update-stable** — no relabeling is ever needed: sibling
//!    ordinals are allocated with gaps (`ORD_STRIDE`) and insertions
//!    between siblings take the midpoint of the gap;
//! 4. **compact** — IDs encode to a variable-length byte string
//!    (`encode` / `decode`).

use crate::label::LabelId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::cmp::Ordering;
use std::fmt;

/// Gap between consecutive sibling ordinals, leaving room for ~20
/// successive midpoint insertions before a gap is exhausted.
pub const ORD_STRIDE: u64 = 1 << 20;

/// One step of a Dewey ID: the label of an ancestor (or of the node
/// itself, for the last step) and its gap-allocated sibling ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    pub label: LabelId,
    pub ord: u64,
}

impl Step {
    pub fn new(label: LabelId, ord: u64) -> Self {
        Step { label, ord }
    }
}

/// A structural node identifier: the root-first sequence of steps on
/// the path from the document root down to the node.
///
/// `DeweyId`s are standalone values: view tuples store them without any
/// pointer back into the document, which is what lets materialized
/// views be maintained without touching base data (Section 7 contrasts
/// this with approaches whose IDs are store pointers).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DeweyId {
    steps: Vec<Step>,
}

impl DeweyId {
    /// The empty ID (conceptually above the root; no real node).
    pub fn empty() -> Self {
        DeweyId { steps: Vec::new() }
    }

    /// Builds an ID from root-first steps.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        DeweyId { steps }
    }

    /// An ID for a document root with the given label.
    pub fn root(label: LabelId) -> Self {
        DeweyId { steps: vec![Step::new(label, ORD_STRIDE)] }
    }

    /// The ID of a child of `self` with the given label and ordinal.
    pub fn child(&self, label: LabelId, ord: u64) -> Self {
        let mut steps = Vec::with_capacity(self.steps.len() + 1);
        steps.extend_from_slice(&self.steps);
        steps.push(Step::new(label, ord));
        DeweyId { steps }
    }

    /// Number of steps, i.e. the depth of the node (root = 1).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Root-first steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The label of the identified node itself.
    pub fn label(&self) -> Option<LabelId> {
        self.steps.last().map(|s| s.label)
    }

    /// The ID of the parent node, or `None` for the root / empty ID.
    pub fn parent(&self) -> Option<DeweyId> {
        if self.steps.len() <= 1 {
            return None;
        }
        Some(DeweyId { steps: self.steps[..self.steps.len() - 1].to_vec() })
    }

    /// All proper ancestor IDs, nearest first.
    pub fn ancestors(&self) -> Vec<DeweyId> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        while let Some(p) = cur.parent() {
            out.push(p.clone());
            cur = p;
        }
        out
    }

    /// Labels on the root-to-node path (property 2 above). The last
    /// entry is the node's own label.
    pub fn label_path(&self) -> Vec<LabelId> {
        self.steps.iter().map(|s| s.label).collect()
    }

    /// True iff `self` identifies the parent of `other` (the paper's
    /// `≺` comparison).
    pub fn is_parent_of(&self, other: &DeweyId) -> bool {
        other.steps.len() == self.steps.len() + 1 && other.steps.starts_with(&self.steps)
    }

    /// True iff `self` identifies a proper ancestor of `other` (the
    /// paper's `≺≺` comparison).
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        other.steps.len() > self.steps.len() && other.steps.starts_with(&self.steps)
    }

    /// True iff `self` is `other` or an ancestor of it.
    pub fn is_ancestor_or_self_of(&self, other: &DeweyId) -> bool {
        other.steps.len() >= self.steps.len() && other.steps.starts_with(&self.steps)
    }

    /// True iff some proper ancestor of the node carries `label`
    /// (drives the pruning of Propositions 3.8 / 4.7).
    pub fn has_proper_ancestor_labeled(&self, label: LabelId) -> bool {
        self.steps.len() > 1 && self.steps[..self.steps.len() - 1].iter().any(|s| s.label == label)
    }

    /// True iff the node or an ancestor carries `label`.
    pub fn has_self_or_ancestor_labeled(&self, label: LabelId) -> bool {
        self.steps.iter().any(|s| s.label == label)
    }

    /// Document-order comparison. Sibling ordinals are totally ordered
    /// and an ancestor precedes all of its descendants, so lexicographic
    /// comparison of ordinal sequences is exactly document order.
    pub fn doc_cmp(&self, other: &DeweyId) -> Ordering {
        for (a, b) in self.steps.iter().zip(other.steps.iter()) {
            match a.ord.cmp(&b.ord) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.steps.len().cmp(&other.steps.len())
    }

    /// Compact variable-length encoding (property 4). Each step is a
    /// LEB128 label id followed by a LEB128 ordinal.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.steps.len() * 4 + 2);
        write_varint(&mut buf, self.steps.len() as u64);
        for s in &self.steps {
            write_varint(&mut buf, u64::from(s.label.0));
            write_varint(&mut buf, s.ord);
        }
        buf.freeze()
    }

    /// Inverse of [`DeweyId::encode`]. Returns `None` on malformed input.
    pub fn decode(mut bytes: &[u8]) -> Option<DeweyId> {
        let n = read_varint(&mut bytes)? as usize;
        // Every step costs at least two bytes (one per varint), so a
        // count that exceeds the remaining input is malformed. Check
        // *before* reserving: the count is attacker-controlled on the
        // wire path, and `with_capacity` on a bare varint would turn a
        // 10-byte frame into a multi-GB allocation.
        if n > bytes.len() / 2 {
            return None;
        }
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            let label = read_varint(&mut bytes)?;
            let ord = read_varint(&mut bytes)?;
            steps.push(Step::new(LabelId(u32::try_from(label).ok()?), ord));
        }
        if bytes.has_remaining() {
            return None;
        }
        Some(DeweyId { steps })
    }

    /// Renders the ID as `a1.c1.b2`-style text using a label resolver,
    /// mirroring the subscripts used in the paper's figures.
    pub fn display_with<F: Fn(LabelId) -> String>(&self, resolve: F) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(&resolve(s.label));
            out.push_str(&(s.ord / ORD_STRIDE).to_string());
        }
        out
    }
}

impl PartialOrd for DeweyId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeweyId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.doc_cmp(other)
    }
}

impl fmt::Display for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}:{}", s.label.0, s.ord)?;
        }
        Ok(())
    }
}

/// Ordinal for a new last sibling given the current last ordinal.
pub fn next_sibling_ord(last: Option<u64>) -> u64 {
    match last {
        None => ORD_STRIDE,
        Some(o) => o.saturating_add(ORD_STRIDE),
    }
}

/// Ordinal strictly between `left` and `right`, if the gap allows one.
/// `None` on exhaustion (≈20 consecutive midpoint splits of one gap);
/// the paper's workloads never split gaps because XQuery Update inserts
/// append children, but the API supports general sibling insertion.
pub fn between_ord(left: u64, right: u64) -> Option<u64> {
    debug_assert!(left < right);
    let mid = left + (right - left) / 2;
    (mid > left).then_some(mid)
}

fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn read_varint(bytes: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !bytes.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = bytes.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(l(a), b)).collect())
    }

    #[test]
    fn root_and_child_construction() {
        let r = DeweyId::root(l(0));
        assert_eq!(r.depth(), 1);
        let c = r.child(l(1), next_sibling_ord(None));
        assert_eq!(c.depth(), 2);
        assert_eq!(c.label(), Some(l(1)));
        assert_eq!(c.parent().unwrap(), r);
    }

    #[test]
    fn parent_and_ancestor_tests() {
        let a = id(&[(0, 10)]);
        let ab = id(&[(0, 10), (1, 20)]);
        let abc = id(&[(0, 10), (1, 20), (2, 30)]);
        assert!(a.is_parent_of(&ab));
        assert!(!a.is_parent_of(&abc));
        assert!(a.is_ancestor_of(&ab));
        assert!(a.is_ancestor_of(&abc));
        assert!(!ab.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_ancestor_or_self_of(&a));
    }

    #[test]
    fn unrelated_nodes_are_not_ancestors() {
        let x = id(&[(0, 10), (1, 20)]);
        let y = id(&[(0, 10), (1, 30), (2, 5)]);
        assert!(!x.is_ancestor_of(&y));
        assert!(!y.is_ancestor_of(&x));
    }

    #[test]
    fn doc_order_is_lexicographic_with_ancestors_first() {
        let a = id(&[(0, 10)]);
        let ab = id(&[(0, 10), (1, 20)]);
        let ac = id(&[(0, 10), (1, 25)]);
        let abd = id(&[(0, 10), (1, 20), (3, 1)]);
        assert_eq!(a.doc_cmp(&ab), Ordering::Less);
        assert_eq!(ab.doc_cmp(&ac), Ordering::Less);
        assert_eq!(ab.doc_cmp(&abd), Ordering::Less);
        assert_eq!(abd.doc_cmp(&ac), Ordering::Less);
        assert_eq!(ab.doc_cmp(&ab), Ordering::Equal);
    }

    #[test]
    fn label_path_and_ancestor_labels() {
        let abc = id(&[(0, 10), (1, 20), (2, 30)]);
        assert_eq!(abc.label_path(), vec![l(0), l(1), l(2)]);
        assert!(abc.has_proper_ancestor_labeled(l(1)));
        assert!(!abc.has_proper_ancestor_labeled(l(2)));
        assert!(abc.has_self_or_ancestor_labeled(l(2)));
        assert!(!abc.has_self_or_ancestor_labeled(l(9)));
    }

    #[test]
    fn ancestors_nearest_first() {
        let abc = id(&[(0, 10), (1, 20), (2, 30)]);
        let anc = abc.ancestors();
        assert_eq!(anc.len(), 2);
        assert_eq!(anc[0], id(&[(0, 10), (1, 20)]));
        assert_eq!(anc[1], id(&[(0, 10)]));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases =
            [DeweyId::empty(), id(&[(0, ORD_STRIDE)]), id(&[(0, 10), (1, 1 << 40), (700, 3)])];
        for c in &cases {
            let enc = c.encode();
            assert_eq!(DeweyId::decode(&enc).as_ref(), Some(c));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(DeweyId::decode(&[0x80]), None);
        // trailing bytes after declared steps
        let mut enc = id(&[(1, 2)]).encode().to_vec();
        enc.push(0);
        assert_eq!(DeweyId::decode(&enc), None);
    }

    #[test]
    fn decode_bounds_step_count_against_remaining_bytes() {
        // A step count larger than the input could possibly hold must
        // fail fast instead of reserving a huge Vec: this 10-byte frame
        // declares ~2^60 steps.
        let huge = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x00];
        assert_eq!(DeweyId::decode(&huge), None);
        // u64::MAX-ish count with no payload at all
        assert_eq!(DeweyId::decode(&[0xff, 0xff, 0xff, 0x7f]), None);
        // count 2 but only one step's worth of bytes
        assert_eq!(DeweyId::decode(&[2, 1, 1]), None);
    }

    #[test]
    fn sibling_ordinal_allocation() {
        let first = next_sibling_ord(None);
        let second = next_sibling_ord(Some(first));
        assert!(first < second);
        let mid = between_ord(first, second).unwrap();
        assert!(first < mid && mid < second);
        assert_eq!(between_ord(5, 6), None);
    }

    #[test]
    fn midpoints_allow_many_insertions() {
        let mut left = next_sibling_ord(None);
        let right = next_sibling_ord(Some(left));
        let mut count = 0;
        let mut l_ord = left;
        while let Some(m) = between_ord(l_ord, right) {
            l_ord = m;
            count += 1;
            if count > 64 {
                break;
            }
        }
        assert!(count >= 18, "expected ~20 splits, got {count}");
        left += 0; // silence unused
        let _ = left;
    }

    #[test]
    fn display_with_resolver() {
        let d = id(&[(0, ORD_STRIDE), (1, 2 * ORD_STRIDE)]);
        let s = d.display_with(|lab| if lab == l(0) { "a".into() } else { "b".into() });
        assert_eq!(s, "a1.b2");
    }
}
