//! Deferred maintenance and socket replication: what does a commit
//! *pay* when a view is off the seal path, and what does a remote
//! replica cost per commit?
//!
//! The same sustained stream of small single-statement commits as
//! `fig_async` (insert/delete pairs cycling the XMark view catalog,
//! so the document stays bounded) runs three ways:
//!
//! * `immediate (full seal)` — every view maintained inside the
//!   commit: the per-commit latency carries all view maintenance;
//! * `deferred (seal)` — every view declared `view_deferred`: the
//!   commit only applies the PUL to the document and folds it into
//!   the per-view pending batch; one `refresh_all()` at the end pays
//!   the maintenance debt in a single propagation per view (timed
//!   separately);
//! * `replicated (pump+sync)` — the immediate stream again, with one
//!   view served over a localhost socket by a [`FeedServer`] and a
//!   [`ReplicaClient`] syncing after every commit; the timed step is
//!   the replication overhead alone (pump + frame + replay), and the
//!   replica is asserted byte-identical at every commit.
//!
//! Differential anchor: after `refresh_all()`, every deferred store
//! must be bit-identical to the immediate run's, and the replica must
//! re-encode identically to the served view at every commit.

use std::time::{Duration, Instant};

use criterion::percentile;
use xivm_bench::{figure_header, ms, rep_stats, row};
use xivm_core::database::Database;
use xivm_feed::{FeedServer, ReplicaClient};
use xivm_update::UpdateStatement;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

/// Insert/delete rounds through the catalog; each round is
/// `2 x |views-with-updates|` single-statement commits.
fn rounds() -> usize {
    if xivm_xmark::sizes::full_scale() {
        30
    } else {
        10
    }
}

/// The sustained stream: one insert and one delete per catalog view,
/// repeated, so every view sees steady delta traffic and the document
/// returns to its original shape after every round.
fn stream() -> Vec<UpdateStatement> {
    let mut out = Vec::new();
    for _ in 0..rounds() {
        for view in VIEW_NAMES {
            if let Some(u) = updates_for_view(view).first() {
                out.push(u.insert_stmt());
                out.push(u.delete_stmt());
            }
        }
    }
    out
}

fn build_db(doc: &xivm_xml::Document, deferred: bool) -> Database {
    let mut b = Database::builder().document(doc.clone()).workers(2);
    for v in VIEW_NAMES {
        if deferred {
            b = b.view_deferred(v, view_pattern(v));
        } else {
            b = b.view(v, view_pattern(v));
        }
    }
    b.build().expect("catalog database builds")
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// One result row: per-step latency statistics plus stream totals.
fn report(mode: &str, lat_us: &[f64], wall_ms: f64) {
    let s = rep_stats(lat_us);
    let mut sorted = lat_us.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    row(&[
        mode.to_owned(),
        lat_us.len().to_string(),
        format!("{:.2}", s.mean),
        format!("{:.2}", s.min),
        format!("{:.2}", percentile(&sorted, 0.5)),
        format!("{:.2}", percentile(&sorted, 0.99)),
        format!("{:.2}", s.stddev),
        format!("{wall_ms:.3}"),
        format!("{:.0}", lat_us.len() as f64 / (wall_ms / 1e3)),
    ]);
}

fn main() {
    let doc = generate_sized(32 * 1024);
    let stream = stream();

    figure_header(
        "Deferred maintenance & socket replication",
        &format!(
            "seal latency with views on vs off the commit path, {} single-statement commits, {} views, 32KB document",
            stream.len(),
            VIEW_NAMES.len()
        ),
    );
    row(&[
        "mode".to_owned(),
        "commits".to_owned(),
        "mean_us".to_owned(),
        "min_us".to_owned(),
        "p50_us".to_owned(),
        "p99_us".to_owned(),
        "stddev_us".to_owned(),
        "wall_ms".to_owned(),
        "commits_per_s".to_owned(),
    ]);

    // Immediate reference: every commit seals every view.
    let mut immediate = build_db(&doc, false);
    let mut lat = Vec::with_capacity(stream.len());
    let wall = Instant::now();
    for stmt in &stream {
        let t = Instant::now();
        immediate.apply(stmt).expect("catalog update applies");
        lat.push(us(t.elapsed()));
    }
    let immediate_wall = ms(wall.elapsed());
    let immediate_mean = rep_stats(&lat).mean;
    report("immediate (full seal)", &lat, immediate_wall);

    // Deferred: the commit applies the PUL to the document and folds
    // it into each view's pending batch; no view store moves.
    let mut deferred = build_db(&doc, true);
    let mut lat = Vec::with_capacity(stream.len());
    let wall = Instant::now();
    for stmt in &stream {
        let t = Instant::now();
        deferred.apply(stmt).expect("catalog update applies");
        lat.push(us(t.elapsed()));
    }
    let deferred_wall = ms(wall.elapsed());
    let deferred_mean = rep_stats(&lat).mean;
    report("deferred (seal)", &lat, deferred_wall);

    // Pay the maintenance debt: one propagation per view over the
    // whole folded batch, sealed as one refresh commit each.
    let t = Instant::now();
    let refreshes = deferred.refresh_all().expect("refresh seals");
    let refresh_ms = ms(t.elapsed());

    // Differential anchor: deferred-then-refreshed == immediate.
    for (a, b) in immediate.handles().into_iter().zip(deferred.handles()) {
        assert!(
            immediate.store(a).identical_to(deferred.store(b)),
            "view {} diverged between immediate and deferred runs",
            immediate.name(a)
        );
    }
    assert_eq!(immediate.serialize(), deferred.serialize(), "documents must agree");

    // Replication: the immediate stream with one view served over a
    // localhost socket; the timed step is pump + frame + replay only.
    let mut db = build_db(&doc, false);
    let served = db.view(VIEW_NAMES[0]).expect("served view exists");
    let mut server =
        FeedServer::bind("127.0.0.1:0", &mut db, served, stream.len() + 1).expect("bind server");
    let mut replica = ReplicaClient::connect(server.local_addr(), VIEW_NAMES[0]).expect("connect");
    replica.sync_to(0).expect("bootstrap snapshot");
    let mut lat = Vec::with_capacity(stream.len());
    let wall = Instant::now();
    for stmt in &stream {
        db.apply(stmt).expect("catalog update applies");
        let t = Instant::now();
        server.pump(&db);
        replica.sync_to(db.last_seq()).expect("replica syncs");
        lat.push(us(t.elapsed()));
        assert!(replica.identical_to(db.store(served)), "replica must stay byte-identical");
    }
    let replicated_wall = ms(wall.elapsed());
    report("replicated (pump+sync)", &lat, replicated_wall);
    server.close(&mut db);

    println!(
        "# deferred refresh_all: {refresh_ms:.3} ms for {} views ({} refresh commits); \
         seal mean {deferred_mean:.2} us vs immediate {immediate_mean:.2} us ({:.1}x lower)",
        VIEW_NAMES.len(),
        refreshes.len(),
        immediate_mean / deferred_mean
    );
    println!(
        "# replication end-to-end: {replicated_wall:.3} ms commit+replicate for {} commits, replica seq {}",
        stream.len(),
        replica.seq()
    );
}
