//! XPath evaluation over the document store.
//!
//! This is the component that plays Saxon's role in the paper's
//! implementation: locating the *target nodes* of updates ("Find
//! Target Nodes" in the Section 6 time breakdowns) and supporting the
//! full-recomputation baseline.

use super::ast::{LocationPath, XNodeTest, XPred, XStep};
use xivm_algebra::Axis;
use xivm_xml::{Document, NodeId, NodeKind};

/// Evaluates an absolute location path against a document, returning
/// matching nodes in document order without duplicates.
pub fn eval_path(doc: &Document, path: &LocationPath) -> Vec<NodeId> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    let mut context: Option<Vec<NodeId>> = None; // None = the document node
    for (i, step) in path.steps.iter().enumerate() {
        let next = match &context {
            None => eval_step_from_document(doc, root, step, i == 0),
            Some(nodes) => eval_step(doc, nodes, step),
        };
        context = Some(next);
        if context.as_ref().is_some_and(|c| c.is_empty()) {
            return Vec::new();
        }
    }
    context.unwrap_or_default()
}

/// Evaluates a relative path from a single context node.
pub fn eval_relative(doc: &Document, ctx: NodeId, path: &LocationPath) -> Vec<NodeId> {
    let mut context = vec![ctx];
    for step in &path.steps {
        context = eval_step(doc, &context, step);
        if context.is_empty() {
            return context;
        }
    }
    context
}

fn eval_step_from_document(
    doc: &Document,
    root: NodeId,
    step: &XStep,
    _first: bool,
) -> Vec<NodeId> {
    let mut out = match step.axis {
        // `/x` from the document node: the root element if it matches.
        Axis::Child => {
            if test_matches(doc, root, &step.test) {
                vec![root]
            } else {
                Vec::new()
            }
        }
        // `//x` from the document node: any node in the document. Use
        // the canonical relation as a fast path for name tests — this
        // is where structural identifiers pay off for target finding.
        Axis::Descendant => match &step.test {
            XNodeTest::Name(n) => doc.canonical_nodes_named(n).to_vec(),
            XNodeTest::Attribute(a) => doc.canonical_nodes_named(&format!("@{a}")).to_vec(),
            _ => doc
                .descendants_or_self(root)
                .into_iter()
                .filter(|&n| test_matches(doc, n, &step.test))
                .collect(),
        },
    };
    out.retain(|&n| apply_preds(doc, n, &step.preds));
    out
}

fn eval_step(doc: &Document, context: &[NodeId], step: &XStep) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    if matches!(step.test, XNodeTest::SelfNode) {
        out.extend(context.iter().copied());
    } else {
        for &ctx in context {
            match step.axis {
                Axis::Child => {
                    for &c in doc.children_of(ctx) {
                        if test_matches(doc, c, &step.test) {
                            out.push(c);
                        }
                    }
                }
                Axis::Descendant => {
                    for n in doc.descendants_or_self(ctx) {
                        if n != ctx && test_matches(doc, n, &step.test) {
                            out.push(n);
                        }
                    }
                }
            }
        }
    }
    dedup_doc_order(doc, &mut out);
    out.retain(|&n| apply_preds(doc, n, &step.preds));
    out
}

/// Sorts by document order and removes duplicates (contexts can
/// overlap when `//` steps nest).
fn dedup_doc_order(doc: &Document, nodes: &mut Vec<NodeId>) {
    if nodes.len() <= 1 {
        return;
    }
    let mut keyed: Vec<(xivm_xml::DeweyId, NodeId)> =
        nodes.drain(..).map(|n| (doc.dewey(n), n)).collect();
    keyed.sort_by(|a, b| a.0.doc_cmp(&b.0));
    keyed.dedup_by(|a, b| a.1 == b.1);
    nodes.extend(keyed.into_iter().map(|(_, n)| n));
}

fn test_matches(doc: &Document, node: NodeId, test: &XNodeTest) -> bool {
    let n = doc.node(node);
    match test {
        XNodeTest::Name(name) => n.kind == NodeKind::Element && doc.label_name(n.label) == name,
        XNodeTest::Wildcard => n.kind == NodeKind::Element,
        XNodeTest::Attribute(name) => {
            n.kind == NodeKind::Attribute && doc.label_name(n.label) == format!("@{name}")
        }
        XNodeTest::Text => n.kind == NodeKind::Text,
        XNodeTest::SelfNode => true,
    }
}

fn apply_preds(doc: &Document, node: NodeId, preds: &[XPred]) -> bool {
    preds.iter().all(|p| eval_pred(doc, node, p))
}

fn eval_pred(doc: &Document, node: NodeId, pred: &XPred) -> bool {
    match pred {
        XPred::Exists(path) => !eval_relative(doc, node, path).is_empty(),
        XPred::ValEq(path, c) => eval_relative(doc, node, path).iter().any(|&n| doc.value(n) == *c),
        XPred::And(a, b) => eval_pred(doc, node, a) && eval_pred(doc, node, b),
        XPred::Or(a, b) => eval_pred(doc, node, a) || eval_pred(doc, node, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parser::parse_xpath;
    use xivm_xml::parse_document;

    fn doc() -> Document {
        parse_document(
            "<site><people>\
               <person id=\"person0\"><name>Jim</name><phone>1</phone></person>\
               <person id=\"person1\"><name>Ann</name><homepage>h</homepage>\
                 <profile income=\"30k\"><age>33</age></profile></person>\
               <person id=\"person2\"><name>Bob</name></person>\
             </people>\
             <regions><namerica><item><name>i1</name></item></namerica>\
                      <asia><item><mailbox/></item></asia></regions></site>",
        )
        .unwrap()
    }

    fn run(d: &Document, xp: &str) -> Vec<String> {
        let path = parse_xpath(xp).unwrap();
        eval_path(d, &path)
            .into_iter()
            .map(|n| {
                let node = d.node(n);
                match node.kind {
                    NodeKind::Element => d.label_name(node.label).to_owned(),
                    _ => d.value(n),
                }
            })
            .collect()
    }

    #[test]
    fn absolute_child_path() {
        let d = doc();
        assert_eq!(run(&d, "/site/people/person").len(), 3);
        assert_eq!(run(&d, "/wrong/people").len(), 0);
    }

    #[test]
    fn descendant_path_uses_all_depths() {
        let d = doc();
        assert_eq!(run(&d, "//name").len(), 4);
        assert_eq!(run(&d, "/site//item//name").len(), 1);
    }

    #[test]
    fn wildcard_steps() {
        let d = doc();
        assert_eq!(run(&d, "/site/regions/*/item").len(), 2);
    }

    #[test]
    fn attribute_and_text_tests() {
        let d = doc();
        assert_eq!(run(&d, "//person/@id").len(), 3);
        assert_eq!(run(&d, "//person/name/text()"), vec!["Jim", "Ann", "Bob"]);
    }

    #[test]
    fn exists_predicate() {
        let d = doc();
        assert_eq!(run(&d, "//person[phone]").len(), 1);
        assert_eq!(run(&d, "//person[profile/age]").len(), 1);
        assert_eq!(run(&d, "//person[@id]").len(), 3);
    }

    #[test]
    fn value_predicates() {
        let d = doc();
        assert_eq!(run(&d, "//person[@id=\"person1\"]/name/text()"), vec!["Ann"]);
        assert_eq!(run(&d, "//person[name=\"Bob\"]").len(), 1);
        assert_eq!(run(&d, "//person[name='Nobody']").len(), 0);
    }

    #[test]
    fn boolean_predicates() {
        let d = doc();
        assert_eq!(run(&d, "//person[phone or homepage]").len(), 2);
        assert_eq!(run(&d, "//person[phone and homepage]").len(), 0);
        assert_eq!(run(&d, "//person[name and (phone or homepage)]").len(), 2);
        assert_eq!(run(&d, "//item[description or name]").len(), 1);
    }

    #[test]
    fn results_in_document_order_without_duplicates() {
        let d = doc();
        let path = parse_xpath("//person//name").unwrap();
        let nodes = eval_path(&d, &path);
        for w in nodes.windows(2) {
            assert!(d.dewey(w[0]).doc_cmp(&d.dewey(w[1])).is_lt());
        }
    }

    #[test]
    fn self_node_in_predicate_path() {
        let d = doc();
        // [. = "Jim"] on name nodes
        assert_eq!(run(&d, "//name[. = \"Jim\"]").len(), 1);
    }

    #[test]
    fn empty_document_yields_nothing() {
        let d = Document::new();
        let path = parse_xpath("//a").unwrap();
        assert!(eval_path(&d, &path).is_empty());
    }

    #[test]
    fn deleted_nodes_are_invisible() {
        let mut d = doc();
        let path = parse_xpath("//person").unwrap();
        let persons = eval_path(&d, &path);
        d.remove_subtree(persons[0]).unwrap();
        assert_eq!(eval_path(&d, &path).len(), 2);
    }
}
