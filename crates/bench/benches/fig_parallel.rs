//! Parallel multi-view propagation sweep: the full XMark view catalog
//! maintained together under one shared update stream, at 1/2/4/8
//! workers (`XIVM_WORKERS` at runtime picks the same knob).
//!
//! This is the fan-out the ROADMAP names on top of the Figures 18–28
//! cost: the per-update work that does not depend on the view (target
//! finding, the document mutation) is shared, and the per-view phases
//! run on the `xivm_core::parallel` worker pool. The sweep reports
//! wall time for the whole update stream per worker count and the
//! speedup over the 1-worker (sequential) pass; views and document
//! are rebuilt per repetition so every measurement starts cold.
//!
//! Worker counts beyond the machine's core count cannot speed
//! anything up — on a single-core host every row measures scheduler
//! overhead only, so the sweep prints the available parallelism
//! alongside the results.

use std::time::Instant;
use xivm_bench::{figure_header, ms, repetitions, row};
use xivm_core::{MultiViewEngine, SnowcapStrategy};
use xivm_update::UpdateStatement;
use xivm_xmark::sizes::reference_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};
use xivm_xml::Document;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn catalog_engine(doc: &Document) -> MultiViewEngine {
    MultiViewEngine::new(
        doc,
        VIEW_NAMES.iter().map(|v| (v.to_string(), view_pattern(v), SnowcapStrategy::MinimalChain)),
    )
}

/// One insert and one delete per catalog view: a stream that touches
/// every view at least once, so the per-view phases carry real work.
fn update_stream() -> Vec<UpdateStatement> {
    let mut stream = Vec::new();
    for view in VIEW_NAMES {
        if let Some(u) = updates_for_view(view).first() {
            stream.push(u.insert_stmt());
            stream.push(u.delete_stmt());
        }
    }
    stream
}

fn main() {
    let size = reference_size();
    let doc = generate_sized(size.bytes);
    let stream = update_stream();
    let reps = repetitions();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    figure_header(
        "Parallel sweep",
        &format!(
            "multi-view propagation, {} views x {} statements, {} document, {cores} core(s)",
            VIEW_NAMES.len(),
            stream.len(),
            size.label
        ),
    );
    row(&[
        "workers".to_owned(),
        "propagate_ms".to_owned(),
        "speedup_vs_1_worker".to_owned(),
        "groups_avg".to_owned(),
    ]);

    let mut baseline_ms = None;
    for workers in WORKER_SWEEP {
        let mut total = 0.0;
        let mut groups_total = 0usize;
        let mut group_samples = 0usize;
        for _ in 0..reps {
            let mut d = doc.clone();
            let mut engine = catalog_engine(&d);
            engine.set_workers(workers);
            for stmt in &stream {
                let pul = xivm_update::compute_pul(&d, stmt);
                groups_total += engine.partition(&d, &pul).len();
                group_samples += 1;
                let start = Instant::now();
                engine.propagate_pul(&mut d, &pul).expect("propagation succeeds");
                total += ms(start.elapsed());
            }
        }
        let avg = total / reps as f64;
        let baseline = *baseline_ms.get_or_insert(avg);
        row(&[
            workers.to_string(),
            format!("{avg:.3}"),
            format!("{:.2}", baseline / avg),
            format!("{:.1}", groups_total as f64 / group_samples as f64),
        ]);
    }
}
