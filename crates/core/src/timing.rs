//! Per-phase maintenance timings — the measured quantities of the
//! Section 6 experiments (Figures 18–25).

use std::fmt;
use std::time::Duration;

/// The five measured phases of the paper's Section 6.1, plus the
/// document-update time itself (reported separately: the paper folds
/// it into the update process, not into view maintenance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// "Find Target Nodes": evaluating the update's target path.
    pub find_target_nodes: Duration,
    /// "Compute Delta Tables": building Δ⁺ / Δ⁻ from the PUL.
    pub compute_delta_tables: Duration,
    /// "Get Update Expression": expanding and pruning the terms.
    pub get_update_expression: Duration,
    /// "Execute Update": evaluating surviving terms and patching the
    /// view store (including PIMT / PDMT tuple modifications).
    pub execute_update: Duration,
    /// "Update Lattice": maintaining the materialized snowcaps.
    pub update_lattice: Duration,
    /// Applying the PUL to the source document (not view maintenance).
    pub apply_document: Duration,
}

impl Timings {
    /// Total *view maintenance* time: everything except the document
    /// update itself, matching the paper's stacked bars.
    pub fn maintenance_total(&self) -> Duration {
        self.find_target_nodes
            + self.compute_delta_tables
            + self.get_update_expression
            + self.execute_update
            + self.update_lattice
    }

    /// Component-wise sum, for aggregating over update sequences.
    pub fn accumulate(&mut self, other: &Timings) {
        self.find_target_nodes += other.find_target_nodes;
        self.compute_delta_tables += other.compute_delta_tables;
        self.get_update_expression += other.get_update_expression;
        self.execute_update += other.execute_update;
        self.update_lattice += other.update_lattice;
        self.apply_document += other.apply_document;
    }
}

impl fmt::Display for Timings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "find-targets {:?} | deltas {:?} | expression {:?} | execute {:?} | lattice {:?}",
            self.find_target_nodes,
            self.compute_delta_tables,
            self.get_update_expression,
            self.execute_update,
            self.update_lattice,
        )
    }
}

/// Measures one closure, returning its result and elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_exclude_document_apply() {
        let t = Timings {
            find_target_nodes: Duration::from_millis(5),
            compute_delta_tables: Duration::from_millis(1),
            get_update_expression: Duration::from_millis(2),
            execute_update: Duration::from_millis(3),
            update_lattice: Duration::from_millis(4),
            apply_document: Duration::from_millis(100),
        };
        assert_eq!(t.maintenance_total(), Duration::from_millis(15));
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut a = Timings::default();
        let b = Timings { execute_update: Duration::from_millis(7), ..Default::default() };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.execute_update, Duration::from_millis(14));
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
