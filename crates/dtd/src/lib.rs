//! DTDs as extended context-free grammars, and the runtime
//! schema-violation checks of Section 3.3.
//!
//! A DTD is a set of rules `symbol → regular expression` over
//! terminals (element labels) and non-terminals (Figure 5). From the
//! rules we derive constraints on the Δ⁺ tables of an insertion —
//! e.g. Example 3.9's `Δ⁺_c = ∅ ⇒ Δ⁺_b = ∅` (every inserted `b`
//! requires a `c` below it) and Example 3.10's
//! `Δ⁺_a ≠ ∅ ⇒ Δ⁺_b ≠ ∅ ∧ Δ⁺_c ≠ ∅` (siblings grouped under a
//! repetition must be inserted together) — and check them before an
//! update is applied.
//!
//! Module map: [`grammar`] (Figure 5 grammars), [`regex`] (rule
//! right-hand sides), [`analysis`] (deriving Δ⁺ constraints),
//! [`check`] (the runtime check of Section 3.3). See the
//! `xivm_dtd` table in `ARCHITECTURE.md` at the repository root.

pub mod analysis;
pub mod check;
pub mod grammar;
pub mod regex;

pub use analysis::{
    child_label_map, cooccurrence_groups, mandatory_descendants, mandatory_descendants_checked,
    reachable_label_map, MandatoryReport,
};
pub use check::{check_insert, implications, Implication, SchemaViolation};
pub use grammar::{parse_dtd, Dtd, DtdParseError};
pub use regex::Rx;
