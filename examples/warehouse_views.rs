//! Warehouse scenario: several views over one document, chosen
//! auxiliary structures, and durable snapshots.
//!
//! Demonstrates the façade over the three extensions built on top of
//! the paper's core: many named views maintained in one shared pass
//! per update, cost-based snowcap selection from a workload log, and
//! binary view snapshots.
//!
//! ```sh
//! cargo run --release --example warehouse_views
//! ```

use xivm::core::costmodel::{choose_snowcaps, DocStats};
use xivm::core::snapshot::{decode_store, encode_store};
use xivm::prelude::*;
use xivm::xmark::{generate_sized, update_by_name, view_pattern};

fn main() -> Result<(), Error> {
    let doc = generate_sized(150 * 1024);

    // --- several views, one maintenance pass per update ---------------
    let mut warehouse = Database::builder()
        .document(doc.clone())
        .view("Q1", view_pattern("Q1"))
        .view("Q2", view_pattern("Q2"))
        .view("Q6", view_pattern("Q6"))
        .view("Q17", view_pattern("Q17"))
        .build()?;
    println!("materialized {} views over one auction document", warehouse.len());

    for u in ["A6_A", "X4_O", "B5_LB"] {
        let commit = warehouse.apply(update_by_name(u).insert_stmt())?;
        let touched: Vec<String> = commit
            .iter()
            .filter(|(_, r)| !r.delta.is_empty())
            .map(|(n, r)| format!("{n}(+{})", r.tuples_added))
            .collect();
        let (_, first) = commit.iter().next().expect("views were maintained");
        println!(
            "  {u:<6} found targets once ({:>7.3} ms), affected: {}",
            first.timings.find_target_nodes.as_secs_f64() * 1e3,
            if touched.is_empty() { "none".to_owned() } else { touched.join(" ") },
        );
    }

    // --- cost-based snowcap choice from a workload log ----------------
    let pattern = view_pattern("Q2");
    let log = vec![update_by_name("X2_L").insert_stmt(), update_by_name("X4_O").insert_stmt()];
    let stats = DocStats::collect(&doc);
    let profile = UpdateProfile::from_log(&doc, &pattern, &log);
    let chosen = choose_snowcaps(&pattern, &stats, &profile);
    println!("\ncost model chose {} snowcap(s) for Q2 under this workload profile", chosen.len());
    let mut db =
        Database::builder().document(doc).cost_based(profile).view("Q2", pattern).build()?;
    let q2 = db.view("Q2")?;
    let commit = db.apply(update_by_name("X2_L").insert_stmt())?;
    let report = commit.report(q2);
    println!(
        "  maintained Q2 in {:.3} ms (+{} tuples)",
        report.timings.maintenance_total().as_secs_f64() * 1e3,
        report.tuples_added
    );

    // --- durable snapshots ---------------------------------------------
    let bytes = encode_store(db.store(q2));
    let restored = decode_store(&bytes).expect("snapshot decodes");
    assert!(db.store(q2).same_content_as(&restored));
    println!(
        "\nsnapshotted Q2: {} tuples in {} bytes ({} bytes/tuple), restored losslessly",
        db.store(q2).len(),
        bytes.len(),
        bytes.len() / db.store(q2).len().max(1)
    );
    Ok(())
}
