//! Typed statement construction: build [`UpdateStatement`]s from XPath
//! values and content trees instead of strings.
//!
//! The textual forms (`parse_statement`) stay the wire format, but an
//! application composing updates programmatically should not have to
//! print XPath and XML just to have the engine re-parse them. This
//! module gives every statement form a constructor that accepts
//! *either* text or an already-typed value:
//!
//! * targets are [`PathSource`]: `&str` / `String` XPath text, or a
//!   parsed [`LocationPath`];
//! * content is [`ContentSource`]: raw forest text, or an [`Element`]
//!   tree built with [`element()`] (labels, attributes, text and
//!   children — serialized with proper escaping);
//! * the finished value is an [`UpdateBuilder`], resolved by
//!   [`UpdateBuilder::build`] — or handed directly to
//!   `Database::apply` / `Transaction::statement`, which accept it via
//!   `Into<StatementSource>` and surface any parse error through their
//!   own `Result`.
//!
//! ```
//! use xivm_update::builder::{element, insert, UpdateBuilder};
//!
//! // insert <person id="p1"><name>Jim</name></person> into /site/people
//! let stmt = insert(
//!     element("person")
//!         .attr("id", "p1")
//!         .child(element("name").text("Jim")),
//! )
//! .into("/site/people")
//! .build()
//! .unwrap();
//! assert!(stmt.is_insert());
//!
//! // the same statement, built from text — bit-identical
//! let textual = xivm_update::statement::parse_statement(
//!     "insert <person id=\"p1\"><name>Jim</name></person> into /site/people",
//! )
//! .unwrap();
//! assert_eq!(stmt, textual);
//! ```

use crate::statement::{StatementParseError, UpdateStatement};
use xivm_pattern::xpath::{parse_xpath, LocationPath};

// ---------------------------------------------------------------------
// Typed inputs
// ---------------------------------------------------------------------

/// An XPath target: text (parsed at [`UpdateBuilder::build`]) or an
/// already-parsed [`LocationPath`]. Converts via `From<&str>`,
/// `From<String>` and `From<LocationPath>`.
#[derive(Debug, Clone)]
pub enum PathSource {
    Text(String),
    Ready(LocationPath),
}

impl From<&str> for PathSource {
    fn from(text: &str) -> Self {
        PathSource::Text(text.to_owned())
    }
}

impl From<String> for PathSource {
    fn from(text: String) -> Self {
        PathSource::Text(text)
    }
}

impl From<LocationPath> for PathSource {
    fn from(path: LocationPath) -> Self {
        PathSource::Ready(path)
    }
}

impl From<&LocationPath> for PathSource {
    fn from(path: &LocationPath) -> Self {
        PathSource::Ready(path.clone())
    }
}

impl PathSource {
    fn resolve(self) -> Result<LocationPath, StatementParseError> {
        match self {
            PathSource::Text(text) => parse_xpath(&text).map_err(StatementParseError::from),
            PathSource::Ready(path) => Ok(path),
        }
    }
}

/// Inserted / replacement content: a raw XML forest, or a typed
/// [`Element`] tree. Converts via `From<&str>`, `From<String>` and
/// `From<Element>`.
#[derive(Debug, Clone)]
pub enum ContentSource {
    Xml(String),
    Tree(Element),
}

impl From<&str> for ContentSource {
    fn from(xml: &str) -> Self {
        ContentSource::Xml(xml.to_owned())
    }
}

impl From<String> for ContentSource {
    fn from(xml: String) -> Self {
        ContentSource::Xml(xml)
    }
}

impl From<Element> for ContentSource {
    fn from(tree: Element) -> Self {
        ContentSource::Tree(tree)
    }
}

impl ContentSource {
    fn resolve(self) -> String {
        match self {
            ContentSource::Xml(xml) => xml,
            ContentSource::Tree(tree) => tree.to_xml(),
        }
    }
}

// ---------------------------------------------------------------------
// Content trees
// ---------------------------------------------------------------------

/// A typed content node: one element with attributes and children,
/// built by chaining on [`element()`]. Serializing with [`Self::to_xml`]
/// escapes text and attribute values, so built content can never be
/// malformed markup (element/attribute *names* are still validated by
/// the XML parser at apply time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Content>,
}

/// One child of an [`Element`]: a nested element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    Element(Element),
    Text(String),
}

impl From<Element> for Content {
    fn from(e: Element) -> Self {
        Content::Element(e)
    }
}

impl From<&str> for Content {
    fn from(text: &str) -> Self {
        Content::Text(text.to_owned())
    }
}

impl From<String> for Content {
    fn from(text: String) -> Self {
        Content::Text(text)
    }
}

/// Starts a typed content tree rooted at an element named `name`.
pub fn element(name: impl Into<String>) -> Element {
    Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
}

impl Element {
    /// Adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Appends a text child.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Content::Text(text.into()));
        self
    }

    /// Appends a child (a nested [`Element`], or text via `From`).
    pub fn child(mut self, child: impl Into<Content>) -> Self {
        self.children.push(child.into());
        self
    }

    /// Serializes the tree to markup, escaping text and attribute
    /// values.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, true, out);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Content::Element(e) => e.write(out),
                Content::Text(t) => escape_into(t, false, out),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn escape_into(s: &str, attribute: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attribute => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

// ---------------------------------------------------------------------
// Statement builders
// ---------------------------------------------------------------------

/// A fully specified statement whose inputs may still need parsing.
/// Produced by [`delete`], [`insert`], [`replace`] and [`copy`];
/// resolved by [`Self::build`] (or implicitly by the `Database`
/// façade, which accepts `UpdateBuilder` wherever it accepts
/// statement text).
#[derive(Debug, Clone)]
pub struct UpdateBuilder {
    kind: BuilderKind,
}

#[derive(Debug, Clone)]
enum BuilderKind {
    Delete { target: PathSource },
    Insert { content: ContentSource, target: PathSource },
    Replace { target: PathSource, content: ContentSource },
    Copy { source: PathSource, target: PathSource },
}

impl UpdateBuilder {
    /// Parses any deferred text inputs and yields the typed statement.
    pub fn build(self) -> Result<UpdateStatement, StatementParseError> {
        Ok(match self.kind {
            BuilderKind::Delete { target } => UpdateStatement::Delete { target: target.resolve()? },
            BuilderKind::Insert { content, target } => {
                UpdateStatement::Insert { target: target.resolve()?, xml: content.resolve() }
            }
            BuilderKind::Replace { target, content } => {
                UpdateStatement::Replace { target: target.resolve()?, xml: content.resolve() }
            }
            BuilderKind::Copy { source, target } => {
                UpdateStatement::InsertFrom { source: source.resolve()?, target: target.resolve()? }
            }
        })
    }
}

/// `delete TARGET`.
pub fn delete(target: impl Into<PathSource>) -> UpdateBuilder {
    UpdateBuilder { kind: BuilderKind::Delete { target: target.into() } }
}

/// `insert CONTENT into TARGET` — finish with [`Insert::into`].
pub fn insert(content: impl Into<ContentSource>) -> Insert {
    Insert { content: content.into() }
}

/// Intermediate state of [`insert`]: content chosen, target pending.
#[derive(Debug, Clone)]
pub struct Insert {
    content: ContentSource,
}

impl Insert {
    /// Chooses the insertion target, completing the statement.
    pub fn into(self, target: impl Into<PathSource>) -> UpdateBuilder {
        UpdateBuilder { kind: BuilderKind::Insert { content: self.content, target: target.into() } }
    }
}

/// `replace TARGET with CONTENT` — finish with [`Replace::with`].
pub fn replace(target: impl Into<PathSource>) -> Replace {
    Replace { target: target.into() }
}

/// Intermediate state of [`replace`]: target chosen, content pending.
#[derive(Debug, Clone)]
pub struct Replace {
    target: PathSource,
}

impl Replace {
    /// Chooses the replacement content, completing the statement.
    pub fn with(self, content: impl Into<ContentSource>) -> UpdateBuilder {
        UpdateBuilder {
            kind: BuilderKind::Replace { target: self.target, content: content.into() },
        }
    }
}

/// `insert SOURCE into TARGET` (copy nodes already in the document) —
/// finish with [`Copy::into`].
pub fn copy(source: impl Into<PathSource>) -> Copy {
    Copy { source: source.into() }
}

/// Intermediate state of [`copy`]: source chosen, target pending.
#[derive(Debug, Clone)]
pub struct Copy {
    source: PathSource,
}

impl Copy {
    /// Chooses the copy destination, completing the statement.
    pub fn into(self, target: impl Into<PathSource>) -> UpdateBuilder {
        UpdateBuilder { kind: BuilderKind::Copy { source: self.source, target: target.into() } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::parse_statement;

    #[test]
    fn builders_equal_their_textual_forms() {
        let cases: Vec<(UpdateBuilder, &str)> = vec![
            (delete("//a//b"), "delete //a//b"),
            (insert("<b/>").into("/a/c"), "insert <b/> into /a/c"),
            (
                insert(element("b").attr("k", "1").text("t")).into("/a/c"),
                "insert <b k=\"1\">t</b> into /a/c",
            ),
            (replace("//c").with(element("g").child(element("h"))), "replace //c with <g><h/></g>"),
            (copy("//tpl/i").into("//dst"), "insert //tpl/i into //dst"),
        ];
        for (builder, text) in cases {
            assert_eq!(builder.build().unwrap(), parse_statement(text).unwrap(), "{text}");
        }
    }

    #[test]
    fn typed_paths_skip_the_parser() {
        let path = parse_xpath("/a/c").unwrap();
        let stmt = delete(&path).build().unwrap();
        assert_eq!(stmt, UpdateStatement::Delete { target: path });
    }

    #[test]
    fn content_trees_escape_text_and_attributes() {
        let e = element("note").attr("k", "a\"b<c").text("1 < 2 & 3 > 2");
        assert_eq!(e.to_xml(), "<note k=\"a&quot;b&lt;c\">1 &lt; 2 &amp; 3 &gt; 2</note>");
    }

    #[test]
    fn bad_paths_surface_at_build_time() {
        assert!(delete("//[").build().is_err());
        assert!(insert("<b/>").into("//[").build().is_err());
    }

    #[test]
    fn nested_content_serializes_depth_first() {
        let e = element("r")
            .child(element("x").child(element("y")))
            .child("tail")
            .child(element("z").text("v"));
        assert_eq!(e.to_xml(), "<r><x><y/></x>tail<z>v</z></r>");
    }
}
