//! Figure 28: PINT/PIMT versus the node-at-a-time IVMA algorithm
//! [Sawires et al. 2005] on view Q1 over a 100 KB document.
//!
//! The workload inserts a fixed five-node XML tree (a root with four
//! children) under each update target: one bulk statement for our
//! engine, five consecutive single-node calls for IVMA. Expected
//! shape: the bulk algorithm wins by an order of magnitude or more.

use std::time::Instant;
use xivm_bench::{figure_header, ms, repetitions, row};
use xivm_core::SnowcapStrategy;
use xivm_ivma::IvmaView;
use xivm_update::UpdateStatement;
use xivm_xmark::sizes::small_size;
use xivm_xmark::{generate_sized, update_by_name, view_pattern};

/// The fixed five-node tree of the experiment.
const FIVE_NODE_TREE: &str = "<name>r<name>c1</name><name>c2</name><name>c3</name>\
                              <name>c4</name></name>";

fn main() {
    let size = small_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();
    let pattern = view_pattern("Q1");
    figure_header("Figure 28", &format!("PINT/PIMT versus IVMA, view Q1, {} document", size.label));
    row(&[
        "update".to_owned(),
        "execute_update_ms".to_owned(),
        "execute_update_ivma_ms".to_owned(),
        "ivma_calls".to_owned(),
        "speedup".to_owned(),
    ]);
    // the paper's Q1 update set
    for u in ["X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"] {
        let upd = update_by_name(u);
        let stmt = UpdateStatement::Insert {
            target: xivm_pattern::xpath::parse_xpath(upd.path).unwrap(),
            xml: FIVE_NODE_TREE.to_owned(),
        };
        // bulk engine
        let mut bulk_ms = 0.0;
        for _ in 0..reps {
            let report = xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain);
            bulk_ms += ms(report.timings.maintenance_total());
        }
        bulk_ms /= reps as f64;
        // IVMA node-at-a-time
        let mut ivma_ms = 0.0;
        let mut calls = 0usize;
        for _ in 0..reps {
            let mut d = doc.clone();
            let mut view = IvmaView::new(&d, pattern.clone());
            let start = Instant::now();
            calls = view.apply_insert(&mut d, &stmt).expect("ivma applies");
            ivma_ms += ms(start.elapsed());
        }
        ivma_ms /= reps as f64;
        row(&[
            u.to_owned(),
            format!("{bulk_ms:.3}"),
            format!("{ivma_ms:.3}"),
            calls.to_string(),
            format!("{:.2}", ivma_ms / bulk_ms.max(1e-6)),
        ]);
    }
}
