//! Full-workload oracle: every catalog view × every paired catalog
//! update, insertion and deletion, across materialization strategies —
//! the incremental store must always equal the from-scratch
//! evaluation, and the IVMA baseline must agree too.

use xivm::core::{MaintenanceEngine, SnowcapStrategy, ViewStore};
use xivm::ivma::IvmaView;
use xivm::pattern::compile::view_tuples;
use xivm::xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

/// Source-document size for the oracle runs. `XIVM_TEST_DOC_BYTES`
/// shrinks (or grows) it without editing the test, so CI can bound
/// runtime the same way `PROPTEST_CASES` bounds the property suite.
fn doc_bytes() -> usize {
    std::env::var("XIVM_TEST_DOC_BYTES").ok().and_then(|v| v.parse().ok()).unwrap_or(40 * 1024)
}

#[test]
fn engine_matches_recomputation_on_all_pairs_inserts() {
    let doc0 = generate_sized(doc_bytes());
    for view in VIEW_NAMES {
        let pattern = view_pattern(view);
        for u in updates_for_view(view) {
            let mut doc = doc0.clone();
            let mut engine =
                MaintenanceEngine::new(&doc, pattern.clone(), SnowcapStrategy::MinimalChain);
            engine.apply_statement(&mut doc, &u.insert_stmt()).unwrap();
            let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
            assert!(
                engine.store().same_content_as(&expected),
                "{view} + insert {}:\n{}",
                u.name,
                engine.store().diff_description(&expected)
            );
        }
    }
}

#[test]
fn engine_matches_recomputation_on_all_pairs_deletes() {
    let doc0 = generate_sized(doc_bytes());
    for view in VIEW_NAMES {
        let pattern = view_pattern(view);
        for u in updates_for_view(view) {
            let mut doc = doc0.clone();
            let mut engine =
                MaintenanceEngine::new(&doc, pattern.clone(), SnowcapStrategy::MinimalChain);
            engine.apply_statement(&mut doc, &u.delete_stmt()).unwrap();
            let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
            assert!(
                engine.store().same_content_as(&expected),
                "{view} + delete {}:\n{}",
                u.name,
                engine.store().diff_description(&expected)
            );
        }
    }
}

#[test]
fn strategies_agree_with_each_other() {
    let doc0 = generate_sized(doc_bytes() / 2);
    for view in ["Q1", "Q3", "Q6"] {
        let pattern = view_pattern(view);
        for u in updates_for_view(view).into_iter().take(2) {
            for stmt in [u.insert_stmt(), u.delete_stmt()] {
                let mut stores = Vec::new();
                for strategy in [
                    SnowcapStrategy::MinimalChain,
                    SnowcapStrategy::AllSnowcaps,
                    SnowcapStrategy::LeavesOnly,
                ] {
                    let mut doc = doc0.clone();
                    let mut engine = MaintenanceEngine::new(&doc, pattern.clone(), strategy);
                    engine.apply_statement(&mut doc, &stmt).unwrap();
                    stores.push((strategy, engine));
                }
                for w in stores.windows(2) {
                    assert!(
                        w[0].1.store().same_content_as(w[1].1.store()),
                        "{view} {}: {:?} vs {:?} disagree",
                        u.name,
                        w[0].0,
                        w[1].0
                    );
                }
            }
        }
    }
}

#[test]
fn ivma_agrees_with_engine_on_small_workloads() {
    // IVMA is node-at-a-time; keep the workload small but real.
    let doc0 = generate_sized(20 * 1024);
    for view in ["Q1", "Q6"] {
        let pattern = view_pattern(view);
        for u in updates_for_view(view).into_iter().take(2) {
            // insertion
            let mut d1 = doc0.clone();
            let mut engine =
                MaintenanceEngine::new(&d1, pattern.clone(), SnowcapStrategy::MinimalChain);
            engine.apply_statement(&mut d1, &u.insert_stmt()).unwrap();

            let mut d2 = doc0.clone();
            let mut ivma = IvmaView::new(&d2, pattern.clone());
            ivma.apply_insert(&mut d2, &u.insert_stmt()).unwrap();

            assert!(
                engine.store().same_content_as(ivma.store()),
                "{view} + insert {}: engine vs IVMA:\n{}",
                u.name,
                engine.store().diff_description(ivma.store())
            );
        }
    }
}

#[test]
fn sequences_of_mixed_updates_stay_in_sync() {
    let mut doc = generate_sized(doc_bytes() / 2);
    let pattern = view_pattern("Q2");
    let mut engine = MaintenanceEngine::new(&doc, pattern.clone(), SnowcapStrategy::MinimalChain);
    let script = [
        updates_for_view("Q2")[0].insert_stmt(),
        updates_for_view("Q2")[1].delete_stmt(),
        updates_for_view("Q2")[2].insert_stmt(),
        updates_for_view("Q2")[3].delete_stmt(),
        updates_for_view("Q2")[4].insert_stmt(),
    ];
    for (i, stmt) in script.iter().enumerate() {
        engine.apply_statement(&mut doc, stmt).unwrap();
        let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
        assert!(
            engine.store().same_content_as(&expected),
            "diverged at step {i}:\n{}",
            engine.store().diff_description(&expected)
        );
    }
    doc.check_invariants().unwrap();
}

#[test]
fn q1_annotation_variants_maintained_correctly() {
    use xivm::update::statement::parse_statement;
    let doc0 = generate_sized(20 * 1024);
    let del = parse_statement(&format!("delete {}", xivm::xmark::X1_L_PRED)).unwrap();
    let ins = parse_statement("insert <phone>+1</phone> into /site/people/person").unwrap();
    for variant in xivm::xmark::Q1Variant::ALL {
        let pattern = xivm::xmark::q1_variant(variant);
        let mut doc = doc0.clone();
        let mut engine =
            MaintenanceEngine::new(&doc, pattern.clone(), SnowcapStrategy::MinimalChain);
        for stmt in [&ins, &del] {
            engine.apply_statement(&mut doc, stmt).unwrap();
            let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
            assert!(
                engine.store().same_content_as(&expected),
                "variant {} diverged",
                variant.name()
            );
        }
    }
}

#[test]
fn cost_based_engine_is_maintained_correctly() {
    use xivm::core::costmodel::UpdateProfile;
    let doc0 = generate_sized(20 * 1024);
    let pattern = view_pattern("Q2");
    // profile extracted from a representative statement log
    let log =
        vec![updates_for_view("Q2")[0].insert_stmt(), updates_for_view("Q2")[1].insert_stmt()];
    let profile = UpdateProfile::from_log(&doc0, &pattern, &log);
    let mut doc = doc0.clone();
    let mut engine = MaintenanceEngine::new_cost_based(&doc, pattern.clone(), &profile);
    for u in updates_for_view("Q2") {
        for stmt in [u.insert_stmt(), u.delete_stmt()] {
            engine.apply_statement(&mut doc, &stmt).unwrap();
            let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
            assert!(
                engine.store().same_content_as(&expected),
                "cost-based engine diverged on {}:\n{}",
                u.name,
                engine.store().diff_description(&expected)
            );
        }
    }
}

#[test]
fn multi_view_engine_on_xmark_workload() {
    use xivm::core::{MultiViewEngine, SnowcapStrategy};
    let mut doc = generate_sized(20 * 1024);
    let mut engine = MultiViewEngine::new(
        &doc,
        VIEW_NAMES.map(|v| (v.to_owned(), view_pattern(v), SnowcapStrategy::MinimalChain)),
    );
    for u in ["X1_L", "E6_L", "X4_O"] {
        let upd = xivm::xmark::update_by_name(u);
        for stmt in [upd.insert_stmt(), upd.delete_stmt()] {
            engine.apply_statement(&mut doc, &stmt).unwrap();
            for name in VIEW_NAMES {
                let pattern = view_pattern(name);
                let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
                assert!(
                    engine.view(name).unwrap().store().same_content_as(&expected),
                    "multi-view {name} diverged after {u}"
                );
            }
        }
    }
}
