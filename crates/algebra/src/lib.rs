//! Tuple algebra for XML view maintenance.
//!
//! Implements the logical algebra **A** of Section 2.2 — n-ary cartesian
//! product, selection (with value and structural `≺` / `≺≺` predicates),
//! projection, duplicate elimination and sort — plus the physical
//! operators the paper's Section 3.4 assumes from the host XML engine:
//! stack-based *structural joins* over Dewey IDs [Al-Khalifa et al.
//! 2002], *Path Filter* and *Path Navigate*.
//!
//! Relations are ordered bags of [`Tuple`]s over a [`Schema`] of view
//! columns; each tuple field carries a structural ID and, when the view
//! stores them, the node's value and/or serialized content.
//!
//! Module map: [`relation`] / [`mod@tuple`] (ordered bags over schemas),
//! [`logical`] + [`ops`] + [`predicate`] (the algebra **A**),
//! [`structjoin`] / [`twigjoin`] / [`pathops`] (physical operators).
//! The workspace-wide picture, with this crate's row, lives in
//! `ARCHITECTURE.md` at the repository root.

pub mod logical;
pub mod ops;
pub mod pathops;
pub mod predicate;
pub mod relation;
pub mod structjoin;
pub mod tuple;
pub mod twigjoin;

pub use logical::Plan;
pub use predicate::{Axis, Predicate};
pub use relation::{Column, Relation, Schema};
pub use structjoin::structural_join;
pub use tuple::{Field, Tuple};
pub use twigjoin::{path_stack, twig_join, ChainLevel, TwigNode};
