//! The incremental operators: per-node state and the O(|Δ|) step
//! functions.
//!
//! Every operator consumes its inputs' [`RowDelta`]s for one commit
//! and emits its own output delta, touching only state reachable from
//! the changed rows:
//!
//! * **source** — mirrors one view store and converts each
//!   [`ViewDelta`] into a row Z-set change: for every affected tuple
//!   key, retract the pre-commit row with its old derivation count and
//!   insert the post-commit row with the new one (so count changes
//!   *and* `val`/`cont` modifications both become row replacements);
//! * **filter** / **map** — stateless; a map's output is consolidated
//!   because distinct inputs may collapse onto one image row;
//! * **join** — bilinear: `Δout = ΔL ⋈ R ∪ L′ ⋈ ΔR` (with `L′ = L +
//!   ΔL`), over two per-side hash indexes keyed by the extracted join
//!   key;
//! * **count** / **sum** — one state entry per group; a changed group
//!   retracts its old aggregate row and inserts the new one;
//! * **min** / **max** — per group a support multiset of values plus
//!   the cached extremum. Insertions only *improve* the extremum
//!   (cheap compare); retracting the extremum itself forces a re-scan
//!   of the group's surviving support — the unavoidable fallback, paid
//!   only when the current best disappears.

use crate::row::{Datum, Row};
use crate::zset::RowDelta;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use xivm_core::view_store::TupleKey;
use xivm_core::{DeltaEvent, Subscription, ViewDelta, ViewHandle, ViewStore};

/// A row predicate (filter condition).
pub type Predicate = Arc<dyn Fn(&Row) -> bool + Send + Sync>;
/// A row transformer (map body, join key extractor, group key
/// extractor).
pub type RowFn = Arc<dyn Fn(&Row) -> Row + Send + Sync>;
/// An integer extractor (sum / min / max argument).
pub type ValueFn = Arc<dyn Fn(&Row) -> i64 + Send + Sync>;

/// A circuit source: one subscribed view, mirrored tuple-for-tuple so
/// each incoming [`ViewDelta`] can be re-expressed as old-row
/// retractions plus new-row insertions.
pub(crate) struct SourceState {
    pub(crate) view: ViewHandle,
    pub(crate) sub: Option<Subscription>,
    pub(crate) mirror: ViewStore,
    /// Events drained from the database but not yet consumed by a
    /// `sync_to` barrier (their seq exceeds the requested target).
    pub(crate) buffer: VecDeque<DeltaEvent>,
}

impl SourceState {
    pub(crate) fn new(view: ViewHandle) -> Self {
        SourceState { view, sub: None, mirror: ViewStore::default(), buffer: VecDeque::new() }
    }

    /// The mirror's full contents as one delta — the seed that runs
    /// the initial materialization through the same incremental code
    /// path (incremental from empty ≡ full evaluation).
    pub(crate) fn seed_delta(&self) -> RowDelta {
        let schema = self.mirror.schema();
        RowDelta::new(
            self.mirror.iter().map(|(t, c)| (Row::from_tuple(t, schema), c as i64)).collect(),
        )
    }

    /// Folds one commit's view delta into the mirror and returns the
    /// equivalent row Z-set change, in O(|Δ|): only keys named by the
    /// delta's weighted entries are touched.
    pub(crate) fn advance(&mut self, delta: &ViewDelta) -> RowDelta {
        let affected: HashSet<TupleKey> = delta.weights().map(|(_, change)| change.key()).collect();
        let mut raw = Vec::with_capacity(affected.len() * 2);
        {
            let schema = self.mirror.schema();
            for key in &affected {
                if let Some((t, c)) = self.mirror.get(key) {
                    raw.push((Row::from_tuple(t, schema), -(c as i64)));
                }
            }
        }
        delta.replay(&mut self.mirror);
        let schema = self.mirror.schema();
        for key in &affected {
            if let Some((t, c)) = self.mirror.get(key) {
                raw.push((Row::from_tuple(t, schema), c as i64));
            }
        }
        RowDelta::new(raw)
    }
}

/// A hash join's per-side state: input rows with their weights,
/// bucketed by extracted join key.
pub(crate) struct JoinState {
    pub(crate) left: usize,
    pub(crate) right: usize,
    pub(crate) left_key: RowFn,
    pub(crate) right_key: RowFn,
    left_index: HashMap<Row, HashMap<Row, i64>>,
    right_index: HashMap<Row, HashMap<Row, i64>>,
}

impl JoinState {
    pub(crate) fn new(left: usize, right: usize, left_key: RowFn, right_key: RowFn) -> Self {
        JoinState {
            left,
            right,
            left_key,
            right_key,
            left_index: HashMap::new(),
            right_index: HashMap::new(),
        }
    }

    /// The bilinear delta rule: `ΔL` joins the right side *before*
    /// `ΔR` lands, `ΔR` joins the left side *after* `ΔL` landed — so
    /// the `ΔL ⋈ ΔR` cross term is produced exactly once.
    fn step(&mut self, left_delta: &RowDelta, right_delta: &RowDelta) -> RowDelta {
        let mut raw = Vec::new();
        for (r, w) in left_delta.iter() {
            if let Some(matches) = self.right_index.get(&(self.left_key)(r)) {
                for (s, w2) in matches {
                    raw.push((r.concat(s), w * w2));
                }
            }
        }
        apply_to_index(&mut self.left_index, &self.left_key, left_delta);
        for (s, w) in right_delta.iter() {
            if let Some(matches) = self.left_index.get(&(self.right_key)(s)) {
                for (r, w2) in matches {
                    raw.push((r.concat(s), w2 * w));
                }
            }
        }
        apply_to_index(&mut self.right_index, &self.right_key, right_delta);
        RowDelta::new(raw)
    }
}

fn apply_to_index(index: &mut HashMap<Row, HashMap<Row, i64>>, key: &RowFn, delta: &RowDelta) {
    for (row, weight) in delta.iter() {
        let k = key(row);
        let bucket = index.entry(k.clone()).or_default();
        let w = bucket.entry(row.clone()).or_insert(0);
        *w += weight;
        if *w == 0 {
            bucket.remove(row);
        }
        if bucket.is_empty() {
            index.remove(&k);
        }
    }
}

/// Which extremum a min/max node maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Extremum {
    Min,
    Max,
}

impl Extremum {
    pub(crate) fn pick(self, a: i64, b: i64) -> i64 {
        match self {
            Extremum::Min => a.min(b),
            Extremum::Max => a.max(b),
        }
    }

    fn scan(self, values: impl Iterator<Item = i64>) -> i64 {
        match self {
            Extremum::Min => values.min().expect("non-empty support"),
            Extremum::Max => values.max().expect("non-empty support"),
        }
    }
}

/// One min/max group: the multiset of argument values currently
/// derivable (value → total weight) plus the cached extremum.
pub(crate) struct ExtremeGroup {
    support: HashMap<i64, i64>,
    best: i64,
}

/// One circuit node's operator and its incremental state.
pub(crate) enum OpState {
    Source(SourceState),
    Filter {
        input: usize,
        pred: Predicate,
    },
    Map {
        input: usize,
        f: RowFn,
    },
    Join(JoinState),
    Count {
        input: usize,
        key: RowFn,
        groups: HashMap<Row, i64>,
    },
    Sum {
        input: usize,
        key: RowFn,
        value: ValueFn,
        groups: HashMap<Row, (i64, i64)>,
    },
    Extreme {
        input: usize,
        key: RowFn,
        value: ValueFn,
        kind: Extremum,
        groups: HashMap<Row, ExtremeGroup>,
        rescans: u64,
    },
}

impl OpState {
    /// Input node indices, left before right.
    pub(crate) fn inputs(&self) -> Vec<usize> {
        match self {
            OpState::Source(_) => Vec::new(),
            OpState::Filter { input, .. }
            | OpState::Map { input, .. }
            | OpState::Count { input, .. }
            | OpState::Sum { input, .. }
            | OpState::Extreme { input, .. } => vec![*input],
            OpState::Join(j) => vec![j.left, j.right],
        }
    }

    /// Consumes this commit's upstream deltas (indexed by node) and
    /// returns the node's own output delta. Sources are fed directly
    /// by the circuit and never stepped.
    pub(crate) fn step(&mut self, deltas: &[RowDelta]) -> RowDelta {
        match self {
            OpState::Source(_) => unreachable!("source deltas are fed, not stepped"),
            OpState::Filter { input, pred } => RowDelta::new(
                deltas[*input]
                    .iter()
                    .filter(|(r, _)| pred(r))
                    .map(|(r, w)| (r.clone(), w))
                    .collect(),
            ),
            OpState::Map { input, f } => {
                RowDelta::new(deltas[*input].iter().map(|(r, w)| (f(r), w)).collect())
            }
            OpState::Join(j) => {
                let (left, right) = (j.left, j.right);
                j.step(&deltas[left], &deltas[right])
            }
            OpState::Count { input, key, groups } => step_count(groups, key, &deltas[*input]),
            OpState::Sum { input, key, value, groups } => {
                step_sum(groups, key, value, &deltas[*input])
            }
            OpState::Extreme { input, key, value, kind, groups, rescans } => {
                step_extreme(groups, key, value, *kind, &deltas[*input], rescans)
            }
        }
    }

    /// Number of re-scan fallbacks a min/max node has paid (`None`
    /// for every other operator).
    pub(crate) fn rescans(&self) -> Option<u64> {
        match self {
            OpState::Extreme { rescans, .. } => Some(*rescans),
            _ => None,
        }
    }

    /// Discards all incremental state so the node can be re-seeded
    /// from scratch — the snapshot-recovery path a [`Lagged`] source
    /// triggers. Source mirrors/buffers are reset by the circuit (it
    /// holds the snapshot); the `rescans` odometer survives, it counts
    /// work actually paid.
    ///
    /// [`Lagged`]: xivm_core::Lagged
    pub(crate) fn reset(&mut self) {
        match self {
            OpState::Source(_) | OpState::Filter { .. } | OpState::Map { .. } => {}
            OpState::Join(j) => {
                j.left_index.clear();
                j.right_index.clear();
            }
            OpState::Count { groups, .. } => groups.clear(),
            OpState::Sum { groups, .. } => groups.clear(),
            OpState::Extreme { groups, .. } => groups.clear(),
        }
    }
}

fn step_count(groups: &mut HashMap<Row, i64>, key: &RowFn, delta: &RowDelta) -> RowDelta {
    let mut touched: HashMap<Row, i64> = HashMap::new();
    for (r, w) in delta.iter() {
        *touched.entry(key(r)).or_insert(0) += w;
    }
    let mut raw = Vec::new();
    for (k, dw) in touched {
        if dw == 0 {
            continue;
        }
        let old = groups.get(&k).copied().unwrap_or(0);
        let new = old + dw;
        assert!(new >= 0, "count aggregate went negative for group {k}");
        if old > 0 {
            raw.push((k.with(Datum::Int(old)), -1));
        }
        if new > 0 {
            raw.push((k.with(Datum::Int(new)), 1));
            groups.insert(k, new);
        } else {
            groups.remove(&k);
        }
    }
    RowDelta::new(raw)
}

fn step_sum(
    groups: &mut HashMap<Row, (i64, i64)>,
    key: &RowFn,
    value: &ValueFn,
    delta: &RowDelta,
) -> RowDelta {
    let mut touched: HashMap<Row, (i64, i64)> = HashMap::new();
    for (r, w) in delta.iter() {
        let e = touched.entry(key(r)).or_insert((0, 0));
        e.0 += w;
        e.1 += w * value(r);
    }
    let mut raw = Vec::new();
    for (k, (dc, ds)) in touched {
        if dc == 0 && ds == 0 {
            continue;
        }
        let (oc, os) = groups.get(&k).copied().unwrap_or((0, 0));
        let (nc, ns) = (oc + dc, os + ds);
        assert!(nc >= 0, "sum aggregate count went negative for group {k}");
        if oc > 0 {
            raw.push((k.with(Datum::Int(os)), -1));
        }
        if nc > 0 {
            raw.push((k.with(Datum::Int(ns)), 1));
            groups.insert(k, (nc, ns));
        } else {
            groups.remove(&k);
        }
    }
    RowDelta::new(raw)
}

fn step_extreme(
    groups: &mut HashMap<Row, ExtremeGroup>,
    key: &RowFn,
    value: &ValueFn,
    kind: Extremum,
    delta: &RowDelta,
    rescans: &mut u64,
) -> RowDelta {
    let mut touched: HashMap<Row, Vec<(i64, i64)>> = HashMap::new();
    for (r, w) in delta.iter() {
        touched.entry(key(r)).or_default().push((value(r), w));
    }
    let mut raw = Vec::new();
    for (k, changes) in touched {
        let (old_best, new_best) = {
            let group = groups
                .entry(k.clone())
                .or_insert_with(|| ExtremeGroup { support: HashMap::new(), best: 0 });
            let old_best = (!group.support.is_empty()).then_some(group.best);
            let mut changed: Vec<i64> = Vec::with_capacity(changes.len());
            for (v, w) in changes {
                let e = group.support.entry(v).or_insert(0);
                *e += w;
                assert!(*e >= 0, "extremum support went negative for group {k}");
                if *e == 0 {
                    group.support.remove(&v);
                }
                changed.push(v);
            }
            let new_best = if group.support.is_empty() {
                None
            } else if let Some(ob) = old_best {
                if group.support.contains_key(&ob) {
                    // The standing extremum survived: only the
                    // changed values can beat it.
                    let mut best = ob;
                    for v in changed.into_iter().filter(|v| group.support.contains_key(v)) {
                        best = kind.pick(best, v);
                    }
                    Some(best)
                } else {
                    // The extremum itself was retracted — re-scan
                    // the surviving support (the fallback).
                    *rescans += 1;
                    Some(kind.scan(group.support.keys().copied()))
                }
            } else {
                // Fresh group: the extremum of the values this delta
                // inserted (all of the support), still O(|Δ|).
                Some(kind.scan(group.support.keys().copied()))
            };
            if let Some(n) = new_best {
                group.best = n;
            }
            (old_best, new_best)
        };
        if new_best.is_none() {
            groups.remove(&k);
        }
        if old_best != new_best {
            if let Some(o) = old_best {
                raw.push((k.with(Datum::Int(o)), -1));
            }
            if let Some(n) = new_best {
                raw.push((k.with(Datum::Int(n)), 1));
            }
        }
    }
    RowDelta::new(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(i64, i64, i64)]) -> RowDelta {
        // (group, value, weight) triples
        RowDelta::new(
            pairs
                .iter()
                .map(|&(g, v, w)| (Row::new(vec![Datum::Int(g), Datum::Int(v)]), w))
                .collect(),
        )
    }

    fn group_key() -> RowFn {
        Arc::new(|r: &Row| r.project(&[0]))
    }

    fn value_fn() -> ValueFn {
        Arc::new(|r: &Row| r.datum(1).as_int().expect("int value"))
    }

    fn agg_row(g: i64, v: i64) -> Row {
        Row::new(vec![Datum::Int(g), Datum::Int(v)])
    }

    #[test]
    fn count_retracts_old_and_inserts_new_group_rows() {
        let mut groups = HashMap::new();
        let key = group_key();
        let d1 = step_count(&mut groups, &key, &rows(&[(1, 10, 1), (1, 11, 1), (2, 20, 1)]));
        assert_eq!(d1.entries(), &[(agg_row(1, 2), 1), (agg_row(2, 1), 1)]);
        let d2 = step_count(&mut groups, &key, &rows(&[(1, 10, -1), (2, 20, -1)]));
        assert_eq!(d2.entries(), &[(agg_row(1, 1), 1), (agg_row(1, 2), -1), (agg_row(2, 1), -1)]);
        assert!(!groups.contains_key(&Row::new(vec![Datum::Int(2)])), "empty group dropped");
    }

    #[test]
    fn sum_tracks_group_totals() {
        let mut groups = HashMap::new();
        let (key, value) = (group_key(), value_fn());
        let d1 = step_sum(&mut groups, &key, &value, &rows(&[(1, 10, 2), (1, 5, 1)]));
        assert_eq!(d1.entries(), &[(agg_row(1, 25), 1)]);
        let d2 = step_sum(&mut groups, &key, &value, &rows(&[(1, 10, -1)]));
        assert_eq!(d2.entries(), &[(agg_row(1, 15), 1), (agg_row(1, 25), -1)]);
        let d3 = step_sum(&mut groups, &key, &value, &rows(&[(1, 10, -1), (1, 5, -1)]));
        assert_eq!(d3.entries(), &[(agg_row(1, 15), -1)]);
        assert!(groups.is_empty());
    }

    #[test]
    fn min_rescans_only_when_the_extremum_is_retracted() {
        let mut groups = HashMap::new();
        let (key, value) = (group_key(), value_fn());
        let mut rescans = 0;
        let d1 = step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Min,
            &rows(&[(1, 5, 1), (1, 9, 1)]),
            &mut rescans,
        );
        assert_eq!(d1.entries(), &[(agg_row(1, 5), 1)]);
        assert_eq!(rescans, 0);

        // Inserting a better value: cheap path.
        let d2 = step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Min,
            &rows(&[(1, 3, 1)]),
            &mut rescans,
        );
        assert_eq!(d2.entries(), &[(agg_row(1, 3), 1), (agg_row(1, 5), -1)]);
        assert_eq!(rescans, 0);

        // Removing a non-extremum value: no output, no rescan.
        let d3 = step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Min,
            &rows(&[(1, 9, -1)]),
            &mut rescans,
        );
        assert!(d3.is_empty());
        assert_eq!(rescans, 0);

        // Removing the minimum forces the re-scan fallback.
        let d4 = step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Min,
            &rows(&[(1, 3, -1)]),
            &mut rescans,
        );
        assert_eq!(d4.entries(), &[(agg_row(1, 3), -1), (agg_row(1, 5), 1)]);
        assert_eq!(rescans, 1);

        // Removing the last value drops the group entirely.
        let d5 = step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Min,
            &rows(&[(1, 5, -1)]),
            &mut rescans,
        );
        assert_eq!(d5.entries(), &[(agg_row(1, 5), -1)]);
        assert!(groups.is_empty());
    }

    #[test]
    fn max_mirrors_min() {
        let mut groups = HashMap::new();
        let (key, value) = (group_key(), value_fn());
        let mut rescans = 0;
        step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Max,
            &rows(&[(1, 5, 1), (1, 9, 1)]),
            &mut rescans,
        );
        let d = step_extreme(
            &mut groups,
            &key,
            &value,
            Extremum::Max,
            &rows(&[(1, 9, -1)]),
            &mut rescans,
        );
        assert_eq!(d.entries(), &[(agg_row(1, 5), 1), (agg_row(1, 9), -1)]);
        assert_eq!(rescans, 1);
    }

    #[test]
    fn join_produces_the_cross_term_exactly_once() {
        let mut j = JoinState::new(
            0,
            1,
            Arc::new(|r: &Row| r.project(&[0])),
            Arc::new(|r: &Row| r.project(&[0])),
        );
        // Both sides change in the same commit: (k=1, "l") meets
        // (k=1, "r") even though neither was present before.
        let dl = RowDelta::new(vec![(Row::new(vec![Datum::Int(1), Datum::Str("l".into())]), 1)]);
        let dr = RowDelta::new(vec![(Row::new(vec![Datum::Int(1), Datum::Str("r".into())]), 1)]);
        let out = j.step(&dl, &dr);
        assert_eq!(out.len(), 1);
        let (row, w) = out.iter().next().unwrap();
        assert_eq!(w, 1);
        assert_eq!(row.arity(), 4);

        // Retracting one side retracts the pair.
        let out2 = j.step(
            &RowDelta::new(vec![(Row::new(vec![Datum::Int(1), Datum::Str("l".into())]), -1)]),
            &RowDelta::empty(),
        );
        assert_eq!(out2.iter().next().unwrap().1, -1);
        assert!(j.left_index.is_empty(), "retracted rows leave no index residue");
    }

    #[test]
    fn weighted_join_multiplies_weights() {
        let mut j = JoinState::new(
            0,
            1,
            Arc::new(|r: &Row| r.project(&[0])),
            Arc::new(|r: &Row| r.project(&[0])),
        );
        let dl = RowDelta::new(vec![(Row::new(vec![Datum::Int(1)]), 2)]);
        let dr = RowDelta::new(vec![(Row::new(vec![Datum::Int(1)]), 3)]);
        let out = j.step(&dl, &dr);
        assert_eq!(out.iter().next().unwrap().1, 6);
    }
}
