//! Socket replication of xivm view changefeeds.
//!
//! A [`FeedServer`] owns a subscription on one view of a
//! [`Database`](xivm_core::database::Database) and broadcasts every
//! commit's [`DeltaEvent`](xivm_core::DeltaEvent) — framed with
//! [`xivm_core::snapshot::encode_event`] — to any number of TCP
//! replicas. A [`ReplicaClient`] maintains a **byte-identical** copy
//! of the view's store (`encode_store(replica) ==
//! encode_store(source)` after syncing to the source's sequence
//! number) by replaying the stream.
//!
//! Resumption is first-class: a client reconnecting after a crash
//! offers its high-water mark, and the server either replays the
//! missing events from a bounded retained window or answers with a
//! full store snapshot plus resume point — correct either way, with
//! bounded server memory. `Lagged` markers (a bounded subscription
//! under [`DropAndMark`](xivm_core::SlowConsumerPolicy::DropAndMark)
//! that overflowed) propagate to every replica, which recover through
//! the same reconnect path. Deferred views compose transparently: a
//! refresh commit is one ordinary event whose
//! [`folded`](xivm_core::DeltaEvent::folded) range names the commits
//! it coalesces, so replicas fold the whole batch atomically.
//!
//! See [`wire`] for the exact byte layout.
//!
//! ```no_run
//! use xivm_core::database::Database;
//! use xivm_feed::{FeedServer, ReplicaClient};
//!
//! let mut db = Database::builder()
//!     .document("<a><b/></a>")
//!     .view("ab", "//a{id}//b{id}")
//!     .build()
//!     .unwrap();
//! let ab = db.view("ab").unwrap();
//! let mut server = FeedServer::bind("127.0.0.1:0", &mut db, ab, 64).unwrap();
//!
//! // Typically in another process:
//! let mut replica = ReplicaClient::connect(server.local_addr(), "ab").unwrap();
//!
//! db.apply("insert <b/> into /a").unwrap();
//! server.pump(&db);
//! replica.sync_to(db.last_seq()).unwrap();
//! assert!(replica.identical_to(db.store(ab)));
//! ```

pub mod wire;

mod client;
mod server;

pub use client::ReplicaClient;
pub use server::FeedServer;
pub use wire::{FeedError, FrameKind, MAX_FRAME, PROTOCOL_VERSION};
