//! Update-sequence pipeline: schema guarding and PUL optimization.
//!
//! Shows the two companion facilities around the maintenance engine:
//!
//! 1. **DTD Δ⁺ checks** (Section 3.3) — rejecting an insertion that
//!    would certainly violate the schema, before touching anything;
//! 2. **PUL reduction** (Section 5) — collapsing a sequence of
//!    statements into fewer atomic operations before propagating them
//!    in one pass (Figure 13's CP → OR → PINT/PDDT pipeline).
//!
//! ```sh
//! cargo run --example update_pipeline
//! ```

use xivm::core::{MaintenanceEngine, SnowcapStrategy};
use xivm::dtd::{check_insert, implications, parse_dtd};
use xivm::pattern::parse_pattern;
use xivm::pulopt::reduce;
use xivm::update::statement::parse_statement;
use xivm::update::{compute_pul, Pul};
use xivm::xml::parse_document;

fn main() {
    // --- 1. schema guarding -------------------------------------------------
    // Figure 5(a): every b must contain a c.
    let dtd = parse_dtd(
        "d1 -> AS\n\
         AS -> a+\n\
         a -> BS\n\
         BS -> b+\n\
         b -> c\n\
         c -> ()",
    )
    .expect("valid DTD");
    println!("Δ⁺ implications derived from the DTD:");
    for imp in implications(&dtd) {
        println!("  {imp}");
    }
    // Example 3.9: this insertion cannot be valid.
    let bad = check_insert(&dtd, "AS", "<a><b></b></a>");
    println!("\ninsert <a><b/></a>      → {}", bad.unwrap_err());
    let good = check_insert(&dtd, "AS", "<a><b><c/></b></a>");
    println!("insert <a><b><c/></b></a> → {:?} (accepted)", good);

    // --- 2. PUL reduction ---------------------------------------------------
    let mut doc = parse_document("<r><x><w/></x><y/><z/></r>").expect("well-formed XML");
    let view = parse_pattern("//r{id}//b{id}").expect("valid pattern");
    let mut engine = MaintenanceEngine::new(&doc, view, SnowcapStrategy::MinimalChain);

    // A sequence of statements, as an application would issue them.
    let statements = [
        "insert <b/> into //w",     // pointless: //x is deleted below (rule O3)
        "insert <b/> into //x",     // pointless: //x is deleted below (rule O1)
        "delete //x",               //
        "insert <b>1</b> into //z", // merged with the next (rule I5)
        "insert <b>2</b> into //z",
    ];
    let mut ops = Vec::new();
    for s in statements {
        let stmt = parse_statement(s).expect("valid statement");
        ops.extend(compute_pul(&doc, &stmt).ops);
    }
    let pul = Pul::new(ops);
    let (reduced, trace) = reduce(&pul);
    println!(
        "\nreduced the sequence from {} to {} atomic operations \
         (O1 fired {}, O3 fired {}, I5 fired {})",
        trace.ops_before, trace.ops_after, trace.o1_fired, trace.o3_fired, trace.i5_fired
    );

    let report = engine.propagate_pul(&mut doc, &reduced).expect("propagation succeeds");
    println!(
        "propagated in one pass: +{} tuples, -{} tuples, document now: {}",
        report.tuples_added,
        report.tuples_removed,
        xivm::xml::serialize_document(&doc)
    );
}
