//! Relations: ordered bags of tuples over a named schema.

use crate::tuple::Tuple;
use std::fmt;

/// One view column: the pattern-node name it binds plus which extra
/// items (`val`, `cont`) the view stores for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub stores_val: bool,
    pub stores_cont: bool,
}

impl Column {
    pub fn id_only(name: impl Into<String>) -> Self {
        Column { name: name.into(), stores_val: false, stores_cont: false }
    }

    pub fn with(name: impl Into<String>, val: bool, cont: bool) -> Self {
        Column { name: name.into(), stores_val: val, stores_cont: cont }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by pattern-node name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Concatenation of two schemas (product / join output schema).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema { columns: cols.iter().map(|&c| self.columns[c].clone()).collect() }
    }
}

/// An ordered bag of tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<Tuple>,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        Relation { schema, rows: Vec::new() }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|t| t.arity() == schema.arity()));
        Relation { schema, rows }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts rows by the document order of the ID in `col` (stable, so
    /// ties keep their relative order).
    pub fn sort_by_col(&mut self, col: usize) {
        self.rows.sort_by(|a, b| a.field(col).id.doc_cmp(&b.field(col).id));
    }

    /// True iff rows are sorted by document order of column `col`.
    pub fn is_sorted_by_col(&self, col: usize) -> bool {
        self.rows.windows(2).all(|w| w[0].field(col).id.doc_cmp(&w[1].field(col).id).is_le())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<_> = self.schema.columns.iter().map(|c| c.name.as_str()).collect();
        writeln!(f, "[{}] ({} rows)", names.join(", "), self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Field;
    use xivm_xml::{dewey::Step, DeweyId, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    fn row(ords: &[u64]) -> Tuple {
        Tuple::new(ords.iter().map(|&o| Field::id_only(id(&[(0, o)]))).collect())
    }

    #[test]
    fn schema_lookup_and_concat() {
        let s1 = Schema::new(vec![Column::id_only("a"), Column::with("b", true, false)]);
        let s2 = Schema::new(vec![Column::id_only("c")]);
        assert_eq!(s1.col("b"), Some(1));
        assert_eq!(s1.col("z"), None);
        let s = s1.concat(&s2);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.col("c"), Some(2));
    }

    #[test]
    fn sort_by_col_orders_rows() {
        let schema = Schema::new(vec![Column::id_only("a")]);
        let mut rel = Relation::with_rows(schema, vec![row(&[30]), row(&[10]), row(&[20])]);
        assert!(!rel.is_sorted_by_col(0));
        rel.sort_by_col(0);
        assert!(rel.is_sorted_by_col(0));
        let ords: Vec<_> = rel.rows.iter().map(|t| t.field(0).id.steps()[0].ord).collect();
        assert_eq!(ords, vec![10, 20, 30]);
    }

    #[test]
    fn projection_of_schema() {
        let s = Schema::new(vec![Column::id_only("a"), Column::id_only("b")]);
        let p = s.project(&[1]);
        assert_eq!(p.columns[0].name, "b");
    }
}
