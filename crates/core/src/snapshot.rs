//! Snapshots: frozen in-memory database images and binary view images.
//!
//! Two layers share this module:
//!
//! * [`DatabaseSnapshot`] — a cheap MVCC snapshot of a whole
//!   [`Database`](crate::database::Database): the document (a
//!   copy-on-write [`Document`] clone, O(chunks)) plus every view
//!   store behind an `Arc`, stamped with the sequence number of the
//!   last sealed commit. Readers iterate, cursor and evaluate XPath
//!   against the frozen image while commits keep landing on the live
//!   database; a commit that must mutate a store still held by a
//!   snapshot copies it first (`Arc::make_mut`), so neither side ever
//!   blocks the other.
//! * [`encode_store`] / [`decode_store`] — the on-disk image. Section
//!   7 contrasts the approach with Galax's algebra-based maintenance
//!   precisely on this point: "our approach requires manipulating only
//!   tuples of IDs, that may be stored on disk … and read as needed".
//!   The encoding is a compact self-describing image of a
//!   [`ViewStore`] built on the variable-length Dewey ID encoding.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "XIVM" · version u16 · arity u16
//! per column:  name (len-prefixed utf-8) · flags u8 (val|cont)
//! tuple count u64
//! per tuple:   derivation count u64
//!              per field: dewey (len-prefixed) ·
//!                         val  (0u32 or len-prefixed utf-8) ·
//!                         cont (0u32 or len-prefixed utf-8)
//! ```

use crate::database::ViewHandle;
use crate::error::Error;
use crate::view_store::{Cursor, ViewStore};
use std::sync::Arc;
use xivm_algebra::{Column, Field, Schema, Tuple};
use xivm_pattern::xpath::{eval_path, parse_xpath};
use xivm_xml::{serialize_document, DeweyId, Document, NodeId};

const MAGIC: &[u8; 4] = b"XIVM";
const VERSION: u16 = 1;

/// Snapshot decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    BadMagic,
    UnsupportedVersion(u16),
    Truncated,
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a xivm snapshot"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes the store (schema, tuples, derivation counts).
pub fn encode_store(store: &ViewStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + store.len() * 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let schema = store.schema();
    out.extend_from_slice(&(schema.arity() as u16).to_le_bytes());
    for col in &schema.columns {
        write_bytes(&mut out, col.name.as_bytes());
        out.push(u8::from(col.stores_val) | (u8::from(col.stores_cont) << 1));
    }
    let tuples = store.cursor();
    out.extend_from_slice(&(tuples.len() as u64).to_le_bytes());
    for (t, count) in tuples {
        out.extend_from_slice(&count.to_le_bytes());
        for field in t.fields() {
            write_bytes(&mut out, &field.id.encode());
            write_opt_str(&mut out, field.val.as_deref());
            write_opt_str(&mut out, field.cont.as_deref());
        }
    }
    out
}

/// Reconstructs a store from [`encode_store`]'s output.
pub fn decode_store(bytes: &[u8]) -> Result<ViewStore, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let arity = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = String::from_utf8(r.bytes_field()?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("column name"))?;
        let flags = r.take(1)?[0];
        columns.push(Column::with(name, flags & 1 != 0, flags & 2 != 0));
    }
    let schema = Schema::new(columns);
    let n = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")) as usize;
    let mut store = ViewStore::from_schema(schema);
    for _ in 0..n {
        let count = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            let id = DeweyId::decode(r.bytes_field()?).ok_or(SnapshotError::Corrupt("dewey id"))?;
            let val = read_opt_str(&mut r)?;
            let cont = read_opt_str(&mut r)?;
            fields.push(Field::new(id, val, cont));
        }
        store.add(Tuple::new(fields), count);
    }
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(store)
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn write_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
        Some(s) => write_bytes(out, s.as_bytes()),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")) as usize;
        self.take(len)
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<Arc<str>>, SnapshotError> {
    let len = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
    if len == u32::MAX {
        return Ok(None);
    }
    let s = std::str::from_utf8(r.take(len as usize)?)
        .map_err(|_| SnapshotError::Corrupt("utf-8 string"))?;
    Ok(Some(Arc::from(s)))
}

// ---------------------------------------------------------------------
// In-memory MVCC snapshots
// ---------------------------------------------------------------------

/// A frozen image of a whole database at one commit boundary.
///
/// Produced by [`Database::snapshot`]: the document is a copy-on-write
/// clone (chunk pointers only, see [`xivm_xml::Arena`]) and every view
/// store is the live `Arc` at capture time, so taking a snapshot is
/// O(views + document chunks) — no tuple and no node is copied. The
/// image is gapless: it reflects exactly the commits `1..=seq()`,
/// never a half-propagated state, because [`Database`] only exposes
/// `&self` between commits.
///
/// Later commits never show through: the first mutation of any chunk,
/// canonical-relation list or store still shared with this snapshot
/// copies it on the writer's side (`Arc::make_mut`), so readers keep
/// the frozen originals without ever blocking a commit.
///
/// [`Database`]: crate::database::Database
/// [`Database::snapshot`]: crate::database::DbInner::snapshot
pub struct DatabaseSnapshot {
    seq: u64,
    doc: Document,
    views: Vec<(String, Arc<ViewStore>)>,
}

impl DatabaseSnapshot {
    /// Captures an image (called by `Database::snapshot` with its
    /// current commit counter, document and store `Arc`s).
    pub(crate) fn new(seq: u64, doc: Document, views: Vec<(String, Arc<ViewStore>)>) -> Self {
        DatabaseSnapshot { seq, doc, views }
    }

    /// The sequence number of the last commit this snapshot reflects
    /// (0 for a snapshot of a fresh database).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The frozen document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Serializes the frozen document.
    pub fn serialize(&self) -> String {
        serialize_document(&self.doc)
    }

    /// Number of views in the image.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Resolves a view name to its handle. Handles are interchangeable
    /// with the originating database's: both index declaration order.
    pub fn view(&self, name: &str) -> Result<ViewHandle, Error> {
        self.views
            .iter()
            .position(|(n, _)| n == name)
            .map(ViewHandle)
            .ok_or_else(|| Error::UnknownView(name.into()))
    }

    /// View names in declaration order.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The name behind a handle.
    pub fn name(&self, view: ViewHandle) -> &str {
        &self.views.get(view.index()).expect("handle from this snapshot").0
    }

    /// The frozen tuples of a view.
    pub fn store(&self, view: ViewHandle) -> &ViewStore {
        &self.views.get(view.index()).expect("handle from this snapshot").1
    }

    /// Document-order cursor over a view's frozen tuples.
    pub fn cursor(&self, view: ViewHandle) -> Cursor<'_> {
        self.store(view).cursor()
    }

    /// Evaluates an XPath location path against the frozen document —
    /// reads see exactly the state at [`Self::seq`], no matter how many
    /// commits have landed on the live database since.
    pub fn xpath(&self, path: &str) -> Result<Vec<NodeId>, Error> {
        let parsed = parse_xpath(path)?;
        Ok(eval_path(&self.doc, &parsed))
    }

    /// Binary image of one view ([`encode_store`]): snapshots are the
    /// natural producer of on-disk images, being immutable by
    /// construction.
    pub fn encode_view(&self, view: ViewHandle) -> Vec<u8> {
        encode_store(self.store(view))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::compile::view_tuples;
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    fn sample_store() -> ViewStore {
        let d = parse_document("<a>x<c><b>t</b><b/></c><f><c><b/></c></f></a>").unwrap();
        let p = parse_pattern("//a{id,val}[//c{id}]//b{id,cont}").unwrap();
        ViewStore::from_counted(&p, view_tuples(&d, &p))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let bytes = encode_store(&store);
        let back = decode_store(&bytes).unwrap();
        assert!(store.same_content_as(&back));
        assert_eq!(store.schema(), back.schema());
        // val/cont strings survive too
        assert!(store.identical_to(&back));
    }

    #[test]
    fn empty_store_roundtrips() {
        let p = parse_pattern("//a{id}").unwrap();
        let store = ViewStore::new(&p);
        let back = decode_store(&encode_store(&store)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let store = sample_store();
        let bytes = encode_store(&store);
        assert!(matches!(decode_store(b"nope"), Err(SnapshotError::BadMagic)));
        assert_eq!(
            decode_store(&bytes[..bytes.len() - 3]).map(|_| ()).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut versioned = bytes.clone();
        versioned[4] = 99;
        assert!(matches!(decode_store(&versioned), Err(SnapshotError::UnsupportedVersion(_))));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_store(&trailing).map(|_| ()).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn errors_display() {
        assert!(SnapshotError::BadMagic.to_string().contains("snapshot"));
        assert!(SnapshotError::Corrupt("x").to_string().contains("x"));
    }
}
