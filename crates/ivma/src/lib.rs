//! Comparison baselines for the Section 6 experiments.
//!
//! * [`recompute`] — re-evaluating the view from scratch on the
//!   updated document (Section 6.5, Figures 26–27);
//! * [`ivma`] — a re-implementation of the node-at-a-time IVMA
//!   algorithm of Sawires et al. \[2005\] (Section 6.6, Figure 28):
//!   updates are applied one node at a time and each node is
//!   propagated individually by navigating the document, with no
//!   structural joins and no bulk Δ tables.
//!
//! Both baselines are driven by the Figure 26–28 runners in
//! `xivm_bench`; their rows in `ARCHITECTURE.md` (repository root)
//! place them in the workspace-wide picture.

pub mod ivma;
pub mod recompute;

pub use ivma::IvmaView;
pub use recompute::recompute_store;
