//! Algebraic incremental maintenance of XML materialized views — the
//! paper's primary contribution.
//!
//! Given a view `v` (a tree pattern with stored attributes) over a
//! document `d`, and a statement-level update `u`, the engine
//! transforms the materialized `v(d)` into `v(d')` without
//! recomputation:
//!
//! * [`term`] / [`expand`] — the `2^k − 1` union (resp. difference)
//!   terms obtained by distributing joins over `R ∪ Δ⁺` (`R \ Δ⁻`),
//!   Sections 3.1 / 4.1;
//! * [`prune`] — Propositions 3.3, 3.6, 3.8 (insertions) and 4.2, 4.3,
//!   4.7 (deletions);
//! * [`snowcap`] / [`lattice`] — the sub-pattern lattice, snowcap
//!   enumeration (Definition 3.11) and materialization strategies
//!   (Section 3.5 / experiment 6.7);
//! * [`etins`] — bulk term evaluation with structural joins
//!   (Algorithm 3 and its deletion counterpart);
//! * [`pint`] / [`pimt`] / [`pddt`] / [`pdmt`] — the four propagation
//!   algorithms (Algorithms 1, 4, 5, 6);
//! * [`view_store`] — the materialized view with derivation counts;
//! * [`engine`] — the end-to-end [`engine::MaintenanceEngine`] with the
//!   per-phase [`timing::Timings`] breakdown reported in Section 6;
//! * [`multiview`] / [`parallel`] / [`runtime`] — the shared
//!   multi-view pass (Section 3.5) and its worker-pool fan-out: views
//!   are partitioned into order-independent groups with the Figure 15
//!   rules and the per-view phases run on the persistent
//!   [`runtime::Runtime`] pool (lazy-started, zero spawns in steady
//!   state), bit-identical to the sequential pass — including the
//!   pipelined commit mode that overlaps the `finish` of one commit
//!   with the `prepare` of the next;
//! * [`database`] — the [`database::Database`] façade owning the
//!   document and all named views, with batched
//!   [`database::Transaction`]s through the Section 5 PUL optimizer;
//! * [`commit`] / [`subscribe`] — the delta-first client surface:
//!   every apply / commit returns a [`commit::Commit`] carrying each
//!   view's exact [`commit::ViewDelta`], and
//!   [`database::Database::subscribe`] accumulates those deltas into a
//!   changefeed with gapless commit sequence numbers, bounded queues
//!   and per-subscription [`subscribe::SlowConsumerPolicy`]s;
//! * [`service`] — the async commit service behind
//!   [`database::Database::apply_async`]: submission decoupled from
//!   sealing, with [`service::Ticket`]s, `flush()` barriers and
//!   panic containment (and, under `cfg(test)` / the `fault-inject`
//!   feature, the `fault` failpoints that prove it).

pub mod commit;
pub mod costmodel;
pub mod database;
pub mod engine;
pub mod error;
pub mod etins;
pub mod expand;
#[cfg(any(test, feature = "fault-inject"))]
pub mod fault;
pub mod lattice;
pub mod multiview;
pub mod parallel;
pub mod pddt;
pub mod pdmt;
pub mod pimt;
pub mod pint;
pub mod predflip;
pub mod prune;
pub mod runtime;
pub mod service;
pub mod snapshot;
pub mod snowcap;
pub mod strategy;
pub mod subscribe;
pub mod term;
pub mod timing;
pub mod view_store;

pub use commit::{Commit, ViewDelta, WeightedChange};
pub use database::{Database, DatabaseBuilder, MaintenanceMode, Transaction, ViewHandle};
// The static-analysis surface the `analyze(..)` builder knob exposes
// (the analyses themselves live in `xivm_analyze`).
pub use engine::{MaintenanceEngine, PreparedUpdate, UpdateReport};
pub use error::Error;
pub use multiview::MultiViewEngine;
pub use runtime::Runtime;
pub use service::Ticket;
pub use snapshot::DatabaseSnapshot;
pub use strategy::SnowcapStrategy;
pub use subscribe::{DeltaEvent, FeedEvent, Lagged, SlowConsumerPolicy, Subscription};
pub use term::Term;
pub use timing::Timings;
pub use view_store::{Cursor, ShardedStores, ViewStore};
pub use xivm_analyze::{AnalysisReport, AnalyzeMode, Analyzer};
