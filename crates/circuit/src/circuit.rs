//! Building and running circuits: [`CircuitBuilder`], [`Circuit`],
//! and the [`CircuitExt`] entry point on [`Database`].
//!
//! A circuit is a DAG of operator nodes over one database. Sources
//! subscribe to views; every other node names already-built nodes as
//! inputs, so creation order is a topological order and one in-order
//! pass per commit propagates every delta. [`CircuitBuilder::build`]
//! seeds the circuit by pushing each source's full current contents
//! through the same incremental step functions (incremental from
//! empty ≡ full evaluation), then [`Circuit::sync`] /
//! [`Circuit::sync_to`] replay committed deltas — gapless, in commit
//! order — keeping every node's [`DerivedStore`] exact in O(|Δ|) per
//! commit.

use crate::op::{Extremum, JoinState, OpState, SourceState};
use crate::row::Row;
use crate::zset::{DerivedStore, RowDelta};
use std::collections::HashMap;
use std::sync::Arc;
use xivm_core::{Database, DatabaseSnapshot, Error, FeedEvent, ViewHandle, ViewStore};

/// A reference to one node of a [`Circuit`] (or a circuit under
/// construction). Like [`ViewHandle`], a node is only meaningful on
/// the circuit that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(pub(crate) usize);

impl Node {
    /// Creation-order position inside the circuit.
    pub fn index(self) -> usize {
        self.0
    }
}

struct NodeSlot {
    op: OpState,
    store: DerivedStore,
    label: String,
}

/// Starts building a delta circuit over a database's views.
///
/// Implemented for [`Database`]; bring the trait into scope (it is in
/// the `xivm` prelude) and call `db.circuit()`.
pub trait CircuitExt {
    fn circuit(&mut self) -> CircuitBuilder<'_>;
}

impl CircuitExt for Database {
    fn circuit(&mut self) -> CircuitBuilder<'_> {
        CircuitBuilder::new(self)
    }
}

/// Builds a [`Circuit`] node by node. Holds the database exclusively,
/// so no commit can land between node creation and [`Self::build`] —
/// the seeded stores and the first subscribed event are guaranteed to
/// be adjacent.
pub struct CircuitBuilder<'db> {
    db: &'db mut Database,
    nodes: Vec<NodeSlot>,
}

impl<'db> CircuitBuilder<'db> {
    pub fn new(db: &'db mut Database) -> Self {
        CircuitBuilder { db, nodes: Vec::new() }
    }

    fn push(&mut self, op: OpState, label: String) -> Node {
        self.nodes.push(NodeSlot { op, store: DerivedStore::new(), label });
        Node(self.nodes.len() - 1)
    }

    fn check(&self, input: Node) {
        assert!(input.0 < self.nodes.len(), "input node from this circuit");
    }

    /// A source node over a view, by name.
    pub fn source(&mut self, view: &str) -> Result<Node, Error> {
        let handle = self.db.view(view)?;
        Ok(self.push(OpState::Source(SourceState::new(handle)), format!("source({view})")))
    }

    /// A source node over a view handle (from the same database).
    pub fn source_handle(&mut self, view: ViewHandle) -> Node {
        let label = format!("source({})", self.db.name(view));
        self.push(OpState::Source(SourceState::new(view)), label)
    }

    /// Keeps the input rows satisfying `pred`.
    pub fn filter(
        &mut self,
        input: Node,
        pred: impl Fn(&Row) -> bool + Send + Sync + 'static,
    ) -> Node {
        self.check(input);
        self.push(OpState::Filter { input: input.0, pred: Arc::new(pred) }, "filter".into())
    }

    /// Transforms every input row through `f` (weights follow the
    /// rows; images that collide sum their weights).
    pub fn map(&mut self, input: Node, f: impl Fn(&Row) -> Row + Send + Sync + 'static) -> Node {
        self.check(input);
        self.push(OpState::Map { input: input.0, f: Arc::new(f) }, "map".into())
    }

    /// Keeps only the listed row positions, in the given order — a
    /// [`Self::map`] over [`Row::project`].
    pub fn project(&mut self, input: Node, cols: Vec<usize>) -> Node {
        self.check(input);
        let label = format!("project{cols:?}");
        self.push(OpState::Map { input: input.0, f: Arc::new(move |r| r.project(&cols)) }, label)
    }

    /// Hash-joins two nodes on extracted keys; output rows are
    /// `left ++ right`, output weights multiply. `left` and `right`
    /// may be the same node (self-join).
    pub fn join(
        &mut self,
        left: Node,
        right: Node,
        left_key: impl Fn(&Row) -> Row + Send + Sync + 'static,
        right_key: impl Fn(&Row) -> Row + Send + Sync + 'static,
    ) -> Node {
        self.check(left);
        self.check(right);
        self.push(
            OpState::Join(JoinState::new(left.0, right.0, Arc::new(left_key), Arc::new(right_key))),
            "join".into(),
        )
    }

    /// Counts derivations per group; output rows are `key ++ count`.
    /// Group by [`Row::empty`] for a global count.
    pub fn count(
        &mut self,
        input: Node,
        key: impl Fn(&Row) -> Row + Send + Sync + 'static,
    ) -> Node {
        self.check(input);
        self.push(
            OpState::Count { input: input.0, key: Arc::new(key), groups: HashMap::new() },
            "count".into(),
        )
    }

    /// Sums `value` per group (weighted by derivations); output rows
    /// are `key ++ sum`.
    pub fn sum(
        &mut self,
        input: Node,
        key: impl Fn(&Row) -> Row + Send + Sync + 'static,
        value: impl Fn(&Row) -> i64 + Send + Sync + 'static,
    ) -> Node {
        self.check(input);
        self.push(
            OpState::Sum {
                input: input.0,
                key: Arc::new(key),
                value: Arc::new(value),
                groups: HashMap::new(),
            },
            "sum".into(),
        )
    }

    /// Minimum of `value` per group; output rows are `key ++ min`.
    /// Retracting a group's current minimum re-scans that group's
    /// surviving values (the fallback); every other change is O(1)
    /// per entry.
    pub fn min(
        &mut self,
        input: Node,
        key: impl Fn(&Row) -> Row + Send + Sync + 'static,
        value: impl Fn(&Row) -> i64 + Send + Sync + 'static,
    ) -> Node {
        self.extreme(input, Extremum::Min, Arc::new(key), Arc::new(value))
    }

    /// Maximum of `value` per group — see [`Self::min`].
    pub fn max(
        &mut self,
        input: Node,
        key: impl Fn(&Row) -> Row + Send + Sync + 'static,
        value: impl Fn(&Row) -> i64 + Send + Sync + 'static,
    ) -> Node {
        self.extreme(input, Extremum::Max, Arc::new(key), Arc::new(value))
    }

    fn extreme(
        &mut self,
        input: Node,
        kind: Extremum,
        key: crate::op::RowFn,
        value: crate::op::ValueFn,
    ) -> Node {
        self.check(input);
        let label = if kind == Extremum::Min { "min" } else { "max" };
        self.push(
            OpState::Extreme {
                input: input.0,
                key,
                value,
                kind,
                groups: HashMap::new(),
                rescans: 0,
            },
            label.into(),
        )
    }

    /// Subscribes every source, seeds every derived store from the
    /// views' current contents, and returns the running circuit,
    /// synced to
    /// [`Database::last_seq`](xivm_core::database::DbInner::last_seq).
    pub fn build(self) -> Circuit {
        let CircuitBuilder { db, mut nodes } = self;
        for slot in &mut nodes {
            if let OpState::Source(src) = &mut slot.op {
                src.mirror = db.store(src.view).clone();
                src.sub = Some(db.subscribe(src.view));
            }
        }
        let mut circuit = Circuit { nodes, synced: db.last_seq() };
        let seeds = circuit
            .nodes
            .iter()
            .map(|slot| match &slot.op {
                OpState::Source(src) => Some(src.seed_delta()),
                _ => None,
            })
            .collect();
        circuit.propagate(seeds);
        circuit
    }
}

/// A running delta circuit: one [`DerivedStore`] per node, maintained
/// from the subscribed views' changefeeds.
///
/// A circuit holds live subscriptions on its database; call
/// [`Self::detach`] when done with it so the database stops queueing
/// events for it. It is only meaningful with the database that built
/// it — syncing against another panics on the first sequence-number
/// mismatch.
pub struct Circuit {
    nodes: Vec<NodeSlot>,
    synced: u64,
}

impl Circuit {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The commit sequence number the derived stores reflect: every
    /// commit `1..=synced()` is folded in, nothing later.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Every node of the circuit, in creation (= topological) order —
    /// aligned with [`Self::recompute`]'s output by
    /// [`Node::index`].
    pub fn nodes(&self) -> Vec<Node> {
        (0..self.nodes.len()).map(Node).collect()
    }

    /// A node's materialized contents.
    pub fn store(&self, node: Node) -> &DerivedStore {
        &self.nodes[node.0].store
    }

    /// A node's contents sorted by [`Row`]'s total order.
    pub fn rows(&self, node: Node) -> Vec<(Row, i64)> {
        self.nodes[node.0].store.sorted_rows()
    }

    /// A node's display label (`source(name)`, `filter`, `join`, …).
    pub fn label(&self, node: Node) -> &str {
        &self.nodes[node.0].label
    }

    /// Number of re-scan fallbacks a `min`/`max` node has paid so far
    /// (`None` for other operators) — the observable cost of
    /// extremum retraction.
    pub fn rescans(&self, node: Node) -> Option<u64> {
        self.nodes[node.0].op.rescans()
    }

    /// One line per node: index, label, inputs — a textual picture of
    /// the DAG.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, slot) in self.nodes.iter().enumerate() {
            let inputs = slot.op.inputs();
            if inputs.is_empty() {
                out.push_str(&format!("n{i}: {}\n", slot.label));
            } else {
                let from: Vec<String> = inputs.iter().map(|j| format!("n{j}")).collect();
                out.push_str(&format!("n{i}: {} <- {}\n", slot.label, from.join(", ")));
            }
        }
        out
    }

    /// Catches up with every commit the database has sealed:
    /// equivalent to `sync_to(db, db.last_seq())`.
    pub fn sync(&mut self, db: &mut Database) -> u64 {
        self.sync_to(db, db.last_seq())
    }

    /// A commit barrier: folds in every pending commit with sequence
    /// number ≤ `seq` (later commits stay buffered), so the derived
    /// stores are readable *at* a known commit boundary — e.g. the
    /// [`DatabaseSnapshot::seq`] of a snapshot taken earlier, pairing
    /// frozen base-view reads with derived stores at the same seq.
    /// Pipelined commits seal strictly in order, so after
    /// `apply_pipelined` a barrier at any intermediate seq reproduces
    /// exactly that prefix. Returns the new [`Self::synced`] (which
    /// never exceeds
    /// [`Database::last_seq`](xivm_core::database::DbInner::last_seq),
    /// nor moves backwards).
    ///
    /// If any source subscription *lagged* (bounded queue under
    /// [`SlowConsumerPolicy::DropAndMark`](xivm_core::SlowConsumerPolicy):
    /// some events were dropped), the incremental replay is
    /// impossible, so the whole circuit re-seeds from a fresh
    /// [`Database::snapshot`](xivm_core::database::DbInner::snapshot)
    /// instead: every mirror and derived store
    /// is rebuilt at the snapshot boundary, and the returned
    /// [`Self::synced`] is the snapshot's seq — which may *overshoot*
    /// the requested `seq`, the price of the dropped prefix.
    pub fn sync_to(&mut self, db: &mut Database, seq: u64) -> u64 {
        let mut lagged = false;
        for slot in &mut self.nodes {
            if let OpState::Source(src) = &mut slot.op {
                let sub = src.sub.as_ref().expect("circuit not detached");
                for event in sub.drain() {
                    match event {
                        FeedEvent::Delta(e) => src.buffer.push_back(e),
                        FeedEvent::Lagged(_) => lagged = true,
                    }
                }
            }
        }
        if lagged {
            return self.reseed_from_snapshot(db);
        }
        let target = seq.min(db.last_seq());
        while self.synced < target {
            let next = self.synced + 1;
            let mut seeds: Vec<Option<RowDelta>> = Vec::with_capacity(self.nodes.len());
            for slot in &mut self.nodes {
                seeds.push(match &mut slot.op {
                    OpState::Source(src) => {
                        let event = src.buffer.pop_front().unwrap_or_else(|| {
                            panic!("no event for commit {next}: circuit synced against a database that did not build it")
                        });
                        assert_eq!(
                            event.seq, next,
                            "subscription feed out of sequence: circuit synced against a database that did not build it"
                        );
                        Some(src.advance(&event.delta))
                    }
                    _ => None,
                });
            }
            self.propagate(seeds);
            self.synced = next;
        }
        self.synced
    }

    /// Lag recovery: rebuilds the whole circuit at a fresh snapshot
    /// boundary. Incremental state and derived stores are discarded,
    /// every source mirror is reset to the snapshot's (gapless) view
    /// stores, and the seeds run through the same incremental step
    /// functions as [`CircuitBuilder::build`] — so the recovered
    /// circuit is bit-identical to one built at that seq.
    fn reseed_from_snapshot(&mut self, db: &mut Database) -> u64 {
        let snap = db.snapshot();
        for slot in &mut self.nodes {
            slot.store = DerivedStore::new();
            slot.op.reset();
            if let OpState::Source(src) = &mut slot.op {
                src.buffer.clear();
                src.mirror = snap.store(src.view).clone();
                // Anything still queued at or below the snapshot seq
                // is already inside the snapshot; a second Lagged
                // marker is subsumed by the reseed.
                if let Some(sub) = src.sub.as_ref() {
                    for event in sub.drain() {
                        if let FeedEvent::Delta(e) = event {
                            if e.seq > snap.seq() {
                                src.buffer.push_back(e);
                            }
                        }
                    }
                }
            }
        }
        let seeds = self
            .nodes
            .iter()
            .map(|slot| match &slot.op {
                OpState::Source(src) => Some(src.seed_delta()),
                _ => None,
            })
            .collect();
        self.propagate(seeds);
        self.synced = snap.seq();
        self.synced
    }

    /// One in-order pass: every node consumes its inputs' deltas for
    /// this commit, applies its own output delta to its store, and
    /// hands it downstream. Creation order is a topological order, so
    /// a single pass settles the whole DAG.
    fn propagate(&mut self, mut seeds: Vec<Option<RowDelta>>) {
        let mut deltas: Vec<RowDelta> = Vec::with_capacity(self.nodes.len());
        for (slot, seed) in self.nodes.iter_mut().zip(&mut seeds) {
            let delta = match &mut slot.op {
                OpState::Source(_) => seed.take().unwrap_or_default(),
                op => op.step(&deltas),
            };
            slot.store.apply(&delta);
            deltas.push(delta);
        }
    }

    /// Evaluates every node from scratch against the database's
    /// current stores — the non-incremental oracle the property suite
    /// compares [`Self::store`] against (bit-identical at every
    /// commit).
    pub fn recompute(&self, db: &Database) -> Vec<DerivedStore> {
        self.recompute_with(&|view| db.store(view))
    }

    /// Like [`Self::recompute`], but against a frozen
    /// [`DatabaseSnapshot`] — pair with `sync_to(db, snapshot.seq())`
    /// to check derived stores at a snapshot boundary.
    pub fn recompute_at(&self, snapshot: &DatabaseSnapshot) -> Vec<DerivedStore> {
        self.recompute_with(&|view| snapshot.store(view))
    }

    fn recompute_with<'a>(
        &self,
        store_of: &dyn Fn(ViewHandle) -> &'a ViewStore,
    ) -> Vec<DerivedStore> {
        let mut out: Vec<DerivedStore> = Vec::with_capacity(self.nodes.len());
        for slot in &self.nodes {
            let raw: Vec<(Row, i64)> = match &slot.op {
                OpState::Source(src) => {
                    let vs = store_of(src.view);
                    let schema = vs.schema();
                    vs.iter().map(|(t, c)| (Row::from_tuple(t, schema), c as i64)).collect()
                }
                OpState::Filter { input, pred } => out[*input]
                    .iter()
                    .filter(|(r, _)| pred(r))
                    .map(|(r, w)| (r.clone(), w))
                    .collect(),
                OpState::Map { input, f } => out[*input].iter().map(|(r, w)| (f(r), w)).collect(),
                OpState::Join(j) => {
                    let mut by_key: HashMap<Row, Vec<(&Row, i64)>> = HashMap::new();
                    for (s, w) in out[j.right].iter() {
                        by_key.entry((j.right_key)(s)).or_default().push((s, w));
                    }
                    let mut raw = Vec::new();
                    for (r, w) in out[j.left].iter() {
                        if let Some(matches) = by_key.get(&(j.left_key)(r)) {
                            for (s, w2) in matches {
                                raw.push((r.concat(s), w * w2));
                            }
                        }
                    }
                    raw
                }
                OpState::Count { input, key, .. } => {
                    let mut groups: HashMap<Row, i64> = HashMap::new();
                    for (r, w) in out[*input].iter() {
                        *groups.entry(key(r)).or_insert(0) += w;
                    }
                    groups
                        .into_iter()
                        .filter(|(_, c)| *c > 0)
                        .map(|(k, c)| (k.with(crate::row::Datum::Int(c)), 1))
                        .collect()
                }
                OpState::Sum { input, key, value, .. } => {
                    let mut groups: HashMap<Row, (i64, i64)> = HashMap::new();
                    for (r, w) in out[*input].iter() {
                        let e = groups.entry(key(r)).or_insert((0, 0));
                        e.0 += w;
                        e.1 += w * value(r);
                    }
                    groups
                        .into_iter()
                        .filter(|(_, (c, _))| *c > 0)
                        .map(|(k, (_, s))| (k.with(crate::row::Datum::Int(s)), 1))
                        .collect()
                }
                OpState::Extreme { input, key, value, kind, .. } => {
                    let mut groups: HashMap<Row, i64> = HashMap::new();
                    for (r, w) in out[*input].iter() {
                        debug_assert!(w > 0, "store weights are positive");
                        let v = value(r);
                        groups
                            .entry(key(r))
                            .and_modify(|best| *best = kind.pick(*best, v))
                            .or_insert(v);
                    }
                    groups
                        .into_iter()
                        .map(|(k, best)| (k.with(crate::row::Datum::Int(best)), 1))
                        .collect()
                }
            };
            let mut store = DerivedStore::new();
            store.apply(&RowDelta::new(raw));
            out.push(store);
        }
        out
    }

    /// Cancels the circuit's subscriptions so the database stops
    /// queueing events for it. The derived stores remain readable but
    /// frozen at [`Self::synced`].
    pub fn detach(mut self, db: &mut Database) {
        for slot in &mut self.nodes {
            if let OpState::Source(src) = &mut slot.op {
                if let Some(sub) = src.sub.take() {
                    db.unsubscribe(sub);
                }
            }
        }
    }
}
