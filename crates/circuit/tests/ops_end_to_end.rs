//! End-to-end operator coverage: every operator kind over a live
//! [`Database`], checked bit-identical to full recomputation after
//! every commit — including barriers, snapshots, pipelined commits
//! and detach. The randomized `circuit_equals_recompute` property
//! suite lives in the umbrella crate (`tests/circuit.rs`); these are
//! the deterministic legs.

use xivm_circuit::{Circuit, CircuitExt, Datum, Node, Row};
use xivm_core::{Database, Error};
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

/// Every node of the circuit must match its from-scratch evaluation.
fn assert_matches_recompute(circuit: &Circuit, db: &Database, context: &str) {
    let oracle = circuit.recompute(db);
    for node in circuit.nodes() {
        let got = circuit.store(node);
        let want = &oracle[node.index()];
        assert!(
            got.same_content_as(want),
            "{context}: node n{} ({}) diverged from recomputation:\n{}",
            node.index(),
            circuit.label(node),
            got.diff_description(want),
        );
    }
}

fn shop_database() -> Result<Database, Error> {
    Database::builder()
        .document(
            "<shop>\
               <order><sku>tea</sku><qty>2</qty></order>\
               <order><sku>coffee</sku><qty>5</qty></order>\
               <audit/>\
             </shop>",
        )
        .view("orders", "//order{id,cont}")
        .view("skus", "//order{id}/sku{id,val}")
        .view("qtys", "//order{id}/qty{id,val}")
        .build()
}

fn qty_of(r: &Row) -> i64 {
    r.datum(1).as_str().and_then(|s| s.parse().ok()).unwrap_or(0)
}

struct ShopCircuit {
    circuit: Circuit,
    pairs: Node,
    per_sku_count: Node,
    per_sku_sum: Node,
    min_qty: Node,
    max_qty: Node,
    total_orders: Node,
}

/// source → filter → join → project, fanned into count / sum / min /
/// max — every operator kind on one DAG.
fn shop_circuit(db: &mut Database) -> Result<ShopCircuit, Error> {
    let mut b = db.circuit();
    let orders = b.source("orders")?;
    let skus = b.source("skus")?;
    let qtys = b.source("qtys")?;
    let keep = b.filter(skus, |r| r.datum(2).as_str() != Some("spam"));
    // rows: [order, sku, sku_text] ⋈ [order, qty, qty_text] on order
    let joined = b.join(keep, qtys, |r| r.project(&[0]), |r| r.project(&[0]));
    // rows: [sku_text, qty_text]
    let pairs = b.project(joined, vec![2, 5]);
    let per_sku_count = b.count(pairs, |r| r.project(&[0]));
    let per_sku_sum = b.sum(pairs, |r| r.project(&[0]), qty_of);
    let min_qty = b.min(pairs, |_| Row::empty(), qty_of);
    let max_qty = b.max(pairs, |r| r.project(&[0]), qty_of);
    let total_orders = b.count(orders, |_| Row::empty());
    Ok(ShopCircuit {
        circuit: b.build(),
        pairs,
        per_sku_count,
        per_sku_sum,
        min_qty,
        max_qty,
        total_orders,
    })
}

#[test]
fn every_operator_tracks_recompute_commit_by_commit() -> Result<(), Error> {
    let mut db = shop_database()?;
    let ShopCircuit {
        mut circuit,
        pairs,
        per_sku_count,
        per_sku_sum,
        min_qty,
        max_qty,
        total_orders,
    } = shop_circuit(&mut db)?;

    // The build seeds every node from the current stores.
    assert_eq!(circuit.synced(), 0);
    assert_matches_recompute(&circuit, &db, "after seed");
    assert_eq!(circuit.store(total_orders).weight_of(&Row::empty().with(Datum::Int(2))), 1);
    assert_eq!(
        circuit
            .store(per_sku_sum)
            .weight_of(&Row::new(vec![Datum::Str("tea".into()), Datum::Int(2)])),
        1
    );
    assert!(circuit.describe().contains("join"));

    let script = [
        // New order: every aggregate shifts.
        "insert <order><sku>mate</sku><qty>3</qty></order> into /shop",
        // Filtered out upstream: pairs must not change.
        "insert <order><sku>spam</sku><qty>9</qty></order> into /shop",
        // Touches only the `orders` view's cont (a modify-weight-0
        // delta) — membership nowhere changes.
        "insert <note/> into //order[sku = \"tea\"]",
        // Replaces a joined-side node: sum and max move.
        "replace //order[sku = \"coffee\"]/qty with <qty>7</qty>",
        "delete //order[sku = \"spam\"]",
        // Retracts the global minimum (tea, qty 2): forces the
        // re-scan fallback.
        "delete //order[sku = \"tea\"]",
        // Empties everything: groups must all drop.
        "delete //order",
    ];
    let mut pairs_before_spam = None;
    for (i, stmt) in script.iter().enumerate() {
        let commit = db.apply(*stmt)?;
        let synced = circuit.sync(&mut db);
        assert_eq!(synced, commit.seq, "sync reaches the last commit");
        assert_eq!(circuit.synced(), db.last_seq());
        assert_matches_recompute(&circuit, &db, &format!("after `{stmt}`"));
        match i {
            0 => {
                assert_eq!(
                    circuit
                        .store(per_sku_count)
                        .weight_of(&Row::new(vec![Datum::Str("mate".into()), Datum::Int(1)])),
                    1
                );
                pairs_before_spam = Some(circuit.rows(pairs));
            }
            1 => {
                assert_eq!(
                    Some(circuit.rows(pairs)),
                    pairs_before_spam,
                    "spam is filtered out before the join"
                );
            }
            3 => {
                assert_eq!(
                    circuit
                        .store(max_qty)
                        .weight_of(&Row::new(vec![Datum::Str("coffee".into()), Datum::Int(7)])),
                    1
                );
            }
            5 => {
                assert_eq!(
                    circuit.store(min_qty).weight_of(&Row::empty().with(Datum::Int(3))),
                    1,
                    "after tea (qty 2) leaves, mate (qty 3) is the minimum"
                );
                assert!(
                    circuit.rescans(min_qty).unwrap() > 0,
                    "retracting the minimum pays the re-scan fallback"
                );
            }
            6 => {
                assert!(circuit.store(pairs).is_empty());
                assert!(circuit.store(per_sku_sum).is_empty());
                assert!(circuit.store(min_qty).is_empty());
                assert!(circuit.store(max_qty).is_empty());
            }
            _ => {}
        }
    }
    assert_eq!(circuit.rescans(pairs), None, "only min/max pay re-scans");
    circuit.detach(&mut db);
    Ok(())
}

#[test]
fn sync_to_is_a_commit_barrier_aligned_with_snapshots() -> Result<(), Error> {
    let mut db = shop_database()?;
    let mut b = db.circuit();
    let skus = b.source("skus")?;
    let per_sku = b.count(skus, |r| r.project(&[2]));
    let _ = per_sku;
    let mut circuit = b.build();

    db.apply("insert <order><sku>mate</sku><qty>3</qty></order> into /shop")?;
    db.apply("delete //order[sku = \"coffee\"]")?;
    let snap = db.snapshot();
    db.apply("insert <order><sku>cocoa</sku><qty>1</qty></order> into /shop")?;
    assert_eq!(snap.seq(), 2);
    assert_eq!(db.last_seq(), 3);

    // Barrier at the snapshot's boundary: derived stores and frozen
    // base views line up.
    assert_eq!(circuit.sync_to(&mut db, snap.seq()), 2);
    let oracle = circuit.recompute_at(&snap);
    for node in circuit.nodes() {
        assert!(
            circuit.store(node).same_content_as(&oracle[node.index()]),
            "node n{} diverged at the snapshot boundary:\n{}",
            node.index(),
            circuit.store(node).diff_description(&oracle[node.index()]),
        );
    }

    // A barrier never moves backwards…
    assert_eq!(circuit.sync_to(&mut db, 0), 2);
    // …and clamps to the last sealed commit.
    assert_eq!(circuit.sync_to(&mut db, u64::MAX), 3);
    assert_matches_recompute(&circuit, &db, "after catching up");
    circuit.detach(&mut db);
    Ok(())
}

#[test]
fn pipelined_commits_replay_identically() -> Result<(), Error> {
    let mut db = Database::builder()
        .document(
            "<shop>\
               <order><sku>tea</sku><qty>2</qty></order>\
               <order><sku>coffee</sku><qty>5</qty></order>\
               <audit/>\
             </shop>",
        )
        .view("orders", "//order{id,cont}")
        .view("skus", "//order{id}/sku{id,val}")
        .view("qtys", "//order{id}/qty{id,val}")
        .workers(2)
        .pipeline(4)
        .build()?;
    let ShopCircuit { mut circuit, .. } = shop_circuit(&mut db)?;

    let commits = db.apply_pipelined([
        "insert <order><sku>mate</sku><qty>3</qty></order> into /shop",
        "insert <order><sku>cocoa</sku><qty>8</qty></order> into /shop",
        "replace //order[sku = \"tea\"]/qty with <qty>6</qty>",
        "delete //order[sku = \"coffee\"]",
        "insert <note/> into //order[sku = \"mate\"]",
    ])?;
    assert_eq!(commits.len(), 5);

    // Stepping the barrier one commit at a time replays the pipelined
    // stream in order; the final state matches recomputation.
    for seq in 1..=db.last_seq() {
        assert_eq!(circuit.sync_to(&mut db, seq), seq);
    }
    assert_matches_recompute(&circuit, &db, "after pipelined stream");
    circuit.detach(&mut db);
    Ok(())
}

#[test]
fn detach_releases_the_subscriptions() -> Result<(), Error> {
    let mut db = shop_database()?;
    let before = db.subscriptions();
    let ShopCircuit { circuit, .. } = shop_circuit(&mut db)?;
    assert_eq!(db.subscriptions(), before + 3, "one subscription per source");
    circuit.detach(&mut db);
    assert_eq!(db.subscriptions(), before);
    // The database keeps working without the circuit.
    db.apply("delete //order[sku = \"tea\"]")?;
    Ok(())
}

#[test]
fn xmark_catalog_filter_join_aggregate() -> Result<(), Error> {
    let doc = generate_sized(40 * 1024);
    let mut b = Database::builder().document(doc);
    for v in VIEW_NAMES {
        b = b.view(v, view_pattern(v));
    }
    let mut db = b.build()?;

    let mut cb = db.circuit();
    let q1 = cb.source("Q1")?;
    let q4 = cb.source("Q4")?;
    let shallow = cb.filter(q1, |r| r.datum(0).as_id().map(|id| id.depth() <= 3).unwrap_or(false));
    let joined = cb.join(shallow, q4, |r| r.project(&[0]), |r| r.project(&[0]));
    let _by_root = cb.count(joined, |r| r.project(&[0]));
    let _global = cb.count(q4, |_| Row::empty());
    let mut circuit = cb.build();
    assert_matches_recompute(&circuit, &db, "after catalog seed");

    // One insert + one delete per catalog view: every source sees
    // real delta traffic, checked at every commit.
    for view in VIEW_NAMES {
        if let Some(u) = updates_for_view(view).first() {
            for stmt in [u.insert_stmt(), u.delete_stmt()] {
                let commit = db.apply(&stmt)?;
                circuit.sync(&mut db);
                assert_matches_recompute(
                    &circuit,
                    &db,
                    &format!("catalog commit {} ({view})", commit.seq),
                );
            }
        }
    }
    circuit.detach(&mut db);
    Ok(())
}
