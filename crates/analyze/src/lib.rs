//! Static analysis over (DTD, view catalog, statement shapes).
//!
//! The runtime engine decides *per commit* which views an update can
//! touch (label footprints, Figure 15 conflict scans, term pruning).
//! Much of that is decidable *once*, ahead of execution, from the
//! schema and the catalog alone. This crate implements three such
//! analyses:
//!
//! 1. **Satisfiability / deadness** — each view pattern and each
//!    statement target path is checked against the DTD (reachability,
//!    child alphabets, required-cycle empty languages from
//!    [`xivm_dtd::mandatory_descendants_checked`]): a pattern that can
//!    match no valid document is *dead* and reported as a finding.
//! 2. **Static relevance** — for every (view, statement label-shape)
//!    pair a [`Verdict`]: *irrelevant* / *relevant* / *unknown*,
//!    derived from label alphabets, axes and DTD reachability. The
//!    `Database` façade consults the verdicts to skip footprint
//!    computation and delta harvesting for statically-irrelevant
//!    views.
//! 3. **Static independence** — the Figure 15 IO / LO / NLO rules
//!    lifted from concrete Dewey targets to path/label shapes
//!    ([`independence`]): provably-disjoint batches skip the runtime
//!    conflict scan, *unknown* falls back to the dynamic check.
//!
//! Every verdict is **conservative for DTD-conforming documents**:
//! static *irrelevant* implies the runtime [`ViewDelta`] is empty and
//! static *independent* implies `pulopt::conflict` finds nothing —
//! property-tested against the dynamic oracle in the workspace's
//! `analyze_soundness` suite. Without a DTD the analyses degrade
//! gracefully: only label-alphabet reasoning applies (absolute
//! child-axis paths stay precise, descendant axes and deletions widen
//! to *unknown*).
//!
//! [`ViewDelta`]: https://docs.rs/xivm_core
//!
//! Module map: [`schema`] (DTD-derived label relations), [`labels`]
//! (may-intersect label sets), [`shape`] (path and statement shapes),
//! [`view`] (view summaries and deadness), [`mod@relevance`] (the
//! matrix), [`independence`] (shape-level Figure 15), [`report`]
//! (findings and severities), [`analyzer`] (the façade).
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod independence;
pub mod labels;
pub mod relevance;
pub mod report;
pub mod schema;
pub mod shape;
pub mod view;

pub use analyzer::Analyzer;
pub use independence::{independent, pairwise_independent, Independence};
pub use labels::Labels;
pub use relevance::{relevance, RelevanceMatrix, Verdict};
pub use report::{AnalysisReport, AnalyzeMode, Finding, Severity};
pub use schema::SchemaInfo;
pub use shape::{PathShape, StatementShape};
pub use view::ViewSummary;
