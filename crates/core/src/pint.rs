//! PINT — Propagate Insert by New Tuples (Algorithm 1).
//!
//! Given the Δ⁺ tables of an insertion, computes the bag of bindings
//! to *add* to a (sub-)pattern: the union of the surviving terms,
//! where each term joins old data (post-update canonical relations
//! minus the inserted nodes, or materialized snowcaps) with new data
//! (Δ⁺ tables). Evaluating R-parts against the *old* state keeps the
//! terms disjoint, so their bag union is exactly the multiset of new
//! embeddings — derivation counts stay exact.

use crate::etins::{eval_terms, subset_terms};
use crate::prune::{prune_insert_by_deltas, prune_insert_by_target_ids, PruneStats};
use crate::snowcap::MaterializedSnowcap;
use std::collections::{BTreeSet, HashMap, HashSet};
use xivm_algebra::Relation;
use xivm_pattern::compile::{canonical_node_ids, relation_from_nodes};
use xivm_pattern::{PatternNodeId, TreePattern};
use xivm_update::DeltaPlus;
use xivm_xml::{DeweyId, Document, NodeId};

/// Everything an insertion propagation needs to see.
pub struct InsertContext<'a> {
    pub doc: &'a Document,
    pub pattern: &'a TreePattern,
    pub deltas: &'a DeltaPlus,
    /// Insertion target IDs (Proposition 3.8's `p1 … pk`).
    pub targets: &'a [DeweyId],
    /// Arena ids of every inserted node, for reconstructing the *old*
    /// canonical relations.
    pub inserted: &'a HashSet<NodeId>,
    /// Ablation switches for the dynamic prunings (Section 6.8 studies
    /// the win of dynamic reasoning).
    pub use_delta_pruning: bool,
    pub use_id_pruning: bool,
}

/// Per-update cache of "old" leaf relations (current canonical minus
/// inserted nodes), shared across terms and snowcap maintenance.
#[derive(Default)]
pub struct OldLeafCache {
    cache: HashMap<PatternNodeId, Relation>,
}

impl OldLeafCache {
    pub fn get(&mut self, ctx: &InsertContext<'_>, n: PatternNodeId) -> Relation {
        self.cache
            .entry(n)
            .or_insert_with(|| {
                let ids: Vec<NodeId> = canonical_node_ids(ctx.doc, ctx.pattern, n)
                    .into_iter()
                    .filter(|id| !ctx.inserted.contains(id))
                    .collect();
                relation_from_nodes(ctx.doc, ctx.pattern, n, &ids)
            })
            .clone()
    }
}

/// "Get Update Expression" for an insertion: the surviving terms of
/// the sub-pattern after Propositions 3.3 (built into
/// [`subset_terms`]), 3.6 and 3.8.
pub fn insert_terms(
    ctx: &InsertContext<'_>,
    subset: &BTreeSet<PatternNodeId>,
) -> (Vec<crate::term::Term>, PruneStats) {
    let mut terms = subset_terms(ctx.pattern, subset);
    let mut stats = PruneStats { before: terms.len(), ..Default::default() };
    if ctx.use_delta_pruning {
        terms = prune_insert_by_deltas(terms, ctx.deltas);
    }
    stats.after_delta_emptiness = terms.len();
    if ctx.use_id_pruning {
        terms = prune_insert_by_target_ids(ctx.doc, ctx.pattern, subset, terms, ctx.targets);
    }
    stats.after_id_reasoning = terms.len();
    (terms, stats)
}

/// "Execute Update" for an insertion: evaluates the surviving terms.
pub fn eval_insert_terms(
    ctx: &InsertContext<'_>,
    subset_preorder: &[PatternNodeId],
    terms: &[crate::term::Term],
    materialized: &[MaterializedSnowcap],
    leaves: &mut OldLeafCache,
) -> Relation {
    eval_terms(
        ctx.pattern,
        subset_preorder,
        terms,
        materialized,
        &mut |n| leaves.get(ctx, n),
        &mut |n| ctx.deltas.table(n).clone(),
    )
}

/// The bag of bindings to add to the sub-pattern `subset_preorder`
/// (pattern pre-order, parent-closed), and the pruning statistics.
pub fn added_bindings(
    ctx: &InsertContext<'_>,
    subset_preorder: &[PatternNodeId],
    materialized: &[MaterializedSnowcap],
    leaves: &mut OldLeafCache,
) -> (Relation, PruneStats) {
    let subset: BTreeSet<PatternNodeId> = subset_preorder.iter().copied().collect();
    let (terms, stats) = insert_terms(ctx, &subset);
    let rel = eval_insert_terms(ctx, subset_preorder, &terms, materialized, leaves);
    (rel, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_update::{apply_pul, compute_pul, UpdateStatement};
    use xivm_xml::parse_document;

    fn setup(
        doc_xml: &str,
        target: &str,
        xml: &str,
        pattern: &str,
    ) -> (Document, TreePattern, DeltaPlus, Vec<DeweyId>, HashSet<NodeId>) {
        let mut d = parse_document(doc_xml).unwrap();
        let stmt = UpdateStatement::insert(target, xml).unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let p = parse_pattern(pattern).unwrap();
        let dp = DeltaPlus::compute(&d, &p, &res.inserted);
        let inserted: HashSet<NodeId> = res.inserted.iter().copied().collect();
        (d, p, dp, res.insert_targets, inserted)
    }

    #[test]
    fn added_bindings_for_simple_insert() {
        // doc a{b} gains a c under b: //a//b//c gains 1 binding
        let (d, p, dp, targets, inserted) =
            setup("<a><b/></a>", "//b", "<c/>", "//a{id}//b{id}//c{id}");
        let ctx = InsertContext {
            doc: &d,
            pattern: &p,
            deltas: &dp,
            targets: &targets,
            inserted: &inserted,
            use_delta_pruning: true,
            use_id_pruning: true,
        };
        let mut leaves = OldLeafCache::default();
        let (rel, stats) = added_bindings(&ctx, &p.preorder(), &[], &mut leaves);
        assert_eq!(rel.len(), 1);
        assert_eq!(stats.before, 3);
        // only RaRbΔc survives: Δ⁺_a and Δ⁺_b are empty
        assert_eq!(stats.after_delta_emptiness, 1);
        assert_eq!(stats.after_id_reasoning, 1);
    }

    #[test]
    fn disjointness_no_double_count() {
        // Insert a whole a/b/c chain next to an existing one: terms
        // must count each new embedding exactly once.
        let (d, p, dp, targets, inserted) = setup(
            "<r><a><b><c/></b></a><t/></r>",
            "//t",
            "<a><b><c/></b></a>",
            "//a{id}//b{id}//c{id}",
        );
        let ctx = InsertContext {
            doc: &d,
            pattern: &p,
            deltas: &dp,
            targets: &targets,
            inserted: &inserted,
            use_delta_pruning: true,
            use_id_pruning: true,
        };
        let mut leaves = OldLeafCache::default();
        let (rel, _) = added_bindings(&ctx, &p.preorder(), &[], &mut leaves);
        // exactly the one new (a,b,c) embedding — the old chain is
        // under r, unrelated to the new one under t
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn pruning_disabled_still_correct() {
        let (d, p, dp, targets, inserted) =
            setup("<a><b/></a>", "//b", "<c/>", "//a{id}//b{id}//c{id}");
        let ctx = InsertContext {
            doc: &d,
            pattern: &p,
            deltas: &dp,
            targets: &targets,
            inserted: &inserted,
            use_delta_pruning: false,
            use_id_pruning: false,
        };
        let mut leaves = OldLeafCache::default();
        let (rel, stats) = added_bindings(&ctx, &p.preorder(), &[], &mut leaves);
        assert_eq!(rel.len(), 1, "unpruned evaluation is slower but equal");
        assert_eq!(stats.after_id_reasoning, stats.before);
    }
}
