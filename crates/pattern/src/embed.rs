//! Embedding-based reference evaluation.
//!
//! The customary tree-embedding semantics of tree patterns
//! [Amer-Yahia et al. 2002], implemented naively: enumerate all
//! functions from pattern nodes to document nodes that respect labels,
//! edges and value predicates. Used as the *oracle* against which the
//! algebraic evaluation ([`crate::compile`]) and the incremental
//! maintenance engine are tested — the paper states both semantics are
//! equivalent (Section 2.2).

use crate::pattern::{NodeTest, PatternNodeId, TreePattern};
use xivm_algebra::Axis;
use xivm_xml::{Document, NodeId, NodeKind};

/// All embeddings of `pattern` into `doc`, each as a vector of document
/// nodes indexed by the pattern's pre-order positions.
pub fn embeddings(doc: &Document, pattern: &TreePattern) -> Vec<Vec<NodeId>> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    let order = pattern.preorder();
    let proot = pattern.root();
    let root_candidates: Vec<NodeId> = if pattern.node(proot).edge == Axis::Child {
        // anchored at the document root
        if node_matches(doc, root, pattern, proot) {
            vec![root]
        } else {
            Vec::new()
        }
    } else {
        doc.descendants_or_self(root)
            .into_iter()
            .filter(|&n| node_matches(doc, n, pattern, proot))
            .collect()
    };

    let mut out = Vec::new();
    for rc in root_candidates {
        let mut assignment: Vec<Option<NodeId>> = vec![None; order.len()];
        assignment[0] = Some(rc);
        extend(doc, pattern, &order, 1, &mut assignment, &mut out);
    }
    out
}

fn extend(
    doc: &Document,
    pattern: &TreePattern,
    order: &[PatternNodeId],
    pos: usize,
    assignment: &mut Vec<Option<NodeId>>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if pos == order.len() {
        out.push(assignment.iter().map(|a| a.expect("complete assignment")).collect());
        return;
    }
    let pnode = order[pos];
    let parent = pattern.node(pnode).parent.expect("non-root");
    let parent_pos = order.iter().position(|&n| n == parent).expect("parent before child");
    let anchor = assignment[parent_pos].expect("parent assigned");
    let axis = pattern.node(pnode).edge;
    let candidates: Vec<NodeId> = match axis {
        Axis::Child => doc.children_of(anchor).to_vec(),
        Axis::Descendant => {
            doc.descendants_or_self(anchor).into_iter().filter(|&n| n != anchor).collect()
        }
    };
    for c in candidates {
        if node_matches(doc, c, pattern, pnode) {
            assignment[pos] = Some(c);
            extend(doc, pattern, order, pos + 1, assignment, out);
            assignment[pos] = None;
        }
    }
}

fn node_matches(doc: &Document, n: NodeId, pattern: &TreePattern, pnode: PatternNodeId) -> bool {
    let p = pattern.node(pnode);
    let node = doc.node(n);
    let label_ok = match &p.test {
        NodeTest::Name(name) => {
            (node.kind == NodeKind::Element || node.kind == NodeKind::Attribute)
                && doc.label_name(node.label) == name
        }
        NodeTest::Wildcard => node.kind == NodeKind::Element,
    };
    if !label_ok {
        return false;
    }
    match &p.val_pred {
        Some(v) => doc.value(n) == *v,
        None => true,
    }
}

/// View tuples via embeddings: project each embedding onto stored
/// nodes, then collapse duplicates counting multiplicity — the
/// embedding-side definition of the derivation count.
pub fn view_tuples_by_embedding(
    doc: &Document,
    pattern: &TreePattern,
) -> Vec<(Vec<xivm_xml::DeweyId>, u64)> {
    let order = pattern.preorder();
    let stored = pattern.stored_nodes();
    let cols: Vec<usize> =
        stored.iter().map(|&s| order.iter().position(|&n| n == s).unwrap()).collect();
    let mut counted: Vec<(Vec<xivm_xml::DeweyId>, u64)> = Vec::new();
    for emb in embeddings(doc, pattern) {
        let key: Vec<_> = cols.iter().map(|&c| doc.dewey(emb[c])).collect();
        match counted.iter_mut().find(|(k, _)| *k == key) {
            Some((_, c)) => *c += 1,
            None => counted.push((key, 1)),
        }
    }
    counted.sort_by(|a, b| {
        for (x, y) in a.0.iter().zip(b.0.iter()) {
            let c = x.doc_cmp(y);
            if c.is_ne() {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    counted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::view_tuples;
    use crate::parse_pattern::parse_pattern;
    use xivm_xml::parse_document;

    fn assert_semantics_agree(xml: &str, pat: &str) {
        let d = parse_document(xml).unwrap();
        let p = parse_pattern(pat).unwrap();
        let algebraic: Vec<(Vec<_>, u64)> =
            view_tuples(&d, &p).into_iter().map(|(t, c)| (t.id_key(), c)).collect();
        let by_embedding = view_tuples_by_embedding(&d, &p);
        assert_eq!(algebraic, by_embedding, "xml={xml} pattern={pat}");
    }

    #[test]
    fn simple_chain_agrees() {
        assert_semantics_agree("<a><b><c/></b><b/></a>", "//a{id}//b{id}");
        assert_semantics_agree("<a><b><c/></b><b/></a>", "//a{id}/b{id}/c{id}");
    }

    #[test]
    fn branches_agree() {
        assert_semantics_agree(
            "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>",
            "//a{id}[//c{id}]//b{id}",
        );
        assert_semantics_agree(
            "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>",
            "//a{id}[//c]//b{id}",
        );
    }

    #[test]
    fn value_predicates_agree() {
        assert_semantics_agree("<r><a>5<b/></a><a>3<b/></a></r>", "//a[val=\"5\"]//b{id}");
    }

    #[test]
    fn nested_same_label_agrees() {
        // recursive nesting of the same label stresses // matching
        assert_semantics_agree("<a><a><b/><a><b/></a></a></a>", "//a{id}//b{id}");
        assert_semantics_agree("<a><a><b/><a><b/></a></a></a>", "//a{id}//a{id}//b{id}");
    }

    #[test]
    fn anchored_vs_floating_agree() {
        assert_semantics_agree("<site><site><x/></site><x/></site>", "/site{id}/x{id}");
        assert_semantics_agree("<site><site><x/></site><x/></site>", "//site{id}/x{id}");
    }

    #[test]
    fn wildcards_agree() {
        assert_semantics_agree("<r><x><i/></x><y><i/></y></r>", "/r{id}/*{id}/i{id}");
    }

    #[test]
    fn empty_document_has_no_embeddings() {
        let d = xivm_xml::Document::new();
        let p = parse_pattern("//a{id}").unwrap();
        assert!(embeddings(&d, &p).is_empty());
    }
}
