//! PDDT — Propagate Delete by Deleting Tuples (Algorithm 5).
//!
//! The deletion expression of Section 4.1, pruned by Propositions 4.2
//! / 4.7 and the Δ⁻-emptiness check. Terms are evaluated with R-parts
//! bound to the *surviving* data (post-deletion canonical relations /
//! retain-filtered snowcaps), which makes the terms pairwise disjoint:
//! a binding appears in exactly the term whose Δ-set is its set of
//! deleted nodes. The bag union of the terms is therefore exactly the
//! multiset of *lost embeddings*, so decrementing derivation counts by
//! it (removing tuples that reach zero, Algorithm 5's final loop) is
//! exact.
//!
//! This refines the paper's presentation, which evaluates against the
//! pre-update relations and relies on Proposition 4.3 to drop the
//! even-k (∪) terms — sound for membership, while the disjoint form
//! also keeps derivation counts exact without inclusion–exclusion.

use crate::etins::{eval_terms, subset_terms};
use crate::pint::OldLeafCache;
use crate::prune::{prune_delete_by_deltas, prune_delete_by_ids, PruneStats};
use crate::snowcap::MaterializedSnowcap;
use std::collections::{BTreeSet, HashSet};
use xivm_algebra::Relation;
use xivm_pattern::{PatternNodeId, TreePattern};
use xivm_update::DeltaMinus;
use xivm_xml::{Document, NodeId};

/// Everything a deletion propagation needs to see.
pub struct DeleteContext<'a> {
    pub doc: &'a Document,
    pub pattern: &'a TreePattern,
    pub deltas: &'a DeltaMinus,
    /// Arena ids of nodes inserted *by the same PUL* (mixed PULs):
    /// excluded from R-parts so old-state semantics hold. Empty for
    /// pure deletions.
    pub inserted: &'a HashSet<NodeId>,
    pub use_delta_pruning: bool,
    pub use_id_pruning: bool,
}

/// "Get Update Expression" for a deletion: terms surviving
/// Propositions 4.2 (built into [`subset_terms`]), Δ⁻-emptiness and
/// 4.7.
pub fn delete_terms(
    ctx: &DeleteContext<'_>,
    subset: &BTreeSet<PatternNodeId>,
) -> (Vec<crate::term::Term>, PruneStats) {
    let mut terms = subset_terms(ctx.pattern, subset);
    let mut stats = PruneStats { before: terms.len(), ..Default::default() };
    if ctx.use_delta_pruning {
        terms = prune_delete_by_deltas(terms, ctx.deltas);
    }
    stats.after_delta_emptiness = terms.len();
    if ctx.use_id_pruning {
        terms = prune_delete_by_ids(ctx.doc, ctx.pattern, subset, terms, ctx.deltas);
    }
    stats.after_id_reasoning = terms.len();
    (terms, stats)
}

/// "Execute Update" for a deletion: evaluates the surviving terms.
pub fn eval_delete_terms(
    ctx: &DeleteContext<'_>,
    subset_preorder: &[PatternNodeId],
    terms: &[crate::term::Term],
    materialized: &[MaterializedSnowcap],
    leaves: &mut OldLeafCache,
) -> Relation {
    // R-leaves: surviving old data = current canonical minus same-PUL
    // insertions (the document is already post-update, so deleted
    // nodes are gone from the canonical relations).
    let insert_ctx = crate::pint::InsertContext {
        doc: ctx.doc,
        pattern: ctx.pattern,
        deltas: &EMPTY_DELTA_PLUS, // unused by the leaf cache
        targets: &[],
        inserted: ctx.inserted,
        use_delta_pruning: false,
        use_id_pruning: false,
    };
    eval_terms(
        ctx.pattern,
        subset_preorder,
        terms,
        materialized,
        &mut |n| leaves.get(&insert_ctx, n),
        &mut |n| ctx.deltas.relation(ctx.pattern, n),
    )
}

/// The bag of lost bindings for the sub-pattern `subset_preorder`,
/// plus pruning statistics.
pub fn removed_bindings(
    ctx: &DeleteContext<'_>,
    subset_preorder: &[PatternNodeId],
    materialized: &[MaterializedSnowcap],
    leaves: &mut OldLeafCache,
) -> (Relation, PruneStats) {
    let subset: BTreeSet<PatternNodeId> = subset_preorder.iter().copied().collect();
    let (terms, stats) = delete_terms(ctx, &subset);
    let rel = eval_delete_terms(ctx, subset_preorder, &terms, materialized, leaves);
    (rel, stats)
}

// A shared empty Δ⁺ so the leaf cache can be reused verbatim.
static EMPTY_DELTA_PLUS: std::sync::LazyLock<xivm_update::DeltaPlus> =
    std::sync::LazyLock::new(xivm_update::DeltaPlus::default);

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_update::{apply_pul, compute_pul, Pul, UpdateStatement};
    use xivm_xml::parse_document;

    fn run_delete(doc_xml: &str, path: &str, pattern: &str) -> (Relation, PruneStats) {
        let mut d = parse_document(doc_xml).unwrap();
        let p = parse_pattern(pattern).unwrap();
        let stmt = UpdateStatement::delete(path).unwrap();
        let pul: Pul = compute_pul(&d, &stmt);
        let (dm, _roots) = DeltaMinus::collect(&d, &p, &pul);
        apply_pul(&mut d, &pul).unwrap();
        let inserted = HashSet::new();
        let ctx = DeleteContext {
            doc: &d,
            pattern: &p,
            deltas: &dm,
            inserted: &inserted,
            use_delta_pruning: true,
            use_id_pruning: true,
        };
        let mut leaves = OldLeafCache::default();
        removed_bindings(&ctx, &p.preorder(), &[], &mut leaves)
    }

    /// Example 4.1: deleting //c//b from Figure 11's document removes
    /// the (a1, a1.c1.b1) tuple from //a//b.
    #[test]
    fn example_4_1_simple_deletion() {
        let (rel, _) = run_delete("<a><c><b/></c><f><b/></f></a>", "//c//b", "//a{id}//b{id}");
        assert_eq!(rel.len(), 1, "exactly the (a, c/b) embedding is lost");
    }

    /// Example 4.5: deleting //a/f/c from Figure 12's document leaves
    /// tuples 1, 2 and 4 of the 8-tuple view //a[//c]//b.
    #[test]
    fn example_4_5_lost_bindings() {
        let (rel, stats) = run_delete(
            "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>",
            "/a/f/c",
            "//a{id}[//c{id}]//b{id}",
        );
        // 8 embeddings before, 3 survive → 5 lost
        assert_eq!(rel.len(), 5);
        assert_eq!(stats.before, 4, "Prop 4.2 leaves 4 Δ-sets");
        assert_eq!(stats.after_delta_emptiness, 3, "Δ⁻_a = ∅ removes one");
    }

    /// Example 4.6: Rc Δ⁻b pruned by IDs — no bindings lost.
    #[test]
    fn example_4_6_no_loss() {
        let (rel, stats) = run_delete("<a><c><b/></c><f><b/></f></a>", "//f", "//c{id}//b{id}");
        assert!(rel.is_empty());
        assert_eq!(stats.after_id_reasoning, 0, "the Rc Δ⁻b term is ID-pruned");
    }

    /// Derivation-exactness: deleting one of two witnesses must lose
    /// exactly one embedding, not two.
    #[test]
    fn partial_witness_loss() {
        let (rel, _) = run_delete("<a><c/><b/><f><b/></f></a>", "//f", "//a{id}[//b]");
        assert_eq!(rel.len(), 1, "only the f/b witness embedding is lost");
    }
}
