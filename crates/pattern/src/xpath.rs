//! The `XPath{/,//,*,[]}` dialect (with `and` / `or` predicates) used
//! by updates and views. Mirrors the fragment of the XPathMark
//! benchmark exercised in the paper's Appendix A.

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{LocationPath, XNodeTest, XPred, XStep};
pub use eval::eval_path;
pub use parser::{parse_xpath, XPathParseError};
