//! Label summaries of view tree patterns.
//!
//! A [`ViewSummary`] is everything the relevance check needs to know
//! about one view: which labels its pattern nodes can bind
//! (`labels`), which of those carry text sensitivity — `val` / `cont`
//! annotations or `[val = c]` predicates — (`text_labels`), whether an
//! attribute node hangs off a `//` edge (`desc_attr`, see
//! [`mod@crate::relevance`]), and whether the pattern is *dead*: no
//! DTD-conforming document embeds it, so the view is always empty
//! (the lint gate's main finding).

use crate::labels::Labels;
use crate::schema::SchemaInfo;
use crate::shape::{reachable_targets, root_targets};
use xivm_algebra::Axis;
use xivm_pattern::{PatternNodeId, TreePattern};

/// Label abstraction of one view pattern.
#[derive(Debug, Clone)]
pub struct ViewSummary {
    pub name: String,
    /// Labels the pattern's nodes can bind; `Any` when a wildcard node
    /// makes every label bindable.
    pub labels: Labels,
    /// Labels of nodes whose *text* the view depends on (`val` /
    /// `cont` annotations, `[val = c]` predicates).
    pub text_labels: Labels,
    /// The pattern has an attribute node behind a `//` edge: the
    /// attribute's owner element is unconstrained, so deletions must
    /// be treated as potentially relevant whatever their label
    /// footprint (the owner may be a label the pattern never names).
    pub desc_attr: bool,
    /// No conforming document embeds the pattern: the view is always
    /// empty.
    pub dead: bool,
}

impl ViewSummary {
    /// Summarizes `pattern` against the schema, if one is given.
    pub fn from_pattern(
        name: impl Into<String>,
        pattern: &TreePattern,
        schema: Option<&SchemaInfo>,
    ) -> ViewSummary {
        let mut labels = Labels::none();
        let mut text_labels = Labels::none();
        let mut desc_attr = false;
        for id in pattern.node_ids() {
            let node = pattern.node(id);
            let label = node.test.name();
            match label {
                Some(l) => labels.insert(l),
                None => labels = Labels::Any,
            }
            if node.ann.stores_text() || node.val_pred.is_some() {
                match label {
                    Some(l) => text_labels.insert(l),
                    None => text_labels = Labels::Any,
                }
            }
            if node.edge == Axis::Descendant
                && label.is_some_and(|l| l.starts_with('@'))
                && node.parent.is_some()
            {
                desc_attr = true;
            }
        }
        let dead = !embeds(pattern, pattern.root(), None, schema);
        ViewSummary { name: name.into(), labels, text_labels, desc_attr, dead }
    }
}

/// Can the pattern subtree rooted at `node` embed into some conforming
/// document, given the feasible labels of its parent's matches
/// (`None` for the root, which matches from the document scope)?
/// Patterns are conjunctive: one infeasible node kills the whole view.
fn embeds(
    pattern: &TreePattern,
    node: PatternNodeId,
    parent_labels: Option<&Labels>,
    schema: Option<&SchemaInfo>,
) -> bool {
    let n = pattern.node(node);
    let feasible = match parent_labels {
        None => root_targets(schema, n.edge, n.test.name()),
        Some(p) => reachable_targets(schema, p, n.edge, n.test.name()),
    };
    if feasible.is_none() {
        return false;
    }
    n.children.iter().all(|&c| embeds(pattern, c, Some(&feasible), schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_dtd::grammar::figure_5a;
    use xivm_pattern::parse_pattern;

    fn schema() -> SchemaInfo {
        SchemaInfo::from_dtd(&figure_5a()).unwrap()
    }

    fn summary(text: &str, s: Option<&SchemaInfo>) -> ViewSummary {
        ViewSummary::from_pattern("v", &parse_pattern(text).unwrap(), s)
    }

    #[test]
    fn labels_and_text_labels() {
        let v = summary("//a[//b{val}]//c{id}[val=\"x\"]", None);
        assert_eq!(v.labels, Labels::from_iter(["a".to_owned(), "b".to_owned(), "c".to_owned()]));
        assert_eq!(v.text_labels, Labels::from_iter(["b".to_owned(), "c".to_owned()]));
        assert!(!v.desc_attr);
        assert!(!v.dead);
    }

    #[test]
    fn wildcards_widen_to_any() {
        let v = summary("//a//*{val}", None);
        assert!(v.labels.is_any());
        assert!(v.text_labels.is_any());
    }

    #[test]
    fn descendant_attributes_are_flagged() {
        assert!(summary("//a//@id{val}", None).desc_attr);
        assert!(!summary("//a/@id{val}", None).desc_attr);
    }

    #[test]
    fn deadness_against_the_schema() {
        let s = schema();
        assert!(!summary("/d1//b{id}", Some(&s)).dead);
        assert!(summary("/d1/b{id}", Some(&s)).dead, "b is not a child of d1");
        assert!(summary("//zzz{id}", Some(&s)).dead, "unknown label");
        assert!(summary("//c//b{id}", Some(&s)).dead, "nothing below c");
        assert!(!summary("/d1/b{id}", None).dead, "no schema, no verdict");
        // Branching: every branch must embed.
        assert!(summary("//a[/zzz]//b{id}", Some(&s)).dead);
        assert!(!summary("//a[/b]//b{id}", Some(&s)).dead);
    }
}
