//! Regular expressions over grammar symbols (the right-hand sides of
//! DTD rules).

use std::collections::BTreeSet;
use std::fmt;

/// A regular expression over symbol names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rx {
    /// ε — the empty word.
    Epsilon,
    /// A terminal or non-terminal symbol.
    Symbol(String),
    /// Concatenation.
    Seq(Vec<Rx>),
    /// Alternation.
    Alt(Vec<Rx>),
    /// Zero or more.
    Star(Box<Rx>),
    /// One or more.
    Plus(Box<Rx>),
    /// Zero or one.
    Opt(Box<Rx>),
}

impl Rx {
    pub fn sym(s: &str) -> Rx {
        Rx::Symbol(s.to_owned())
    }

    /// Symbols that occur in *every* word of the language — the
    /// "required" symbols driving the mandatory-descendant analysis.
    pub fn required_symbols(&self) -> BTreeSet<String> {
        match self {
            Rx::Epsilon => BTreeSet::new(),
            Rx::Symbol(s) => BTreeSet::from([s.clone()]),
            Rx::Seq(parts) => {
                let mut out = BTreeSet::new();
                for p in parts {
                    out.extend(p.required_symbols());
                }
                out
            }
            Rx::Alt(parts) => {
                let mut iter = parts.iter().map(Rx::required_symbols);
                match iter.next() {
                    None => BTreeSet::new(),
                    Some(first) => {
                        iter.fold(first, |acc, s| acc.intersection(&s).cloned().collect())
                    }
                }
            }
            Rx::Star(_) | Rx::Opt(_) => BTreeSet::new(),
            Rx::Plus(inner) => inner.required_symbols(),
        }
    }

    /// All symbols mentioned anywhere in the expression.
    pub fn all_symbols(&self) -> BTreeSet<String> {
        match self {
            Rx::Epsilon => BTreeSet::new(),
            Rx::Symbol(s) => BTreeSet::from([s.clone()]),
            Rx::Seq(parts) | Rx::Alt(parts) => parts.iter().flat_map(Rx::all_symbols).collect(),
            Rx::Star(inner) | Rx::Plus(inner) | Rx::Opt(inner) => inner.all_symbols(),
        }
    }

    /// Can the expression produce the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            Rx::Epsilon => true,
            Rx::Symbol(_) => false,
            Rx::Seq(parts) => parts.iter().all(Rx::nullable),
            Rx::Alt(parts) => parts.iter().any(Rx::nullable),
            Rx::Star(_) | Rx::Opt(_) => true,
            Rx::Plus(inner) => inner.nullable(),
        }
    }

    /// Repeated groups: required-symbol sets of `+`/`*` sub-expressions
    /// with at least two members. Adding one more instance of such a
    /// group forces its other members along — the basis of
    /// Example 3.10's sibling constraints.
    pub fn repeated_groups(&self) -> Vec<BTreeSet<String>> {
        let mut out = Vec::new();
        self.collect_repeated(&mut out);
        out
    }

    fn collect_repeated(&self, out: &mut Vec<BTreeSet<String>>) {
        match self {
            Rx::Star(inner) | Rx::Plus(inner) => {
                let req = inner.required_symbols();
                if req.len() > 1 {
                    out.push(req);
                }
                inner.collect_repeated(out);
            }
            Rx::Seq(parts) | Rx::Alt(parts) => {
                for p in parts {
                    p.collect_repeated(out);
                }
            }
            Rx::Opt(inner) => inner.collect_repeated(out),
            Rx::Epsilon | Rx::Symbol(_) => {}
        }
    }
}

impl fmt::Display for Rx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rx::Epsilon => write!(f, "()"),
            Rx::Symbol(s) => write!(f, "{s}"),
            Rx::Seq(p) => {
                write!(f, "(")?;
                for (i, x) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Rx::Alt(p) => {
                write!(f, "(")?;
                for (i, x) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Rx::Star(x) => write!(f, "{x}*"),
            Rx::Plus(x) => write!(f, "{x}+"),
            Rx::Opt(x) => write!(f, "{x}?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn required_of_seq_and_alt() {
        // (a, b) requires both; (a | b) requires none; (a | a, b)
        // requires a.
        let seq = Rx::Seq(vec![Rx::sym("a"), Rx::sym("b")]);
        assert_eq!(seq.required_symbols(), set(&["a", "b"]));
        let alt = Rx::Alt(vec![Rx::sym("a"), Rx::sym("b")]);
        assert!(alt.required_symbols().is_empty());
        let mixed = Rx::Alt(vec![Rx::sym("a"), Rx::Seq(vec![Rx::sym("a"), Rx::sym("b")])]);
        assert_eq!(mixed.required_symbols(), set(&["a"]));
    }

    #[test]
    fn required_through_repetition() {
        // a+ requires a; a* requires nothing; a? requires nothing.
        assert_eq!(Rx::Plus(Box::new(Rx::sym("a"))).required_symbols(), set(&["a"]));
        assert!(Rx::Star(Box::new(Rx::sym("a"))).required_symbols().is_empty());
        assert!(Rx::Opt(Box::new(Rx::sym("a"))).required_symbols().is_empty());
    }

    #[test]
    fn nullability() {
        assert!(Rx::Epsilon.nullable());
        assert!(!Rx::sym("a").nullable());
        assert!(Rx::Alt(vec![Rx::sym("a"), Rx::Epsilon]).nullable());
        assert!(!Rx::Plus(Box::new(Rx::sym("a"))).nullable());
    }

    #[test]
    fn repeated_groups_of_figure_5b() {
        // d2 → (a, b, c)+ : one group {a, b, c}
        let rx = Rx::Plus(Box::new(Rx::Seq(vec![Rx::sym("a"), Rx::sym("b"), Rx::sym("c")])));
        assert_eq!(rx.repeated_groups(), vec![set(&["a", "b", "c"])]);
        // b+ : no multi-symbol group
        assert!(Rx::Plus(Box::new(Rx::sym("b"))).repeated_groups().is_empty());
    }

    #[test]
    fn display_roundtrips_visually() {
        let rx = Rx::Plus(Box::new(Rx::Seq(vec![Rx::sym("a"), Rx::sym("b")])));
        assert_eq!(rx.to_string(), "(a, b)+");
    }
}
