//! Δ⁺ and Δ⁻ tables (Algorithm 2, CD+ / CD−).
//!
//! For every view node labeled `l`, Δ⁺_l holds the `(ID, val, cont)`
//! tuples of the *inserted* nodes matching `l` (with the node's value
//! predicate already applied — the σ(Δ⁺) of Proposition 3.6), and Δ⁻_l
//! holds the IDs of the *deleted* nodes matching `l`. Both are sorted
//! in document order so they can feed structural joins directly.

use crate::apply::DeletedNode;
use std::collections::HashMap;
use xivm_algebra::{Column, Field, Relation, Schema, Tuple};
use xivm_pattern::compile::relation_from_nodes;
use xivm_pattern::{NodeTest, PatternNodeId, TreePattern};
use xivm_xml::{DeweyId, Document, NodeId, NodeKind};

/// Δ⁺ tables: one relation per pattern node.
#[derive(Debug, Clone, Default)]
pub struct DeltaPlus {
    tables: HashMap<PatternNodeId, Relation>,
}

impl DeltaPlus {
    /// CD+ (Algorithm 2): extracts per-node Δ⁺ relations from the
    /// inserted nodes. `inserted` must be live in `doc` (they are: the
    /// document was just updated).
    pub fn compute(doc: &Document, pattern: &TreePattern, inserted: &[NodeId]) -> Self {
        let mut tables = HashMap::new();
        for pnode in pattern.node_ids() {
            let matching: Vec<NodeId> = inserted
                .iter()
                .copied()
                .filter(|&n| node_matches_test(doc, n, pattern.node(pnode).test.clone()))
                .collect();
            let rel = relation_from_nodes(doc, pattern, pnode, &matching);
            tables.insert(pnode, rel);
        }
        DeltaPlus { tables }
    }

    pub fn table(&self, n: PatternNodeId) -> &Relation {
        &self.tables[&n]
    }

    /// σ(Δ⁺_n) = ∅ — the emptiness test of Proposition 3.6.
    pub fn is_empty(&self, n: PatternNodeId) -> bool {
        self.tables.get(&n).is_none_or(|r| r.is_empty())
    }

    /// Total number of Δ⁺ tuples across all view nodes.
    pub fn total_len(&self) -> usize {
        self.tables.values().map(|r| r.len()).sum()
    }
}

/// Δ⁻ tables: per pattern node, the IDs of deleted matching nodes.
#[derive(Debug, Clone, Default)]
pub struct DeltaMinus {
    tables: HashMap<PatternNodeId, Vec<DeweyId>>,
}

impl DeltaMinus {
    /// CD−: extracts per-node Δ⁻ ID lists from the deletion log.
    ///
    /// Value predicates cannot be re-checked on deleted nodes (their
    /// content is gone); Δ⁻ over-approximates and the ID-based joins
    /// against the (predicate-satisfying) view tuples make the result
    /// exact — this mirrors the paper's Δ⁻ containing only `(n.id)`.
    pub fn compute(pattern: &TreePattern, deleted: &[DeletedNode]) -> Self {
        let mut tables: HashMap<PatternNodeId, Vec<DeweyId>> = HashMap::new();
        for pnode in pattern.node_ids() {
            let test = &pattern.node(pnode).test;
            let mut ids: Vec<DeweyId> = deleted
                .iter()
                .filter(|d| match test {
                    NodeTest::Name(name) => d.label == *name,
                    NodeTest::Wildcard => d.kind == NodeKind::Element,
                })
                .map(|d| d.id.clone())
                .collect();
            ids.sort_by(|a, b| a.doc_cmp(b));
            ids.dedup();
            tables.insert(pnode, ids);
        }
        DeltaMinus { tables }
    }

    /// Predicate-aware CD−, run *before* the PUL is applied: walks each
    /// delete target's subtree in the still-intact document, so value
    /// predicates on view nodes can be checked against the data being
    /// removed (after deletion the values are gone). Returns the Δ⁻
    /// tables and the IDs of the deleted subtree roots (the engine's
    /// PDMT only needs the roots: a surviving node's content changed
    /// iff it is a proper ancestor of a deleted root).
    pub fn collect(
        doc: &Document,
        pattern: &TreePattern,
        pul: &crate::pul::Pul,
    ) -> (Self, Vec<DeweyId>) {
        use std::collections::HashSet;
        let mut roots: Vec<DeweyId> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut tables: HashMap<PatternNodeId, Vec<DeweyId>> = HashMap::new();
        for pnode in pattern.node_ids() {
            tables.insert(pnode, Vec::new());
        }
        // Resolve pattern node tests to interned label ids once, so the
        // per-deleted-node check is an integer comparison.
        enum Resolved {
            Label(Option<xivm_xml::LabelId>),
            Wildcard,
        }
        let resolved: Vec<(PatternNodeId, Resolved, Option<&str>)> = pattern
            .node_ids()
            .map(|pnode| {
                let pn = pattern.node(pnode);
                let r = match &pn.test {
                    NodeTest::Name(name) => Resolved::Label(doc.label_id(name)),
                    NodeTest::Wildcard => Resolved::Wildcard,
                };
                (pnode, r, pn.val_pred.as_deref())
            })
            .collect();
        for op in &pul.ops {
            let crate::pul::AtomicOp::Delete { node } = op else {
                continue;
            };
            let Some(target) = doc.find_node(node) else {
                continue;
            };
            roots.push(node.clone());
            for n in doc.descendants_or_self(target) {
                if !seen.insert(n) {
                    continue; // nested delete targets overlap
                }
                let mut id: Option<DeweyId> = None;
                for (pnode, test, pred) in &resolved {
                    let matches = match test {
                        Resolved::Label(l) => Some(doc.node(n).label) == *l,
                        Resolved::Wildcard => doc.node(n).kind == NodeKind::Element,
                    };
                    if !matches {
                        continue;
                    }
                    if let Some(pred) = pred {
                        if doc.value(n) != *pred {
                            continue;
                        }
                    }
                    let id = id.get_or_insert_with(|| doc.dewey(n));
                    tables.get_mut(pnode).expect("prefilled").push(id.clone());
                }
            }
        }
        for ids in tables.values_mut() {
            ids.sort_by(|a, b| a.doc_cmp(b));
            ids.dedup();
        }
        (DeltaMinus { tables }, roots)
    }

    pub fn ids(&self, n: PatternNodeId) -> &[DeweyId] {
        self.tables.get(&n).map_or(&[], |v| v.as_slice())
    }

    pub fn is_empty(&self, n: PatternNodeId) -> bool {
        self.ids(n).is_empty()
    }

    /// Δ⁻_n as a one-column, ID-only relation for structural joins.
    pub fn relation(&self, pattern: &TreePattern, n: PatternNodeId) -> Relation {
        let schema = Schema::new(vec![Column::id_only(&pattern.node(n).name)]);
        let rows =
            self.ids(n).iter().map(|id| Tuple::new(vec![Field::id_only(id.clone())])).collect();
        Relation::with_rows(schema, rows)
    }

    pub fn total_len(&self) -> usize {
        self.tables.values().map(|v| v.len()).sum()
    }
}

fn node_matches_test(doc: &Document, n: NodeId, test: NodeTest) -> bool {
    let node = doc.node(n);
    match test {
        NodeTest::Name(name) => {
            (node.kind == NodeKind::Element || node.kind == NodeKind::Attribute)
                && doc.label_name(node.label) == name
        }
        NodeTest::Wildcard => node.kind == NodeKind::Element,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_pul;
    use crate::pul::compute_pul;
    use crate::statement::UpdateStatement;
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    /// Example 3.1: inserting <a><b/><b><c/></b></a> yields Δ⁺ tables
    /// with one a, two b's and one c.
    #[test]
    fn example_3_1_delta_plus() {
        let mut d = parse_document("<root><t/></root>").unwrap();
        let stmt = UpdateStatement::insert("//t", "<a><b/><b><c/></b></a>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        let order = v.preorder();
        assert_eq!(dp.table(order[0]).len(), 1);
        assert_eq!(dp.table(order[1]).len(), 2);
        assert_eq!(dp.table(order[2]).len(), 1);
        assert_eq!(dp.total_len(), 4);
    }

    /// Example 3.4: xml2 has no c element, so Δ⁺_c = ∅.
    #[test]
    fn example_3_4_missing_label() {
        let mut d = parse_document("<root><t/></root>").unwrap();
        let stmt = UpdateStatement::insert("//t", "<a><b/><b/></a>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        let c = v.preorder()[2];
        assert!(dp.is_empty(c));
    }

    /// Example 3.5: value predicate [val=5] filters the new a out of
    /// σ(Δ⁺_a).
    #[test]
    fn example_3_5_value_predicate() {
        let mut d = parse_document("<root><t/></root>").unwrap();
        let stmt = UpdateStatement::insert("//t", "<a>3<b/><b/></a>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//a[val=\"5\"]//b{id}").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        assert!(dp.is_empty(v.root()), "new a fails [val=5], σ(Δ⁺_a) is empty");
        assert_eq!(dp.table(v.preorder()[1]).len(), 2);
    }

    /// Example 4.6-style Δ⁻ extraction.
    #[test]
    fn delta_minus_from_deletions() {
        let mut d = parse_document("<a><c><b/></c><f><b/></f></a>").unwrap();
        let stmt = UpdateStatement::delete("//f").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//c{id}//b{id}").unwrap();
        let dm = DeltaMinus::compute(&v, &res.deleted);
        let b = v.preorder()[1];
        assert_eq!(dm.ids(b).len(), 1);
        assert!(dm.is_empty(v.root()), "no c was deleted");
        // The single deleted b has no c ancestor in its label path.
        let c_lbl = d.label_id("c").unwrap();
        assert!(!dm.ids(b)[0].has_proper_ancestor_labeled(c_lbl));
        let rel = dm.relation(&v, b);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.schema.columns[0].name, "b");
    }

    #[test]
    fn wildcard_delta_matches_elements_only() {
        let mut d = parse_document("<root><t/></root>").unwrap();
        let stmt = UpdateStatement::insert("//t", "<i k=\"9\">txt</i>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let v = parse_pattern("//*{id}").unwrap();
        let dp = DeltaPlus::compute(&d, &v, &res.inserted);
        assert_eq!(dp.table(v.root()).len(), 1, "only the i element, not @k or text");
    }
}
