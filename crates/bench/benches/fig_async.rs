//! Async commit service: what does a producer *wait on* per commit?
//!
//! A sustained stream of small single-statement commits (insert/delete
//! pairs cycling through the XMark view catalog, so the document stays
//! bounded) is pushed through the full `Database` facade with 100
//! subscribers fanned out across the views, two ways:
//!
//! * `apply (full seal)` — the caller blocks until the commit is
//!   sealed and every feed has its event: the per-commit latency IS
//!   the seal latency;
//! * `apply_async (submit)` — the caller only validates and enqueues;
//!   sealing happens on the service thread behind the submission, and
//!   one `flush()` at the end waits for the tail.
//!
//! Reported per mode: per-commit latency statistics (mean/min via
//! `xivm_bench::rep_stats`, p50/p99 via the criterion shim's
//! [`criterion::percentile`]), the wall time of the whole stream, and
//! the sealed-commit throughput. The async submit row should sit far
//! below the full-seal row — that gap is the latency the service hides
//! from producers — while its end-to-end wall time (submission plus
//! the final flush) stays in the same regime as the synchronous run.
//!
//! Differential anchor: both modes must leave bit-identical documents,
//! and one replica per view, fed only by drained feed events, must
//! match the live store.

use std::time::{Duration, Instant};

use criterion::percentile;
use xivm_bench::{figure_header, ms, rep_stats, row};
use xivm_core::database::Database;
use xivm_core::{Subscription, ViewStore};
use xivm_update::UpdateStatement;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

/// Feeds fanned out across the catalog views (round-robin).
const SUBSCRIBERS: usize = 100;

/// Insert/delete rounds through the catalog; each round is
/// `2 x |views-with-updates|` single-statement commits.
fn rounds() -> usize {
    if xivm_xmark::sizes::full_scale() {
        30
    } else {
        10
    }
}

/// The sustained stream: one insert and one delete per catalog view,
/// repeated, so every view sees steady delta traffic and the document
/// returns to its original shape after every round.
fn stream() -> Vec<UpdateStatement> {
    let mut out = Vec::new();
    for _ in 0..rounds() {
        for view in VIEW_NAMES {
            if let Some(u) = updates_for_view(view).first() {
                out.push(u.insert_stmt());
                out.push(u.delete_stmt());
            }
        }
    }
    out
}

fn build_db(doc: &xivm_xml::Document, analyzed: bool) -> Database {
    let mut b = Database::builder().document(doc.clone()).workers(2).pipeline(4);
    if analyzed {
        b = b.dtd(xivm_xmark::XMARK_DTD).analyze(xivm_core::AnalyzeMode::Warn);
    }
    for v in VIEW_NAMES {
        b = b.view(v, view_pattern(v));
    }
    b.build().expect("catalog database builds")
}

/// 100 subscriptions round-robin over the views, plus one replica per
/// view (cloned at subscribe time, before any commit) for the
/// feed-replay check.
fn subscribe_fleet(db: &mut Database) -> (Vec<Subscription>, Vec<ViewStore>) {
    let handles = db.handles();
    let subs: Vec<Subscription> =
        (0..SUBSCRIBERS).map(|i| db.subscribe(handles[i % handles.len()])).collect();
    let replicas: Vec<ViewStore> = handles.iter().map(|&h| db.store(h).clone()).collect();
    (subs, replicas)
}

/// Drains every feed, replays the first per-view subscriber onto its
/// replica, and checks order and convergence. Returns the total events
/// fanned out.
fn drain_and_check(db: &mut Database, subs: &[Subscription], replicas: &mut [ViewStore]) -> usize {
    let handles = db.handles();
    let mut events = 0usize;
    for (i, sub) in subs.iter().enumerate() {
        let drained = db.drain(sub);
        let mut last = 0u64;
        for e in &drained {
            assert!(e.seq > last, "feed events must arrive in commit order");
            last = e.seq;
            if i < handles.len() {
                e.delta.replay(&mut replicas[i]);
            }
        }
        events += drained.len();
    }
    for (&h, replica) in handles.iter().zip(replicas.iter()) {
        assert!(
            replica.identical_to(db.store(h)),
            "feed-replayed replica must track the live view"
        );
    }
    events
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// One result row: per-commit latency statistics plus stream totals.
fn report(mode: &str, lat_us: &[f64], wall_ms: f64, events: usize) {
    let s = rep_stats(lat_us);
    let mut sorted = lat_us.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    row(&[
        mode.to_owned(),
        lat_us.len().to_string(),
        format!("{:.2}", s.mean),
        format!("{:.2}", s.min),
        format!("{:.2}", percentile(&sorted, 0.5)),
        format!("{:.2}", percentile(&sorted, 0.99)),
        format!("{:.2}", s.stddev),
        format!("{wall_ms:.3}"),
        format!("{:.0}", lat_us.len() as f64 / (wall_ms / 1e3)),
        events.to_string(),
    ]);
}

fn main() {
    let doc = generate_sized(32 * 1024);
    let stream = stream();

    figure_header(
        "Async commit service",
        &format!(
            "submit vs full-seal latency, {} single-statement commits, {} views, {} subscribers, 32KB document",
            stream.len(),
            VIEW_NAMES.len(),
            SUBSCRIBERS
        ),
    );
    row(&[
        "mode".to_owned(),
        "commits".to_owned(),
        "mean_us".to_owned(),
        "min_us".to_owned(),
        "p50_us".to_owned(),
        "p99_us".to_owned(),
        "stddev_us".to_owned(),
        "wall_ms".to_owned(),
        "commits_per_s".to_owned(),
        "feed_events".to_owned(),
    ]);

    // Synchronous reference: each apply() seals before returning.
    let mut db = build_db(&doc, false);
    let (subs, mut replicas) = subscribe_fleet(&mut db);
    let mut lat = Vec::with_capacity(stream.len());
    let wall = Instant::now();
    for stmt in &stream {
        let t = Instant::now();
        db.apply(stmt).expect("catalog update applies");
        lat.push(us(t.elapsed()));
    }
    let sync_wall = ms(wall.elapsed());
    let events = drain_and_check(&mut db, &subs, &mut replicas);
    let sync_doc = db.serialize();
    report("apply (full seal)", &lat, sync_wall, events);

    // Async service: each apply_async() only validates and enqueues.
    let mut db = build_db(&doc, false);
    let (subs, mut replicas) = subscribe_fleet(&mut db);
    let mut lat = Vec::with_capacity(stream.len());
    let mut tickets = Vec::with_capacity(stream.len());
    let wall = Instant::now();
    for stmt in &stream {
        let t = Instant::now();
        tickets.push(db.apply_async([stmt]).expect("submission accepted"));
        lat.push(us(t.elapsed()));
    }
    let submit_wall = ms(wall.elapsed());
    db.flush().expect("stream seals");
    let async_wall = ms(wall.elapsed());
    for t in &tickets {
        t.wait().expect("every submitted commit seals");
    }
    let events = drain_and_check(&mut db, &subs, &mut replicas);
    assert_eq!(db.serialize(), sync_doc, "async stream must equal the synchronous run");
    report("apply_async (submit)", &lat, submit_wall, events);
    println!(
        "# async end-to-end: {async_wall:.3} ms submit+flush ({:.0} sealed commits/s)",
        stream.len() as f64 / (async_wall / 1e3)
    );

    // Async service with the static analyzer armed: the service thread
    // consults the relevance matrix per window, skipping maintenance
    // for views proved irrelevant to a commit — and stays bit-identical
    // to the unanalyzed runs.
    let mut db = build_db(&doc, true);
    let (subs, mut replicas) = subscribe_fleet(&mut db);
    let mut lat = Vec::with_capacity(stream.len());
    let mut tickets = Vec::with_capacity(stream.len());
    let wall = Instant::now();
    for stmt in &stream {
        let t = Instant::now();
        tickets.push(db.apply_async([stmt]).expect("submission accepted"));
        lat.push(us(t.elapsed()));
    }
    let submit_wall = ms(wall.elapsed());
    db.flush().expect("stream seals");
    let analyzed_wall = ms(wall.elapsed());
    let mut static_skips = 0usize;
    for t in &tickets {
        static_skips += t.wait().expect("every submitted commit seals").static_skips();
    }
    let events = drain_and_check(&mut db, &subs, &mut replicas);
    assert_eq!(db.serialize(), sync_doc, "analyzed stream must equal the synchronous run");
    report("apply_async (analyzed)", &lat, submit_wall, events);
    let propagations = stream.len() * VIEW_NAMES.len();
    println!(
        "# analyzed end-to-end: {analyzed_wall:.3} ms submit+flush, {static_skips} static skips \
         across {propagations} propagations ({:.1}% skip rate)",
        100.0 * static_skips as f64 / propagations as f64
    );
}
