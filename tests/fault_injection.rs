//! Fault-injection harness for the async commit service.
//!
//! Arms the one-shot failpoints in `xivm_core::fault` (compiled in via
//! the `fault-inject` feature) and proves the containment guarantees
//! `crates/core/src/service.rs` documents:
//!
//! * a panicking window drains cleanly — the service survives, later
//!   submissions seal, and `Database` drop still joins everything;
//! * the failure surfaces on the failing ticket's `wait()` as
//!   [`Error::Panic`], on everything queued behind it as
//!   [`Error::Aborted`], and exactly once on `flush()`;
//! * after the failure the database equals a *sequential replay of the
//!   committed prefix* — same serialized document, same stores, same
//!   commit counter — checked against a fresh database;
//! * subscription feeds stay gapless: consumers see exactly the sealed
//!   commits, in order, with consecutive sequence numbers;
//! * [`fault::SEAL_DELAY`] shows submission returning well before the
//!   seal completes (the latency decoupling `fig_async` measures).
//!
//! Every test holds [`fault::exclusive`] for its whole body: the armed
//! set is process-global and the test runner is multi-threaded.

use std::time::{Duration, Instant};

use xivm::pattern::compile::view_tuples;
use xivm::prelude::*;
use xivm_core::fault;

/// The doctest document: two views with overlapping matches so every
/// insert below touches both stores.
const DOC: &str = "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>";
const VIEWS: [(&str, &str); 2] = [("acb", "//a{id}[//c{id}]//b{id}"), ("cb", "//c{id}//b{id}")];

/// Always-valid statements for async batches (an insert cannot fail,
/// so the only failures in these tests are the injected ones).
fn stmt(i: usize) -> String {
    if i % 2 == 0 {
        "insert <b/> into /a/c".to_owned()
    } else {
        "insert <c><b/></c> into /a/f".to_owned()
    }
}

fn build_db(workers: usize, pipeline: usize) -> Database {
    let mut b = Database::builder().document(DOC).workers(workers).pipeline(pipeline);
    for (name, pattern) in VIEWS {
        b = b.view(name, pattern);
    }
    b.build().expect("fixture database")
}

/// Every store equals a from-scratch recount of its pattern against
/// the current document (the same oracle the soak harness uses).
fn assert_consistent(db: &Database, context: &str) {
    for (name, _) in VIEWS {
        let h = db.view(name).expect("known view");
        let pattern = db.pattern(h).clone();
        let expected = ViewStore::from_counted(&pattern, view_tuples(db.document(), &pattern));
        assert!(
            db.store(h).same_content_as(&expected),
            "{context}: view {name} diverged from recount oracle"
        );
    }
}

/// The database must equal a fresh one sequentially replaying exactly
/// the statements whose commits sealed.
fn assert_equals_replay(db: &Database, sealed_stmts: &[String], context: &str) {
    let mut replay = build_db(1, 1);
    for s in sealed_stmts {
        replay.apply(s.as_str()).expect("replay statement");
    }
    assert_eq!(db.last_seq(), replay.last_seq(), "{context}: commit counter");
    assert_eq!(db.serialize(), replay.serialize(), "{context}: document");
    for (name, _) in VIEWS {
        let h = db.view(name).expect("known view");
        let rh = replay.view(name).expect("known view");
        assert!(
            db.store(h).same_content_as(replay.store(rh)),
            "{context}: view {name} differs from sequential replay"
        );
    }
}

/// Drains a feed and asserts its delta events are gapless, returning
/// the sequence numbers seen.
fn drained_seqs(sub: &Subscription) -> Vec<u64> {
    let seqs: Vec<u64> = sub
        .drain()
        .into_iter()
        .map(|ev| match ev {
            FeedEvent::Delta(d) => d.seq,
            FeedEvent::Lagged(lag) => {
                panic!("unexpected lag marker (missed {:?})", lag.missed_range)
            }
        })
        .collect();
    for pair in seqs.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "feed has a sequence gap: {seqs:?}");
    }
    seqs
}

/// A panic in `prepare` during an async window: the first queued
/// ticket carries `Error::Panic`, everything behind it aborts, and the
/// database rolls back to the last sealed commit.
#[test]
fn prepare_panic_fails_window_and_database_recovers() {
    let _guard = fault::exclusive();
    fault::disarm_all();

    let mut db = build_db(2, 4);
    let h = db.view("acb").expect("view");
    let feed = db.subscribe(h);
    let base: Vec<String> = (0..2).map(stmt).collect();
    // Drain after every commit: under the CI async matrix
    // (XIVM_SUB_CAPACITY=1) the feed is a capacity-1 Block queue, so
    // an undrained event would stall the next commit's fan-out.
    let mut feed_seqs = Vec::new();
    for s in &base {
        db.apply(s.as_str()).expect("base commit");
        feed_seqs.extend(drained_seqs(&feed));
    }

    // SEAL_DELAY makes the schedule deterministic: whatever prefix of
    // the submissions lands in the service's first batch, the 40ms
    // sleep before its first window lets the remaining apply_async
    // calls enqueue — so every ticket is in flight when the armed
    // prepare panics, and none can slip into a clean later batch.
    fault::arm(fault::PREPARE_PANIC | fault::SEAL_DELAY);
    let tickets: Vec<Ticket> = (0..4).map(|i| db.apply_async([stmt(i)]).expect("submit")).collect();

    let flushed = db.flush();
    match &flushed {
        Err(Error::Panic(msg)) => {
            assert!(msg.contains("injected fault: panic in prepare"), "panic message: {msg}")
        }
        other => panic!("flush should surface the injected panic, got {other:?}"),
    }
    assert!(db.flush().is_ok(), "flush reports each failure exactly once");

    // The first submission was at the head of the panicking window
    // (zero commits seal when a pipelined window dies), so it carries
    // the panic; everything behind it aborted.
    let first = tickets[0].wait();
    assert!(matches!(first, Err(Error::Panic(_))), "first ticket: {first:?}");
    assert_eq!(
        tickets[0].wait().map(|c| c.seq).unwrap_err().to_string(),
        first.map(|c| c.seq).unwrap_err().to_string(),
        "wait() is idempotent"
    );
    assert!(tickets[0].try_result().is_some(), "resolved tickets answer try_result");
    for t in &tickets[1..] {
        assert!(matches!(t.wait(), Err(Error::Aborted)), "queued-behind tickets abort");
    }

    // Rollback: only the two base commits exist, bit-identical to a
    // sequential replay, and the feed saw exactly them (the failed
    // window fanned out nothing).
    assert_equals_replay(&db, &base, "after prepare panic");
    assert_consistent(&db, "after prepare panic");
    feed_seqs.extend(drained_seqs(&feed));
    assert_eq!(feed_seqs, vec![1, 2]);

    // The service survived: both the sync and async paths keep working
    // and the feed continues gaplessly.
    let c3 = db.apply(stmt(2).as_str()).expect("sync after failure");
    assert_eq!(c3.seq, 3);
    let mut tail = drained_seqs(&feed);
    let t4 = db.apply_async([stmt(3)]).expect("async after failure");
    let c4 = t4.wait().expect("async seals after failure");
    assert_eq!(c4.seq, 4);
    tail.extend(drained_seqs(&feed));
    assert_eq!(tail, vec![3, 4]);
    assert_consistent(&db, "after post-failure commits");

    fault::disarm_all();
}

/// A panic in `finish` after earlier async commits sealed: the sealed
/// prefix survives exactly, the failed seq is reclaimed by the next
/// submission, and `commit_barrier` reports the failed seq as never
/// reached.
#[test]
fn finish_panic_preserves_sealed_prefix() {
    let _guard = fault::exclusive();
    fault::disarm_all();

    let mut db = build_db(2, 1);
    let h = db.view("cb").expect("view");
    let feed = db.subscribe(h);
    db.apply(stmt(0).as_str()).expect("base commit");
    // Drained after every seal so a capacity-1 env default
    // (XIVM_SUB_CAPACITY=1, Block) cannot stall the next one.
    let mut feed_seqs = drained_seqs(&feed);

    let ta = db.apply_async([stmt(1)]).expect("submit A");
    db.flush().expect("A seals cleanly");
    assert_eq!(ta.wait().expect("A sealed").seq, 2);
    feed_seqs.extend(drained_seqs(&feed));

    fault::arm(fault::FINISH_PANIC | fault::SEAL_DELAY);
    let tb = db.apply_async([stmt(2)]).expect("submit B");
    let tc = db.apply_async([stmt(3)]).expect("submit C");
    assert_eq!(tb.seq, 3);
    assert_eq!(tc.seq, 4);

    match tb.wait() {
        Err(Error::Panic(msg)) => {
            assert!(msg.contains("injected fault: panic in finish"), "panic message: {msg}")
        }
        other => panic!("B should carry the injected panic, got {other:?}"),
    }
    assert!(matches!(tc.wait(), Err(Error::Aborted)));
    assert!(matches!(db.flush(), Err(Error::Panic(_))));

    // B's seq was promised but never sealed: the barrier comes back
    // below it instead of waiting forever.
    assert_eq!(db.commit_barrier(tb.seq), 2);

    let sealed: Vec<String> = vec![stmt(0), stmt(1)];
    assert_equals_replay(&db, &sealed, "after finish panic");
    assert_consistent(&db, "after finish panic");
    feed_seqs.extend(drained_seqs(&feed));
    assert_eq!(feed_seqs, vec![1, 2]);

    // Reservations restarted from the sealed prefix: the next
    // submission reclaims B's number and the stream stays gapless.
    let td = db.apply_async([stmt(2)]).expect("resubmit");
    assert_eq!(td.seq, 3, "failed seq is reclaimed, not leaked as a gap");
    assert_eq!(td.wait().expect("resubmission seals").seq, 3);
    assert_eq!(db.commit_barrier(3), 3);
    assert_eq!(drained_seqs(&feed), vec![3]);

    fault::disarm_all();
}

/// A panic inside a multi-statement async submission (the sequential
/// transaction path): the whole transaction rolls back and the same
/// statements succeed once the fault is spent.
#[test]
fn panic_in_async_transaction_rolls_back_whole_batch() {
    let _guard = fault::exclusive();
    fault::disarm_all();

    let mut db = build_db(1, 1);
    let base = stmt(0);
    db.apply(base.as_str()).expect("base commit");

    fault::arm(fault::PREPARE_PANIC);
    let t = db.apply_async([stmt(1), stmt(2)]).expect("submit transaction");
    assert!(matches!(t.wait(), Err(Error::Panic(_))));
    assert!(matches!(db.flush(), Err(Error::Panic(_))));

    assert_equals_replay(&db, std::slice::from_ref(&base), "after transaction panic");
    assert_consistent(&db, "after transaction panic");

    // The fault is one-shot: the identical resubmission seals as one
    // commit, equal to a sequential transaction replay.
    let t2 = db.apply_async([stmt(1), stmt(2)]).expect("resubmit transaction");
    let commit = t2.wait().expect("transaction seals");
    assert_eq!(commit.seq, 2);
    let mut replay = build_db(1, 1);
    replay.apply(base.as_str()).expect("replay base");
    replay
        .transaction()
        .statement(stmt(1).as_str())
        .statement(stmt(2).as_str())
        .commit()
        .expect("replay transaction");
    assert_eq!(db.serialize(), replay.serialize());
    assert_consistent(&db, "after transaction resubmit");

    fault::disarm_all();
}

/// A panicking window drains cleanly even while a capacity-1 `Block`
/// subscription is being drained from another thread: the service
/// never wedges, and the consumer sees exactly the sealed commits with
/// no gaps.
#[test]
fn blocked_consumer_survives_panicking_window() {
    let _guard = fault::exclusive();
    fault::disarm_all();

    let mut db = build_db(2, 2);
    let h = db.view("acb").expect("view");
    let feed = db.subscribe_with(h, Some(1), SlowConsumerPolicy::Block);

    // Five commits will seal in total; the consumer drains the
    // capacity-1 queue until it has seen them all.
    let consumer = std::thread::spawn(move || {
        let mut seqs = Vec::new();
        while seqs.len() < 5 {
            for ev in feed.drain() {
                match ev {
                    FeedEvent::Delta(d) => seqs.push(d.seq),
                    FeedEvent::Lagged(lag) => {
                        panic!("Block policy never lags (missed {:?})", lag.missed_range)
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        seqs
    });

    let mut sealed: Vec<String> = Vec::new();
    for i in 0..3 {
        let t = db.apply_async([stmt(i)]).expect("submit");
        sealed.push(stmt(i));
        // flush() waits for the seal, which itself waits on the full
        // queue — progress proves the consumer thread releases the
        // backpressure stall while the service is mid-seal.
        db.flush().expect("clean commit");
        assert_eq!(t.wait().expect("sealed").seq, (i + 1) as u64);
    }

    fault::arm(fault::FINISH_PANIC);
    let failing = db.apply_async([stmt(3)]).expect("submit failing");
    assert!(matches!(failing.wait(), Err(Error::Panic(_))));
    assert!(matches!(db.flush(), Err(Error::Panic(_))));

    for i in 4..6 {
        let t = db.apply_async([stmt(i)]).expect("submit after failure");
        sealed.push(stmt(i));
        assert!(t.wait().is_ok());
    }
    db.flush().expect("clean tail");

    let seen = consumer.join().expect("consumer thread");
    assert_eq!(seen, vec![1, 2, 3, 4, 5], "gapless despite the failed commit in between");
    assert_equals_replay(&db, &sealed, "after blocked-consumer run");
    assert_consistent(&db, "after blocked-consumer run");

    fault::disarm_all();
}

/// `SEAL_DELAY` separates submission latency from seal latency:
/// `apply_async` returns while the service still sleeps, and the
/// ticket only resolves once the delayed seal completes.
#[test]
fn submission_returns_before_delayed_seal() {
    let _guard = fault::exclusive();
    fault::disarm_all();

    let mut db = build_db(1, 1);
    fault::arm(fault::SEAL_DELAY);

    let start = Instant::now();
    let ticket = db.apply_async([stmt(0)]).expect("submit");
    let submitted = start.elapsed();
    assert!(
        ticket.try_result().is_none() || submitted >= Duration::from_millis(fault::SEAL_DELAY_MS)
    );

    let commit = ticket.wait().expect("delayed seal completes");
    let sealed = start.elapsed();
    assert_eq!(commit.seq, 1);
    assert!(
        sealed >= Duration::from_millis(fault::SEAL_DELAY_MS),
        "seal paid the injected delay ({sealed:?})"
    );
    assert!(
        submitted < Duration::from_millis(fault::SEAL_DELAY_MS),
        "apply_async returned before the seal ({submitted:?})"
    );
    assert_consistent(&db, "after delayed seal");

    fault::disarm_all();
}
