//! Path and statement shapes: what an update *can* touch, by label.
//!
//! A [`PathShape`] abstracts a target `LocationPath` to three label
//! sets — the labels its result nodes can carry (`finals`), a superset
//! of their proper-ancestor labels (`ancestors`) and of their direct
//! parents (`parents`) — plus a `dead` flag when the path provably
//! selects nothing in any DTD-conforming document (wrong root label,
//! child step outside the parent's content model, descendant step to
//! an unreachable label, a predicate that can never hold, a step below
//! an attribute or text node).
//!
//! A [`StatementShape`] lifts that to a whole `UpdateStatement`: the
//! labels it can create and destroy, the labels whose string value may
//! change, and the insertion-point / deletion-target sets the
//! Figure 15 independence rules compare. All sets are conservative
//! *supersets* for conforming documents; `Labels::Any` marks the
//! honest "could be anything" cases (wildcards without a schema,
//! unparseable forests, `insert q1 into q2` copies).

use crate::labels::Labels;
use crate::schema::SchemaInfo;
use std::collections::BTreeSet;
use xivm_algebra::Axis;
use xivm_pattern::xpath::{LocationPath, XNodeTest, XPred, XStep};
use xivm_update::UpdateStatement;
use xivm_xml::Document;

/// Label abstraction of one location path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathShape {
    /// The path provably selects nothing in any conforming document.
    pub dead: bool,
    /// Labels the selected nodes can carry.
    pub finals: Labels,
    /// Superset of the selected nodes' proper-ancestor labels.
    pub ancestors: Labels,
    /// Superset of the selected nodes' direct-parent labels.
    pub parents: Labels,
}

impl PathShape {
    fn dead_shape() -> PathShape {
        PathShape {
            dead: true,
            finals: Labels::none(),
            ancestors: Labels::none(),
            parents: Labels::none(),
        }
    }

    /// Walks `path` (an absolute path, evaluated from the document
    /// node) through the schema, if one is given.
    pub fn of(schema: Option<&SchemaInfo>, path: &LocationPath) -> PathShape {
        let Some(first) = path.steps.first() else {
            // An empty location path selects nothing (`eval_path`
            // returns no context).
            return PathShape::dead_shape();
        };
        let Some(mut st) = first_step(schema, first) else {
            return PathShape::dead_shape();
        };
        if !preds_may_hold(schema, &st, &first.preds) {
            return PathShape::dead_shape();
        }
        for step in &path.steps[1..] {
            match next_step(schema, &st, step) {
                Some(next) if preds_may_hold(schema, &next, &step.preds) => st = next,
                _ => return PathShape::dead_shape(),
            }
        }
        PathShape { dead: false, finals: st.cur, ancestors: st.anc, parents: st.parent }
    }
}

/// Walker state after some prefix of steps.
#[derive(Debug, Clone)]
struct WalkState {
    cur: Labels,
    anc: Labels,
    parent: Labels,
}

/// Feasible labels of a node reached from context labels `cur` over
/// `axis` with label test `test` (`None` = wildcard: any *element*).
/// Attribute (`@…`) and text (`#…`) labels are never constrained by
/// the schema (the grammar speaks about elements only). An empty
/// result set means the step is dead.
pub(crate) fn reachable_targets(
    schema: Option<&SchemaInfo>,
    cur: &Labels,
    axis: Axis,
    test: Option<&str>,
) -> Labels {
    if cur.is_none() || cur.all_leaf_kinds() {
        // Attributes and text nodes have neither children nor
        // descendants.
        return Labels::none();
    }
    match test {
        Some(l) if l.starts_with('@') || l.starts_with('#') => Labels::one(l),
        Some(n) => match schema {
            None => Labels::one(n),
            Some(s) => {
                if !s.is_satisfiable(n) {
                    return Labels::none();
                }
                let ok = match (axis, cur.as_set()) {
                    (Axis::Child, Some(set)) => set.iter().any(|p| s.children_of(p).contains(n)),
                    (Axis::Child, None) => !s.possible_parents(n).is_empty(),
                    (Axis::Descendant, Some(set)) => {
                        set.iter().any(|p| s.strict_descendants(p).contains(n))
                    }
                    (Axis::Descendant, None) => !s.possible_ancestors(n).is_empty(),
                };
                if ok {
                    Labels::one(n)
                } else {
                    Labels::none()
                }
            }
        },
        None => match schema {
            None => Labels::Any,
            Some(s) => match axis {
                Axis::Child => s.children_of_set(cur),
                Axis::Descendant => s.strict_descendants_of_set(cur),
            },
        },
    }
}

/// Feasible labels of a *first* step, taken from the document node:
/// the child axis reaches only the root element, the descendant axis
/// any node of the document.
pub(crate) fn root_targets(schema: Option<&SchemaInfo>, axis: Axis, test: Option<&str>) -> Labels {
    match test {
        Some(l) if l.starts_with('@') || l.starts_with('#') => match axis {
            // The document node's only child is the root element.
            Axis::Child => Labels::none(),
            Axis::Descendant => Labels::one(l),
        },
        Some(n) => match schema {
            None => Labels::one(n),
            Some(s) => {
                let ok = match axis {
                    Axis::Child => s.start() == n && s.is_satisfiable(n),
                    Axis::Descendant => s.occurs_in_documents(n),
                };
                if ok {
                    Labels::one(n)
                } else {
                    Labels::none()
                }
            }
        },
        None => match schema {
            None => Labels::Any,
            Some(s) => match axis {
                Axis::Child => {
                    if s.is_satisfiable(s.start()) {
                        Labels::one(s.start().to_owned())
                    } else {
                        Labels::none()
                    }
                }
                Axis::Descendant => Labels::Set(s.descendants_or_self(s.start())),
            },
        },
    }
}

fn test_label(test: &XNodeTest) -> Option<String> {
    match test {
        XNodeTest::Name(n) => Some(n.clone()),
        XNodeTest::Attribute(a) => Some(format!("@{a}")),
        XNodeTest::Text => Some(xivm_xml::TEXT_LABEL.to_owned()),
        XNodeTest::Wildcard | XNodeTest::SelfNode => None,
    }
}

fn first_step(schema: Option<&SchemaInfo>, step: &XStep) -> Option<WalkState> {
    // `//.` matches attributes and text too, whose labels a schema
    // cannot enumerate; `/.` is just the root element.
    let cur = if matches!(step.test, XNodeTest::SelfNode) && step.axis == Axis::Descendant {
        Labels::Any
    } else {
        root_targets(schema, step.axis, test_label(&step.test).as_deref())
    };
    if cur.is_none() {
        return None;
    }
    let (anc, parent) = match step.axis {
        // The root element has no element ancestors.
        Axis::Child => (Labels::none(), Labels::none()),
        Axis::Descendant => match schema {
            None => (Labels::Any, Labels::Any),
            Some(s) => match &step.test {
                XNodeTest::Name(n) => {
                    (Labels::Set(s.possible_ancestors(n)), Labels::Set(s.possible_parents(n)))
                }
                // Owners of attributes / text / arbitrary nodes: any
                // element of the document.
                _ => {
                    let all = Labels::Set(s.descendants_or_self(s.start()));
                    (all.clone(), all)
                }
            },
        },
    };
    Some(WalkState { cur, anc, parent })
}

fn next_step(schema: Option<&SchemaInfo>, st: &WalkState, step: &XStep) -> Option<WalkState> {
    if matches!(step.test, XNodeTest::SelfNode) {
        // `.` passes the context through unchanged regardless of axis.
        return Some(st.clone());
    }
    let cur = reachable_targets(schema, &st.cur, step.axis, test_label(&step.test).as_deref());
    if cur.is_none() {
        return None;
    }
    let (anc, parent) = match step.axis {
        Axis::Child => {
            // The parent is the context node itself; with a schema and
            // a name test we can narrow it to the viable parents.
            let parent = match (schema, &step.test) {
                (Some(s), XNodeTest::Name(n)) => {
                    Labels::Set(s.possible_parents(n)).intersection(&st.cur)
                }
                _ => st.cur.clone(),
            };
            (st.anc.clone().union(&parent), parent)
        }
        Axis::Descendant => match schema {
            None => (Labels::Any, Labels::Any),
            Some(s) => {
                // Labels at or strictly below the context nodes — the
                // scope every ancestor of the new node (other than the
                // context's own ancestors) must come from.
                let scope = st.cur.clone().union(&s.strict_descendants_of_set(&st.cur));
                match &step.test {
                    XNodeTest::Name(n) => (
                        st.anc
                            .clone()
                            .union(&Labels::Set(s.possible_ancestors(n)).intersection(&scope)),
                        Labels::Set(s.possible_parents(n)).intersection(&scope),
                    ),
                    _ => (st.anc.clone().union(&scope), scope),
                }
            }
        },
    };
    Some(WalkState { cur, anc, parent })
}

/// Could every predicate in `preds` hold for some node in some
/// conforming document? `false` means a predicate is *definitely*
/// false — its path can match nothing — so the step selects nothing.
fn preds_may_hold(schema: Option<&SchemaInfo>, st: &WalkState, preds: &[XPred]) -> bool {
    preds.iter().all(|p| pred_may_hold(schema, st, p))
}

fn pred_may_hold(schema: Option<&SchemaInfo>, st: &WalkState, pred: &XPred) -> bool {
    match pred {
        XPred::Exists(path) | XPred::ValEq(path, _) => walk_relative(schema, st, path).is_some(),
        XPred::And(a, b) => pred_may_hold(schema, st, a) && pred_may_hold(schema, st, b),
        XPred::Or(a, b) => pred_may_hold(schema, st, a) || pred_may_hold(schema, st, b),
    }
}

fn walk_relative(
    schema: Option<&SchemaInfo>,
    st: &WalkState,
    path: &LocationPath,
) -> Option<WalkState> {
    let mut cur = st.clone();
    for step in &path.steps {
        cur = next_step(schema, &cur, step)?;
        if !preds_may_hold(schema, &cur, &step.preds) {
            return None;
        }
    }
    Some(cur)
}

/// Label abstraction of one update statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementShape {
    /// The statement provably does nothing in any conforming document
    /// (dead target path, or an `insert q1 into q2` whose source is
    /// dead).
    pub dead: bool,
    /// Labels of nodes the statement can create (inserted forests,
    /// including their `@…` attribute labels).
    pub creates: Labels,
    /// Labels of nodes the statement can destroy (deletion targets
    /// plus everything reachable inside their subtrees).
    pub destroys: Labels,
    /// Labels of *surviving* nodes whose string value / serialized
    /// content may change: the targets and their ancestors.
    pub touch_scope: Labels,
    /// Labels of the nodes content is inserted *into* (Figure 15's
    /// `InsertInto` targets).
    pub ins_finals: Labels,
    /// Superset of the insertion points' proper-ancestor labels.
    pub ins_ancestors: Labels,
    /// Labels of the nodes a deletion removes (subtree roots only).
    pub del_finals: Labels,
}

impl StatementShape {
    fn dead_shape() -> StatementShape {
        StatementShape {
            dead: true,
            creates: Labels::none(),
            destroys: Labels::none(),
            touch_scope: Labels::none(),
            ins_finals: Labels::none(),
            ins_ancestors: Labels::none(),
            del_finals: Labels::none(),
        }
    }

    /// Abstracts `stmt` against the schema, if one is given.
    pub fn of(schema: Option<&SchemaInfo>, stmt: &UpdateStatement) -> StatementShape {
        let target = PathShape::of(schema, stmt.target());
        if target.dead {
            return StatementShape::dead_shape();
        }
        let touch_scope = target.finals.clone().union(&target.ancestors);
        match stmt {
            UpdateStatement::Insert { xml, .. } => StatementShape {
                dead: false,
                creates: forest_labels(xml),
                destroys: Labels::none(),
                touch_scope,
                ins_finals: target.finals,
                ins_ancestors: target.ancestors,
                del_finals: Labels::none(),
            },
            UpdateStatement::InsertFrom { source, .. } => {
                let src = PathShape::of(schema, source);
                if src.dead {
                    // Nothing to copy: the statement is a no-op.
                    return StatementShape::dead_shape();
                }
                StatementShape {
                    dead: false,
                    // The copied subtrees can contain any label below
                    // the source — including attributes the schema
                    // cannot enumerate — so stay honest.
                    creates: Labels::Any,
                    destroys: Labels::none(),
                    touch_scope,
                    ins_finals: target.finals,
                    ins_ancestors: target.ancestors,
                    del_finals: Labels::none(),
                }
            }
            UpdateStatement::Delete { .. } => StatementShape {
                dead: false,
                creates: Labels::none(),
                destroys: destroy_closure(schema, &target.finals),
                touch_scope,
                ins_finals: Labels::none(),
                ins_ancestors: Labels::none(),
                del_finals: target.finals,
            },
            UpdateStatement::Replace { xml, .. } => StatementShape {
                dead: false,
                creates: forest_labels(xml),
                destroys: destroy_closure(schema, &target.finals),
                touch_scope,
                // The forest is inserted under the target's parent;
                // the parent's own proper ancestors are a subset of
                // the target's.
                ins_finals: target.parents,
                ins_ancestors: target.ancestors,
                del_finals: target.finals,
            },
        }
    }
}

/// Everything a deletion rooted at a `finals`-labeled node can remove:
/// the roots themselves plus — via the schema's reachability — every
/// element label their subtrees can contain. Attribute / text targets
/// have no subtree; without a schema an element subtree can contain
/// anything.
fn destroy_closure(schema: Option<&SchemaInfo>, finals: &Labels) -> Labels {
    let Some(set) = finals.as_set() else { return Labels::Any };
    if finals.all_leaf_kinds() {
        return finals.clone();
    }
    match schema {
        None => Labels::Any,
        Some(s) => {
            let mut out: BTreeSet<String> = set.clone();
            for l in set {
                if !(l.starts_with('@') || l.starts_with('#')) {
                    out.extend(s.strict_descendants(l));
                }
            }
            Labels::Set(out)
        }
    }
}

/// Labels of an XML forest: parse it into a scratch document with the
/// same parser `apply_pul` uses and collect element and attribute
/// labels (text nodes affect only the enclosing string values, which
/// `touch_scope` covers). `Any` when the forest does not parse — the
/// runtime will reject it anyway, but the verdict must stay sound.
fn forest_labels(xml: &str) -> Labels {
    let mut scratch = Document::new();
    let Ok(root) = scratch.set_root("xivm-forest-scan") else { return Labels::Any };
    let Ok(roots) = xivm_xml::parser::parse_forest_into(&mut scratch, root, xml) else {
        return Labels::Any;
    };
    let mut out = BTreeSet::new();
    for r in roots {
        for n in scratch.descendants_or_self(r) {
            let name = scratch.label_name(scratch.node(n).label);
            if name != xivm_xml::TEXT_LABEL {
                out.insert(name.to_owned());
            }
        }
    }
    Labels::Set(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_dtd::grammar::figure_5a;
    use xivm_pattern::xpath::parse_xpath;

    fn schema() -> SchemaInfo {
        SchemaInfo::from_dtd(&figure_5a()).unwrap()
    }

    fn shape(s: Option<&SchemaInfo>, path: &str) -> PathShape {
        PathShape::of(s, &parse_xpath(path).unwrap())
    }

    #[test]
    fn anchored_paths_respect_the_content_model() {
        let s = schema();
        assert!(!shape(Some(&s), "/d1/a/b").dead);
        assert!(shape(Some(&s), "/a").dead, "the root must be d1");
        assert!(shape(Some(&s), "/d1/b").dead, "b is not a child of d1");
        assert!(shape(Some(&s), "/d1/a/b/c/b").dead, "c is a leaf");
    }

    #[test]
    fn descendant_paths_use_reachability() {
        let s = schema();
        let c = shape(Some(&s), "//c");
        assert!(!c.dead);
        assert_eq!(c.finals, Labels::one("c"));
        assert_eq!(
            c.ancestors,
            Labels::from_iter(["a".to_owned(), "b".to_owned(), "d1".to_owned()])
        );
        assert_eq!(c.parents, Labels::one("b"));
        assert!(shape(Some(&s), "//zzz").dead);
        assert!(shape(Some(&s), "//c//b").dead, "nothing below c");
    }

    #[test]
    fn intermediate_descendant_steps_narrow_parents() {
        let s = schema();
        let b = shape(Some(&s), "/d1//b");
        assert!(!b.dead);
        assert_eq!(b.parents, Labels::one("a"));
        assert_eq!(b.ancestors, Labels::from_iter(["a".to_owned(), "d1".to_owned()]));
    }

    #[test]
    fn schemaless_paths_stay_alive_but_widen() {
        let x = shape(None, "/x/y");
        assert!(!x.dead);
        assert_eq!(x.finals, Labels::one("y"));
        assert_eq!(x.parents, Labels::one("x"));
        assert_eq!(x.ancestors, Labels::one("x"));
        let y = shape(None, "//y");
        assert_eq!(y.ancestors, Labels::Any);
    }

    #[test]
    fn attribute_and_text_steps_are_leaves() {
        let at = shape(None, "//person/@id");
        assert_eq!(at.finals, Labels::one("@id"));
        assert_eq!(at.parents, Labels::one("person"));
        assert!(shape(None, "//person/@id/x").dead, "attributes have no children");
        assert!(shape(None, "//person/text()//x").dead);
        assert!(shape(None, "/@id").dead, "the document node has no attributes");
    }

    #[test]
    fn dead_predicates_kill_the_path() {
        let s = schema();
        assert!(shape(Some(&s), "/d1/a[zzz]").dead, "a has no zzz child");
        assert!(!shape(Some(&s), "/d1/a[b]").dead);
        assert!(!shape(Some(&s), "/d1/a[zzz or b]").dead, "or: one side may hold");
        assert!(shape(Some(&s), "/d1/a[zzz and b]").dead, "and: one side is dead");
        assert!(!shape(Some(&s), "/d1/a[b = \"v\"]").dead);
        assert!(shape(Some(&s), "/d1/a[zzz = \"v\"]").dead);
    }

    #[test]
    fn delete_shapes_close_over_the_subtree() {
        let s = schema();
        let del = StatementShape::of(Some(&s), &UpdateStatement::delete("//a").unwrap());
        assert!(!del.dead);
        assert_eq!(
            del.destroys,
            Labels::from_iter(["a".to_owned(), "b".to_owned(), "c".to_owned()])
        );
        assert_eq!(del.del_finals, Labels::one("a"));
        assert!(del.creates.is_none());
        assert_eq!(del.touch_scope, Labels::from_iter(["a".to_owned(), "d1".to_owned()]));
        // Without a schema the subtree contents are unknown…
        let del = StatementShape::of(None, &UpdateStatement::delete("//a").unwrap());
        assert!(del.destroys.is_any());
        // …except for attribute targets, which have no subtree.
        let del = StatementShape::of(None, &UpdateStatement::delete("//a/@id").unwrap());
        assert_eq!(del.destroys, Labels::one("@id"));
    }

    #[test]
    fn insert_shapes_scan_the_forest() {
        let s = schema();
        let ins = StatementShape::of(
            Some(&s),
            &UpdateStatement::insert("//b", "<c at=\"1\"><d/></c>").unwrap(),
        );
        assert!(!ins.dead);
        assert_eq!(
            ins.creates,
            Labels::from_iter(["@at".to_owned(), "c".to_owned(), "d".to_owned()])
        );
        assert!(ins.destroys.is_none());
        assert_eq!(ins.ins_finals, Labels::one("b"));
        let dead =
            StatementShape::of(Some(&s), &UpdateStatement::insert("/d1/zzz", "<c/>").unwrap());
        assert!(dead.dead);
    }

    #[test]
    fn replace_inserts_under_the_parent() {
        let s = schema();
        let rep =
            StatementShape::of(Some(&s), &UpdateStatement::replace("//b", "<b><c/></b>").unwrap());
        assert!(!rep.dead);
        assert_eq!(rep.ins_finals, Labels::one("a"), "content lands under b's parent");
        assert_eq!(rep.del_finals, Labels::one("b"));
        assert_eq!(rep.destroys, Labels::from_iter(["b".to_owned(), "c".to_owned()]));
    }

    #[test]
    fn insert_from_dead_source_is_a_noop() {
        let s = schema();
        let st = UpdateStatement::insert_from("//zzz", "//a").unwrap();
        assert!(StatementShape::of(Some(&s), &st).dead);
        let st = UpdateStatement::insert_from("//c", "//a").unwrap();
        let sh = StatementShape::of(Some(&s), &st);
        assert!(!sh.dead);
        assert!(sh.creates.is_any(), "copied subtrees are unconstrained");
    }
}
