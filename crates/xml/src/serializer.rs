//! Serialization of documents and subtrees back to XML text.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

/// Serializes the subtree rooted at `id` (the node's *content* in the
/// paper's terminology).
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

/// Serializes the whole document.
pub fn serialize_document(doc: &Document) -> String {
    match doc.root() {
        Some(r) => serialize_node(doc, r),
        None => String::new(),
    }
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    let n = doc.node(id);
    if !n.alive {
        return;
    }
    match n.kind {
        NodeKind::Text => escape_into(n.text.as_deref().unwrap_or(""), out),
        NodeKind::Attribute => {
            // Standalone attribute serialization (only used when an
            // attribute node itself is a view return node).
            let name = doc.label_name(n.label).trim_start_matches('@');
            out.push_str(name);
            out.push_str("=\"");
            escape_attr_into(n.text.as_deref().unwrap_or(""), out);
            out.push('"');
        }
        NodeKind::Element => {
            let tag = doc.label_name(n.label);
            out.push('<');
            out.push_str(tag);
            let mut content_children = Vec::new();
            for &c in doc.children_of(id) {
                let cn = doc.node(c);
                if !cn.alive {
                    continue;
                }
                if cn.kind == NodeKind::Attribute {
                    out.push(' ');
                    out.push_str(doc.label_name(cn.label).trim_start_matches('@'));
                    out.push_str("=\"");
                    escape_attr_into(cn.text.as_deref().unwrap_or(""), out);
                    out.push('"');
                } else {
                    content_children.push(c);
                }
            }
            if content_children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in content_children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
}

fn escape_attr_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    #[test]
    fn serializes_elements_attributes_text() {
        let mut d = Document::new();
        let r = d.set_root("person").unwrap();
        d.append_attribute(r, "id", "person0").unwrap();
        let name = d.append_element(r, "name").unwrap();
        d.append_text(name, "Jim & Co <x>").unwrap();
        d.append_element(r, "watches").unwrap();
        assert_eq!(
            serialize_document(&d),
            "<person id=\"person0\"><name>Jim &amp; Co &lt;x&gt;</name><watches/></person>"
        );
    }

    #[test]
    fn empty_document_serializes_to_empty_string() {
        assert_eq!(serialize_document(&Document::new()), "");
    }

    #[test]
    fn attribute_node_standalone() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        let at = d.append_attribute(r, "id", "x\"y").unwrap();
        assert_eq!(serialize_node(&d, at), "id=\"x&quot;y\"");
    }

    #[test]
    fn deleted_children_are_skipped() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        let b = d.append_element(r, "b").unwrap();
        d.append_element(r, "c").unwrap();
        d.remove_subtree(b).unwrap();
        assert_eq!(serialize_document(&d), "<a><c/></a>");
    }
}
