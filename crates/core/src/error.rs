//! The workspace-wide error type.
//!
//! Historically every fallible engine entry point returned
//! [`XmlError`], even for failures that had nothing to do with XML
//! manipulation (unknown views, statement syntax, conflicting
//! transactions). [`Error`] replaces that convention: each failure
//! class keeps its own payload, and `From` impls let the lower-level
//! errors bubble up through `?` unchanged.

use std::fmt;
use xivm_pattern::parse_pattern::PatternParseError;
use xivm_pattern::xpath::XPathParseError;
use xivm_pulopt::Conflict;
use xivm_update::statement::StatementParseError;
use xivm_xml::XmlError;

/// Any failure the `xivm` façade can report.
///
/// Marked `#[non_exhaustive]`: new failure classes may be added
/// without a breaking release, so downstream matches need a `_` arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// XML parsing or document manipulation failed.
    Xml(XmlError),
    /// A tree-pattern text could not be parsed.
    Pattern(PatternParseError),
    /// An update statement (or one of its XPath operands) could not be
    /// parsed.
    Statement(StatementParseError),
    /// A transaction in independent mode contained order-dependent
    /// operations (the IO / LO / NLO rules of Section 5.3) and the
    /// conflict policy refused to reconcile them.
    Conflict(Vec<Conflict>),
    /// A view name was not declared on this database.
    UnknownView(String),
    /// The same view name was declared twice at build time.
    DuplicateView(String),
    /// `Database::builder()` was finished without a document.
    NoDocument,
    /// Propagation panicked mid-commit (a worker died or a fault was
    /// injected). The database rolled back to the last sealed commit
    /// and recomputed every view, so it remains consistent; the
    /// payload is the panic message.
    Panic(String),
    /// An async submission was abandoned because an *earlier*
    /// submission in the queue failed: its reserved sequence number
    /// could no longer be honored. The document was not touched by
    /// this submission — resubmit it to get a fresh ticket.
    Aborted,
    /// The builder's DTD text could not be parsed.
    Dtd(xivm_dtd::DtdParseError),
    /// `Database::builder().analyze(AnalyzeMode::Strict)` found
    /// error-severity findings (e.g. a view that can never hold a
    /// tuple under the DTD); the payload lists them.
    Analysis(Vec<xivm_analyze::Finding>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Pattern(e) => write!(f, "{e}"),
            Error::Statement(e) => write!(f, "{e}"),
            Error::Conflict(cs) => {
                write!(f, "transaction statements conflict ({} conflict(s)", cs.len())?;
                if let Some(first) = cs.first() {
                    write!(f, ", first: {:?}", first.kind)?;
                }
                write!(f, ")")
            }
            Error::UnknownView(name) => write!(f, "no view named {name:?} on this database"),
            Error::DuplicateView(name) => write!(f, "view {name:?} declared more than once"),
            Error::NoDocument => write!(f, "database built without a document"),
            Error::Panic(msg) => {
                write!(f, "propagation panicked mid-commit (database recovered): {msg}")
            }
            Error::Aborted => {
                write!(f, "async submission aborted: an earlier queued submission failed")
            }
            Error::Dtd(e) => write!(f, "{e}"),
            Error::Analysis(findings) => {
                write!(f, "static analysis rejected the catalog ({} finding(s)", findings.len())?;
                if let Some(first) = findings.first() {
                    write!(f, ", first: {first}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xml(e) => Some(e),
            Error::Pattern(e) => Some(e),
            Error::Statement(e) => Some(e),
            Error::Dtd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for Error {
    fn from(e: XmlError) -> Self {
        Error::Xml(e)
    }
}

impl From<PatternParseError> for Error {
    fn from(e: PatternParseError) -> Self {
        Error::Pattern(e)
    }
}

impl From<StatementParseError> for Error {
    fn from(e: StatementParseError) -> Self {
        Error::Statement(e)
    }
}

impl From<XPathParseError> for Error {
    fn from(e: XPathParseError) -> Self {
        Error::Statement(StatementParseError::from(e))
    }
}

impl From<xivm_dtd::DtdParseError> for Error {
    fn from(e: xivm_dtd::DtdParseError) -> Self {
        Error::Dtd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The compile-time contract every public error type must satisfy:
    /// usable with `anyhow`-style dynamic error handling and across
    /// threads.
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

    #[test]
    fn public_error_types_are_std_errors() {
        assert_error::<Error>();
        assert_error::<XmlError>();
        assert_error::<PatternParseError>();
        assert_error::<StatementParseError>();
        assert_error::<XPathParseError>();
    }

    #[test]
    fn display_is_informative() {
        assert!(Error::UnknownView("Q9".into()).to_string().contains("Q9"));
        assert!(Error::DuplicateView("Q1".into()).to_string().contains("Q1"));
        assert!(Error::Conflict(Vec::new()).to_string().contains("conflict"));
        assert!(Error::NoDocument.to_string().contains("document"));
        assert!(Error::Panic("boom".into()).to_string().contains("boom"));
        assert!(Error::Aborted.to_string().contains("aborted"));
        let xml = Error::from(XmlError::DeadNode);
        assert_eq!(xml.to_string(), XmlError::DeadNode.to_string());
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        assert!(Error::from(XmlError::NoRoot).source().is_some());
        assert!(Error::UnknownView("x".into()).source().is_none());
    }
}
