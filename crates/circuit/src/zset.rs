//! Z-sets: weighted row collections, as deltas and as materialized
//! stores.
//!
//! Everything a circuit moves or keeps is a Z-set — a mapping from
//! [`Row`]s to integer weights. A [`RowDelta`] is the *change* one
//! commit induces on one node (weights of either sign, consolidated:
//! unique rows, no zero weights, sorted); a [`DerivedStore`] is the
//! node's current contents (weights strictly positive — the
//! derivation-count generalization of a set). Applying a node's
//! output delta to its store per commit is the circuit invariant:
//! `store_after = store_before + Δ`, checked against full
//! recomputation by the property suite.

use crate::row::Row;
use std::collections::HashMap;

/// The change of one circuit node over one commit: a consolidated
/// Z-set (unique rows, non-zero weights, sorted by [`Row`]'s total
/// order, so equal deltas compare equal and iteration is
/// deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowDelta {
    entries: Vec<(Row, i64)>,
}

impl RowDelta {
    /// Consolidates raw `(row, weight)` pairs: weights of equal rows
    /// are summed, rows with weight zero vanish, the rest sort.
    pub fn new(raw: Vec<(Row, i64)>) -> Self {
        let mut acc: HashMap<Row, i64> = HashMap::with_capacity(raw.len());
        for (row, weight) in raw {
            *acc.entry(row).or_insert(0) += weight;
        }
        let mut entries: Vec<(Row, i64)> = acc.into_iter().filter(|(_, w)| *w != 0).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        RowDelta { entries }
    }

    pub fn empty() -> Self {
        RowDelta::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct rows whose weight changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn entries(&self) -> &[(Row, i64)] {
        &self.entries
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Row, i64)> {
        self.entries.iter().map(|(r, w)| (r, *w))
    }
}

/// The materialized contents of one circuit node: a positive Z-set.
///
/// Weights play the role view stores give derivation counts: "the
/// number of reasons the row is in the result". A row with weight 3
/// may be a base tuple with 3 derivations, or a projection image with
/// 3 pre-images — either way, one more reason is `+1`, not a
/// duplicate-eliminating no-op, which is what makes deletion
/// propagate without rescanning.
#[derive(Debug, Clone, Default)]
pub struct DerivedStore {
    rows: HashMap<Row, i64>,
}

impl DerivedStore {
    pub fn new() -> Self {
        DerivedStore::default()
    }

    /// Number of distinct rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of all weights (number of derivations across rows).
    pub fn total_weight(&self) -> i64 {
        self.rows.values().sum()
    }

    /// The weight of a row, 0 when absent.
    pub fn weight_of(&self, row: &Row) -> i64 {
        self.rows.get(row).copied().unwrap_or(0)
    }

    pub fn contains(&self, row: &Row) -> bool {
        self.rows.contains_key(row)
    }

    /// Borrowing iterator, arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, i64)> {
        self.rows.iter().map(|(r, w)| (r, *w))
    }

    /// The contents sorted by [`Row`]'s total order — the canonical
    /// external representation.
    pub fn sorted_rows(&self) -> Vec<(Row, i64)> {
        let mut rows: Vec<(Row, i64)> = self.rows.iter().map(|(r, w)| (r.clone(), *w)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Applies one commit's delta. Panics if any row's weight would go
    /// negative — a sound circuit never retracts more derivations than
    /// it inserted, so a negative weight is an operator bug, not a
    /// data condition.
    pub fn apply(&mut self, delta: &RowDelta) {
        for (row, weight) in delta.iter() {
            let w = self.rows.entry(row.clone()).or_insert(0);
            *w += weight;
            assert!(*w >= 0, "derived store weight went negative for {row}");
            if *w == 0 {
                self.rows.remove(row);
            }
        }
    }

    /// The full contents as one delta (every row with its weight) —
    /// how recomputation and seeding express "everything at once".
    pub fn to_delta(&self) -> RowDelta {
        RowDelta::new(self.rows.iter().map(|(r, w)| (r.clone(), *w)).collect())
    }

    /// Bit-identical comparison: same rows, same weights. The test
    /// oracle for "incremental == recomputed".
    pub fn same_content_as(&self, other: &DerivedStore) -> bool {
        self.rows.len() == other.rows.len()
            && self.rows.iter().all(|(r, w)| other.rows.get(r) == Some(w))
    }

    /// Detailed difference description for test failures.
    pub fn diff_description(&self, other: &DerivedStore) -> String {
        let mut out = String::new();
        for (r, w) in &self.rows {
            match other.rows.get(r) {
                None => out.push_str(&format!("only in left (weight {w}): {r}\n")),
                Some(ow) if ow != w => out.push_str(&format!("weight mismatch {w} vs {ow}: {r}\n")),
                _ => {}
            }
        }
        for (r, w) in &other.rows {
            if !self.rows.contains_key(r) {
                out.push_str(&format!("only in right (weight {w}): {r}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Datum;

    fn row(i: i64) -> Row {
        Row::new(vec![Datum::Int(i)])
    }

    #[test]
    fn delta_consolidates_sums_drops_zeros_and_sorts() {
        let d =
            RowDelta::new(vec![(row(2), 1), (row(1), 3), (row(2), -1), (row(3), 2), (row(3), 1)]);
        assert_eq!(d.entries(), &[(row(1), 3), (row(3), 3)]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert!(RowDelta::empty().is_empty());
        assert_eq!(d.iter().map(|(_, w)| w).sum::<i64>(), 6);
    }

    #[test]
    fn store_applies_deltas_and_drops_zero_rows() {
        let mut s = DerivedStore::new();
        s.apply(&RowDelta::new(vec![(row(1), 2), (row(2), 1)]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_weight(), 3);
        assert_eq!(s.weight_of(&row(1)), 2);
        s.apply(&RowDelta::new(vec![(row(1), -2)]));
        assert!(!s.contains(&row(1)));
        assert_eq!(s.weight_of(&row(1)), 0);
        assert_eq!(s.sorted_rows(), vec![(row(2), 1)]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn store_rejects_negative_weights() {
        let mut s = DerivedStore::new();
        s.apply(&RowDelta::new(vec![(row(1), -1)]));
    }

    #[test]
    fn content_comparison_and_round_trip() {
        let mut a = DerivedStore::new();
        let mut b = DerivedStore::new();
        a.apply(&RowDelta::new(vec![(row(1), 2), (row(2), 1)]));
        b.apply(&a.to_delta());
        assert!(a.same_content_as(&b));
        b.apply(&RowDelta::new(vec![(row(2), 4), (row(3), 4)]));
        assert!(!a.same_content_as(&b));
        assert!(a.diff_description(&b).contains("weight mismatch"));
        assert!(a.diff_description(&b).contains("only in right"));
        assert!(b.diff_description(&a).contains("only in left"));
    }
}
