//! View change subscriptions: the changefeed side of the delta-first
//! API.
//!
//! [`Database::subscribe`] registers interest in one view and returns
//! a [`Subscription`] handle. From then on every successful commit
//! appends one [`DeltaEvent`] — the commit's sequence number plus the
//! view's [`ViewDelta`] — to the subscription's queue, *including*
//! commits that did not touch the view (their delta is empty), so a
//! consumer can verify it saw every commit: the drained sequence
//! numbers are consecutive.
//!
//! The queue is drained with [`Database::drain`]; each event costs
//! O(|Δ|), never a store clone. A dropped interest is released with
//! [`Database::unsubscribe`].
//!
//! [`Database::subscribe`]: crate::database::Database::subscribe
//! [`Database::drain`]: crate::database::Database::drain
//! [`Database::unsubscribe`]: crate::database::Database::unsubscribe
//! [`ViewDelta`]: crate::commit::ViewDelta

use crate::commit::{Commit, ViewDelta};
use crate::database::ViewHandle;
use std::collections::HashMap;
use std::sync::Arc;

/// A registered interest in one view's deltas. Only meaningful on the
/// database that issued it.
#[derive(Debug)]
pub struct Subscription {
    pub(crate) id: u64,
}

/// One commit as seen by a subscription: the commit's sequence number
/// and the subscribed view's delta (empty when the commit did not
/// touch the view). The delta is `Arc`-shared: all subscriptions of
/// one view receive the same allocation, so fan-out to N subscribers
/// costs one delta clone, not N.
///
/// # The gapless-seq contract
///
/// Every successful commit appends exactly one event to every live
/// subscription — commits that did not touch the view included (their
/// delta is empty), and rejected commits emit nothing and consume no
/// sequence number. The `seq` values a consumer drains are therefore
/// *consecutive*: the first event of a subscription carries the seq
/// after [`Database::last_seq`] at subscribe time, and each following
/// event carries the previous seq plus one, with no reordering across
/// drains. This holds at every worker count and pipeline depth
/// (pipelined hosts seal commits strictly in order), so a consumer
/// that folds events in drain order reconstructs every intermediate
/// store state exactly — circuit sources and replicas rely on it.
///
/// [`Database::last_seq`]: crate::database::Database::last_seq
#[derive(Debug, Clone, Default)]
pub struct DeltaEvent {
    pub seq: u64,
    pub delta: Arc<ViewDelta>,
}

struct SubState {
    view: usize,
    pending: Vec<DeltaEvent>,
}

/// The subscriptions of one database. Owned by `Database`, which
/// forwards every commit here. Cancelled subscriptions are removed
/// outright — ids are never reused (monotonic counter), so a stale
/// handle still panics instead of aliasing a newer subscription, and
/// a long-lived database under subscribe/unsubscribe churn holds only
/// the live entries.
#[derive(Default)]
pub(crate) struct SubscriptionRegistry {
    next_id: u64,
    subs: HashMap<u64, SubState>,
}

impl SubscriptionRegistry {
    pub(crate) fn subscribe(&mut self, view: ViewHandle) -> Subscription {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.insert(id, SubState { view: view.index(), pending: Vec::new() });
        Subscription { id }
    }

    /// Appends one event per live subscription for a finished commit.
    /// Every commit reports on every view (no-op commits carry empty
    /// deltas), so sequence numbers stay gapless. Each distinct view's
    /// delta is cloned once and shared across its subscribers.
    pub(crate) fn record(&mut self, commit: &Commit) {
        if self.subs.is_empty() {
            return;
        }
        let per_view = commit.per_view();
        let mut shared: HashMap<usize, Arc<ViewDelta>> = HashMap::new();
        for sub in self.subs.values_mut() {
            let delta = Arc::clone(shared.entry(sub.view).or_insert_with(|| {
                Arc::new(per_view.get(sub.view).map(|(_, r)| r.delta.clone()).unwrap_or_default())
            }));
            sub.pending.push(DeltaEvent { seq: commit.seq, delta });
        }
    }

    /// Takes the queued events, leaving a queue pre-sized from
    /// [`Self::pending`]: a steady-state consumer drains about as many
    /// events per cycle as the last one, so the fresh queue starts at
    /// the drained length instead of regrowing from zero on every
    /// commit in between.
    pub(crate) fn drain(&mut self, sub: &Subscription) -> Vec<DeltaEvent> {
        let pending = &mut self.state_mut(sub).pending;
        let expected = pending.len();
        std::mem::replace(pending, Vec::with_capacity(expected))
    }

    /// Number of live (not yet cancelled) subscriptions. Cancelled
    /// entries are removed outright, so this is exactly the fan-out
    /// every commit pays — a pipelined host records commits strictly
    /// in sequence order, so an unsubscribe between two overlapped
    /// commits takes effect at the next sealed commit, never
    /// mid-stream.
    pub(crate) fn live(&self) -> usize {
        self.subs.len()
    }

    pub(crate) fn pending(&self, sub: &Subscription) -> usize {
        self.state(sub).pending.len()
    }

    pub(crate) fn view_of(&self, sub: &Subscription) -> usize {
        self.state(sub).view
    }

    pub(crate) fn unsubscribe(&mut self, sub: Subscription) {
        self.subs.remove(&sub.id).expect("subscription from this database, not yet cancelled");
    }

    fn state(&self, sub: &Subscription) -> &SubState {
        self.subs.get(&sub.id).expect("subscription from this database, not yet cancelled")
    }

    fn state_mut(&mut self, sub: &Subscription) -> &mut SubState {
        self.subs.get_mut(&sub.id).expect("subscription from this database, not yet cancelled")
    }
}
