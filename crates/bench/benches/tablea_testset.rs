//! Appendix A ("Test Set") coverage table: every catalog update of
//! every class runs as an insertion and a deletion against every view
//! it is paired with, reporting target counts and view impact — the
//! machine-checkable version of the paper's test-set listing.

use xivm_bench::{figure_header, row};
use xivm_core::SnowcapStrategy;
use xivm_pattern::xpath::{eval_path, parse_xpath};
use xivm_xmark::sizes::small_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

fn main() {
    let size = small_size();
    let doc = generate_sized(size.bytes);
    figure_header(
        "Table A",
        &format!("test-set coverage: targets and view impact, {} document", size.label),
    );
    row(&[
        "view".to_owned(),
        "update".to_owned(),
        "class".to_owned(),
        "targets".to_owned(),
        "ins_tuples_added".to_owned(),
        "ins_tuples_modified".to_owned(),
        "del_derivations_removed".to_owned(),
    ]);
    for view in VIEW_NAMES {
        let pattern = view_pattern(view);
        for u in updates_for_view(view) {
            let targets = eval_path(&doc, &parse_xpath(u.path).unwrap()).len();
            let ins = xivm_bench::run_once(
                &doc,
                &pattern,
                &u.insert_stmt(),
                SnowcapStrategy::MinimalChain,
            );
            let del = xivm_bench::run_once(
                &doc,
                &pattern,
                &u.delete_stmt(),
                SnowcapStrategy::MinimalChain,
            );
            row(&[
                view.to_owned(),
                u.name.to_owned(),
                u.class.name().to_owned(),
                targets.to_string(),
                ins.tuples_added.to_string(),
                ins.tuples_modified.to_string(),
                del.derivations_removed.to_string(),
            ]);
        }
    }
}
