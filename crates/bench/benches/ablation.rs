//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **dynamic pruning** (Propositions 3.6 / 3.8 / 4.7) on vs. off —
//!    the "dynamic reasoning" whose benefit Section 6.8 frames;
//! 2. **snowcap materialization strategy**: minimal chain vs. every
//!    snowcap vs. leaves only (extends Section 6.7's two-way
//!    comparison with the third corner).

use xivm_bench::{figure_header, ms, repetitions, row};
use xivm_core::{MaintenanceEngine, SnowcapStrategy};
use xivm_xmark::sizes::small_size;
use xivm_xmark::{generate_sized, update_by_name, view_pattern};
use xivm_xml::Document;

fn main() {
    let size = small_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();

    figure_header("Ablation 1", "dynamic term pruning on/off (view Q1, delete X1_L)");
    row(&["pruning".to_owned(), "terms_surviving".to_owned(), "total_maintenance_ms".to_owned()]);
    for pruning in [true, false] {
        let (t, terms) = run_pruned(&doc, pruning, reps);
        row(&[
            if pruning { "on".to_owned() } else { "off".to_owned() },
            terms.to_string(),
            format!("{t:.3}"),
        ]);
    }

    figure_header(
        "Ablation 2",
        "materialization strategies (view Q6, insert E6_L): chain vs all-snowcaps vs leaves",
    );
    row(&["strategy".to_owned(), "total_maintenance_ms".to_owned()]);
    let pattern = view_pattern("Q6");
    let stmt = update_by_name("E6_L").insert_stmt();
    for strategy in
        [SnowcapStrategy::MinimalChain, SnowcapStrategy::AllSnowcaps, SnowcapStrategy::LeavesOnly]
    {
        let mut total = 0.0;
        for _ in 0..reps {
            let report = xivm_bench::run_once(&doc, &pattern, &stmt, strategy);
            total += ms(report.timings.maintenance_total());
        }
        row(&[strategy.name().to_owned(), format!("{:.3}", total / reps as f64)]);
    }
}

fn run_pruned(doc: &Document, pruning: bool, reps: usize) -> (f64, usize) {
    let pattern = view_pattern("Q1");
    let stmt = update_by_name("X1_L").delete_stmt();
    let mut total = 0.0;
    let mut terms = 0;
    for _ in 0..reps {
        let mut d = doc.clone();
        let mut engine = MaintenanceEngine::new(&d, pattern.clone(), SnowcapStrategy::MinimalChain);
        engine.use_delta_pruning = pruning;
        engine.use_id_pruning = pruning;
        let report = engine.apply_statement(&mut d, &stmt).expect("propagation succeeds");
        total += ms(report.timings.maintenance_total());
        terms = report.delete_prune.after_id_reasoning;
    }
    (total / reps as f64, terms)
}
