//! Differential property suite for delta circuits: random documents ×
//! view sets × statement streams × random operator DAGs, with every
//! node's [`DerivedStore`] checked bit-identical to full recomputation
//! after **every** commit — the `circuit_equals_recompute` invariant.
//!
//! Two legs per case, soak.rs-style:
//!
//! - **sequential**: statements applied one by one on a pooled
//!   database (1–4 workers, depth 1), the circuit synced and checked
//!   against [`Circuit::recompute`] at each commit; the per-commit
//!   sorted node states are recorded as the reference trace.
//! - **pipelined**: the same workload through
//!   [`Database::apply_pipelined`] at depth 4, the circuit stepped one
//!   commit at a time with [`Circuit::sync_to`] — every intermediate
//!   barrier must reproduce the recorded sequential state exactly.
//!
//! Operator DAGs are drawn as integer tuples interpreted against
//! deterministic catalogs of predicates / key extractors / value
//! functions, so a failing case shrinks to a minimal circuit. A
//! deterministic XMark leg runs the paper's 7-view catalog through a
//! Filter → Join → Aggregate pipeline under the `XIVM_WORKERS` /
//! `XIVM_PIPELINE` env knobs the CI matrix sets.

use proptest::prelude::*;
use xivm::circuit::Node;
use xivm::prelude::*;
use xivm::xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES};

// ---------------------------------------------------------------------
// Workload generation (same small alphabets as tests/soak.rs; the val
// / cont annotations matter here — they become Str datums the operator
// catalogs can look at)
// ---------------------------------------------------------------------

fn arb_tree(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("<b/>".to_owned()),
        Just("<c/>".to_owned()),
        Just("<d>5</d>".to_owned()),
        Just("x".to_owned()),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, kids)| {
                if kids.is_empty() {
                    format!("<{tag}/>")
                } else {
                    format!("<{tag}>{}</{tag}>", kids.join(""))
                }
            })
    })
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_tree(3), 1..5).prop_map(|kids| format!("<r>{}</r>", kids.join("")))
}

const PATTERNS: [&str; 5] = [
    "//a{id}//b{id}",
    "//a{id}[//c{id}]//b{id}",
    "//r{id}//d{id,val}",
    "//a{id,cont}[//b]",
    "//a{id}//b{id}//c{id}",
];

const TARGETS: [&str; 4] = ["//a", "//b", "//a//c", "//d"];
const FORESTS: [&str; 4] = ["<b/>", "<a><b/><c/></a>", "<c><b/></c>", "<d>5</d>"];

type ScriptStep = (usize, usize, bool);

fn script_statement(&(t, f, is_insert): &ScriptStep) -> String {
    if is_insert {
        format!("insert {} into {}", FORESTS[f], TARGETS[t])
    } else {
        format!("delete {}", TARGETS[t])
    }
}

// ---------------------------------------------------------------------
// Operator catalogs: deterministic closures indexed by drawn integers,
// so DAG shapes shrink and failures replay. Every function is total
// over rows of any arity.
// ---------------------------------------------------------------------

fn predicate(sel: usize) -> impl Fn(&Row) -> bool + Send + Sync + 'static {
    move |r: &Row| match sel % 4 {
        0 => true,
        1 => r.arity() % 2 == 0,
        2 => r.datums().iter().any(|d| matches!(d, Datum::Str(_))),
        _ => r.datums().iter().filter(|d| d.as_id().is_some()).count() <= 2,
    }
}

fn row_fn(sel: usize) -> impl Fn(&Row) -> Row + Send + Sync + 'static {
    move |r: &Row| match sel % 4 {
        0 => r.clone(),
        1 => Row::new(vec![r.datums().first().cloned().unwrap_or(Datum::Null)]),
        2 => r.with(Datum::Int(r.arity() as i64)),
        _ => {
            let mut datums: Vec<Datum> = r.datums().to_vec();
            datums.reverse();
            Row::new(datums)
        }
    }
}

fn key_fn(sel: usize) -> impl Fn(&Row) -> Row + Send + Sync + 'static {
    move |r: &Row| match sel % 3 {
        0 => Row::empty(),
        1 => Row::new(vec![r.datums().first().cloned().unwrap_or(Datum::Null)]),
        _ => Row::new(vec![Datum::Int(r.arity() as i64)]),
    }
}

fn value_fn(sel: usize) -> impl Fn(&Row) -> i64 + Send + Sync + 'static {
    move |r: &Row| match sel % 4 {
        0 => r.arity() as i64,
        1 => r.datums().iter().find_map(|d| d.as_str()).map(|s| s.len() as i64).unwrap_or(0),
        2 => r.datums().iter().filter(|d| d.as_id().is_some()).count() as i64,
        _ => r.datums().first().and_then(|d| d.as_id()).map(|id| id.depth() as i64).unwrap_or(0),
    }
}

/// One drawn operator: `(kind, input, input2, selector)`. Inputs pick
/// among every node created so far (sources included), so DAGs fan
/// out, fan in and stack aggregates over aggregates.
type OpDraw = (usize, usize, usize, usize);

fn build_db(doc_xml: &str, view_idxs: &[usize], workers: usize, pipeline: usize) -> Database {
    let mut b = Database::builder().document(doc_xml).workers(workers).pipeline(pipeline);
    for (i, &p) in view_idxs.iter().enumerate() {
        b = b.view(format!("v{i}"), PATTERNS[p]);
    }
    b.build().expect("circuit-suite database builds")
}

/// Interprets the drawn plan into a circuit over `n_views` sources.
/// Identical draws yield identical circuits — the sequential and
/// pipelined legs call this with the same plan.
fn build_circuit(db: &mut Database, n_views: usize, plan: &[OpDraw]) -> Circuit {
    let mut b = db.circuit();
    let mut nodes: Vec<Node> = Vec::new();
    for i in 0..n_views {
        nodes.push(b.source(&format!("v{i}")).expect("source view exists"));
    }
    for &(kind, in1, in2, sel) in plan {
        let a = nodes[in1 % nodes.len()];
        let c = nodes[in2 % nodes.len()];
        let node = match kind % 7 {
            0 => b.filter(a, predicate(sel)),
            1 => b.map(a, row_fn(sel)),
            2 => b.join(a, c, key_fn(sel), key_fn(sel)),
            3 => b.count(a, key_fn(sel)),
            4 => b.sum(a, key_fn(sel), value_fn(sel)),
            5 => b.min(a, key_fn(sel), value_fn(sel)),
            _ => b.max(a, key_fn(sel), value_fn(sel)),
        };
        nodes.push(node);
    }
    b.build()
}

/// The invariant: every node's incrementally maintained store equals
/// its from-scratch evaluation over the current base views.
fn check_against_recompute(
    circuit: &Circuit,
    db: &Database,
    context: &str,
) -> Result<(), TestCaseError> {
    let oracle = circuit.recompute(db);
    for node in circuit.nodes() {
        prop_assert!(
            circuit.store(node).same_content_as(&oracle[node.index()]),
            "{}: node n{} ({}) diverged from recomputation:\n{}circuit:\n{}",
            context,
            node.index(),
            circuit.label(node),
            circuit.store(node).diff_description(&oracle[node.index()]),
            circuit.describe(),
        );
    }
    Ok(())
}

/// Sorted per-node states — the cross-leg comparison currency.
fn node_states(circuit: &Circuit) -> Vec<Vec<(Row, i64)>> {
    circuit.nodes().into_iter().map(|n| circuit.rows(n)).collect()
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `circuit_equals_recompute`: after every commit, every derived
    /// store equals full recomputation — on sequential databases with
    /// 1–4 workers, and through pipelined batches at depth 4 where
    /// every intermediate `sync_to` barrier must reproduce the
    /// sequential trace.
    #[test]
    fn circuit_equals_recompute(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..4),
        plan in prop::collection::vec(
            (0usize..7, 0usize..32, 0usize..32, 0usize..32),
            1..7
        ),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            1..6
        ),
        workers in 1usize..5,
    ) {
        // Sequential leg: sync + check at every commit, recording the
        // per-commit node states as the reference trace.
        let mut db = build_db(&doc_xml, &view_idxs, workers, 1);
        let mut circuit = build_circuit(&mut db, view_idxs.len(), &plan);
        check_against_recompute(&circuit, &db, "after seed")?;

        let statements: Vec<String> = script.iter().map(script_statement).collect();
        let mut trace: Vec<Vec<Vec<(Row, i64)>>> = Vec::with_capacity(statements.len());
        for stmt in &statements {
            db.apply(stmt.as_str()).expect("statement applies");
            let synced = circuit.sync(&mut db);
            prop_assert_eq!(synced, db.last_seq(), "sync reaches the last commit");
            check_against_recompute(&circuit, &db, &format!("after `{stmt}` (w={workers})"))?;
            trace.push(node_states(&circuit));
        }
        circuit.detach(&mut db);

        // Pipelined leg: same workload in one depth-4 batch; stepping
        // the barrier one commit at a time must replay the trace.
        let mut piped = build_db(&doc_xml, &view_idxs, workers, 4);
        let mut pcircuit = build_circuit(&mut piped, view_idxs.len(), &plan);
        piped
            .apply_pipelined(statements.iter().map(String::as_str))
            .expect("pipelined batch applies");
        for (i, want) in trace.iter().enumerate() {
            let seq = (i + 1) as u64;
            prop_assert_eq!(pcircuit.sync_to(&mut piped, seq), seq);
            let got = node_states(&pcircuit);
            prop_assert_eq!(
                &got,
                want,
                "pipelined barrier at seq {} diverged from the sequential trace (w={})",
                seq,
                workers
            );
        }
        check_against_recompute(&pcircuit, &piped, "pipelined leg, fully synced")?;
        pcircuit.detach(&mut piped);
    }

    /// Snapshot pairing under random workloads: a circuit synced to a
    /// snapshot's seq agrees with recomputation against that frozen
    /// snapshot, regardless of how many commits land after it.
    #[test]
    fn barrier_at_snapshot_seq_matches_frozen_recompute(
        doc_xml in arb_doc(),
        view_idxs in prop::collection::vec(0usize..PATTERNS.len(), 1..3),
        plan in prop::collection::vec(
            (0usize..7, 0usize..32, 0usize..32, 0usize..32),
            1..5
        ),
        script in prop::collection::vec(
            (0usize..TARGETS.len(), 0usize..FORESTS.len(), prop::bool::ANY),
            2..6
        ),
        cut in 1usize..4,
    ) {
        let mut db = build_db(&doc_xml, &view_idxs, 2, 1);
        let mut circuit = build_circuit(&mut db, view_idxs.len(), &plan);
        let statements: Vec<String> = script.iter().map(script_statement).collect();
        let cut = cut.min(statements.len());
        for stmt in &statements[..cut] {
            db.apply(stmt.as_str()).expect("statement applies");
        }
        let snap = db.snapshot();
        for stmt in &statements[cut..] {
            db.apply(stmt.as_str()).expect("statement applies");
        }

        prop_assert_eq!(circuit.sync_to(&mut db, snap.seq()), snap.seq());
        let oracle = circuit.recompute_at(&snap);
        for node in circuit.nodes() {
            prop_assert!(
                circuit.store(node).same_content_as(&oracle[node.index()]),
                "node n{} ({}) diverged at snapshot seq {}:\n{}",
                node.index(),
                circuit.label(node),
                snap.seq(),
                circuit.store(node).diff_description(&oracle[node.index()])
            );
        }
        // Catching up to the live head must agree with live recompute.
        circuit.sync(&mut db);
        check_against_recompute(&circuit, &db, "after catching up past the snapshot")?;
        circuit.detach(&mut db);
    }
}

// ---------------------------------------------------------------------
// Deterministic XMark leg (runs under the CI env-knob matrix)
// ---------------------------------------------------------------------

fn xmark_doc_bytes() -> usize {
    std::env::var("XIVM_TEST_DOC_BYTES").ok().and_then(|v| v.parse().ok()).unwrap_or(40 * 1024)
}

/// The paper's 7-view XMark catalog through a Filter → Join →
/// Aggregate pipeline, on a database that picks `XIVM_WORKERS` /
/// `XIVM_PIPELINE` up from the environment (the CI circuit job sets
/// both). Every catalog view sees insert *and* delete traffic; every
/// commit is checked against recomputation.
#[test]
fn xmark_catalog_pipeline_equals_recompute() {
    let mut b = Database::builder().document(generate_sized(xmark_doc_bytes()));
    for v in VIEW_NAMES {
        b = b.view(v, view_pattern(v));
    }
    let mut db = b.build().expect("XMark catalog builds");

    let mut cb = db.circuit();
    let sources: Vec<Node> =
        VIEW_NAMES.iter().map(|v| cb.source(v).expect("catalog view")).collect();
    // Filter: shallow matches only (root-anchored structural IDs).
    let shallow = cb.filter(sources[0], |r| {
        r.datums().first().and_then(|d| d.as_id()).map(|id| id.depth() <= 3).unwrap_or(false)
    });
    // Join: pair them with another catalog view on the root column.
    let joined = cb.join(
        shallow,
        sources[3],
        |r| Row::new(vec![r.datums().first().cloned().unwrap_or(Datum::Null)]),
        |r| Row::new(vec![r.datums().first().cloned().unwrap_or(Datum::Null)]),
    );
    // Aggregates: count per join key, a global count, and an extremum
    // over match depth on every remaining source.
    let by_key =
        cb.count(joined, |r| Row::new(vec![r.datums().first().cloned().unwrap_or(Datum::Null)]));
    let global = cb.count(joined, |_| Row::empty());
    let depth_of = |r: &Row| {
        r.datums().first().and_then(|d| d.as_id()).map(|id| id.depth() as i64).unwrap_or(0)
    };
    let deepest: Vec<Node> =
        sources.iter().map(|&s| cb.max(s, |_| Row::empty(), depth_of)).collect();
    let mut circuit = cb.build();
    assert!(circuit.describe().contains("join"));

    let oracle = circuit.recompute(&db);
    for node in circuit.nodes() {
        assert!(
            circuit.store(node).same_content_as(&oracle[node.index()]),
            "seeded node n{} ({}) diverged:\n{}",
            node.index(),
            circuit.label(node),
            circuit.store(node).diff_description(&oracle[node.index()])
        );
    }
    let _ = (&by_key, &global, &deepest);

    // One insert + one delete per catalog view, checked per commit.
    for view in VIEW_NAMES {
        if let Some(u) = updates_for_view(view).first() {
            for stmt in [u.insert_stmt(), u.delete_stmt()] {
                let commit = db.apply(&stmt).expect("catalog update applies");
                assert_eq!(circuit.sync(&mut db), commit.seq);
                let oracle = circuit.recompute(&db);
                for node in circuit.nodes() {
                    assert!(
                        circuit.store(node).same_content_as(&oracle[node.index()]),
                        "commit {} ({view}): node n{} ({}) diverged:\n{}",
                        commit.seq,
                        node.index(),
                        circuit.label(node),
                        circuit.store(node).diff_description(&oracle[node.index()])
                    );
                }
            }
        }
    }
    circuit.detach(&mut db);
}
