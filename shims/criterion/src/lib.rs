//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of criterion used by `crates/bench`:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's full statistical machinery it takes a fixed number of
//! timed samples inside a wall-clock budget and reports
//! mean/min/median/stddev per iteration after interquartile-range
//! outlier trimming — a mean alone hides warm-up spikes and scheduler
//! noise, which is exactly what single-number runs used to report.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark, tunable for CI.
fn measure_budget() -> Duration {
    match std::env::var("XIVM_BENCH_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms.max(1)),
        None => Duration::from_millis(200),
    }
}

/// Samples taken per benchmark. Each sample is a timed batch of
/// iterations; statistics are computed across samples.
const SAMPLES: usize = 20;

/// How a batched setup's cost relates to the routine (kept for API
/// compatibility; the shim times each batch individually either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Summary statistics over the per-sample ns/iter measurements, after
/// interquartile-range outlier trimming (samples outside
/// `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]` are dropped).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stats {
    /// Mean ns/iter across the kept samples.
    pub mean_ns: f64,
    /// Fastest kept sample, ns/iter — the least-noise estimate.
    pub min_ns: f64,
    /// Median ns/iter across the kept samples.
    pub median_ns: f64,
    /// 99th-percentile ns/iter across the kept samples — the tail a
    /// latency-sensitive caller actually waits on.
    pub p99_ns: f64,
    /// Population standard deviation of the kept samples, ns/iter.
    pub stddev_ns: f64,
    /// Samples kept after trimming.
    pub samples: usize,
    /// Samples discarded as IQR outliers.
    pub trimmed: usize,
    /// Total measured iterations across the kept samples.
    pub iters: u64,
}

impl Stats {
    /// Builds the summary from raw `(ns_per_iter, iters)` samples.
    fn from_samples(raw: &[(f64, u64)]) -> Stats {
        if raw.is_empty() {
            return Stats::default();
        }
        let mut sorted: Vec<f64> = raw.iter().map(|&(ns, _)| ns).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q1 = percentile(&sorted, 0.25);
        let q3 = percentile(&sorted, 0.75);
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let kept: Vec<(f64, u64)> =
            raw.iter().copied().filter(|&(ns, _)| ns >= lo && ns <= hi).collect();
        // Trimming can only ever drop the extremes; with all samples
        // identical it drops nothing, and it never empties the set.
        let mut kept_ns: Vec<f64> = kept.iter().map(|&(ns, _)| ns).collect();
        kept_ns.sort_by(|a, b| a.total_cmp(b));
        let n = kept_ns.len() as f64;
        let mean = kept_ns.iter().sum::<f64>() / n;
        let var = kept_ns.iter().map(|ns| (ns - mean) * (ns - mean)).sum::<f64>() / n;
        Stats {
            mean_ns: mean,
            min_ns: kept_ns[0],
            median_ns: percentile(&kept_ns, 0.5),
            p99_ns: percentile(&kept_ns, 0.99),
            stddev_ns: var.sqrt(),
            samples: kept.len(),
            trimmed: raw.len() - kept.len(),
            iters: kept.iter().map(|&(_, it)| it).sum(),
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice. Public
/// so latency-style bench runners (e.g. `fig_async`) can report
/// p50/p99 over their own per-event samples with the same estimator
/// the shim uses internally.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Collects one benchmark's samples.
#[derive(Default)]
pub struct Bencher {
    /// `(ns_per_iter, iters)` per timed sample.
    samples: Vec<(f64, u64)>,
}

impl Bencher {
    /// Times `routine` as `SAMPLES` (20) batches sized so the whole
    /// run fits the measurement budget; each batch yields one ns/iter
    /// sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate.
        let warmup = Instant::now();
        let mut probe_iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(20) && probe_iters < 1_000_000 {
            std::hint::black_box(routine());
            probe_iters += 1;
        }
        let per_iter = warmup.elapsed().checked_div(probe_iters as u32).unwrap_or_default();
        let per_sample = measure_budget() / SAMPLES as u32;
        let iters = if per_iter.is_zero() {
            50_000
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 5_000_000) as u64
        };
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push((ns, iters));
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine
    /// is measured, and each batch's duration is one sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = measure_budget();
        let mut measured = Duration::ZERO;
        self.samples.clear();
        let wall = Instant::now();
        while (measured < budget || self.samples.len() < 2) && wall.elapsed() < budget * 4 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let d = start.elapsed();
            measured += d;
            self.samples.push((d.as_nanos() as f64, 1));
        }
    }

    /// The summary over the collected samples.
    pub fn stats(&self) -> Stats {
        Stats::from_samples(&self.samples)
    }
}

/// Formats a ns quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// No-op in the shim; real criterion parses `--bench`/filters here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let s = b.stats();
        println!(
            "{id:<40} mean {:>12}/iter  min {:>12}  median {:>12}  p99 {:>12}  stddev {:>10}  \
             ({} samples, {} trimmed, {} iters)",
            fmt_ns(s.mean_ns),
            fmt_ns(s.min_ns),
            fmt_ns(s.median_ns),
            fmt_ns(s.p99_ns),
            fmt_ns(s.stddev_ns),
            s.samples,
            s.trimmed,
            s.iters,
        );
        self
    }
}

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        std::env::set_var("XIVM_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn stats_summarize_and_trim_outliers() {
        // 19 well-behaved samples plus one wild outlier: the outlier
        // must be trimmed and every summary field reflect the rest.
        let mut raw: Vec<(f64, u64)> = (0..19).map(|i| (100.0 + i as f64, 10)).collect();
        raw.push((10_000.0, 10));
        let s = Stats::from_samples(&raw);
        assert_eq!(s.trimmed, 1);
        assert_eq!(s.samples, 19);
        assert_eq!(s.iters, 190);
        assert_eq!(s.min_ns, 100.0);
        assert_eq!(s.median_ns, 109.0);
        assert!((s.p99_ns - 117.82).abs() < 1e-9);
        assert!((s.mean_ns - 109.0).abs() < 1e-9);
        assert!(s.stddev_ns > 0.0 && s.stddev_ns < 10.0);
    }

    #[test]
    fn stats_handle_degenerate_inputs() {
        assert_eq!(Stats::from_samples(&[]), Stats::default());
        let one = Stats::from_samples(&[(42.0, 7)]);
        assert_eq!(one.mean_ns, 42.0);
        assert_eq!(one.min_ns, 42.0);
        assert_eq!(one.median_ns, 42.0);
        assert_eq!(one.stddev_ns, 0.0);
        assert_eq!(one.samples, 1);
        assert_eq!(one.trimmed, 0);
        assert_eq!(one.iters, 7);
        // identical samples: nothing trimmed, zero spread
        let same = Stats::from_samples(&[(5.0, 1), (5.0, 1), (5.0, 1)]);
        assert_eq!(same.samples, 3);
        assert_eq!(same.stddev_ns, 0.0);
    }

    #[test]
    fn bencher_iter_collects_samples() {
        std::env::set_var("XIVM_BENCH_MS", "5");
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        let s = b.stats();
        assert!(s.samples >= 2, "iter takes multiple samples");
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.mean_ns + s.stddev_ns * 4.0);
        assert!(s.iters > 0);
    }
}
