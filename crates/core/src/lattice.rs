//! The sub-pattern lattice (Section 3.5, Figures 6–7).
//!
//! An AND-OR DAG whose pattern-labeled nodes are the connected
//! sub-patterns of the view; a sub-pattern of size `n` can be computed
//! by joining any two sub-patterns that partition it along an edge
//! (the ∨ / ⋈ nodes of the figures). The engine materializes only a
//! subset of the lattice (snowcaps or leaves, per
//! [`crate::strategy::SnowcapStrategy`]); the full lattice is exposed
//! for inspection and for the strategy ablation experiments.

use crate::snowcap::is_snowcap;
use std::collections::BTreeSet;
use xivm_pattern::{PatternNodeId, TreePattern};

/// One lattice node: a connected sub-pattern of the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatticeNode {
    pub nodes: BTreeSet<PatternNodeId>,
    /// True iff this sub-pattern is a snowcap of the view.
    pub snowcap: bool,
    /// Ways of producing this node by joining two smaller lattice
    /// nodes (indices into [`Lattice::nodes`]): the ∨-alternatives.
    pub derivations: Vec<(usize, usize)>,
}

/// The lattice of all connected sub-patterns.
#[derive(Debug, Clone)]
pub struct Lattice {
    pub nodes: Vec<LatticeNode>,
}

impl Lattice {
    /// Builds the full lattice of `pattern`. Exponential in the view
    /// size — views have ≤ 10 nodes in practice (the paper's have ≤ 7).
    pub fn build(pattern: &TreePattern) -> Lattice {
        let all: Vec<PatternNodeId> = pattern.preorder();
        let k = all.len();
        assert!(k <= 16, "lattice construction is exponential; view too large");
        let mut subsets: Vec<BTreeSet<PatternNodeId>> = Vec::new();
        for mask in 1u32..(1 << k) {
            let set: BTreeSet<PatternNodeId> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &n)| n)
                .collect();
            if is_connected(pattern, &set) {
                subsets.push(set);
            }
        }
        subsets.sort_by_key(|s| (s.len(), s.iter().map(|n| n.0).collect::<Vec<_>>()));
        let index_of = |s: &BTreeSet<PatternNodeId>, nodes: &[LatticeNode]| {
            nodes.iter().position(|n| &n.nodes == s)
        };
        let mut nodes: Vec<LatticeNode> = Vec::with_capacity(subsets.len());
        for set in subsets {
            let mut derivations = Vec::new();
            // Split along every pattern edge inside the set: removing
            // the edge (p, c) splits the subtree into the part
            // containing c's subtree and the rest.
            for &n in &set {
                if let Some(p) = pattern.node(n).parent {
                    if set.contains(&p) {
                        let below: BTreeSet<PatternNodeId> = set
                            .iter()
                            .copied()
                            .filter(|&x| x == n || pattern.is_ancestor(n, x))
                            .collect();
                        let above: BTreeSet<PatternNodeId> =
                            set.difference(&below).copied().collect();
                        if let (Some(a), Some(b)) =
                            (index_of(&above, &nodes), index_of(&below, &nodes))
                        {
                            derivations.push((a, b));
                        }
                    }
                }
            }
            let snowcap = is_snowcap(pattern, &set);
            nodes.push(LatticeNode { nodes: set, snowcap, derivations });
        }
        Lattice { nodes }
    }

    /// Number of pattern-labeled lattice nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The snowcap nodes (the boxed nodes of Figures 6–7).
    pub fn snowcaps(&self) -> Vec<&LatticeNode> {
        self.nodes.iter().filter(|n| n.snowcap).collect()
    }

    /// The leaves (single-node sub-patterns).
    pub fn leaves(&self) -> Vec<&LatticeNode> {
        self.nodes.iter().filter(|n| n.nodes.len() == 1).collect()
    }
}

/// A subset is connected iff every node except the subset-root has its
/// parent in the subset, and there is exactly one subset-root... more
/// precisely: the induced subgraph of tree edges is a single tree.
fn is_connected(pattern: &TreePattern, set: &BTreeSet<PatternNodeId>) -> bool {
    // Count nodes whose parent is outside the set: connected subtrees
    // of a tree have exactly one such "local root".
    let local_roots = set
        .iter()
        .filter(|&&n| match pattern.node(n).parent {
            Some(p) => !set.contains(&p),
            None => true,
        })
        .count();
    if local_roots != 1 {
        return false;
    }
    // All other nodes reach the local root via in-set parents — which
    // is already guaranteed by the local-root count in a tree.
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;

    fn label_string(p: &TreePattern, s: &BTreeSet<PatternNodeId>) -> String {
        s.iter().map(|&n| p.node(n).base_label()).collect::<Vec<_>>().join("")
    }

    /// Figure 6: the lattice of //a[//b//c]//d has pattern nodes
    /// a, b, c, d, ab, ad, bc, abc, abd, abcd (and acd? no: a-c not an
    /// edge, but {a,c} is disconnected; {a,c,d} too). The figure shows:
    /// a, b, c, d, ab, ac?, ad, bc, abc, abd, acd, abcd — the figure
    /// lists ab, ac, ad, bc at level 2 and abc, abd, acd at level 3.
    /// `ac` and `acd` are connected only through b in the pattern, so
    /// with strict tree-edge connectivity they are excluded; the paper
    /// draws them because //-edges compose (a//c holds when a//b//c
    /// does). We follow the figure: composition across elided
    /// intermediate nodes is future work, so our lattice keeps strictly
    /// connected subsets — the snowcap set (what maintenance actually
    /// uses) is identical either way.
    #[test]
    fn figure_6_lattice_snowcaps() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let lat = Lattice::build(&p);
        let caps: Vec<String> = lat.snowcaps().iter().map(|n| label_string(&p, &n.nodes)).collect();
        assert_eq!(caps, vec!["a", "ab", "ad", "abc", "abd", "abcd"]);
        assert_eq!(lat.leaves().len(), 4);
    }

    #[test]
    fn disconnected_subsets_are_excluded() {
        let p = parse_pattern("//a//b//c").unwrap();
        let lat = Lattice::build(&p);
        let sets: Vec<String> = lat.nodes.iter().map(|n| label_string(&p, &n.nodes)).collect();
        assert!(sets.contains(&"ab".to_owned()));
        assert!(sets.contains(&"bc".to_owned()));
        assert!(!sets.contains(&"ac".to_owned()), "a and c are not adjacent");
        assert_eq!(lat.len(), 6); // a, b, c, ab, bc, abc
    }

    #[test]
    fn derivations_partition_along_edges() {
        let p = parse_pattern("//a//b").unwrap();
        let lat = Lattice::build(&p);
        let ab = lat.nodes.iter().find(|n| n.nodes.len() == 2).unwrap();
        assert_eq!(ab.derivations.len(), 1);
        let (l, r) = ab.derivations[0];
        assert_eq!(lat.nodes[l].nodes.len(), 1);
        assert_eq!(lat.nodes[r].nodes.len(), 1);
    }

    #[test]
    fn top_node_has_multiple_derivations_for_branching_views() {
        // Figure 6: abcd can be produced in three ways.
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let lat = Lattice::build(&p);
        let top = lat.nodes.iter().find(|n| n.nodes.len() == 4).unwrap();
        assert_eq!(top.derivations.len(), 3);
    }
}
