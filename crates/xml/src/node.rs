//! Arena node representation.

use crate::label::LabelId;

/// Index of a node in a [`crate::Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The three node kinds of the paper's document model (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Element,
    Attribute,
    Text,
}

/// One tree node. Nodes store only their *own* Dewey step (label +
/// sibling ordinal); full [`crate::DeweyId`]s are materialized on
/// demand by walking parents, which keeps per-node memory constant.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub label: LabelId,
    /// Gap-allocated ordinal among siblings (see [`crate::dewey`]).
    pub ord: u64,
    pub parent: Option<NodeId>,
    /// Children in document order. Attribute nodes come first by
    /// construction (they are parsed before element content).
    pub children: Vec<NodeId>,
    /// Text content for [`NodeKind::Text`], attribute value for
    /// [`NodeKind::Attribute`], unused for elements.
    pub text: Option<String>,
    /// Deleted nodes stay in the arena but are marked dead; canonical
    /// relations and traversals skip them.
    pub alive: bool,
    /// Highest child ordinal ever allocated under this node, dead
    /// children included — ordinals are never recycled, so stale
    /// structural IDs can never resolve to a different node.
    pub max_child_ord: u64,
}

impl Node {
    pub fn is_element(&self) -> bool {
        self.kind == NodeKind::Element
    }

    pub fn is_attribute(&self) -> bool {
        self.kind == NodeKind::Attribute
    }

    pub fn is_text(&self) -> bool {
        self.kind == NodeKind::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        let n = Node {
            kind: NodeKind::Text,
            label: LabelId(0),
            ord: 1,
            parent: None,
            children: vec![],
            text: Some("hi".into()),
            alive: true,
            max_child_ord: 0,
        };
        assert!(n.is_text());
        assert!(!n.is_element());
        assert!(!n.is_attribute());
    }

    #[test]
    fn node_id_index() {
        assert_eq!(NodeId(7).index(), 7);
    }
}
