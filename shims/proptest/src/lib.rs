//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of proptest that `tests/property.rs` uses:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_recursive`, integer-range / tuple / `Just` / collection /
//! bool strategies, the `proptest!` test macro with
//! `#![proptest_config(..)]`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//! - **greedy choice-sequence shrinking** instead of value trees: the
//!   shim records the raw RNG draws behind a failing case and
//!   minimizes *that sequence*, re-running generation + body on each
//!   candidate. Generation is a deterministic function of the draw
//!   stream, so any strategy shrinks for free — `Map`ped, recursive
//!   and unioned strategies included (the technique Hypothesis uses
//!   internally). Collection strategies additionally record a
//!   [`VecSpan`](test_runner::VecSpan) per generated element, giving
//!   the shrinker a value-tree-ish *structured* first pass: whole
//!   elements are deleted (their draws removed, the collection's
//!   length draw decremented in lockstep), outermost collections
//!   first — a failing soak workload loses whole commits before whole
//!   statements before any draw-level editing (deleting blocks,
//!   binary-searching individual draws toward zero) begins;
//! - generation is **deterministic**: the base seed is fixed (or
//!   taken from `PROPTEST_SEED`) so CI failures reproduce locally;
//! - `PROPTEST_CASES` overrides the per-test case count globally,
//!   which is how CI bounds total runtime; `PROPTEST_MAX_SHRINK_ITERS`
//!   does the same for the shrink budget (0 disables shrinking).

pub mod test_runner {
    use std::fmt;

    /// The structural trace of one collection generation: where its
    /// length draw sits in the recorded sequence, the bound that draw
    /// was taken under, and the draw-index range each element
    /// consumed. Recorded by `collection::vec` so the shrinker can
    /// delete *whole elements* — removing an element's draws and
    /// decrementing the length draw together — instead of discovering
    /// the same edit through blind block deletion.
    #[derive(Clone, Debug)]
    pub struct VecSpan {
        /// Index (into the recorded draws) of the length draw.
        pub len_index: usize,
        /// The bound the length draw was taken under (`below` bound).
        pub len_bound: u64,
        /// Half-open draw-index range of each generated element, in
        /// order. Nested collections record their own spans too;
        /// ranges nest but never partially overlap.
        pub elements: Vec<(usize, usize)>,
    }

    /// How a [`TestRng`] produces draws: live generation (optionally
    /// recorded) or replay of a captured choice sequence.
    #[derive(Clone, Debug)]
    enum Mode {
        Random,
        Recording { draws: Vec<u64>, spans: Vec<VecSpan> },
        Replay { draws: Vec<u64>, pos: usize },
    }

    /// Deterministic xoshiro256++ RNG used to drive generation, with a
    /// record / replay layer for shrinking: every `next_u64` can be
    /// captured, and a captured sequence can be played back (padding
    /// with zeros — the minimal draw — once exhausted).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
        mode: Mode,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()], mode: Mode::Random }
        }

        /// An rng that replays a recorded choice sequence, yielding 0
        /// for every draw past its end.
        pub fn replaying(draws: Vec<u64>) -> Self {
            TestRng { s: [0; 4], mode: Mode::Replay { draws, pos: 0 } }
        }

        /// Starts capturing draws (replacing any previous capture).
        /// The underlying generator state is unaffected.
        pub fn start_recording(&mut self) {
            self.mode = Mode::Recording { draws: Vec::new(), spans: Vec::new() };
        }

        /// Stops capturing and returns the draws made since
        /// [`Self::start_recording`].
        pub fn take_recording(&mut self) -> Vec<u64> {
            self.take_recording_with_spans().0
        }

        /// Stops capturing and returns the draws made since
        /// [`Self::start_recording`] together with the collection
        /// spans recorded over them.
        pub fn take_recording_with_spans(&mut self) -> (Vec<u64>, Vec<VecSpan>) {
            match std::mem::replace(&mut self.mode, Mode::Random) {
                Mode::Recording { draws, spans } => (draws, spans),
                other => {
                    self.mode = other;
                    (Vec::new(), Vec::new())
                }
            }
        }

        /// True while draws are being captured (spans are only worth
        /// assembling then).
        pub fn is_recording(&self) -> bool {
            matches!(self.mode, Mode::Recording { .. })
        }

        /// Number of draws captured so far — the index the *next*
        /// draw will land at. `0` outside recording mode.
        pub fn recorded(&self) -> usize {
            match &self.mode {
                Mode::Recording { draws, .. } => draws.len(),
                _ => 0,
            }
        }

        /// Attaches a collection span to the current capture (no-op
        /// outside recording mode).
        pub fn record_vec_span(&mut self, span: VecSpan) {
            if let Mode::Recording { spans, .. } = &mut self.mode {
                spans.push(span);
            }
        }

        /// Base seed: `PROPTEST_SEED` env var, else a fixed default so
        /// runs are reproducible.
        pub fn default_seed() -> u64 {
            std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x1511_2011_edb7)
        }

        pub fn next_u64(&mut self) -> u64 {
            if let Mode::Replay { draws, pos } = &mut self.mode {
                let value = draws.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                return value;
            }
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            if let Mode::Recording { draws, .. } = &mut self.mode {
                draws.push(result);
            }
            result
        }

        /// Uniform draw from `[0, bound)` (`bound > 0`). Monotone in
        /// the raw draw, which is what makes draw-level minimization
        /// shrink the produced values too.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Budget for shrink attempts (candidate re-executions) after
        /// a failure. 0 disables shrinking.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; the shim never persists failures.
        pub failure_persistence: Option<()>,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }

        /// `PROPTEST_CASES` overrides the configured count so CI can
        /// bound runtime without editing tests.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
                .max(1)
        }

        /// `PROPTEST_MAX_SHRINK_ITERS` overrides the shrink budget
        /// (0 disables shrinking).
        pub fn effective_max_shrink_iters(&self) -> u32 {
            std::env::var("PROPTEST_MAX_SHRINK_ITERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.max_shrink_iters)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 1024, failure_persistence: None }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property failed; the test as a whole fails.
        Fail(String),
        /// The input was rejected (unused by this workspace).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<R: fmt::Display>(reason: R) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        pub fn reject<R: fmt::Display>(reason: R) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Renders a caught panic payload as the failure message.
    pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        }
    }

    /// Runs `f` with a no-op panic hook, so the hundreds of caught
    /// panics a shrink search may trigger don't flood stderr. The
    /// previous hook is restored by a drop guard, so it comes back
    /// even if `f` unwinds. Caveat: the hook is process-global, so a
    /// test failing on *another* thread while a shrink search runs
    /// prints nothing until the search ends — its failure itself is
    /// still reported by the harness.
    pub fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
        type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
        struct RestoreHook(Option<Hook>);
        impl Drop for RestoreHook {
            fn drop(&mut self) {
                if let Some(hook) = self.0.take() {
                    std::panic::set_hook(hook);
                }
            }
        }
        let guard = RestoreHook(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        drop(guard);
        out
    }
}

pub mod shrink {
    //! Greedy minimization of a failing case's choice sequence.
    //!
    //! A test case is fully determined by the `u64` draws its
    //! strategies consumed. Shrinking therefore never needs to invert
    //! a strategy: it edits the draw sequence — structured first
    //! (whole collection elements deleted via their recorded
    //! [`VecSpan`]s, outermost collections first, with the length
    //! draw decremented in lockstep — a failing soak script loses
    //! whole commits, then whole statements), then shorter (block
    //! deletion makes collections smaller and recursive strategies
    //! bottom out), then smaller (binary search per draw; `below` is
    //! monotone in the raw draw) — and keeps any edit under which the
    //! property still fails. Every candidate execution counts against
    //! the `max_shrink_iters` budget.

    use crate::test_runner::VecSpan;

    /// Outcome of one greedy minimization.
    pub struct Minimized {
        /// The smallest failing choice sequence found.
        pub draws: Vec<u64>,
        /// The failure message of that sequence.
        pub reason: String,
        /// Candidate executions spent.
        pub iters: u32,
    }

    /// [`minimize_with_spans`] without structural information — only
    /// the draw-level passes run.
    pub fn minimize(
        draws: Vec<u64>,
        reason: String,
        max_iters: u32,
        still_fails: &mut dyn FnMut(&[u64]) -> Option<String>,
    ) -> Minimized {
        minimize_with_spans(draws, Vec::new(), reason, max_iters, still_fails)
    }

    /// The raw draw producing `value` under `below(bound)` that is
    /// smallest, i.e. the inverse of the monotone multiply-high map.
    fn raw_for(value: u64, bound: u64) -> u64 {
        if value == 0 {
            return 0;
        }
        (((value as u128) << 64).div_ceil(bound as u128)) as u64
    }

    fn below_value(raw: u64, bound: u64) -> u64 {
        ((raw as u128 * bound as u128) >> 64) as u64
    }

    /// Re-anchors every span after `del_len` draws were removed at
    /// `del_start`. Spans whose length draw (or elements wholly
    /// contained in the hole) vanish with it; ranges past the hole
    /// shift left; ranges enclosing it shorten. Deletions always
    /// happen on element boundaries, so partial overlap cannot occur.
    fn shift_spans(spans: &mut Vec<VecSpan>, del_start: usize, del_len: usize) {
        let del_end = del_start + del_len;
        spans.retain(|g| !(del_start..del_end).contains(&g.len_index));
        for g in spans.iter_mut() {
            if g.len_index >= del_end {
                g.len_index -= del_len;
            }
            g.elements.retain(|&(s, e)| !(s >= del_start && e <= del_end));
            for (s, e) in g.elements.iter_mut() {
                if *s >= del_end {
                    *s -= del_len;
                    *e -= del_len;
                } else if *e >= del_end && *s <= del_start {
                    *e -= del_len;
                }
            }
        }
    }

    /// Greedily minimizes `draws` (a known-failing choice sequence
    /// with failure message `reason`), guided by the collection
    /// `spans` recorded during the failing run. `still_fails` re-runs
    /// the property on a candidate sequence and returns the failure
    /// message if it still fails (a rejected or passing candidate
    /// returns `None`).
    pub fn minimize_with_spans(
        draws: Vec<u64>,
        spans: Vec<VecSpan>,
        reason: String,
        max_iters: u32,
        still_fails: &mut dyn FnMut(&[u64]) -> Option<String>,
    ) -> Minimized {
        let mut best = Minimized { draws, reason, iters: 0 };
        if max_iters == 0 {
            return best;
        }

        // Pass 0: structured element deletion. Walk the recorded
        // collections outermost first (spans are pushed innermost
        // first, so iterate in reverse), deleting one element at a
        // time: drop its draws and decrement the collection's length
        // draw to match. Spans are re-anchored after every accepted
        // edit, so this pass works on exact structure throughout; the
        // draw-level passes below then start from a structurally
        // minimal sequence.
        let mut spans = spans;
        'structured: loop {
            for gi in (0..spans.len()).rev() {
                for ei in (0..spans[gi].elements.len()).rev() {
                    if best.iters >= max_iters {
                        return best;
                    }
                    let g = &spans[gi];
                    let len_raw = match best.draws.get(g.len_index) {
                        Some(&raw) => raw,
                        None => continue,
                    };
                    let len_value = below_value(len_raw, g.len_bound);
                    if len_value == 0 {
                        // already at the strategy's minimum length
                        break;
                    }
                    let (start, end) = g.elements[ei];
                    if end < start || end > best.draws.len() {
                        continue;
                    }
                    let mut candidate = best.draws.clone();
                    candidate[g.len_index] = raw_for(len_value - 1, g.len_bound);
                    candidate.drain(start..end);
                    best.iters += 1;
                    if let Some(msg) = still_fails(&candidate) {
                        best.draws = candidate;
                        best.reason = msg;
                        spans[gi].elements.remove(ei);
                        if end > start {
                            shift_spans(&mut spans, start, end - start);
                        }
                        // retained groups may have moved: rescan
                        continue 'structured;
                    }
                }
            }
            break;
        }

        loop {
            let mut improved = false;

            // Pass 1: delete blocks of draws, largest first. Removing
            // draws shortens generated collections and flattens
            // recursive structures.
            let mut size = best.draws.len() / 2;
            while size >= 1 {
                let mut start = 0;
                while start + size <= best.draws.len() {
                    if best.iters >= max_iters {
                        return best;
                    }
                    let mut candidate = best.draws.clone();
                    candidate.drain(start..start + size);
                    best.iters += 1;
                    match still_fails(&candidate) {
                        Some(msg) => {
                            best.draws = candidate;
                            best.reason = msg;
                            improved = true;
                            // retry the same position at this size
                        }
                        None => start += size,
                    }
                }
                size /= 2;
            }

            // Pass 2: minimize each draw value. Try zero outright,
            // then binary-search the smallest still-failing value
            // (greedy: assumes failing values form an upward-closed
            // set per position, which holds for threshold-style
            // properties and is harmless otherwise).
            for i in 0..best.draws.len() {
                if best.draws[i] == 0 || best.iters >= max_iters {
                    continue;
                }
                let mut candidate = best.draws.clone();
                candidate[i] = 0;
                best.iters += 1;
                if let Some(msg) = still_fails(&candidate) {
                    best.draws = candidate;
                    best.reason = msg;
                    improved = true;
                    continue;
                }
                // 0 passes, best.draws[i] fails: bisect between them.
                let (mut lo, mut hi) = (0u64, best.draws[i]);
                while hi - lo > 1 && best.iters < max_iters {
                    let mid = lo + (hi - lo) / 2;
                    let mut candidate = best.draws.clone();
                    candidate[i] = mid;
                    best.iters += 1;
                    match still_fails(&candidate) {
                        Some(msg) => {
                            hi = mid;
                            best.draws = candidate;
                            best.reason = msg;
                            improved = true;
                        }
                        None => lo = mid,
                    }
                }
            }

            if !improved || best.iters >= max_iters {
                return best;
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type. Unlike the real
    /// crate there is no value tree / shrinking: `generate` draws a
    /// single value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a recursion tower of at most `depth` levels. The
        /// `_desired_size`/`_expected_branch_size` hints are accepted
        /// for signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut tower = self.clone().boxed();
            for _ in 0..depth {
                // Each level chooses leaf 1/4 of the time so the
                // generated trees vary in depth, not only in width.
                tower =
                    Union::weighted(vec![(1, self.clone().boxed()), (3, recurse(tower).boxed())])
                        .boxed();
            }
            tower
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between strategies of one value type; backs
    /// `prop_oneof!` and the recursion tower.
    pub struct Union<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { choices: self.choices.clone(), total_weight: self.total_weight }
        }
    }

    impl<T> Union<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(choices.into_iter().map(|c| (1, c)).collect())
        }

        pub fn weighted(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!choices.is_empty(), "empty Union");
            let total_weight = choices.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total_weight > 0, "Union with zero total weight");
            Union { choices, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, choice) in &self.choices {
                if pick < u64::from(*weight) {
                    return choice.generate(rng);
                }
                pick -= u64::from(*weight);
            }
            unreachable!("weights sum below total_weight")
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + hi) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let bound = ((self.size.end - self.size.start) as u64).max(1);
            // Trace the length draw and each element's draw range so
            // the shrinker can delete whole elements (see VecSpan).
            let recording = rng.is_recording();
            let len_index = rng.recorded();
            let len = self.size.start + rng.below(bound) as usize;
            let mut elements = Vec::new();
            let out = (0..len)
                .map(|_| {
                    let start = rng.recorded();
                    let value = self.element.generate(rng);
                    if recording {
                        elements.push((start, rng.recorded()));
                    }
                    value
                })
                .collect();
            if recording {
                rng.record_vec_span(crate::test_runner::VecSpan {
                    len_index,
                    len_bound: bound,
                    elements,
                });
            }
            out
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Each argument is drawn from its strategy
/// `cases` times; the body runs once per drawn set. On failure the
/// case's choice sequence is greedily minimized (see [`shrink`]) and
/// the panic message reports both the original and the minimized
/// failure, plus the base seed so the run reproduces with
/// `PROPTEST_SEED`.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.effective_cases();
                let max_shrink = config.effective_max_shrink_iters();
                let seed = $crate::test_runner::TestRng::default_seed();
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                // One case, start to finish, on whatever rng it is
                // handed: generate every argument, run the body. Both
                // happen inside catch_unwind — a panicking `unwrap` in
                // the body behaves like a failed assertion, and a
                // strategy that panics on a shrunk (zero-padded) draw
                // sequence cannot unwind out of the shrink search.
                // Reused verbatim by the shrinker on replay rngs —
                // generation is a pure function of the draw stream.
                // (`mut` because a body may capture outer state
                // mutably, making this FnMut.)
                #[allow(unused_mut)]
                let mut run_case = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut *rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })) {
                        ::std::result::Result::Ok(result) => result,
                        ::std::result::Result::Err(payload) => {
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                                $crate::test_runner::panic_message(payload),
                            ))
                        }
                    }
                };
                // A Reject does not count as a pass: the case is
                // redrawn, and too many rejects fail the test instead
                // of letting it pass vacuously (mirrors the real
                // crate's max_global_rejects).
                let max_rejects = cases.saturating_mul(16).max(256);
                let mut rejects = 0u32;
                let mut case = 0u32;
                while case < cases {
                    rng.start_recording();
                    let outcome = run_case(&mut rng);
                    let (draws, spans) = rng.take_recording_with_spans();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(reason)) => {
                            rejects += 1;
                            if rejects > max_rejects {
                                panic!(
                                    "proptest gave up after {} rejected inputs \
                                     ({} cases passed, PROPTEST_SEED={}): {}",
                                    rejects, case, seed, reason
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                            let original_len = draws.len();
                            let minimized = $crate::test_runner::with_silent_panics(|| {
                                $crate::shrink::minimize_with_spans(
                                    draws,
                                    spans,
                                    reason.clone(),
                                    max_shrink,
                                    &mut |candidate| {
                                        let mut replay = $crate::test_runner::TestRng::replaying(
                                            candidate.to_vec(),
                                        );
                                        match run_case(&mut replay) {
                                            ::std::result::Result::Err(
                                                $crate::test_runner::TestCaseError::Fail(msg),
                                            ) => ::std::option::Option::Some(msg),
                                            _ => ::std::option::Option::None,
                                        }
                                    },
                                )
                            });
                            if minimized.iters == 0 {
                                panic!(
                                    "proptest case {}/{} failed (PROPTEST_SEED={}): {}",
                                    case + 1, cases, seed, reason
                                );
                            }
                            panic!(
                                "proptest case {}/{} failed (PROPTEST_SEED={}): {}\n\
                                 minimized after {} shrink iteration(s) \
                                 ({} -> {} draws): {}",
                                case + 1, cases, seed, reason,
                                minimized.iters, original_len, minimized.draws.len(),
                                minimized.reason
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Chooses uniformly (or per explicit weights) between strategies
/// producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0u32..4, 0usize..3), flag in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4 && b < 3);
            let _ = flag;
        }

        #[test]
        fn recursive_strings_parse_shape(s in super::tests::arb_nested(3)) {
            prop_assert!(s.starts_with('(') && s.ends_with(')'));
            let depth: i64 = s.chars().map(|c| match c { '(' => 1, ')' => -1, _ => 0 }).sum();
            prop_assert_eq!(depth, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn rejected_inputs_are_redrawn_not_counted(x in 0u32..100) {
            if x % 2 == 0 {
                return Err(TestCaseError::reject("want odd"));
            }
            prop_assert!(x % 2 == 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

        // Not a #[test] itself: driven by `all_rejects_fail_the_test`.
        // The condition always holds; phrasing it as `if` keeps the
        // macro's trailing Ok(()) statically reachable.
        fn always_rejects(x in 0u32..10) {
            if x < 10 {
                return Err(TestCaseError::reject("never satisfiable"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "gave up after")]
    fn all_rejects_fail_the_test() {
        always_rejects();
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        // Driven by `shrinking_minimizes_scalars_to_the_boundary`: the
        // per-draw binary search must land exactly on the smallest
        // failing value, not merely a smaller one.
        fn fails_at_seventeen(x in 0u64..1000) {
            prop_assert!(x < 17, "x={}", x);
        }

        // Driven by `shrinking_minimizes_collections`: block deletion
        // must shorten the vector to the minimal failing length.
        fn fails_at_len_three(v in crate::collection::vec(0u64..100, 0..20)) {
            prop_assert!(v.len() < 3, "len={}", v.len());
        }

        // Driven by `shrinking_handles_panicking_bodies`: a panicking
        // `assert!` shrinks exactly like a `prop_assert!`.
        fn panics_past_fifty(x in 0u64..1000) {
            assert!(x <= 50, "boundary=51 x={}", x);
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "x=17")]
    fn shrinking_minimizes_scalars_to_the_boundary() {
        fails_at_seventeen();
    }

    #[test]
    #[should_panic(expected = "len=3")]
    fn shrinking_minimizes_collections() {
        fails_at_len_three();
    }

    #[test]
    #[should_panic(expected = "boundary=51 x=51")]
    fn shrinking_handles_panicking_bodies() {
        panics_past_fifty();
    }

    #[test]
    fn replay_reproduces_and_pads_with_zeros() {
        let mut live = TestRng::from_seed(42);
        live.start_recording();
        let drawn: Vec<u64> = (0..5).map(|_| live.next_u64()).collect();
        let recorded = live.take_recording();
        assert_eq!(drawn, recorded);
        let mut replay = TestRng::replaying(recorded);
        let replayed: Vec<u64> = (0..7).map(|_| replay.next_u64()).collect();
        assert_eq!(&replayed[..5], &drawn[..]);
        assert_eq!(&replayed[5..], &[0, 0], "exhausted replay yields minimal draws");
    }

    /// The structured pass deletes *whole elements*: a failing vec
    /// whose failure hinges on one element shrinks to exactly that
    /// element — draws of the others removed, the length draw
    /// decremented in lockstep, never a misaligned half-element.
    #[test]
    fn span_deletion_drops_whole_elements() {
        let strat = crate::collection::vec(0u64..100, 0..10);
        let mut rng = TestRng::from_seed(7);
        let (draws, spans, value) = loop {
            rng.start_recording();
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            let (draws, spans) = rng.take_recording_with_spans();
            if v.len() >= 4 && v[2] != 0 {
                break (draws, spans, v);
            }
        };
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].elements.len(), value.len());
        let target = value[2];

        let mut still_fails = |candidate: &[u64]| {
            let mut replay = TestRng::replaying(candidate.to_vec());
            let v = crate::strategy::Strategy::generate(&strat, &mut replay);
            v.contains(&target).then(|| format!("len={}", v.len()))
        };
        let out = crate::shrink::minimize_with_spans(
            draws,
            spans,
            "orig".into(),
            10_000,
            &mut still_fails,
        );
        let mut replay = TestRng::replaying(out.draws.clone());
        let v = crate::strategy::Strategy::generate(&strat, &mut replay);
        assert_eq!(v, vec![target], "minimal failing case is the one pinned element");
    }

    /// Span recording survives nesting: the recursive string strategy
    /// (vecs inside vecs) records hierarchically consistent spans and
    /// still minimizes to the boundary.
    #[test]
    fn nested_spans_are_hierarchically_consistent() {
        let strat = arb_nested(3);
        let mut rng = TestRng::from_seed(11);
        let (draws, spans) = loop {
            rng.start_recording();
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            let (draws, spans) = rng.take_recording_with_spans();
            if s.len() >= 8 {
                break (draws, spans);
            }
        };
        for g in &spans {
            assert!(g.len_index < draws.len());
            for &(s, e) in &g.elements {
                assert!(s <= e && e <= draws.len(), "range ({s}, {e}) out of bounds");
            }
            for pair in g.elements.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "sibling element ranges must not overlap");
            }
        }
    }

    #[test]
    fn minimize_respects_a_zero_budget() {
        let out = crate::shrink::minimize(vec![7, 8, 9], "orig".into(), 0, &mut |_| {
            panic!("must not be called with a zero budget")
        });
        assert_eq!(out.draws, vec![7, 8, 9]);
        assert_eq!(out.iters, 0);
    }

    pub fn arb_nested(depth: u32) -> impl Strategy<Value = String> {
        let leaf = Just("()".to_owned());
        leaf.prop_recursive(depth, 8, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(|kids| format!("({})", kids.join("")))
        })
    }
}
