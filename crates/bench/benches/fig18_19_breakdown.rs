//! Figures 18 and 19: per-phase time breakdown of insert propagation
//! (PINT/PIMT) and delete propagation (PDDT/MT) for the XMark views
//! Q1, Q3 and Q6, each against its five update classes, on the
//! reference document.

use xivm_bench::{averaged, figure_header, phase_cells, repetitions, row, PHASE_COLUMNS};
use xivm_core::{MaintenanceEngine, SnowcapStrategy};
use xivm_xmark::sizes::reference_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern};

fn main() {
    let size = reference_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();

    for (figure, is_insert) in [("Figure 18", true), ("Figure 19", false)] {
        let kind = if is_insert { "insert (PINT/PIMT)" } else { "delete (PDDT/MT)" };
        figure_header(
            figure,
            &format!("{kind} time breakdown, views Q1/Q3/Q6, {} document", size.label),
        );
        let mut header = vec!["view".to_owned(), "update".to_owned(), "class".to_owned()];
        header.extend(PHASE_COLUMNS.iter().map(|s| s.to_string()));
        row(&header);
        for view in ["Q1", "Q3", "Q6"] {
            let pattern = view_pattern(view);
            for u in updates_for_view(view) {
                let stmt = if is_insert { u.insert_stmt() } else { u.delete_stmt() };
                let t = averaged(reps, || {
                    xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain)
                        .timings
                });
                let mut cells = vec![view.to_owned(), u.name.to_owned(), u.class.name().to_owned()];
                cells.extend(phase_cells(&t));
                row(&cells);
            }
        }
        // One fresh engine per run keeps measurements independent; the
        // report object itself is what the paper's bars decompose.
        let _ = MaintenanceEngine::new(&doc, view_pattern("Q1"), SnowcapStrategy::MinimalChain);
    }
}
