//! Circuit values: [`Datum`] and [`Row`].
//!
//! Operators downstream of a view no longer deal in view [`Tuple`]s —
//! a join's output concatenates columns from two views, an aggregate's
//! output carries a computed integer — so circuits flow a small
//! self-describing value type instead. A [`Row`] is an ordered list of
//! [`Datum`]s; a source node converts each view tuple into one row by
//! flattening the tuple against the view schema (per column: the
//! node's structural ID, then its `val` if the view stores it, then
//! its `cont` if the view stores it — absent annotations contribute
//! nothing, stored-but-missing text becomes [`Datum::Null`]).
//!
//! Rows are plain data: hashable (join/aggregate state keys), cheaply
//! clonable (`Arc`-shared strings, structural IDs), and totally
//! ordered ([`Datum`] orders by variant rank, IDs in document order)
//! so sorted row dumps and consolidated deltas are deterministic.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;
use xivm_algebra::{Schema, Tuple};
use xivm_xml::DeweyId;

/// One circuit value: a document node ID, a text value, an integer
/// (aggregate results), or null (a stored annotation the node does not
/// have, e.g. `val` of an element with no text).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Datum {
    Null,
    Int(i64),
    Str(Arc<str>),
    Id(DeweyId),
}

impl Datum {
    /// Variant rank for the cross-variant order (`Null < Int < Str <
    /// Id`).
    fn rank(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Int(_) => 1,
            Datum::Str(_) => 2,
            Datum::Id(_) => 3,
        }
    }

    /// The integer behind an `Int` datum.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text behind a `Str` datum.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The structural ID behind an `Id` datum.
    pub fn as_id(&self) -> Option<&DeweyId> {
        match self {
            Datum::Id(id) => Some(id),
            _ => None,
        }
    }
}

impl From<i64> for Datum {
    fn from(i: i64) -> Self {
        Datum::Int(i)
    }
}

impl From<&str> for Datum {
    fn from(s: &str) -> Self {
        Datum::Str(s.into())
    }
}

impl From<Arc<str>> for Datum {
    fn from(s: Arc<str>) -> Self {
        Datum::Str(s)
    }
}

impl From<DeweyId> for Datum {
    fn from(id: DeweyId) -> Self {
        Datum::Id(id)
    }
}

impl Ord for Datum {
    /// Total order: variants by rank, integers numerically, strings
    /// lexicographically, IDs in document order ([`DeweyId`] itself
    /// has no `Ord`; [`DeweyId::doc_cmp`] is total over the IDs of one
    /// document).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Datum::Id(a), Datum::Id(b)) => a.doc_cmp(b).then_with(|| a.depth().cmp(&b.depth())),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "null"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Str(s) => write!(f, "{s:?}"),
            Datum::Id(id) => {
                let ords: Vec<String> = id.steps().iter().map(|s| s.ord.to_string()).collect();
                write!(f, "#{}", ords.join("."))
            }
        }
    }
}

/// One row of a circuit node: an ordered list of [`Datum`]s. All rows
/// of one node have the same layout (determined by the node's
/// operator and, for sources, the view schema).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row(Vec<Datum>);

impl Row {
    pub fn new(datums: Vec<Datum>) -> Self {
        Row(datums)
    }

    /// The empty row — the key of a global (ungrouped) aggregate.
    pub fn empty() -> Self {
        Row(Vec::new())
    }

    /// Flattens one view tuple into a row, driven by the view schema:
    /// per column the structural ID, then `val` / `cont` *iff* the
    /// view stores them for that column (missing stored text becomes
    /// [`Datum::Null`], so every row of one source has the same
    /// arity).
    pub fn from_tuple(tuple: &Tuple, schema: &Schema) -> Self {
        let mut datums = Vec::with_capacity(schema.arity());
        for (i, col) in schema.columns.iter().enumerate() {
            let field = tuple.field(i);
            datums.push(Datum::Id(field.id.clone()));
            if col.stores_val {
                datums.push(field.val.clone().map_or(Datum::Null, Datum::Str));
            }
            if col.stores_cont {
                datums.push(field.cont.clone().map_or(Datum::Null, Datum::Str));
            }
        }
        Row(datums)
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The datum at position `i` (panics out of range, like slice
    /// indexing).
    pub fn datum(&self, i: usize) -> &Datum {
        &self.0[i]
    }

    pub fn datums(&self) -> &[Datum] {
        &self.0
    }

    /// Concatenation — a join's output row is `left ++ right`.
    pub fn concat(&self, other: &Row) -> Row {
        let mut datums = Vec::with_capacity(self.0.len() + other.0.len());
        datums.extend_from_slice(&self.0);
        datums.extend_from_slice(&other.0);
        Row(datums)
    }

    /// Keeps only the listed positions, in the given order.
    pub fn project(&self, cols: &[usize]) -> Row {
        Row(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// The row extended by one trailing datum — an aggregate's output
    /// row is `group key ++ aggregate value`.
    pub fn with(&self, datum: Datum) -> Row {
        let mut datums = Vec::with_capacity(self.0.len() + 1);
        datums.extend_from_slice(&self.0);
        datums.push(datum);
        Row(datums)
    }
}

impl From<Vec<Datum>> for Row {
    fn from(datums: Vec<Datum>) -> Self {
        Row(datums)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_algebra::{Column, Field};
    use xivm_xml::dewey::Step;
    use xivm_xml::LabelId;

    fn id(ords: &[u64]) -> DeweyId {
        DeweyId::from_steps(ords.iter().map(|&o| Step::new(LabelId(0), o)).collect())
    }

    #[test]
    fn datum_order_is_total_and_document_ordered() {
        let mut data = vec![
            Datum::Id(id(&[2])),
            Datum::Str("b".into()),
            Datum::Null,
            Datum::Id(id(&[1, 1])),
            Datum::Int(7),
            Datum::Str("a".into()),
            Datum::Id(id(&[1])),
            Datum::Int(-1),
        ];
        data.sort();
        assert_eq!(
            data,
            vec![
                Datum::Null,
                Datum::Int(-1),
                Datum::Int(7),
                Datum::Str("a".into()),
                Datum::Str("b".into()),
                Datum::Id(id(&[1])),
                Datum::Id(id(&[1, 1])),
                Datum::Id(id(&[2])),
            ]
        );
    }

    #[test]
    fn from_tuple_flattens_by_schema_flags() {
        let schema = Schema::new(vec![
            Column::id_only("a"),
            Column::with("b", true, false),
            Column::with("c", true, true),
        ]);
        let tuple = Tuple::new(vec![
            Field::id_only(id(&[1])),
            Field::new(id(&[1, 2]), Some("v".into()), None),
            Field::new(id(&[1, 3]), None, Some("<c/>".into())),
        ]);
        let row = Row::from_tuple(&tuple, &schema);
        assert_eq!(
            row.datums(),
            &[
                Datum::Id(id(&[1])),
                Datum::Id(id(&[1, 2])),
                Datum::Str("v".into()),
                Datum::Id(id(&[1, 3])),
                Datum::Null,
                Datum::Str("<c/>".into()),
            ]
        );
    }

    #[test]
    fn concat_project_and_with() {
        let a = Row::new(vec![Datum::Int(1), Datum::Str("x".into())]);
        let b = Row::new(vec![Datum::Int(2)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]).datums(), &[Datum::Int(2), Datum::Int(1)]);
        assert_eq!(b.with(Datum::Int(9)).datums(), &[Datum::Int(2), Datum::Int(9)]);
        assert_eq!(Row::empty().arity(), 0);
        assert!(Row::empty().is_empty());
        assert_eq!(c.datum(1).as_str(), Some("x"));
        assert_eq!(c.datum(0).as_int(), Some(1));
        assert!(c.datum(0).as_id().is_none());
    }

    #[test]
    fn display_is_compact() {
        let r = Row::new(vec![
            Datum::Id(id(&[1, 2])),
            Datum::Str("x".into()),
            Datum::Int(3),
            Datum::Null,
        ]);
        assert_eq!(r.to_string(), "(#1.2, \"x\", 3, null)");
    }
}
