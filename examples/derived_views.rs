//! Derived views: XMark "open auctions by seller, with bid counts",
//! maintained purely from deltas.
//!
//! Three base views over the auction document feed a circuit —
//! project → count → join → sum — whose derived stores answer a query
//! none of the base views holds: per seller, how many open auctions
//! they run and how many bids those auctions have collected. After
//! every commit the derived stores are asserted equal to an XPath
//! recomputation over the whole document, so the O(|Δ|) maintenance
//! path is checked against the O(document) one it replaces.
//!
//! ```sh
//! cargo run --release --example derived_views
//! ```

use xivm::circuit::Node;
use xivm::pattern::xpath::eval::eval_relative;
use xivm::pattern::xpath::parse_xpath;
use xivm::prelude::*;
use xivm::xmark::generate_sized;

/// The XPath oracle: walks every open auction in the frozen snapshot
/// and rebuilds both per-seller tables from scratch.
fn recompute_by_xpath(snap: &DatabaseSnapshot) -> (DerivedStore, DerivedStore) {
    let doc = snap.document();
    let seller_of = parse_xpath("seller/@person").expect("static path");
    let bidders = parse_xpath("bidder").expect("static path");

    let mut auctions: Vec<(String, i64)> = Vec::new();
    for auction in snap.xpath("/site/open_auctions/open_auction").expect("static path") {
        let Some(&seller) = eval_relative(doc, auction, &seller_of).first() else {
            continue;
        };
        let bids = eval_relative(doc, auction, &bidders).len() as i64;
        auctions.push((doc.value(seller), bids));
    }

    // auctions per seller: every auction counts…
    let mut auction_counts: std::collections::BTreeMap<String, i64> = Default::default();
    // …bids per seller: only auctions with at least one bid produce a
    // count row upstream, so zero-bid auctions contribute no group.
    let mut bid_totals: std::collections::BTreeMap<String, i64> = Default::default();
    for (seller, bids) in &auctions {
        *auction_counts.entry(seller.clone()).or_insert(0) += 1;
        if *bids > 0 {
            *bid_totals.entry(seller.clone()).or_insert(0) += bids;
        }
    }

    let to_store = |m: &std::collections::BTreeMap<String, i64>| {
        let mut s = DerivedStore::new();
        s.apply(&RowDelta::new(
            m.iter()
                .map(|(seller, n)| {
                    (Row::new(vec![Datum::Str(seller.as_str().into()), Datum::Int(*n)]), 1)
                })
                .collect(),
        ));
        s
    };
    (to_store(&auction_counts), to_store(&bid_totals))
}

fn assert_matches_oracle(circuit: &Circuit, db: &Database, by_seller: Node, bids: Node) {
    let (want_auctions, want_bids) = recompute_by_xpath(&db.snapshot());
    assert!(
        circuit.store(by_seller).same_content_as(&want_auctions),
        "auctions-per-seller drifted from the XPath recomputation:\n{}",
        circuit.store(by_seller).diff_description(&want_auctions)
    );
    assert!(
        circuit.store(bids).same_content_as(&want_bids),
        "bids-per-seller drifted from the XPath recomputation:\n{}",
        circuit.store(bids).diff_description(&want_bids)
    );
}

fn main() -> Result<(), Error> {
    // A small auction site; three base views the engine maintains
    // incrementally under updates.
    let mut db = Database::builder()
        .document(generate_sized(30 * 1024))
        .view("sellers", "/site/open_auctions/open_auction{id}/seller/@person{id,val}")
        .view("bidders", "/site/open_auctions/open_auction{id}/bidder{id}")
        .build()?;

    // The circuit: who sells, joined with how much bidding.
    //
    //   sellers ─ project ──────────┬─ count ─► auctions per seller
    //   bidders ─ count per auction ┴─ join ─ sum ─► bids per seller
    let mut b = db.circuit();
    let sellers = b.source("sellers")?; // [auction, @person, seller]
    let bidders = b.source("bidders")?; // [auction, bidder]
    let seller_of = b.project(sellers, vec![0, 2]); // [auction, seller]
    let by_seller = b.count(seller_of, |r| r.project(&[1])); // [seller, n]
    let bids_per_auction = b.count(bidders, |r| r.project(&[0])); // [auction, n]
    let joined = b.join(seller_of, bids_per_auction, |r| r.project(&[0]), |r| r.project(&[0])); // [auction, seller, auction, n]
    let bids_per_seller = b.sum(joined, |r| r.project(&[1]), |r| r.datum(3).as_int().unwrap_or(0)); // [seller, total bids]
    let mut circuit = b.build();

    println!("circuit:\n{}", circuit.describe());
    assert_matches_oracle(&circuit, &db, by_seller, bids_per_seller);
    println!(
        "seeded: {} sellers, {} with bids",
        circuit.store(by_seller).len(),
        circuit.store(bids_per_seller).len()
    );

    // The site keeps trading: a new auction appears with two bids, a
    // bidding war erupts on it, one seller hands an auction over to
    // another, and an auction closes. After every commit the circuit
    // syncs in O(|Δ|) and must agree with the full XPath recomputation.
    let new_auction = "<open_auction id=\"oa_demo\">\
                         <seller person=\"person0\"/>\
                         <bidder><personref person=\"person1\"/><increase>1.50</increase></bidder>\
                         <bidder><personref person=\"person2\"/><increase>3.00</increase></bidder>\
                       </open_auction>";
    let statements = [
        format!("insert {new_auction} into /site/open_auctions"),
        "insert <bidder><personref person=\"person3\"/><increase>4.50</increase></bidder> \
         into /site/open_auctions/open_auction[@id = \"oa_demo\"]"
            .to_owned(),
        "replace /site/open_auctions/open_auction[@id = \"open_auction0\"]/seller \
         with <seller person=\"person0\"/>"
            .to_owned(),
        "delete /site/open_auctions/open_auction[@id = \"oa_demo\"]".to_owned(),
    ];
    for stmt in &statements {
        let commit = db.apply(stmt.as_str())?;
        circuit.sync(&mut db);
        assert_matches_oracle(&circuit, &db, by_seller, bids_per_seller);
        let p0 = Row::new(vec![Datum::Str("person0".into())]);
        let stats = |store: &DerivedStore| {
            store
                .iter()
                .find(|(r, _)| r.project(&[0]) == p0)
                .and_then(|(r, _)| r.datum(1).as_int())
                .unwrap_or(0)
        };
        println!(
            "commit #{}: person0 runs {} auction(s) holding {} bid(s)   [{}]",
            commit.seq,
            stats(circuit.store(by_seller)),
            stats(circuit.store(bids_per_seller)),
            &stmt[..stmt.len().min(48)],
        );
    }

    println!(
        "\nevery commit matched the XPath recomputation ({} sellers tracked, seq {})",
        circuit.store(by_seller).len(),
        db.last_seq()
    );
    circuit.detach(&mut db);
    Ok(())
}
