//! Umbrella crate re-exporting the full xivm public API.
//!
//! See the individual crates for details:
//! [`xivm_xml`], [`xivm_algebra`], [`xivm_pattern`], [`xivm_update`],
//! [`xivm_core`], [`xivm_pulopt`], [`xivm_dtd`], [`xivm_xmark`],
//! [`xivm_ivma`].

pub use xivm_algebra as algebra;
pub use xivm_core as core;
pub use xivm_dtd as dtd;
pub use xivm_ivma as ivma;
pub use xivm_pattern as pattern;
pub use xivm_pulopt as pulopt;
pub use xivm_update as update;
pub use xivm_xmark as xmark;
pub use xivm_xml as xml;
