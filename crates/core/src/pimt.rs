//! PIMT — Propagate Insert by Modifying Tuples (Algorithm 4).
//!
//! An insertion below (or at) a node whose `val` / `cont` the view
//! stores changes that stored text without adding or removing tuples.
//! For every view tuple and every `cvn` (content-or-value) column, the
//! tuple is affected iff the stored node's ID equals or is an ancestor
//! of an insertion target — a pure ID comparison, enabled by storing
//! IDs alongside every `val` / `cont` (the algorithm's precondition).

use crate::view_store::{TupleKey, ViewStore};
use std::sync::Arc;
use xivm_pattern::TreePattern;
use xivm_xml::{DeweyForest, DeweyId, Document};

/// Patches the `val` / `cont` fields of affected tuples by re-reading
/// the (already updated) document. Returns the keys of the modified
/// tuples (for the commit report's Δ), walking the store in place —
/// no tuple is cloned and no key snapshot is taken.
pub fn propagate_insert_modifications(
    store: &mut ViewStore,
    doc: &Document,
    pattern: &TreePattern,
    targets: &[DeweyId],
) -> Vec<TupleKey> {
    let cvn = pattern.cvn();
    if cvn.is_empty() || targets.is_empty() {
        // If cvn is empty, insertions cannot modify view tuples
        // (Section 3.6).
        return Vec::new();
    }
    let stored = pattern.stored_nodes();
    let cvn_cols: Vec<(usize, bool, bool)> = cvn
        .iter()
        .filter_map(|&n| {
            stored.iter().position(|&s| s == n).map(|col| {
                let ann = pattern.node(n).ann;
                (col, ann.val, ann.cont)
            })
        })
        .collect();
    // Insertion targets may nest (`insert into //a` hits an `a` inside
    // another `a`): keep every root, or tuples strictly between an
    // outer and an inner target would never be refreshed.
    let forest = DeweyForest::with_nested(targets.to_vec());
    let mut modified = Vec::new();
    for (key, tuple) in store.tuples_mut() {
        let mut touched = false;
        for &(col, want_val, want_cont) in &cvn_cols {
            let id = &key[col];
            if !forest.has_descendant_or_self_root(id) {
                continue;
            }
            let Some(node) = doc.find_node(id) else { continue };
            let field = tuple.field_mut(col);
            if want_val {
                field.val = Some(Arc::from(doc.value(node).as_str()));
            }
            if want_cont {
                field.cont = Some(Arc::from(doc.content(node).as_str()));
            }
            touched = true;
        }
        if touched {
            modified.push(key.clone());
        }
    }
    modified
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::compile::view_tuples;
    use xivm_pattern::parse_pattern;
    use xivm_update::{apply_pul, compute_pul, UpdateStatement};
    use xivm_xml::parse_document;

    /// Example 3.14's shape: an insertion that adds no view matches but
    /// lands inside a cont-stored node.
    #[test]
    fn insertion_inside_stored_content() {
        let mut d = parse_document("<a><b><c><d/></c></b></a>").unwrap();
        let p = parse_pattern("/a{id}/b{id}//c{id,cont}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        assert_eq!(store.len(), 1);
        let before = store.sorted_tuples()[0].0.field(2).cont.clone().unwrap();
        assert_eq!(before.as_ref(), "<c><d/></c>");

        let stmt = UpdateStatement::insert("//d", "<extra>some value</extra>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let n = propagate_insert_modifications(&mut store, &d, &p, &res.insert_targets);
        assert_eq!(n.len(), 1);
        let after = store.sorted_tuples()[0].0.field(2).cont.clone().unwrap();
        assert_eq!(after.as_ref(), "<c><d><extra>some value</extra></d></c>");
    }

    #[test]
    fn val_annotation_updated_on_text_growth() {
        let mut d = parse_document("<a><name>Jim</name></a>").unwrap();
        let p = parse_pattern("//name{id,val}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        let stmt = UpdateStatement::insert("//name", "<x>my</x>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        propagate_insert_modifications(&mut store, &d, &p, &res.insert_targets);
        let v = store.sorted_tuples()[0].0.field(0).val.clone().unwrap();
        assert_eq!(v.as_ref(), "Jimmy");
    }

    #[test]
    fn unrelated_insertions_touch_nothing() {
        let mut d = parse_document("<r><a>x</a><other/></r>").unwrap();
        let p = parse_pattern("//a{id,val}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        let stmt = UpdateStatement::insert("//other", "<y>zzz</y>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        assert!(propagate_insert_modifications(&mut store, &d, &p, &res.insert_targets).is_empty());
    }

    /// Targets of one statement can nest (`//a` hits an `a` inside an
    /// `a`): the stored node between the two targets must be refreshed
    /// too, not just the outermost one.
    #[test]
    fn nested_targets_refresh_intermediate_tuples() {
        let mut d = parse_document("<r><a><a><b/></a></a></r>").unwrap();
        let p = parse_pattern("//a{id,cont}[//b]").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        assert_eq!(store.len(), 2);
        let stmt = UpdateStatement::insert("//a", "<d>5</d>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        let n = propagate_insert_modifications(&mut store, &d, &p, &res.insert_targets);
        assert_eq!(n.len(), 2, "both the outer and the inner a must refresh");
        for (t, _) in store.sorted_tuples() {
            let cont = t.field(0).cont.clone().unwrap();
            assert!(cont.contains("<d>5</d>"), "stale cont {cont}");
        }
    }

    #[test]
    fn id_only_views_are_never_modified() {
        let mut d = parse_document("<a><b/></a>").unwrap();
        let p = parse_pattern("//a{id}//b{id}").unwrap();
        let mut store = ViewStore::from_counted(&p, view_tuples(&d, &p));
        let stmt = UpdateStatement::insert("//b", "<c/>").unwrap();
        let pul = compute_pul(&d, &stmt);
        let res = apply_pul(&mut d, &pul).unwrap();
        assert!(propagate_insert_modifications(&mut store, &d, &p, &res.insert_targets).is_empty());
    }
}
