//! CI lint gate: static analysis of the XMark view catalog.
//!
//! Runs the `xivm_analyze` checks the `Database` builder applies under
//! `.analyze(AnalyzeMode::Strict)`, but standalone — no document, no
//! materialization — over the paper's seven XMark views and the
//! Appendix A update catalog:
//!
//! * **deadness** — a view pattern unsatisfiable against the XMark
//!   DTD is a catalog defect (error); a statement whose target selects
//!   nothing in any conforming document is a no-op (warning);
//! * **relevance** — the static (view × statement) matrix whose
//!   `Irrelevant` entries the engine turns into maintenance skips;
//! * **independence** — the Figure 15 rules lifted to label shapes.
//!
//! Exits non-zero on any error-severity finding, so CI fails when a
//! dead view lands in the catalog:
//!
//! ```sh
//! cargo run --example analyze_lint
//! ```

use xivm::analyze::{AnalysisReport, Analyzer, Severity, Verdict};
use xivm::pattern::{parse_pattern, TreePattern};
use xivm::xmark::{all_updates, view_pattern, xmark_dtd, VIEW_NAMES};

fn main() {
    let dtd = xmark_dtd();
    let views: Vec<(String, TreePattern)> =
        VIEW_NAMES.iter().map(|n| (n.to_string(), view_pattern(n))).collect();
    let analyzer = Analyzer::new(Some(&dtd), views.iter().map(|(n, p)| (n.as_str(), p)));

    // The Appendix A workload, both variants of every entry.
    let mut statements = Vec::new();
    for u in all_updates() {
        statements.push((format!("{}+", u.name), u.insert_stmt()));
        statements.push((format!("{}-", u.name), u.delete_stmt()));
    }
    let report = analyzer.report(statements.iter().map(|(n, s)| (n.as_str(), s)));

    println!(
        "xivm_analyze lint: XMark catalog ({} views, {} statements)",
        VIEW_NAMES.len(),
        statements.len()
    );
    println!("schema informed: {}\n", report.schema_informed);
    print_matrix(&report);
    print_findings(&report);

    // Demonstrate the warning class on a statement that can never
    // select anything in a conforming auction document.
    let dead = xivm::update::statement::parse_statement("delete /site/nonexistent").unwrap();
    let demo = analyzer.report([("dead-target-demo", &dead)]);
    let warnings = demo.findings.iter().filter(|f| f.severity == Severity::Warning).count();
    println!("\ndead-statement demo: {warnings} warning(s) for `delete /site/nonexistent`");

    // Independence spot check: two inserts under disjoint subtrees.
    let a = xivm::update::statement::parse_statement(
        "insert <watch/> into /site/people/person/watches",
    )
    .unwrap();
    let b = xivm::update::statement::parse_statement(
        "insert <bidder/> into /site/open_auctions/open_auction",
    )
    .unwrap();
    println!(
        "independence: watches-insert || bidder-insert provably independent: {}",
        analyzer.batch_independent(&[a, b])
    );

    // The gate itself. A deliberately dead view shows what a failure
    // looks like without failing the real catalog's run.
    let zombie = parse_pattern("//no_such_element{id}").unwrap();
    let with_zombie = Analyzer::new(
        Some(&dtd),
        views.iter().map(|(n, p)| (n.as_str(), p)).chain(std::iter::once(("zombie", &zombie))),
    );
    let zombie_report =
        with_zombie.report(std::iter::empty::<(&str, &xivm::update::UpdateStatement)>());
    println!(
        "\ngate self-test: catalog + dead view yields {} error(s) (expected 1)",
        zombie_report.errors().count()
    );
    if zombie_report.errors().count() != 1 {
        eprintln!("lint self-test failed: the analyzer missed a dead view");
        std::process::exit(2);
    }

    if report.has_errors() {
        eprintln!("\nFAIL: the XMark catalog has error-severity findings");
        std::process::exit(1);
    }
    println!("\nPASS: no error-severity findings in the XMark catalog");
}

/// Prints the relevance matrix with one row per view, summarizing the
/// per-statement verdicts as counts (the full matrix is 7 × 54).
fn print_matrix(report: &AnalysisReport) {
    println!("relevance matrix (per view: irrelevant / relevant / unknown):");
    for (name, row) in report.matrix.views.iter().zip(&report.matrix.verdicts) {
        let count = |v: Verdict| row.iter().filter(|&&x| x == v).count();
        println!(
            "  {:4}  {:3} irrelevant  {:3} relevant  {:3} unknown",
            name,
            count(Verdict::Irrelevant),
            count(Verdict::Relevant),
            count(Verdict::Unknown),
        );
    }
    println!("  overall static skip rate: {:.1}%", report.matrix.skip_rate() * 100.0);
}

fn print_findings(report: &AnalysisReport) {
    if report.findings.is_empty() {
        println!("\nfindings: none");
    } else {
        println!("\nfindings:");
        for f in &report.findings {
            println!("  {f}");
        }
    }
}
