//! Unit tests for the XML substrate: parser ⇄ serializer round-trips,
//! the document-order laws of [`DeweyId`]'s `Ord`, and
//! [`CanonicalIndex`] consistency across insertions and deletions.

use xivm_xml::dewey::Step;
use xivm_xml::node::{Node, NodeId, NodeKind};
use xivm_xml::{parse_document, serialize_document, Arena, CanonicalIndex, DeweyId, LabelId};

// ---------------------------------------------------------------------
// Parser ⇄ serializer round-trip
// ---------------------------------------------------------------------

/// Fixtures already in the serializer's canonical form (self-closing
/// empty elements, attributes before content, double-quoted values),
/// so `serialize(parse(x)) == x` exactly.
const CANONICAL_FIXTURES: [&str; 8] = [
    "<r/>",
    "<r>text</r>",
    "<r><a/><b/><c/></r>",
    "<site><people><person id=\"person0\"><name>Ada</name></person></people></site>",
    "<r a=\"1\" b=\"2\"><c d=\"3\"/></r>",
    "<r>before<mid/>after</r>",
    "<r><a><b><c><d>deep</d></c></b></a></r>",
    "<r>1 &lt; 2 &amp; 3 &gt; 2</r>",
];

#[test]
fn parse_serialize_roundtrip_on_canonical_fixtures() {
    for fixture in CANONICAL_FIXTURES {
        let doc = parse_document(fixture).unwrap();
        doc.check_invariants().unwrap();
        assert_eq!(serialize_document(&doc), fixture, "round-trip of {fixture}");
    }
}

#[test]
fn serialize_reaches_fixpoint_after_one_parse() {
    // Non-canonical input (whitespace between tags, single-quoted
    // attributes) must stabilize after a single parse/serialize pass.
    let messy = "<r>\n  <a x='1'>hi</a>\n  <b/>\n</r>";
    let once = serialize_document(&parse_document(messy).unwrap());
    let twice = serialize_document(&parse_document(&once).unwrap());
    assert_eq!(once, twice);
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in ["", "<r>", "<r></s>", "</r>", "<r><a></r></a>", "<r", "text only", "<r/><r2/>"] {
        assert!(parse_document(bad).is_err(), "parser accepted malformed input: {bad:?}");
    }
}

// ---------------------------------------------------------------------
// DeweyId document-order `Ord` laws
// ---------------------------------------------------------------------

fn id(parts: &[(u32, u64)]) -> DeweyId {
    DeweyId::from_steps(parts.iter().map(|&(l, o)| Step::new(LabelId(l), o)).collect())
}

/// A small universe of IDs covering roots, siblings, deep chains and
/// label-only differences.
fn universe() -> Vec<DeweyId> {
    let mut ids = Vec::new();
    for l0 in 0..2u32 {
        for o0 in 1..3u64 {
            ids.push(id(&[(l0, o0)]));
            for l1 in 0..2u32 {
                for o1 in 1..3u64 {
                    ids.push(id(&[(l0, o0), (l1, o1)]));
                    ids.push(id(&[(l0, o0), (l1, o1), (0, 1)]));
                }
            }
        }
    }
    ids
}

#[test]
fn ord_is_total_antisymmetric_and_transitive() {
    let ids = universe();
    for a in &ids {
        assert!(a.cmp(a).is_eq(), "reflexivity: {a}");
        for b in &ids {
            // totality + antisymmetry
            let ab = a.cmp(b);
            let ba = b.cmp(a);
            assert_eq!(ab, ba.reverse(), "antisymmetry: {a} vs {b}");
            for c in &ids {
                // transitivity
                if ab.is_le() && b.cmp(c).is_le() {
                    assert!(a.cmp(c).is_le(), "transitivity: {a} <= {b} <= {c}");
                }
            }
        }
    }
}

#[test]
fn ord_matches_doc_cmp_and_ancestors_precede_descendants() {
    let ids = universe();
    for a in &ids {
        for b in &ids {
            assert_eq!(a.cmp(b), a.doc_cmp(b), "Ord must be document order: {a} vs {b}");
            if a.is_ancestor_of(b) {
                assert!(a.doc_cmp(b).is_lt(), "ancestor {a} must precede descendant {b}");
                assert!(!b.is_ancestor_of(a), "ancestry must be asymmetric: {a} vs {b}");
            }
        }
    }
}

#[test]
fn sorting_yields_preorder_of_the_generating_tree() {
    // Sorting shuffled IDs of a known tree must produce its preorder.
    let preorder = [
        id(&[(0, 1)]),
        id(&[(0, 1), (1, 1)]),
        id(&[(0, 1), (1, 1), (2, 1)]),
        id(&[(0, 1), (1, 1), (2, 2)]),
        id(&[(0, 1), (1, 2)]),
        id(&[(0, 1), (2, 3)]),
    ];
    let mut shuffled = preorder.to_vec();
    shuffled.reverse();
    shuffled.swap(1, 4);
    shuffled.sort();
    assert_eq!(shuffled, preorder.to_vec());
}

// ---------------------------------------------------------------------
// CanonicalIndex consistency under insert / delete
// ---------------------------------------------------------------------

/// Builds a throwaway arena directly (all `Node` fields are public) so
/// the index can be exercised standalone: a root with `n` children,
/// alternating labels A and B.
fn arena_with_children(n: usize) -> Arena {
    let mut nodes = vec![Node {
        kind: NodeKind::Element,
        label: LabelId(0),
        ord: 1,
        parent: None,
        children: Vec::new(),
        text: None,
        alive: true,
        max_child_ord: 0,
    }];
    for i in 0..n {
        nodes.push(Node {
            kind: NodeKind::Element,
            label: LabelId(1 + (i as u32 % 2)),
            ord: (i as u64 + 1) * 100,
            parent: Some(NodeId(0)),
            children: Vec::new(),
            text: None,
            alive: true,
            max_child_ord: 0,
        });
        let child = NodeId(nodes.len() as u32 - 1);
        nodes[0].children.push(child);
    }
    nodes.into_iter().collect()
}

#[test]
fn canonical_index_stays_sorted_under_out_of_order_inserts() {
    let nodes = arena_with_children(8);
    let mut index = CanonicalIndex::new();
    index.insert(&nodes, LabelId(0), NodeId(0));
    // Insert label-A children back to front: exercises the non-append
    // binary-search path.
    for i in (0..8).rev() {
        let node = NodeId(1 + i as u32);
        index.insert(&nodes, nodes[node.index()].label, node);
    }
    index.check_sorted(&nodes).unwrap();
    assert_eq!(index.nodes(LabelId(1)).len(), 4);
    assert_eq!(index.nodes(LabelId(2)).len(), 4);
    for i in 0..8 {
        assert!(index.contains(nodes[i + 1].label, NodeId(1 + i as u32)));
    }
}

#[test]
fn canonical_index_remove_deletes_exactly_the_target() {
    let nodes = arena_with_children(6);
    let mut index = CanonicalIndex::new();
    for i in 0..6 {
        let node = NodeId(1 + i as u32);
        index.insert(&nodes, nodes[node.index()].label, node);
    }
    index.remove(LabelId(1), NodeId(3));
    assert!(!index.contains(LabelId(1), NodeId(3)));
    assert_eq!(index.nodes(LabelId(1)).len(), 2);
    assert_eq!(index.nodes(LabelId(2)).len(), 3);
    index.check_sorted(&nodes).unwrap();
    // Removing an id that is absent must be a no-op, not a panic.
    index.remove(LabelId(1), NodeId(3));
    assert_eq!(index.nodes(LabelId(1)).len(), 2);
}

#[test]
fn document_canonical_relations_track_inserts_and_deletes() {
    let mut doc = parse_document("<r><a/><b/><a/></r>").unwrap();
    assert_eq!(doc.canonical_nodes_named("a").len(), 2);

    // Insert: a fresh <a> under <b> must appear, in document order.
    let b = doc.canonical_nodes_named("b")[0];
    let new_a = doc.append_element(b, "a").unwrap();
    doc.check_invariants().unwrap();
    let after_insert = doc.canonical_nodes_named("a").to_vec();
    assert_eq!(after_insert.len(), 3);
    assert!(after_insert.contains(&new_a));
    let deweys: Vec<DeweyId> = after_insert.iter().map(|&n| doc.dewey(n)).collect();
    let mut sorted = deweys.clone();
    sorted.sort();
    assert_eq!(deweys, sorted, "canonical relation must stay in document order");

    // Delete: removing <b> drops its subtree (including the new <a>)
    // from every canonical relation.
    doc.remove_subtree(b).unwrap();
    doc.check_invariants().unwrap();
    assert_eq!(doc.canonical_nodes_named("b").len(), 0);
    let after_delete = doc.canonical_nodes_named("a").to_vec();
    assert_eq!(after_delete.len(), 2);
    assert!(!after_delete.contains(&new_a));
    assert_eq!(serialize_document(&doc), "<r><a/><a/></r>");
}
