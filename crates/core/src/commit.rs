//! Commit reports: what one committed update did to every view, with
//! the per-view Δ as a first-class value.
//!
//! Propagation computes per-view deltas (the Δ⁺/Δ⁻ tables of §3.4,
//! Algorithms 1–6) instead of recomputing views — and the façade hands
//! those deltas to the caller instead of dropping them at the commit
//! boundary. Every successful [`Database::apply`] /
//! [`Transaction::commit`] returns a [`Commit`]: a monotonically
//! increasing sequence number, the optimizer counters, and one
//! [`UpdateReport`] (carrying a [`ViewDelta`]) per view.
//!
//! A [`ViewDelta`] is *complete*: replaying it onto a snapshot of the
//! pre-commit [`ViewStore`] reproduces the post-commit store exactly
//! (keys, derivation counts and stored `val` / `cont` fields) — the
//! property suite checks this for random documents, view sets and
//! transactions at every worker count. Consumers therefore never need
//! to re-read and diff whole stores; they read O(|Δ|) per commit.
//!
//! [`Database::apply`]: crate::database::Database::apply
//! [`Transaction::commit`]: crate::database::Transaction::commit

use crate::database::ViewHandle;
use crate::engine::UpdateReport;
use crate::view_store::{TupleKey, ViewStore};
use xivm_algebra::Tuple;
use xivm_pulopt::ReductionTrace;

/// The net effect of one commit on one materialized view.
///
/// The three parts mirror how propagation patches the store: tuples
/// (or additional derivations of existing tuples) inserted, derivation
/// counts removed (dropping the tuple when its count reaches zero),
/// and surviving tuples whose stored `val` / `cont` text changed
/// (PIMT / PDMT). [`Self::replay`] applies them in that order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewDelta {
    /// Tuples added with their derivation counts (Δ⁺ side: PINT).
    pub inserted: Vec<(Tuple, u64)>,
    /// Derivation counts removed per tuple key (Δ⁻ side: PDDT). A
    /// tuple whose count reaches zero leaves the view.
    pub removed: Vec<(TupleKey, u64)>,
    /// Surviving tuples whose stored text changed (PIMT / PDMT), with
    /// their post-commit contents.
    pub modified: Vec<(TupleKey, Tuple)>,
}

impl ViewDelta {
    /// True when the commit did not touch this view at all.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty() && self.modified.is_empty()
    }

    /// Number of delta entries (insertions + removals + modifications)
    /// — the O(|Δ|) a consumer processes instead of re-reading the
    /// store.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len() + self.modified.len()
    }

    /// Sorts every section into document order, making the delta a
    /// canonical value: propagation walks hash stores, whose iteration
    /// order differs between otherwise-identical databases, and the
    /// façade promises bit-identical commits for equivalent updates
    /// (sequential vs parallel, textual vs typed). Safe because replay
    /// is order-insensitive within a section: removals for one key
    /// commute (the count is a saturating sum) and same-key
    /// insertions carry identical fields (all read the same
    /// post-update document).
    pub(crate) fn canonicalize(&mut self) {
        self.inserted.sort_by(|a, b| crate::view_store::doc_order(&a.0, &b.0).then(a.1.cmp(&b.1)));
        self.removed.sort_by(|a, b| doc_key_cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));
        self.modified.sort_by(|a, b| doc_key_cmp(&a.0, &b.0));
    }

    /// Applies the delta to a store. Replaying onto a snapshot of the
    /// pre-commit store yields the post-commit store exactly; the
    /// order (removals, then insertions, then modifications) matches
    /// the order propagation patched the original.
    pub fn replay(&self, store: &mut ViewStore) {
        for (key, count) in &self.removed {
            store.remove_derivations(key, *count);
        }
        for (tuple, count) in &self.inserted {
            store.add(tuple.clone(), *count);
        }
        for (key, tuple) in &self.modified {
            if let Some(stored) = store.tuple_mut(key) {
                *stored = tuple.clone();
            }
        }
    }
}

/// Document-order comparison of two tuple keys (lexicographic over
/// their ID columns, shorter key first on a shared prefix).
fn doc_key_cmp(a: &TupleKey, b: &TupleKey) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.doc_cmp(y);
        if c.is_ne() {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// What one committed update (a single statement or a whole
/// transaction) did: sequence number, optimizer counters, and the
/// per-view reports with their deltas.
#[derive(Debug, Clone, Default)]
pub struct Commit {
    /// Monotonically increasing commit sequence number, 1-based per
    /// database. Subscriptions tag their events with it, so a consumer
    /// can check it saw every commit (gapless sequence).
    pub seq: u64,
    /// Statements in the committed batch (1 for `apply`).
    pub statements: usize,
    /// Atomic operations the statements expanded to before
    /// optimization.
    pub naive_ops: usize,
    /// Atomic operations actually propagated after reduction /
    /// aggregation (equal to `naive_ops` for `apply`, which skips the
    /// optimizer).
    pub optimized_ops: usize,
    /// Which reduction rules fired on the combined PUL.
    pub reduction: ReductionTrace,
    per_view: Vec<(String, UpdateReport)>,
}

impl Commit {
    pub(crate) fn new(
        seq: u64,
        statements: usize,
        naive_ops: usize,
        optimized_ops: usize,
        reduction: ReductionTrace,
        per_view: Vec<(String, UpdateReport)>,
    ) -> Self {
        Commit { seq, statements, naive_ops, optimized_ops, reduction, per_view }
    }

    /// Number of views this commit reported on — every view of the
    /// database, in declaration order (empty transactions included:
    /// they report default, delta-free entries for every view).
    pub fn len(&self) -> usize {
        self.per_view.len()
    }

    /// True when the commit reported on no view (a database with no
    /// views). For "did this commit change anything", use
    /// [`Self::touched`] — `commit.touched().is_empty()`.
    pub fn is_empty(&self) -> bool {
        self.per_view.is_empty()
    }

    /// Per-view reports in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &UpdateReport)> {
        self.per_view.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// The report of one view. Handles are only meaningful on the
    /// database that issued this commit: a handle from a database with
    /// more views panics (out of range); a same-shape foreign handle
    /// cannot be detected and simply indexes by declaration order.
    pub fn report(&self, view: ViewHandle) -> &UpdateReport {
        &self.per_view[view.index()].1
    }

    /// The delta of one view (same addressing rules as
    /// [`Self::report`]).
    pub fn delta(&self, view: ViewHandle) -> &ViewDelta {
        &self.report(view).delta
    }

    /// The report of a view looked up by name.
    pub fn report_by_name(&self, name: &str) -> Option<&UpdateReport> {
        self.per_view.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Names of the views whose delta is non-empty, in declaration
    /// order.
    pub fn touched(&self) -> Vec<&str> {
        self.per_view.iter().filter(|(_, r)| !r.delta.is_empty()).map(|(n, _)| n.as_str()).collect()
    }

    /// True when two commits describe the same observable outcome:
    /// equal sequencing, statement and optimizer counters, reduction
    /// trace, and per-view reports (names in order, tuple /
    /// derivation counters, bit-identical deltas). Timings are
    /// ignored — they legitimately differ between runs. This is the
    /// commit-level comparison of the differential soak harness:
    /// sequential, pooled and pipelined executions of the same
    /// statement stream must produce pairwise `same_outcome` commits.
    pub fn same_outcome(&self, other: &Commit) -> bool {
        self.seq == other.seq
            && self.statements == other.statements
            && self.naive_ops == other.naive_ops
            && self.optimized_ops == other.optimized_ops
            && self.reduction == other.reduction
            && self.per_view.len() == other.per_view.len()
            && self
                .per_view
                .iter()
                .zip(&other.per_view)
                .all(|((n1, r1), (n2, r2))| n1 == n2 && r1.same_outcome(r2))
    }

    pub(crate) fn per_view(&self) -> &[(String, UpdateReport)] {
        &self.per_view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_algebra::Field;
    use xivm_pattern::parse_pattern;
    use xivm_xml::dewey::Step;
    use xivm_xml::{DeweyId, LabelId};

    fn tup(ord: u64) -> Tuple {
        Tuple::new(vec![Field::id_only(DeweyId::from_steps(vec![Step::new(LabelId(0), ord)]))])
    }

    #[test]
    fn replay_applies_removals_insertions_and_modifications() {
        let pattern = parse_pattern("//a{id}").unwrap();
        let mut store = ViewStore::new(&pattern);
        store.add(tup(1), 2);
        store.add(tup(2), 1);

        let mut patched = tup(2);
        patched.field_mut(0).val = Some("new".into());
        let delta = ViewDelta {
            inserted: vec![(tup(3), 1), (tup(1), 1)],
            removed: vec![(tup(1).id_key(), 2)],
            modified: vec![(tup(2).id_key(), patched.clone())],
        };
        assert_eq!(delta.len(), 4);
        assert!(!delta.is_empty());
        delta.replay(&mut store);

        assert_eq!(store.count_of(&tup(1).id_key()), Some(1), "2 removed, then 1 re-added");
        assert_eq!(store.count_of(&tup(3).id_key()), Some(1));
        assert_eq!(store.tuple(&tup(2).id_key()), Some(&patched));
    }

    #[test]
    fn empty_delta_replays_to_identity() {
        let pattern = parse_pattern("//a{id}").unwrap();
        let mut store = ViewStore::new(&pattern);
        store.add(tup(1), 1);
        let snapshot = store.clone();
        ViewDelta::default().replay(&mut store);
        assert!(store.identical_to(&snapshot));
    }
}
