//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Implements the subset the workspace uses: [`Rng::random_range`],
//! [`Rng::random_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! XMark generator needs (the seed is part of the workload spec).

use std::ops::Range;

/// Core trait: a source of random 64-bit words plus derived helpers.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a half-open integer range. Panics if the
    /// range is empty, matching the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: Into<Range<T>>,
    {
        let Range { start, end } = range.into();
        T::sample(self, start, end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::random_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    fn sample<G: Rng + ?Sized>(rng: &mut G, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn sample<G: Rng + ?Sized>(rng: &mut G, start: Self, end: Self) -> Self {
                assert!(start < end, "random_range on empty range");
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of one 64-bit draw is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as the xoshiro authors
            // recommend, so nearby seeds give unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
