//! Value-predicate flips under updates.
//!
//! The view dialect's `[val = c]` predicates compare the *string
//! value* of a node — the concatenation of its text descendants. An
//! update that inserts or deletes text strictly inside such a node
//! changes its value and can therefore flip the predicate, silently
//! invalidating existing view bindings (true → false) or enabling new
//! all-old bindings (false → true), with no structural change at all.
//! The paper's Δ-table machinery does not cover this case (its
//! workloads never flip predicates); handling it is required for the
//! engine to be *exact* on the full dialect.
//!
//! The treatment stays bulk-algebraic:
//!
//! * before the PUL is applied, predicate truth is captured for every
//!   predicate-labeled node on the ancestor chains of the update
//!   targets ([`capture`]);
//! * after application, the surviving captured nodes are re-checked;
//!   the differences form the flip sets F↑ / F↓ ([`diff`]);
//! * lost bindings (old-valid, no deleted node, ≥1 F↓ node) and gained
//!   bindings (now-valid, no inserted node, ≥1 F↑ node) are computed
//!   with the same term evaluator used by PINT/PDDT, partitioning by
//!   *which* predicate positions bind flipped nodes so the term bags
//!   stay disjoint and derivation counts exact.

use crate::etins::eval_terms;
use crate::term::Term;
use std::collections::{HashMap, HashSet};
use xivm_algebra::Relation;
use xivm_pattern::compile::{canonical_node_ids, relation_from_nodes, relation_from_nodes_raw};
use xivm_pattern::{NodeTest, PatternNodeId, TreePattern};
use xivm_update::Pul;
use xivm_xml::{Document, NodeId, NodeKind};

/// Pre-update predicate truth for `(pattern node, document node)`
/// pairs on the update targets' ancestor chains.
pub type PredCapture = Vec<(PatternNodeId, NodeId, bool)>;

/// The flip sets of one update.
#[derive(Debug, Default)]
pub struct Flips {
    /// false → true (per predicate-carrying pattern node).
    pub up: HashMap<PatternNodeId, Vec<NodeId>>,
    /// true → false.
    pub down: HashMap<PatternNodeId, Vec<NodeId>>,
}

impl Flips {
    pub fn any(&self) -> bool {
        self.up.values().any(|v| !v.is_empty()) || self.down.values().any(|v| !v.is_empty())
    }

    /// F↑ node set for leaf-building exclusion.
    pub fn up_set(&self, n: PatternNodeId) -> HashSet<NodeId> {
        self.up.get(&n).map(|v| v.iter().copied().collect()).unwrap_or_default()
    }
}

/// Captures predicate truth on the ancestor-or-self chains of every
/// update target (for deletions: of the target's parent — the target
/// itself disappears). Runs against the still-intact document.
pub fn capture(doc: &Document, pattern: &TreePattern, pul: &Pul) -> PredCapture {
    let preds: Vec<(PatternNodeId, Option<&str>, &str)> = pattern
        .node_ids()
        .filter_map(|p| {
            let pn = pattern.node(p);
            pn.val_pred.as_ref().map(|v| {
                let label = match &pn.test {
                    NodeTest::Name(n) => Some(n.as_str()),
                    NodeTest::Wildcard => None,
                };
                (p, label, v.as_str())
            })
        })
        .collect();
    if preds.is_empty() {
        return Vec::new();
    }
    let mut seen: HashSet<(PatternNodeId, NodeId)> = HashSet::new();
    let mut out = Vec::new();
    for op in &pul.ops {
        let Some(target) = doc.find_node(op.target()) else {
            continue;
        };
        let start = if op.is_insert() { Some(target) } else { doc.parent_of(target) };
        let mut cur = start;
        while let Some(n) = cur {
            for &(p, label, pred) in &preds {
                let matches = match label {
                    Some(l) => doc.label_name(doc.node(n).label) == l,
                    None => doc.node(n).kind == NodeKind::Element,
                };
                if matches && seen.insert((p, n)) {
                    out.push((p, n, doc.value(n) == pred));
                }
            }
            cur = doc.parent_of(n);
        }
    }
    out
}

/// Re-checks the captured nodes against the updated document and
/// returns the flip sets (deleted nodes are skipped — structural
/// removal is PDDT's business).
pub fn diff(doc: &Document, pattern: &TreePattern, captured: &PredCapture) -> Flips {
    let mut flips = Flips::default();
    for &(p, n, was) in captured {
        if !doc.is_alive(n) {
            continue;
        }
        let pred = pattern.node(p).val_pred.as_deref().expect("captured nodes carry predicates");
        let now = doc.value(n) == pred;
        if was && !now {
            flips.down.entry(p).or_default().push(n);
        } else if !was && now {
            flips.up.entry(p).or_default().push(n);
        }
    }
    flips
}

/// "Stayed-true" leaf: surviving old nodes satisfying the predicate
/// both before and after the update (current-satisfying minus F↑).
fn stayed_true_leaf(
    doc: &Document,
    pattern: &TreePattern,
    n: PatternNodeId,
    inserted: &HashSet<NodeId>,
    flips: &Flips,
) -> Relation {
    let up = flips.up_set(n);
    let ids: Vec<NodeId> = canonical_node_ids(doc, pattern, n)
        .into_iter()
        .filter(|id| !inserted.contains(id) && !up.contains(id))
        .collect();
    relation_from_nodes(doc, pattern, n, &ids)
}

/// Old-truth leaf for the deletion phase: nodes whose predicate held
/// *before* the update — (current-satisfying \ F↑) ∪ F↓ — so PDDT
/// removes exactly the bindings that were in the old view.
pub fn old_truth_leaf(
    doc: &Document,
    pattern: &TreePattern,
    n: PatternNodeId,
    inserted: &HashSet<NodeId>,
    flips: &Flips,
) -> Relation {
    if pattern.node(n).val_pred.is_none() {
        let ids: Vec<NodeId> = canonical_node_ids(doc, pattern, n)
            .into_iter()
            .filter(|id| !inserted.contains(id))
            .collect();
        return relation_from_nodes(doc, pattern, n, &ids);
    }
    let mut rel = stayed_true_leaf(doc, pattern, n, inserted, flips);
    if let Some(down) = flips.down.get(&n) {
        let extra = relation_from_nodes_raw(doc, pattern, n, down);
        rel.rows.extend(extra.rows);
        rel.sort_by_col(0);
    }
    rel
}

/// Bindings *lost purely to predicate flips*: old-valid, entirely over
/// surviving old nodes, using ≥1 F↓ node. Columns in pattern
/// pre-order.
pub fn removed_by_flips(
    doc: &Document,
    pattern: &TreePattern,
    flips: &Flips,
    inserted: &HashSet<NodeId>,
) -> Relation {
    bindings_by_flips(doc, pattern, flips, inserted, false)
}

/// Bindings *gained purely by predicate flips*: now-valid, entirely
/// over surviving old nodes, using ≥1 F↑ node.
pub fn added_by_flips(
    doc: &Document,
    pattern: &TreePattern,
    flips: &Flips,
    inserted: &HashSet<NodeId>,
) -> Relation {
    bindings_by_flips(doc, pattern, flips, inserted, true)
}

fn bindings_by_flips(
    doc: &Document,
    pattern: &TreePattern,
    flips: &Flips,
    inserted: &HashSet<NodeId>,
    gained: bool,
) -> Relation {
    let table = if gained { &flips.up } else { &flips.down };
    let positions: Vec<PatternNodeId> =
        table.iter().filter(|(_, v)| !v.is_empty()).map(|(&p, _)| p).collect();
    if positions.is_empty() {
        return Relation::default();
    }
    // All non-empty subsets of flipped positions; bindings are
    // partitioned by exactly which positions bind flipped nodes.
    let mut terms = Vec::new();
    for mask in 1u32..(1 << positions.len()) {
        let subset =
            positions.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &p)| p);
        terms.push(Term::from_iter(subset));
    }
    let order = pattern.preorder();
    let mut leaf_cache: HashMap<PatternNodeId, Relation> = HashMap::new();
    eval_terms(
        pattern,
        &order,
        &terms,
        &[],
        &mut |n| {
            leaf_cache
                .entry(n)
                .or_insert_with(|| stayed_true_leaf(doc, pattern, n, inserted, flips))
                .clone()
        },
        &mut |p| {
            let ids = &table[&p];
            if gained {
                // F↑ nodes satisfy the predicate now: the standard
                // builder keeps them and materializes val/cont.
                relation_from_nodes(doc, pattern, p, ids)
            } else {
                // F↓ nodes fail the predicate now: bypass the filter.
                relation_from_nodes_raw(doc, pattern, p, ids)
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_update::{apply_pul, compute_pul, UpdateStatement};
    use xivm_xml::parse_document;

    #[test]
    fn capture_and_diff_detect_a_flip() {
        let mut doc = parse_document("<r><a><d>5</d></a></r>").unwrap();
        let p = parse_pattern("//a{id}[//d[val=\"5\"]]//b{id}").unwrap();
        let stmt = UpdateStatement::insert("//d", "<d>5</d>").unwrap();
        let pul = compute_pul(&doc, &stmt);
        let cap = capture(&doc, &p, &pul);
        assert_eq!(cap.len(), 1, "the outer d is on the target chain");
        assert!(cap[0].2, "outer d satisfied [val=5] before");
        apply_pul(&mut doc, &pul).unwrap();
        let flips = diff(&doc, &p, &cap);
        assert!(flips.any());
        let d_node = p.preorder()[1];
        assert_eq!(flips.down.get(&d_node).map(Vec::len), Some(1), "value became 55");
    }

    #[test]
    fn no_predicates_no_capture() {
        let doc = parse_document("<r><a><b/></a></r>").unwrap();
        let p = parse_pattern("//a{id}//b{id}").unwrap();
        let stmt = UpdateStatement::insert("//b", "<c/>").unwrap();
        let pul = compute_pul(&doc, &stmt);
        assert!(capture(&doc, &p, &pul).is_empty());
    }

    #[test]
    fn deletion_chains_start_at_the_parent() {
        let doc = parse_document("<r><d>5<x>junk</x></d></r>").unwrap();
        let p = parse_pattern("//d{id}[val=\"5\"]").unwrap();
        let stmt = UpdateStatement::delete("//x").unwrap();
        let pul = compute_pul(&doc, &stmt);
        let cap = capture(&doc, &p, &pul);
        assert_eq!(cap.len(), 1);
        assert!(!cap[0].2, "value is 5junk before the deletion");
    }
}
