//! Reduction rules O1, O3 and I5 (Figure 14).
//!
//! * **O1** — `op(n,·) ; del(n)` with `op ∈ {ins↘, del}`: only the
//!   second deletion needs to run;
//! * **O3** — `op(n,·) ; del(n′)` with `n` a descendant of `n′`: the
//!   later deletion of the ancestor swallows the earlier operation;
//! * **I5** — `ins↘(n, L1) ; ins↘(n, L2)`: one combined
//!   `ins↘(n, [L1, L2])`.

use xivm_update::{AtomicOp, Pul};

/// Which rules fired, for reporting (the Section 6.8 experiments count
/// eliminated operations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionTrace {
    pub o1_fired: usize,
    pub o3_fired: usize,
    pub i5_fired: usize,
    pub ops_before: usize,
    pub ops_after: usize,
}

/// Applies O1, O3 and I5 to a single PUL, preserving the relative
/// order of the surviving operations.
pub fn reduce(pul: &Pul) -> (Pul, ReductionTrace) {
    let mut trace = ReductionTrace { ops_before: pul.len(), ..Default::default() };
    // Pass 1 — O1 / O3: an operation is dropped if a *later* deletion
    // targets the same node (O1) or an ancestor of its target (O3).
    let mut keep: Vec<AtomicOp> = Vec::with_capacity(pul.ops.len());
    for (i, op) in pul.ops.iter().enumerate() {
        let mut dropped = false;
        for later in &pul.ops[i + 1..] {
            let AtomicOp::Delete { node: del } = later else {
                continue;
            };
            if del == op.target() {
                // An insertion or deletion followed by a deletion of
                // the same target: just perform the second deletion.
                // (For del;del the first is the one dropped, keeping
                // the later occurrence, which preserves sequencing.)
                trace.o1_fired += 1;
                dropped = true;
                break;
            }
            if del.is_ancestor_of(op.target()) {
                trace.o3_fired += 1;
                dropped = true;
                break;
            }
        }
        if !dropped {
            keep.push(op.clone());
        }
    }
    // Pass 2 — I5: merge insertions with the same target into the
    // first occurrence, concatenating the forests in order.
    let mut merged: Vec<AtomicOp> = Vec::with_capacity(keep.len());
    for op in keep {
        match op {
            AtomicOp::InsertInto { target, forest } => {
                if let Some(AtomicOp::InsertInto { forest: existing, .. }) = merged
                    .iter_mut()
                    .find(|m| matches!(m, AtomicOp::InsertInto { target: t, .. } if *t == target))
                {
                    existing.push_str(&forest);
                    trace.i5_fired += 1;
                } else {
                    merged.push(AtomicOp::InsertInto { target, forest });
                }
            }
            del => merged.push(del),
        }
    }
    trace.ops_after = merged.len();
    (Pul::new(merged), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_update::{apply_pul, compute_pul, UpdateStatement};
    use xivm_xml::{parse_document, serialize_document, Document};

    fn ins(doc: &Document, path: &str, xml: &str) -> Vec<AtomicOp> {
        compute_pul(doc, &UpdateStatement::insert(path, xml).unwrap()).ops
    }

    fn del(doc: &Document, path: &str) -> Vec<AtomicOp> {
        compute_pul(doc, &UpdateStatement::delete(path).unwrap()).ops
    }

    /// Example 5.1's structure: O1, O3 and I5 all fire.
    #[test]
    fn example_5_1_reduction() {
        // document with distinct targets x (killed by its own delete),
        // y-child (killed by delete of y), z (insertions merged)
        let d = parse_document("<r><x/><y><w/></y><z/></r>").unwrap();
        let mut ops = Vec::new();
        ops.extend(ins(&d, "//x", "<b><d/></b>")); // op1: killed by O1
        ops.extend(del(&d, "//x")); // op2
        ops.extend(ins(&d, "//y/w", "<b/>")); // op3: killed by O3
        ops.extend(del(&d, "//y")); // op4
        ops.extend(ins(&d, "//z", "<b/>")); // op5: merged by I5
        ops.extend(ins(&d, "//z", "<d><b/></d>")); // op6
        let (reduced, trace) = reduce(&Pul::new(ops));
        assert_eq!(trace.o1_fired, 1);
        assert_eq!(trace.o3_fired, 1);
        assert_eq!(trace.i5_fired, 1);
        assert_eq!(reduced.len(), 3, "del(x), del(y), ins(z, combined)");
        match &reduced.ops[2] {
            AtomicOp::InsertInto { forest, .. } => assert_eq!(forest, "<b/><d><b/></d>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Reduction must not change the final document.
    #[test]
    fn reduction_preserves_semantics() {
        let base = "<r><x><k/></x><y><w/></y><z/></r>";
        let d0 = parse_document(base).unwrap();
        let mut ops = Vec::new();
        ops.extend(ins(&d0, "//k", "<q/>"));
        ops.extend(ins(&d0, "//x", "<p/>"));
        ops.extend(del(&d0, "//x"));
        ops.extend(ins(&d0, "//z", "<m/>"));
        ops.extend(ins(&d0, "//z", "<n/>"));
        ops.extend(del(&d0, "//y/w"));
        let pul = Pul::new(ops);

        let mut plain = parse_document(base).unwrap();
        apply_pul(&mut plain, &pul).unwrap();

        let (reduced, _) = reduce(&pul);
        let mut optimized = parse_document(base).unwrap();
        apply_pul(&mut optimized, &reduced).unwrap();

        assert_eq!(serialize_document(&plain), serialize_document(&optimized));
        assert!(reduced.len() < pul.len());
    }

    #[test]
    fn no_rules_fire_on_independent_ops() {
        let d = parse_document("<r><x/><y/></r>").unwrap();
        let mut ops = ins(&d, "//x", "<a/>");
        ops.extend(del(&d, "//y"));
        let (reduced, trace) = reduce(&Pul::new(ops));
        assert_eq!(reduced.len(), 2);
        assert_eq!(trace.o1_fired + trace.o3_fired + trace.i5_fired, 0);
    }

    #[test]
    fn duplicate_deletes_collapse() {
        let d = parse_document("<r><x/></r>").unwrap();
        let mut ops = del(&d, "//x");
        ops.extend(del(&d, "//x"));
        let (reduced, trace) = reduce(&Pul::new(ops));
        assert_eq!(reduced.len(), 1);
        assert_eq!(trace.o1_fired, 1);
    }

    #[test]
    fn insert_after_delete_is_kept() {
        // del(x) then ins(x): the insert targets a now-dead node; the
        // rules only drop operations *before* a deletion, so order is
        // preserved and apply-time no-op semantics decide.
        let d = parse_document("<r><x/></r>").unwrap();
        let mut ops = del(&d, "//x");
        ops.extend(ins(&d, "//x", "<a/>"));
        let (reduced, _) = reduce(&Pul::new(ops));
        assert_eq!(reduced.len(), 2);
    }
}
