//! The `Database` façade: one owned document, many named views,
//! batched transactions through the PUL optimizer, and deltas as
//! first-class outputs.
//!
//! The lower layers expose the paper's plumbing — callers thread a
//! `&mut Document` through every [`MaintenanceEngine`] call and hold
//! the view stores themselves. [`Database`] owns both sides: the
//! document and every materialized view live inside it, updates go in
//! as statement text or typed builders, and each view is addressed
//! through a typed [`ViewHandle`] or its name.
//!
//! Every mutation returns a [`Commit`]: a sequence number plus, per
//! view, the [`UpdateReport`] and the exact
//! [`ViewDelta`](crate::commit::ViewDelta) propagation computed —
//! consumers read O(|Δ|) per commit instead of re-diffing stores, and
//! [`Database::subscribe`] turns that into a changefeed.
//!
//! ```
//! use xivm_core::database::Database;
//! use xivm_update::builder::{element, insert};
//!
//! let mut db = Database::builder()
//!     .document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>")
//!     .view("acb", "//a{id}[//c{id}]//b{id}")
//!     .build()
//!     .unwrap();
//! let acb = db.view("acb").unwrap();
//! assert_eq!(db.store(acb).len(), 8);
//!
//! let commit = db.apply("delete /a/f/c").unwrap();
//! assert_eq!(commit.seq, 1);
//! assert_eq!(commit.delta(acb).removed.len(), 5);
//! assert_eq!(db.store(acb).len(), 3);
//!
//! // Typed statements skip the stringly round-trip entirely:
//! db.apply(insert(element("b")).into("/a/c")).unwrap();
//!
//! // Several statements batched through the Section 5 PUL optimizer:
//! // one optimized PUL, one shared propagation pass over all views.
//! let commit = db
//!     .transaction()
//!     .statement("insert <b/> into /a/c")
//!     .statement("delete /a/c")
//!     .commit()
//!     .unwrap();
//! assert!(commit.optimized_ops < commit.naive_ops);
//! assert_eq!(commit.seq, 3);
//! ```

use crate::commit::Commit;
use crate::costmodel::UpdateProfile;
use crate::engine::{MaintenanceEngine, UpdateReport};
use crate::error::Error;
use crate::multiview::MultiViewEngine;
use crate::service::{ServiceHandle, Ticket};
use crate::snapshot::DatabaseSnapshot;
use crate::strategy::SnowcapStrategy;
use crate::subscribe::{DeltaEvent, SlowConsumerPolicy, Subscription, SubscriptionRegistry};
use crate::view_store::{Cursor, ShardedStores, ViewStore};
use std::ops::{Deref, DerefMut};
use xivm_analyze::{AnalysisReport, AnalyzeMode, Analyzer};
use xivm_dtd::{parse_dtd, Dtd};
use xivm_pattern::{parse_pattern, TreePattern};
use xivm_pulopt::{aggregate, find_conflicts, integrate, reduce, ConflictPolicy, ReductionTrace};
use xivm_update::builder::UpdateBuilder;
use xivm_update::statement::parse_statement;
use xivm_update::{apply_pul, compute_pul, Pul, UpdateStatement};
use xivm_xml::{parse_document, serialize_document, Document};

// ---------------------------------------------------------------------
// Deferred inputs: the builder accepts text or ready-made values and
// parses at `build()` time, so chaining stays `?`-free.
// ---------------------------------------------------------------------

/// A document given to the builder: XML text or an already-parsed
/// [`Document`] (e.g. from the XMark generator). Converts via
/// `From<&str>`, `From<String>` and `From<Document>`.
pub enum DocumentSource {
    Xml(String),
    Ready(Box<Document>),
}

impl From<&str> for DocumentSource {
    fn from(xml: &str) -> Self {
        DocumentSource::Xml(xml.to_owned())
    }
}

impl From<String> for DocumentSource {
    fn from(xml: String) -> Self {
        DocumentSource::Xml(xml)
    }
}

impl From<Document> for DocumentSource {
    fn from(doc: Document) -> Self {
        DocumentSource::Ready(Box::new(doc))
    }
}

/// A DTD given to the builder: grammar text (the [`parse_dtd`] rule
/// dialect) or an already-parsed [`Dtd`]. Converts via `From<&str>`,
/// `From<String>` and `From<Dtd>`.
pub enum DtdSource {
    Text(String),
    Ready(Box<Dtd>),
}

impl From<&str> for DtdSource {
    fn from(text: &str) -> Self {
        DtdSource::Text(text.to_owned())
    }
}

impl From<String> for DtdSource {
    fn from(text: String) -> Self {
        DtdSource::Text(text)
    }
}

impl From<Dtd> for DtdSource {
    fn from(dtd: Dtd) -> Self {
        DtdSource::Ready(Box::new(dtd))
    }
}

/// A view pattern given to the builder: pattern text (the
/// [`parse_pattern()`] dialect) or a ready-made [`TreePattern`].
/// Converts via `From<&str>`, `From<String>` and `From<TreePattern>`.
pub enum PatternSource {
    Text(String),
    Ready(TreePattern),
}

impl From<&str> for PatternSource {
    fn from(text: &str) -> Self {
        PatternSource::Text(text.to_owned())
    }
}

impl From<String> for PatternSource {
    fn from(text: String) -> Self {
        PatternSource::Text(text)
    }
}

impl From<TreePattern> for PatternSource {
    fn from(pattern: TreePattern) -> Self {
        PatternSource::Ready(pattern)
    }
}

/// A statement given to [`Database::apply`](DbInner::apply) or
/// [`Transaction::statement`]: statement text (the [`parse_statement`]
/// forms), a ready-made [`UpdateStatement`], or a typed
/// [`UpdateBuilder`] from [`xivm_update::builder`]. Converts via
/// `From<&str>`, `From<String>`, `From<UpdateStatement>`,
/// `From<&UpdateStatement>` and `From<UpdateBuilder>`.
pub enum StatementSource {
    Text(String),
    Ready(UpdateStatement),
    Built(UpdateBuilder),
}

impl From<&str> for StatementSource {
    fn from(text: &str) -> Self {
        StatementSource::Text(text.to_owned())
    }
}

impl From<String> for StatementSource {
    fn from(text: String) -> Self {
        StatementSource::Text(text)
    }
}

impl From<UpdateStatement> for StatementSource {
    fn from(stmt: UpdateStatement) -> Self {
        StatementSource::Ready(stmt)
    }
}

impl From<&UpdateStatement> for StatementSource {
    fn from(stmt: &UpdateStatement) -> Self {
        StatementSource::Ready(stmt.clone())
    }
}

impl From<UpdateBuilder> for StatementSource {
    fn from(builder: UpdateBuilder) -> Self {
        StatementSource::Built(builder)
    }
}

fn resolve_statement(source: StatementSource) -> Result<UpdateStatement, Error> {
    let stmt = match source {
        StatementSource::Text(text) => parse_statement(&text)?,
        StatementSource::Ready(stmt) => stmt,
        StatementSource::Built(builder) => builder.build()?,
    };
    // An insertion's forest is raw XML carried until apply time, and
    // `apply-pul` is not atomic: a forest that fails to parse midway
    // would leave the document mutated with no view maintained.
    // Rejecting it here keeps the façade's no-drift guarantee on every
    // path (`apply`, sequential and independent transactions).
    if let UpdateStatement::Insert { xml, .. } | UpdateStatement::Replace { xml, .. } = &stmt {
        parse_document(&format!("<xivm-forest-check>{xml}</xivm-forest-check>"))?;
    }
    Ok(stmt)
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// How a view's auxiliary snowcaps are chosen at materialization time.
enum ViewMode {
    Strategy(SnowcapStrategy),
    CostBased(UpdateProfile),
}

struct ViewSpec {
    name: String,
    pattern: PatternSource,
    mode: ViewMode,
    deferred: bool,
}

/// When a view's maintenance runs relative to the commit that changes
/// the document — see [`DbInner::set_maintenance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// The view is maintained inside the committing transaction: its
    /// store reflects every commit the moment the commit seals. The
    /// default.
    #[default]
    Immediate,
    /// The view's maintenance is *deferred*: commits leave its store
    /// untouched (their events carry an empty delta for it, honestly —
    /// the store did not change) while the per-commit PULs accumulate
    /// through the Figure 16 aggregation rules. A later
    /// [`DbInner::refresh`] folds the whole batch in **one**
    /// propagation pass and seals it as its own commit, whose single
    /// [`DeltaEvent`] carries the coalesced delta plus
    /// [`DeltaEvent::folded`] naming exactly the commits it covers.
    /// Commit latency drops because the view leaves the seal window;
    /// reads of its store are stale until the next refresh.
    Deferred,
}

/// The accumulated state of one deferred view between refreshes: the
/// document version its last-maintained store corresponds to, plus
/// the aggregated PUL (Figure 16) that replays every commit since.
pub(crate) struct DeferredPending {
    /// The document as of the last commit this view was maintained
    /// against (copy-on-write clone — O(chunks), shares all nodes).
    base: Document,
    /// Aggregation of every deferred commit's PUL over `base`.
    pul: Pul,
    /// Sum of the folded commits' optimized op counts (becomes the
    /// refresh commit's `naive_ops`, so its reduction ratio is
    /// honest).
    naive_ops: usize,
    /// Sequence number of the first commit in the batch.
    pub(crate) first_seq: u64,
    /// Commits folded so far (drives the `refresh_every` policy).
    commits: u64,
}

/// Builder for [`Database`] — see [`Database::builder`].
///
/// `strategy(..)` and `cost_based(..)` set the materialization mode
/// for the views declared *after* them (like CLI flags); views
/// declared before any mode call use [`SnowcapStrategy::MinimalChain`].
pub struct DatabaseBuilder {
    document: Option<DocumentSource>,
    views: Vec<ViewSpec>,
    default_strategy: SnowcapStrategy,
    default_profile: Option<UpdateProfile>,
    workers: Option<usize>,
    pipeline: Option<usize>,
    sub_capacity: Option<usize>,
    dtd: Option<DtdSource>,
    analyze: AnalyzeMode,
    refresh_every: Option<u64>,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        DatabaseBuilder {
            document: None,
            views: Vec::new(),
            default_strategy: SnowcapStrategy::MinimalChain,
            default_profile: None,
            workers: None,
            pipeline: None,
            sub_capacity: None,
            dtd: None,
            analyze: AnalyzeMode::Off,
            refresh_every: None,
        }
    }
}

impl DatabaseBuilder {
    /// Sets the document (XML text or a parsed [`Document`]). Required.
    pub fn document(mut self, doc: impl Into<DocumentSource>) -> Self {
        self.document = Some(doc.into());
        self
    }

    /// Declares the DTD the documents conform to (grammar text or a
    /// parsed [`Dtd`]). Optional; it sharpens every static analysis
    /// [`Self::analyze`] enables — satisfiability of view patterns and
    /// statement targets, relevance verdicts, independence — but the
    /// analyzer degrades gracefully to label-alphabet reasoning
    /// without one. Parse errors surface at [`Self::build`].
    pub fn dtd(mut self, dtd: impl Into<DtdSource>) -> Self {
        self.dtd = Some(dtd.into());
        self
    }

    /// Turns on static analysis over the (DTD, view catalog) pair —
    /// see [`xivm_analyze`]. Under [`AnalyzeMode::Warn`] findings are
    /// recorded on [`DbInner::analysis_report`] and the engine uses
    /// the relevance matrix to *skip* maintenance of views a
    /// statement provably cannot touch, plus the lifted Figure 15
    /// rules to skip the runtime conflict scan of provably-independent
    /// transactions. [`AnalyzeMode::Strict`] additionally fails
    /// [`Self::build`] with [`Error::Analysis`] on error-severity
    /// findings (views that can never hold a tuple). The default is
    /// [`AnalyzeMode::Off`]: no analysis, no static fast paths.
    ///
    /// Every static verdict is conservative for DTD-conforming
    /// documents: skipped work is work whose result is provably
    /// empty, so commits, stores and subscription streams are
    /// bit-identical with analysis on and off.
    pub fn analyze(mut self, mode: AnalyzeMode) -> Self {
        self.analyze = mode;
        self
    }

    /// Declares a named view using the current default materialization
    /// mode. Pattern text errors surface at [`Self::build`].
    pub fn view(mut self, name: impl Into<String>, pattern: impl Into<PatternSource>) -> Self {
        let mode = match &self.default_profile {
            Some(p) => ViewMode::CostBased(p.clone()),
            None => ViewMode::Strategy(self.default_strategy),
        };
        self.views.push(ViewSpec {
            name: name.into(),
            pattern: pattern.into(),
            mode,
            deferred: false,
        });
        self
    }

    /// Declares a named view that starts in
    /// [`MaintenanceMode::Deferred`]: commits accumulate its PULs
    /// instead of maintaining it, and [`DbInner::refresh`] (or the
    /// [`Self::refresh_every`] policy) folds the batch in one pass.
    /// Equivalent to `.view(..)` followed by
    /// [`DbInner::set_maintenance`] before the first commit.
    pub fn view_deferred(
        mut self,
        name: impl Into<String>,
        pattern: impl Into<PatternSource>,
    ) -> Self {
        let mode = match &self.default_profile {
            Some(p) => ViewMode::CostBased(p.clone()),
            None => ViewMode::Strategy(self.default_strategy),
        };
        self.views.push(ViewSpec {
            name: name.into(),
            pattern: pattern.into(),
            mode,
            deferred: true,
        });
        self
    }

    /// Declares a named view with an explicit snowcap strategy,
    /// overriding the current default mode.
    pub fn view_with_strategy(
        mut self,
        name: impl Into<String>,
        pattern: impl Into<PatternSource>,
        strategy: SnowcapStrategy,
    ) -> Self {
        self.views.push(ViewSpec {
            name: name.into(),
            pattern: pattern.into(),
            mode: ViewMode::Strategy(strategy),
            deferred: false,
        });
        self
    }

    /// Auto-refresh policy for deferred views: after a view has
    /// accumulated `n` deferred commits, the next commit boundary (or
    /// the async service, between batches) refreshes it
    /// automatically. `0` disables the policy (the default): deferred
    /// views refresh only on explicit [`DbInner::refresh`] /
    /// [`DbInner::refresh_all`].
    pub fn refresh_every(mut self, n: u64) -> Self {
        self.refresh_every = (n > 0).then_some(n);
        self
    }

    /// Sets the snowcap strategy for subsequently declared views
    /// (and clears any cost-based profile).
    pub fn strategy(mut self, strategy: SnowcapStrategy) -> Self {
        self.default_strategy = strategy;
        self.default_profile = None;
        self
    }

    /// Makes subsequently declared views choose their snowcaps with
    /// the Section 3.5 cost model under the given update profile.
    pub fn cost_based(mut self, profile: UpdateProfile) -> Self {
        self.default_profile = Some(profile);
        self
    }

    /// Sets the worker pool size for per-view propagation (see
    /// [`crate::parallel`]). 1 means sequential; an explicit setting
    /// overrides the `XIVM_WORKERS` environment variable, which is the
    /// default when this is never called. Propagation results are
    /// bit-identical at every worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the pipeline depth for
    /// [`Database::apply_pipelined`](DbInner::apply_pipelined): the
    /// number of commits allowed in flight. 1 (the default) disables
    /// pipelining; any depth >= 2 runs windows of up to `depth`
    /// commits on copy-on-write document snapshots, overlapping each
    /// commit's propagation with up to `depth - 1` successors per
    /// Figure 15 shard. An explicit setting overrides the
    /// `XIVM_PIPELINE` environment variable; the value is clamped
    /// into `1..=`[`crate::runtime::MAX_PIPELINE_DEPTH`] (see
    /// [`crate::runtime::clamp_pipeline`]) and
    /// [`Database::pipeline_depth`](DbInner::pipeline_depth) reports
    /// the clamped, effective
    /// depth. Results — commits, stores, subscription streams — are
    /// bit-identical at every depth.
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = Some(depth);
        self
    }

    /// Sets the default queue capacity for [`Database::subscribe`]:
    /// every subscription opened without an explicit capacity
    /// ([`Database::subscribe_with`]) gets a queue bounded to `n`
    /// events, and a full queue triggers its
    /// [`SlowConsumerPolicy`] (the default, `Block`, backpressures
    /// the commit path). `0` means explicitly unbounded. An explicit
    /// setting overrides the `XIVM_SUB_CAPACITY` environment
    /// variable, which is the default when this is never called
    /// (`0` / unset / unparsable = unbounded).
    pub fn subscription_capacity(mut self, n: usize) -> Self {
        self.sub_capacity = Some(n);
        self
    }

    /// Parses everything, materializes every view and hands back the
    /// owning [`Database`].
    pub fn build(self) -> Result<Database, Error> {
        let doc = match self.document.ok_or(Error::NoDocument)? {
            DocumentSource::Xml(text) => parse_document(&text)?,
            DocumentSource::Ready(doc) => *doc,
        };
        let mut engines: Vec<(String, MaintenanceEngine)> = Vec::with_capacity(self.views.len());
        let mut modes: Vec<MaintenanceMode> = Vec::with_capacity(self.views.len());
        for spec in self.views {
            if engines.iter().any(|(n, _)| *n == spec.name) {
                return Err(Error::DuplicateView(spec.name));
            }
            modes.push(if spec.deferred {
                MaintenanceMode::Deferred
            } else {
                MaintenanceMode::Immediate
            });
            let pattern = match spec.pattern {
                PatternSource::Text(text) => parse_pattern(&text)?,
                PatternSource::Ready(p) => p,
            };
            let engine = match spec.mode {
                ViewMode::Strategy(s) => MaintenanceEngine::new(&doc, pattern, s),
                ViewMode::CostBased(profile) => {
                    MaintenanceEngine::new_cost_based(&doc, pattern, &profile)
                }
            };
            engines.push((spec.name, engine));
        }
        // The DTD is validated whenever supplied (catching grammar
        // typos early), the analyzer built only when analysis is on.
        let dtd = match self.dtd {
            Some(DtdSource::Text(text)) => Some(parse_dtd(&text)?),
            Some(DtdSource::Ready(dtd)) => Some(*dtd),
            None => None,
        };
        let statics = if self.analyze == AnalyzeMode::Off {
            None
        } else {
            let analyzer =
                Analyzer::new(dtd.as_ref(), engines.iter().map(|(n, e)| (n.as_str(), e.pattern())));
            let report = analyzer.report(std::iter::empty::<(&str, &UpdateStatement)>());
            if self.analyze == AnalyzeMode::Strict && report.has_errors() {
                return Err(Error::Analysis(report.errors().cloned().collect()));
            }
            Some(Statics { analyzer, report, mode: self.analyze, conflict_scans_skipped: 0 })
        };
        let mut views = MultiViewEngine::from_engines(engines);
        views.set_workers(crate::runtime::effective_workers(self.workers));
        let pending = modes.iter().map(|_| None).collect();
        Ok(Database {
            service: ServiceHandle::new(),
            inner: Box::new(DbInner {
                views,
                doc,
                commits: 0,
                subs: SubscriptionRegistry::default(),
                pipeline: crate::runtime::effective_pipeline(self.pipeline),
                sub_capacity: effective_sub_capacity(self.sub_capacity),
                statics,
                modes,
                pending,
                refresh_every: self.refresh_every,
            }),
        })
    }
}

/// `XIVM_SUB_CAPACITY`, if set and parsable.
fn env_sub_capacity() -> Option<usize> {
    std::env::var("XIVM_SUB_CAPACITY").ok()?.trim().parse().ok()
}

/// Default subscription queue bound: the builder's explicit setting
/// wins (0 = explicitly unbounded), else `XIVM_SUB_CAPACITY`, else
/// unbounded.
fn effective_sub_capacity(configured: Option<usize>) -> Option<usize> {
    configured.or_else(env_sub_capacity).filter(|&n| n > 0)
}

// ---------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------

/// A typed, copyable reference to one view of a [`Database`].
///
/// Handles are only meaningful on the database that issued them
/// (they index its declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewHandle(pub(crate) usize);

impl ViewHandle {
    /// Declaration-order position (shared with [`Commit`] and the
    /// subscription registry).
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// The synchronous core of a [`Database`]: the document, the view
/// engines, the commit counter and the subscription registry.
///
/// [`Database`] derefs here after *quiescing* its async commit
/// service, so every method below is reachable directly on a
/// `Database` and always observes a fully sealed state. The service
/// thread borrows this struct (behind a stable `Box` address) while
/// it drains queued [`Database::apply_async`] submissions; the
/// deref-time quiesce is what makes that loan and the synchronous
/// API mutually exclusive.
pub struct DbInner {
    pub(crate) doc: Document,
    pub(crate) views: MultiViewEngine,
    /// Commits so far; the next commit gets `commits + 1` as its
    /// sequence number.
    pub(crate) commits: u64,
    pub(crate) subs: SubscriptionRegistry,
    /// Pipeline depth for [`Self::apply_pipelined`] (1 = off).
    pub(crate) pipeline: usize,
    /// Default queue bound for [`Database::subscribe`] (`None` =
    /// unbounded), from `subscription_capacity` / `XIVM_SUB_CAPACITY`.
    pub(crate) sub_capacity: Option<usize>,
    /// The static analyzer and its build-time report, when the builder
    /// enabled analysis (`None` = [`AnalyzeMode::Off`]).
    pub(crate) statics: Option<Statics>,
    /// Per-view maintenance mode, declaration order.
    pub(crate) modes: Vec<MaintenanceMode>,
    /// Per-view accumulated deferred batch (`None` = nothing pending;
    /// always `None` for [`MaintenanceMode::Immediate`] views).
    pub(crate) pending: Vec<Option<DeferredPending>>,
    /// Auto-refresh threshold from [`DatabaseBuilder::refresh_every`]
    /// (`None` = manual refresh only).
    pub(crate) refresh_every: Option<u64>,
}

/// Everything [`DatabaseBuilder::analyze`] sets up: the analyzer over
/// the (DTD, catalog) pair, its build-time report, and the counters
/// the static fast paths maintain.
pub(crate) struct Statics {
    pub(crate) analyzer: Analyzer,
    pub(crate) report: AnalysisReport,
    pub(crate) mode: AnalyzeMode,
    /// Independent-mode batches whose runtime pairwise conflict scan
    /// was skipped because the statement shapes were provably
    /// pairwise independent (lifted Figure 15).
    pub(crate) conflict_scans_skipped: u64,
}

/// An XML document plus a set of named materialized views, maintained
/// incrementally under statement-level updates.
///
/// All synchronous methods live on [`DbInner`] and are reached
/// through `Deref`; the deref first waits for any in-flight
/// [`Self::apply_async`] work to seal (*quiescing*), so synchronous
/// and asynchronous mutation can never interleave mid-commit. Methods
/// defined directly on `Database` ([`Self::drain`],
/// [`Self::pending`], [`Self::subscription_view`]) deliberately skip
/// that wait: they only touch the subscription's own queue, which is
/// exactly what lets a consumer drain while the service is sealing.
pub struct Database {
    // Field order is load-bearing: dropping the service first joins
    // its thread while `inner` (which that thread borrows) is still
    // alive.
    service: ServiceHandle,
    inner: Box<DbInner>,
}

impl Deref for Database {
    type Target = DbInner;

    fn deref(&self) -> &DbInner {
        self.service.quiesce();
        &self.inner
    }
}

impl DerefMut for Database {
    fn deref_mut(&mut self) -> &mut DbInner {
        self.service.quiesce();
        &mut self.inner
    }
}

impl Database {
    /// Starts building a database: `.document(..)`, `.view(..)`
    /// declarations, then `.build()`.
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    // -----------------------------------------------------------------
    // Async commits: submission decoupled from sealing
    // -----------------------------------------------------------------

    /// Validates a batch of statements and schedules it as **one
    /// commit**, returning a [`Ticket`] immediately — before any
    /// propagation runs. The commit seals in the background, strictly
    /// in submission order: single-statement submissions drain through
    /// the same windowed copy-on-write pipeline as
    /// [`DbInner::apply_pipelined`] (up to [`DbInner::pipeline_depth`]
    /// in flight), multi-statement submissions commit like a
    /// sequential [`DbInner::transaction`].
    ///
    /// The ticket carries the reserved sequence number; await the
    /// sealed [`Commit`] with [`Ticket::wait`], or everything at once
    /// with [`Self::flush`]. Parse/validation errors surface here
    /// synchronously (no ticket, no sequence number consumed); errors
    /// during background sealing surface on `wait()`/`flush()`, and
    /// submissions queued behind a failed one abort with
    /// [`Error::Aborted`] so sequence numbers stay gapless.
    ///
    /// Subscriptions observe async commits exactly as synchronous
    /// ones — same events, same order. With a bounded queue under
    /// [`SlowConsumerPolicy::Block`] the *service thread* (not this
    /// call) waits for the consumer; drain from another thread via
    /// [`Subscription::drain`] or the non-quiescing [`Self::drain`].
    pub fn apply_async<I>(&mut self, statements: I) -> Result<Ticket, Error>
    where
        I: IntoIterator,
        I::Item: Into<StatementSource>,
    {
        let stmts: Vec<UpdateStatement> = statements
            .into_iter()
            .map(|s| resolve_statement(s.into()))
            .collect::<Result<_, _>>()?;
        let ptr: *mut DbInner = &mut *self.inner;
        Ok(self.service.submit(ptr, stmts))
    }

    /// Waits until every queued [`Self::apply_async`] submission has
    /// sealed, then reports the **first** background failure since the
    /// last `flush()` (later submissions in that queue aborted with
    /// [`Error::Aborted`]; their tickets carry the details). `Ok(())`
    /// means the database, its views and every subscription feed
    /// reflect all submitted commits.
    pub fn flush(&mut self) -> Result<(), Error> {
        self.service.flush()
    }

    /// Waits until commit `seq` has sealed, or until it becomes known
    /// that it never will (its submission failed or was aborted, or no
    /// such submission exists). Returns the sealed high-water mark: a
    /// value `>= seq` means commit `seq` (and everything before it) is
    /// visible to reads and subscriptions; a smaller value means `seq`
    /// was never reached.
    pub fn commit_barrier(&self, seq: u64) -> u64 {
        let sealed = self.service.barrier(seq);
        if sealed >= seq {
            return sealed;
        }
        // Not sealed by the service: either it was sealed
        // synchronously before the service ever ran, or it failed.
        // `last_seq` quiesces, so this is the authoritative answer.
        self.last_seq()
    }

    // -----------------------------------------------------------------
    // Subscriptions (the non-quiescing surface)
    // -----------------------------------------------------------------

    /// Registers interest in one view's deltas. Every subsequent
    /// commit appends a [`DeltaEvent`] (commit sequence number + the
    /// view's delta, empty if the commit did not touch it) to the
    /// subscription; read them with [`Self::drain`] or
    /// [`Subscription::drain`]. The queue is bounded by the builder's
    /// [`DatabaseBuilder::subscription_capacity`] / `XIVM_SUB_CAPACITY`
    /// default (unbounded if neither is set) with
    /// [`SlowConsumerPolicy::Block`]; use [`Self::subscribe_with`] to
    /// choose per subscription. See [`crate::subscribe`].
    pub fn subscribe(&mut self, view: ViewHandle) -> Subscription {
        self.service.quiesce();
        let cap = self.inner.sub_capacity;
        self.subscribe_with(view, cap, SlowConsumerPolicy::Block)
    }

    /// [`Self::subscribe`] with an explicit queue bound (`None` =
    /// unbounded) and slow-consumer policy for this subscription.
    pub fn subscribe_with(
        &mut self,
        view: ViewHandle,
        capacity: Option<usize>,
        policy: SlowConsumerPolicy,
    ) -> Subscription {
        let inner = &mut **self;
        assert!(view.index() < inner.views.len(), "handle from this database");
        inner.subs.subscribe(view, capacity, policy)
    }

    /// Takes every delta event accumulated since the last drain
    /// (oldest first, consecutive sequence numbers) and wakes a
    /// producer blocked on a full queue. Does **not** wait for
    /// in-flight async commits — this is the call that releases a
    /// [`SlowConsumerPolicy::Block`] backpressure stall, so it must
    /// stay reachable while the service is mid-seal. Panics if the
    /// subscription lagged ([`SlowConsumerPolicy::DropAndMark`]);
    /// lag-aware consumers use [`Subscription::drain`], which yields
    /// the [`crate::subscribe::Lagged`] marker instead.
    pub fn drain(&mut self, sub: &Subscription) -> Vec<DeltaEvent> {
        sub.queue.drain_deltas()
    }

    /// Events currently queued on a subscription (non-quiescing:
    /// counts what has been sealed and fanned out so far).
    pub fn pending(&self, sub: &Subscription) -> usize {
        sub.queue.pending()
    }

    /// The view a subscription watches.
    pub fn subscription_view(&self, sub: &Subscription) -> ViewHandle {
        ViewHandle(sub.queue.view)
    }

    /// Cancels a subscription and drops its queued events.
    pub fn unsubscribe(&mut self, sub: Subscription) {
        // Disconnect first: this wakes a service thread blocked on the
        // subscription's full queue, which must happen *before* the
        // quiescing deref below can wait for that same thread.
        sub.queue.disconnect();
        let inner = &mut **self;
        inner.subs.unsubscribe(sub);
    }
}

impl DbInner {
    /// The owned document, read-only. All mutation goes through
    /// [`Self::apply`] / [`Self::transaction`] so the views can never
    /// drift from the document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Serializes the current document.
    pub fn serialize(&self) -> String {
        serialize_document(&self.doc)
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Resolves a view name to its handle.
    pub fn view(&self, name: &str) -> Result<ViewHandle, Error> {
        self.views.position(name).map(ViewHandle).ok_or_else(|| Error::UnknownView(name.into()))
    }

    /// Handles of every view, in declaration order.
    pub fn handles(&self) -> Vec<ViewHandle> {
        (0..self.views.len()).map(ViewHandle).collect()
    }

    /// View names in declaration order.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.names()
    }

    /// The name behind a handle.
    pub fn name(&self, view: ViewHandle) -> &str {
        self.views.get(view.0).expect("handle from this database").0
    }

    /// The materialized tuples of a view.
    pub fn store(&self, view: ViewHandle) -> &ViewStore {
        self.views.get(view.0).expect("handle from this database").1.store()
    }

    /// The pattern a view materializes.
    pub fn pattern(&self, view: ViewHandle) -> &TreePattern {
        self.views.get(view.0).expect("handle from this database").1.pattern()
    }

    /// Read-only access to a view's low-level maintenance engine
    /// (timings, snowcaps, prune statistics).
    pub fn engine(&self, view: ViewHandle) -> &MaintenanceEngine {
        self.views.get(view.0).expect("handle from this database").1
    }

    /// The worker pool size used for per-view propagation (builder's
    /// `.workers(n)`, else `XIVM_WORKERS`, else 1).
    pub fn workers(&self) -> usize {
        self.views.workers()
    }

    /// The *effective* pipeline depth [`Self::apply_pipelined`] runs
    /// at (builder's `.pipeline(depth)`, else `XIVM_PIPELINE`, else
    /// 1 = off — clamped into
    /// `1..=`[`crate::runtime::MAX_PIPELINE_DEPTH`]). What this
    /// reports is exactly what runs: an unachievable request is
    /// clamped at configuration time, never silently ignored later.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline
    }

    /// Changes the pipeline depth (clamped into
    /// `1..=`[`crate::runtime::MAX_PIPELINE_DEPTH`], see
    /// [`crate::runtime::clamp_pipeline`]). Purely a scheduling knob:
    /// results are bit-identical at every depth.
    pub fn set_pipeline(&mut self, depth: usize) {
        self.pipeline = crate::runtime::clamp_pipeline(depth);
    }

    /// Threads ever spawned by this database's propagation runtime —
    /// monotonic, and flat across steady-state propagations (the
    /// persistent pool spawns on first use only; see
    /// [`crate::runtime`]). 0 for sequential databases.
    pub fn threads_spawned(&self) -> u64 {
        self.views.threads_spawned()
    }

    /// Number of live subscriptions (every commit fans its deltas out
    /// to exactly these).
    pub fn subscriptions(&self) -> usize {
        self.subs.live()
    }

    /// The effective [`AnalyzeMode`] this database was built with.
    pub fn analyze_mode(&self) -> AnalyzeMode {
        self.statics.as_ref().map_or(AnalyzeMode::Off, |s| s.mode)
    }

    /// The build-time static analysis report (dead-view findings and
    /// the relevance matrix over an empty workload), when the builder
    /// enabled [`DatabaseBuilder::analyze`].
    pub fn analysis_report(&self) -> Option<&AnalysisReport> {
        self.statics.as_ref().map(|s| &s.report)
    }

    /// Independent-mode transactions whose runtime pairwise conflict
    /// scan was skipped because static analysis proved the batch
    /// pairwise independent. 0 with analysis off.
    pub fn conflict_scans_skipped(&self) -> u64 {
        self.statics.as_ref().map_or(0, |s| s.conflict_scans_skipped)
    }

    /// The static skip mask for one statement: `Some(mask)` with
    /// `mask[i] == true` for every view the statement provably cannot
    /// touch, or `None` when analysis is off or nothing is skippable.
    pub(crate) fn static_mask(&self, stmt: &UpdateStatement) -> Option<Vec<bool>> {
        let st = self.statics.as_ref()?;
        let mask = st.analyzer.skip_mask(&st.analyzer.statement_shape(stmt));
        mask.iter().any(|&b| b).then_some(mask)
    }

    /// Per-statement skip masks for a pipelined batch (`None` when
    /// analysis is off).
    pub(crate) fn static_masks(&self, stmts: &[UpdateStatement]) -> Option<Vec<Vec<bool>>> {
        let st = self.statics.as_ref()?;
        Some(stmts.iter().map(|s| st.analyzer.skip_mask(&st.analyzer.statement_shape(s))).collect())
    }

    /// Applies one update statement (text, an [`UpdateStatement`], or
    /// a typed [`UpdateBuilder`]) and propagates it to every view in
    /// one shared pass. Returns the [`Commit`] carrying each view's
    /// report and exact delta.
    pub fn apply(&mut self, statement: impl Into<StatementSource>) -> Result<Commit, Error> {
        let stmt = resolve_statement(statement.into())?;
        let defer = self.defer_mask();
        let skip = merge_skip(self.static_mask(&stmt), defer.clone());
        let pre = defer.is_some().then(|| self.doc.clone());
        let (pul, mut per_view) =
            self.views.apply_statement_counted(&mut self.doc, &stmt, skip.as_deref())?;
        fold_pending(&mut self.pending, &self.modes, pre.as_ref(), &pul, self.commits + 1);
        mark_deferred(&mut per_view, &self.modes);
        let ops = pul.len();
        let commit = self.finish_commit(1, ops, ops, ReductionTrace::default(), per_view);
        self.maybe_auto_refresh()?;
        Ok(commit)
    }

    /// Starts a batched transaction: statements are collected and, at
    /// [`Transaction::commit`], funneled through the Section 5 PUL
    /// optimizer into one optimized PUL, then propagated to all views
    /// in a single shared pass.
    pub fn transaction(&mut self) -> Transaction<'_> {
        Transaction {
            db: self,
            statements: Vec::new(),
            isolation: Isolation::Sequential,
            policy: ConflictPolicy::Fail,
        }
    }

    /// Applies a stream of statements as *individual commits* — one
    /// [`Commit`] per statement, exactly as a loop of [`Self::apply`]
    /// would produce — with up to [`Self::pipeline_depth`] consecutive
    /// commits in flight ([`DatabaseBuilder::pipeline`] /
    /// `XIVM_PIPELINE`): the document advances commit by commit on
    /// the calling thread, freezing cheap copy-on-write snapshots
    /// around every apply, and the window's propagations drain on the
    /// worker pool as one chained job per write-disjoint Figure 15
    /// shard — commit *k + depth − 1*'s `prepare` overlaps commit
    /// *k*'s `finish` on every disjoint shard (see [`crate::runtime`]
    /// and [`crate::multiview::MultiViewEngine`]).
    ///
    /// Pipelining is purely a scheduling mode: commits (sequence
    /// numbers, counters, per-view deltas), stores and subscription
    /// streams are bit-identical to the sequential pass — commits are
    /// sealed strictly in order, so changefeeds stay gapless. It
    /// degenerates to the sequential loop when the depth is 1 or the
    /// batch has fewer than two statements, and within a window two
    /// views ever co-grouped by a commit's schedule share one chain
    /// (no overlap between them, exactly the ordering Figure 15
    /// demands).
    ///
    /// The whole batch is parsed and validated up front: a malformed
    /// statement rejects everything before anything is applied (no
    /// commit, no event). An apply error mid-stream (not reachable
    /// through the validated statement forms, but the document layer
    /// is fallible) stops the pipeline: commits sealed before the
    /// failure *remain applied* — their sequence numbers are consumed
    /// and their events already fanned out, observable via
    /// [`Self::last_seq`] and any subscription feed — but their
    /// `Commit` values are not carried by the `Err`, so callers that
    /// need per-commit reports under that failure mode should drain a
    /// subscription rather than rely on the returned `Vec`.
    pub fn apply_pipelined<I>(&mut self, statements: I) -> Result<Vec<Commit>, Error>
    where
        I: IntoIterator,
        I::Item: Into<StatementSource>,
    {
        let stmts: Vec<UpdateStatement> = statements
            .into_iter()
            .map(|s| resolve_statement(s.into()))
            .collect::<Result<_, _>>()?;
        let statik = self.static_masks(&stmts);
        let defer = self.defer_mask();
        let masks: Option<Vec<Vec<bool>>> = match (&statik, &defer) {
            (None, None) => None,
            _ => {
                let blank = vec![false; self.views.len()];
                Some(
                    (0..stmts.len())
                        .map(|k| {
                            let s = statik.as_ref().map(|m| m[k].clone());
                            merge_skip(s, defer.clone()).unwrap_or_else(|| blank.clone())
                        })
                        .collect(),
                )
            }
        };
        let want_pre = defer.is_some();
        let mut commits = Vec::with_capacity(stmts.len());
        let seq = &mut self.commits;
        let subs = &mut self.subs;
        let pending = &mut self.pending;
        let modes = &self.modes;
        self.views.propagate_pipelined(
            &mut self.doc,
            &stmts,
            self.pipeline,
            masks.as_deref(),
            want_pre,
            |_, pul, pre, mut per_view| {
                fold_pending(pending, modes, pre, pul, *seq + 1);
                mark_deferred(&mut per_view, modes);
                commits.push(seal_commit(
                    seq,
                    subs,
                    1,
                    pul.len(),
                    pul.len(),
                    ReductionTrace::default(),
                    per_view,
                ));
            },
        )?;
        self.maybe_auto_refresh()?;
        Ok(commits)
    }

    /// Seals a successful mutation: assigns the next sequence number,
    /// builds the [`Commit`] and fans its deltas out to the
    /// subscriptions.
    fn finish_commit(
        &mut self,
        statements: usize,
        naive_ops: usize,
        optimized_ops: usize,
        reduction: ReductionTrace,
        per_view: Vec<(String, UpdateReport)>,
    ) -> Commit {
        seal_commit(
            &mut self.commits,
            &mut self.subs,
            statements,
            naive_ops,
            optimized_ops,
            reduction,
            per_view,
        )
    }

    /// The sequence number of the last successful commit (0 before the
    /// first one).
    pub fn last_seq(&self) -> u64 {
        self.commits
    }

    // -----------------------------------------------------------------
    // MVCC snapshots and sharding
    // -----------------------------------------------------------------

    /// Freezes the current state into a [`DatabaseSnapshot`]: the
    /// document (copy-on-write clone, O(chunks)) plus every view store
    /// behind its `Arc`, stamped with [`Self::last_seq`]. No tuple and
    /// no node is copied.
    ///
    /// The snapshot is a gapless image of commits `1..=seq`: reads
    /// through it (stores, cursors, XPath) are unaffected by any
    /// commit applied afterwards, and those commits never wait for the
    /// snapshot — the first write to a shared chunk or store copies it
    /// on the writer's side.
    pub fn snapshot(&self) -> DatabaseSnapshot {
        DatabaseSnapshot::new(self.commits, self.doc.clone(), self.views.store_arcs())
    }

    /// The Figure 15 shard plan a statement induces on the views:
    /// declaration-order indices partitioned into order-independent
    /// groups ([`crate::multiview::MultiViewEngine::partition`], built
    /// on [`xivm_pulopt::partition`]). Views in distinct groups can be
    /// maintained on different shards in any order; the pipelined
    /// propagation uses exactly this partition to hand each shard to
    /// one worker job. Read-only: the statement's PUL is computed
    /// against the current document and discarded.
    pub fn shard_plan(
        &self,
        statement: impl Into<StatementSource>,
    ) -> Result<Vec<Vec<usize>>, Error> {
        let stmt = resolve_statement(statement.into())?;
        let pul = compute_pul(&self.doc, &stmt);
        Ok(self.views.partition(&self.doc, &pul))
    }

    /// The view stores grouped by [`Self::shard_plan`] — see
    /// [`ShardedStores`]. O(views): the current store `Arc`s are
    /// captured, not copied, so this composes with [`Self::snapshot`]
    /// as a zero-copy read path per shard.
    pub fn sharded_stores(
        &self,
        statement: impl Into<StatementSource>,
    ) -> Result<ShardedStores, Error> {
        let plan = self.shard_plan(statement)?;
        Ok(ShardedStores::new(plan, self.views.store_arcs()))
    }

    // -----------------------------------------------------------------
    // Change consumption: cursors and subscriptions
    // -----------------------------------------------------------------

    /// Borrowing document-order cursor over a view's tuples — the
    /// cheap way to read a view (no tuple is cloned; see
    /// [`ViewStore::cursor`]).
    pub fn cursor(&self, view: ViewHandle) -> Cursor<'_> {
        self.store(view).cursor()
    }

    /// Seals an **empty** commit: no view is touched, but the commit
    /// still gets a sequence number and a (default) report per view,
    /// so changefeeds stay gapless and `Commit::report`/`delta` work
    /// uniformly.
    fn noop_commit(&mut self) -> Commit {
        let per_view: Vec<(String, UpdateReport)> = self
            .views
            .names()
            .into_iter()
            .map(|n| (n.to_owned(), UpdateReport::default()))
            .collect();
        self.finish_commit(0, 0, 0, ReductionTrace::default(), per_view)
    }

    /// Commits a pre-parsed batch with sequential composition: each
    /// statement's targets are found on a scratch copy reflecting the
    /// previous statements, the per-statement PULs are folded with the
    /// Figure 16 aggregation rules into one PUL over the
    /// pre-transaction document, reduced (Figure 14), and propagated
    /// to every view in one shared pass. The core of
    /// [`Transaction::commit`]'s default mode, also used by the async
    /// service for multi-statement submissions.
    pub(crate) fn commit_sequential(
        &mut self,
        parsed: &[UpdateStatement],
    ) -> Result<Commit, Error> {
        if parsed.is_empty() {
            return Ok(self.noop_commit());
        }
        // The scratch copy exists only to give *later* statements the
        // evolved state, so it is cloned lazily and never advanced
        // past the second-to-last statement.
        let mut naive_ops = 0usize;
        let mut scratch: Option<Document> = None;
        let mut combined: Option<Pul> = None;
        for (i, stmt) in parsed.iter().enumerate() {
            let pul = compute_pul(scratch.as_ref().unwrap_or(&self.doc), stmt);
            if i + 1 < parsed.len() {
                apply_pul(scratch.get_or_insert_with(|| self.doc.clone()), &pul)?;
            }
            naive_ops += pul.len();
            combined = Some(match combined {
                None => pul,
                Some(prev) => aggregate(&self.doc, &prev, &pul).0,
            });
        }
        let combined = combined.unwrap_or_default();
        let (optimized, trace) = reduce(&combined);
        // Static skipping is sound per *statement shape*; a
        // multi-statement sequential batch can evolve the document
        // through non-conforming intermediate states (statement 1 may
        // create the very context statement 2 targets), so only
        // single-statement batches consult the matrix.
        let skip = if parsed.len() == 1 { self.static_mask(&parsed[0]) } else { None };
        let defer = self.defer_mask();
        let skip = merge_skip(skip, defer.clone());
        let pre = defer.is_some().then(|| self.doc.clone());
        let mut per_view =
            self.views.propagate_pul_masked(&mut self.doc, &optimized, skip.as_deref())?;
        fold_pending(&mut self.pending, &self.modes, pre.as_ref(), &optimized, self.commits + 1);
        mark_deferred(&mut per_view, &self.modes);
        let commit = self.finish_commit(parsed.len(), naive_ops, optimized.len(), trace, per_view);
        self.maybe_auto_refresh()?;
        Ok(commit)
    }

    /// Commits a pre-parsed batch in independent mode: every
    /// statement's PUL is computed against the same snapshot, the
    /// Figure 15 conflict rules (IO / LO / NLO) are checked under
    /// `policy`, and the surviving operations integrate into one PUL.
    fn commit_independent(
        &mut self,
        parsed: &[UpdateStatement],
        policy: ConflictPolicy,
    ) -> Result<Commit, Error> {
        if parsed.is_empty() {
            return Ok(self.noop_commit());
        }
        let puls: Vec<Pul> = parsed.iter().map(|s| compute_pul(&self.doc, s)).collect();
        let naive_ops = puls.iter().map(Pul::len).sum();
        if policy == ConflictPolicy::Fail {
            // Static independence fast path (lifted Figure 15): if no
            // IO / LO / NLO rule can fire for any target pair in any
            // conforming document, the pairwise scan would provably
            // find nothing — skip it.
            let statically_independent =
                self.statics.as_ref().is_some_and(|st| st.analyzer.batch_independent(parsed));
            if statically_independent {
                let st = self.statics.as_mut().expect("checked above");
                st.conflict_scans_skipped += 1;
            } else {
                let mut conflicts = Vec::new();
                for i in 0..puls.len() {
                    for j in i + 1..puls.len() {
                        conflicts.extend(find_conflicts(&puls[i], &puls[j]));
                    }
                }
                if !conflicts.is_empty() {
                    return Err(Error::Conflict(conflicts));
                }
            }
        }
        let mut iter = puls.into_iter();
        let first = iter.next().unwrap_or_default();
        let combined = iter
            .try_fold(first, |acc, next| integrate(&acc, &next, policy).map_err(Error::Conflict))?;
        let (optimized, trace) = reduce(&combined);
        // In independent mode every statement's PUL is computed
        // against the same (conforming) snapshot and the combined
        // effect is a subset of the union of per-statement effects, so
        // a view is skippable iff *every* statement is irrelevant to
        // it — the element-wise AND of the per-statement masks.
        let skip: Option<Vec<bool>> = self.statics.as_ref().and_then(|st| {
            let mut acc = vec![true; self.views.len()];
            for stmt in parsed {
                let mask = st.analyzer.skip_mask(&st.analyzer.statement_shape(stmt));
                for (a, b) in acc.iter_mut().zip(mask) {
                    *a &= b;
                }
            }
            acc.iter().any(|&b| b).then_some(acc)
        });
        let defer = self.defer_mask();
        let skip = merge_skip(skip, defer.clone());
        let pre = defer.is_some().then(|| self.doc.clone());
        let mut per_view =
            self.views.propagate_pul_masked(&mut self.doc, &optimized, skip.as_deref())?;
        fold_pending(&mut self.pending, &self.modes, pre.as_ref(), &optimized, self.commits + 1);
        mark_deferred(&mut per_view, &self.modes);
        let commit = self.finish_commit(parsed.len(), naive_ops, optimized.len(), trace, per_view);
        self.maybe_auto_refresh()?;
        Ok(commit)
    }

    // -----------------------------------------------------------------
    // Deferred maintenance
    // -----------------------------------------------------------------

    /// The maintenance mode of a view.
    pub fn maintenance(&self, view: ViewHandle) -> MaintenanceMode {
        self.modes[view.index()]
    }

    /// Switches a view's [`MaintenanceMode`]. Entering `Deferred`
    /// takes effect at the next commit. Leaving it refreshes first —
    /// the returned commit, if any, is that refresh — so an
    /// `Immediate` view is never stale.
    pub fn set_maintenance(
        &mut self,
        view: ViewHandle,
        mode: MaintenanceMode,
    ) -> Result<Option<Commit>, Error> {
        assert!(view.index() < self.views.len(), "handle from this database");
        let commit = if mode == MaintenanceMode::Immediate { self.refresh(view)? } else { None };
        self.modes[view.index()] = mode;
        Ok(commit)
    }

    /// Commits accumulated against a deferred view since its last
    /// refresh (0 = the view is current).
    pub fn deferred_commits(&self, view: ViewHandle) -> u64 {
        self.pending[view.index()].as_ref().map_or(0, |p| p.commits)
    }

    /// Folds a deferred view's accumulated batch in **one**
    /// propagation pass and seals it as its own commit (0 statements,
    /// like an empty transaction): the batched PULs are reduced
    /// (Figure 14), the view maintained from its last-refreshed base
    /// to the live document, and the commit's [`DeltaEvent`] carries
    /// the whole coalesced delta with [`DeltaEvent::folded`] naming
    /// exactly the commit range it covers — so changefeeds stay
    /// gapless and replicas can fold the batch atomically.
    ///
    /// Returns `Ok(None)` when nothing is pending (also for
    /// `Immediate` views): no commit, no sequence number.
    pub fn refresh(&mut self, view: ViewHandle) -> Result<Option<Commit>, Error> {
        let i = view.index();
        assert!(i < self.views.len(), "handle from this database");
        let Some(p) = self.pending[i].take() else {
            return Ok(None);
        };
        let (optimized, trace) = reduce(&p.pul);
        let mut post = p.base.clone();
        let apply_res = match apply_pul(&mut post, &optimized) {
            Ok(res) => res,
            Err(e) => {
                // Nothing was propagated; keep the batch so a later
                // refresh (or recompute) can still converge the view.
                self.pending[i] = Some(p);
                return Err(e.into());
            }
        };
        // Transaction equivalence (Section 5): replaying the
        // aggregated batch over the base must reconstruct the live
        // document bit-identically, Dewey assignment included.
        debug_assert_eq!(
            serialize_document(&post),
            serialize_document(&self.doc),
            "aggregated deferred batch must reconstruct the live document"
        );
        let mut report = self.views.refresh_view(i, &p.base, &post, &optimized, &apply_res);
        report.coalesced = Some(p.first_seq..=self.commits);
        let per_view: Vec<(String, UpdateReport)> = self
            .views
            .names()
            .into_iter()
            .enumerate()
            .map(|(j, n)| {
                let r = if j == i { std::mem::take(&mut report) } else { UpdateReport::default() };
                (n.to_owned(), r)
            })
            .collect();
        Ok(Some(self.finish_commit(0, p.naive_ops, optimized.len(), trace, per_view)))
    }

    /// [`Self::refresh`] for every view with a pending batch, in
    /// declaration order — one commit per refreshed view.
    pub fn refresh_all(&mut self) -> Result<Vec<Commit>, Error> {
        let mut out = Vec::new();
        for i in 0..self.views.len() {
            if let Some(commit) = self.refresh(ViewHandle(i))? {
                out.push(commit);
            }
        }
        Ok(out)
    }

    /// Fires the [`DatabaseBuilder::refresh_every`] policy: refreshes
    /// every deferred view whose batch has reached the threshold.
    /// Called at every synchronous commit boundary and by the async
    /// service between batches.
    pub(crate) fn maybe_auto_refresh(&mut self) -> Result<(), Error> {
        let Some(every) = self.refresh_every else {
            return Ok(());
        };
        for i in 0..self.views.len() {
            if self.pending[i].as_ref().is_some_and(|p| p.commits >= every) {
                self.refresh(ViewHandle(i))?;
            }
        }
        Ok(())
    }

    /// Skip mask covering exactly the deferred views (`None` when
    /// every view is immediate — the common case pays nothing).
    pub(crate) fn defer_mask(&self) -> Option<Vec<bool>> {
        self.modes
            .contains(&MaintenanceMode::Deferred)
            .then(|| self.modes.iter().map(|m| *m == MaintenanceMode::Deferred).collect())
    }
}

/// Element-wise OR of two optional skip masks (static irrelevance and
/// deferral compose: a view is left out of the pass if either says
/// so).
pub(crate) fn merge_skip(a: Option<Vec<bool>>, b: Option<Vec<bool>>) -> Option<Vec<bool>> {
    match (a, b) {
        (None, m) | (m, None) => m,
        (Some(mut a), Some(b)) => {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= y;
            }
            Some(a)
        }
    }
}

/// Folds one sealed commit's PUL into every deferred view's pending
/// batch (Figure 16 aggregation over the batch's base document).
/// `pre` is the document *before* this commit's PUL applied; `seq`
/// the sequence number the commit is sealing as. A free function over
/// the fields so the pipelined driver can fold while the engine still
/// holds the views.
pub(crate) fn fold_pending(
    pending: &mut [Option<DeferredPending>],
    modes: &[MaintenanceMode],
    pre: Option<&Document>,
    pul: &Pul,
    seq: u64,
) {
    if pul.is_empty() {
        return; // nothing to replay; the view's store is already right
    }
    for (i, mode) in modes.iter().enumerate() {
        if *mode != MaintenanceMode::Deferred {
            continue;
        }
        let pre = pre.expect("defer_mask set => pre-document captured");
        match &mut pending[i] {
            Some(p) => {
                p.pul = aggregate(&p.base, &p.pul, pul).0;
                p.naive_ops += pul.len();
                p.commits += 1;
            }
            slot @ None => {
                *slot = Some(DeferredPending {
                    base: pre.clone(),
                    pul: pul.clone(),
                    naive_ops: pul.len(),
                    first_seq: seq,
                    commits: 1,
                });
            }
        }
    }
}

/// Replaces deferred views' reports (the propagation pass saw them as
/// skipped) with the honest [`UpdateReport::deferred_marker`]: store
/// untouched, delta empty, maintenance postponed.
pub(crate) fn mark_deferred(per_view: &mut [(String, UpdateReport)], modes: &[MaintenanceMode]) {
    for (i, mode) in modes.iter().enumerate() {
        if *mode == MaintenanceMode::Deferred {
            per_view[i].1 = UpdateReport::deferred_marker();
        }
    }
}

/// Seals one successful commit: bumps the sequence counter, builds
/// the [`Commit`] and fans its deltas out to the subscriptions. A
/// free function over the fields (rather than a `&mut Database`
/// method) so the pipelined driver can seal commit *k* while the
/// engine still holds the views — sealing strictly in commit order is
/// what keeps subscription streams gapless under overlap.
pub(crate) fn seal_commit(
    commits: &mut u64,
    subs: &mut SubscriptionRegistry,
    statements: usize,
    naive_ops: usize,
    optimized_ops: usize,
    reduction: ReductionTrace,
    per_view: Vec<(String, UpdateReport)>,
) -> Commit {
    *commits += 1;
    let commit = Commit::new(*commits, statements, naive_ops, optimized_ops, reduction, per_view);
    subs.record(&commit);
    commit
}

// ---------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------

/// How a transaction's statements compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isolation {
    /// Statements compose in order: each sees the effects of the
    /// previous ones, exactly as if they had been applied one by one.
    Sequential,
    /// Statements must be order-independent: every statement's PUL is
    /// computed against the transaction's snapshot, and any IO / LO /
    /// NLO conflict between two statements is resolved by the
    /// transaction's [`ConflictPolicy`] (rejected under the default
    /// [`ConflictPolicy::Fail`]).
    Independent,
}

/// A batch of update statements committed as one optimized PUL.
///
/// Created by [`Database::transaction`](DbInner::transaction).
/// Nothing touches the document
/// or the views until [`Self::commit`]; a failed commit (parse error,
/// conflict) leaves the database untouched.
pub struct Transaction<'db> {
    db: &'db mut DbInner,
    statements: Vec<StatementSource>,
    isolation: Isolation,
    policy: ConflictPolicy,
}

impl<'db> Transaction<'db> {
    /// Adds a statement (text, an [`UpdateStatement`], or a typed
    /// [`UpdateBuilder`]) to the batch. Parse errors surface at
    /// [`Self::commit`].
    pub fn statement(mut self, statement: impl Into<StatementSource>) -> Self {
        self.statements.push(statement.into());
        self
    }

    /// Declares the batch order-independent: all statements are
    /// evaluated against the same snapshot and committing fails with
    /// [`Error::Conflict`] if the Figure 15 rules (IO / LO / NLO) find
    /// any order-dependence — unless [`Self::on_conflict`] installed a
    /// resolving policy.
    pub fn independent(mut self) -> Self {
        self.isolation = Isolation::Independent;
        self
    }

    /// Sets the conflict policy used in [`Self::independent`] mode
    /// (default: [`ConflictPolicy::Fail`]).
    pub fn on_conflict(mut self, policy: ConflictPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of statements batched so far.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Optimizes the batch into one PUL (reduce → aggregate →
    /// conflict-check, Section 5), propagates it to every view in a
    /// single shared pass, and returns the [`Commit`] with each view's
    /// report and delta. An empty batch still commits (and gets a
    /// sequence number), so changefeeds stay gapless.
    pub fn commit(self) -> Result<Commit, Error> {
        let Transaction { db, statements, isolation, policy } = self;
        let parsed: Vec<UpdateStatement> =
            statements.into_iter().map(resolve_statement).collect::<Result<_, _>>()?;
        match isolation {
            Isolation::Sequential => db.commit_sequential(&parsed),
            Isolation::Independent => db.commit_independent(&parsed, policy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::compile::view_tuples;
    use xivm_xml::XmlError;

    const FIG12: &str = "<a><c><b/><b/></c><f><c><b/></c><b/></f></a>";

    fn db() -> Database {
        Database::builder()
            .document(FIG12)
            .view("ab", "//a{id}//b{id}")
            .view("acb", "//a{id}[//c{id}]//b{id}")
            .build()
            .unwrap()
    }

    /// Oracle: every view equals its from-scratch evaluation.
    fn check_consistent(db: &Database) {
        for h in db.handles() {
            let pattern = db.pattern(h).clone();
            let expected = ViewStore::from_counted(&pattern, view_tuples(db.document(), &pattern));
            assert!(
                db.store(h).same_content_as(&expected),
                "view {} diverged:\n{}",
                db.name(h),
                db.store(h).diff_description(&expected)
            );
        }
    }

    #[test]
    fn builder_materializes_views() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert_eq!(db.view_names(), vec!["ab", "acb"]);
        let acb = db.view("acb").unwrap();
        assert_eq!(db.store(acb).len(), 8, "Figure 12 lists 8 embeddings");
        assert_eq!(db.pattern(acb).to_text(), "//a{id}[//c{id}]//b{id}");
        assert_eq!(db.name(acb), "acb");
    }

    #[test]
    fn builder_errors() {
        assert!(matches!(Database::builder().build(), Err(Error::NoDocument)));
        assert!(matches!(
            Database::builder().document("<a/>").view("v", "//a{id").build(),
            Err(Error::Pattern(_))
        ));
        assert!(matches!(
            Database::builder().document("<a><b").view("v", "//a{id}").build(),
            Err(Error::Xml(XmlError::Parse { .. }))
        ));
        assert!(matches!(
            Database::builder().document("<a/>").view("v", "//a{id}").view("v", "//a{id}").build(),
            Err(Error::DuplicateView(_))
        ));
        let db = db();
        assert!(matches!(db.view("nope"), Err(Error::UnknownView(_))));
    }

    #[test]
    fn apply_propagates_to_all_views() {
        let mut db = db();
        let commit = db.apply("delete /a/f/c").unwrap();
        assert_eq!(commit.len(), 2);
        assert_eq!(commit.seq, 1);
        assert_eq!(db.last_seq(), 1);
        check_consistent(&db);
        assert_eq!(db.store(db.view("acb").unwrap()).len(), 3, "Example 4.5");
        // statement parse errors are typed
        assert!(matches!(db.apply("frobnicate //a"), Err(Error::Statement(_))));
    }

    /// `apply-pul` is not atomic, so a malformed insert forest must be
    /// rejected *before* anything touches the document — on every
    /// mutation path.
    #[test]
    fn malformed_forest_is_rejected_before_touching_anything() {
        let mut db = db();
        let before = db.serialize();
        assert!(matches!(db.apply("insert <b><x/> into /a/c"), Err(Error::Xml(_))));
        assert_eq!(db.serialize(), before, "apply must not leave a half-applied forest");
        check_consistent(&db);
        for tx_mode in [false, true] {
            let mut tx = db.transaction();
            if tx_mode {
                tx = tx.independent();
            }
            let err = tx
                .statement("insert <ok/> into /a/c")
                .statement("insert <b><x/> into /a/c")
                .commit();
            assert!(matches!(err, Err(Error::Xml(_))));
            assert_eq!(db.serialize(), before, "failed commits must be no-ops");
            check_consistent(&db);
        }
        // the same guard applies to pre-built statements
        let stmt = UpdateStatement::insert("/a/c", "<broken>").unwrap();
        assert!(matches!(db.apply(stmt), Err(Error::Xml(_))));
        assert_eq!(db.serialize(), before);
    }

    #[test]
    fn transaction_batches_through_the_optimizer() {
        let mut db = Database::builder()
            .document("<r><x><w/></x><y/><z/></r>")
            .view("rb", "//r{id}//b{id}")
            .build()
            .unwrap();
        let report = db
            .transaction()
            .statement("insert <b/> into //w") // killed by O3
            .statement("insert <b/> into //x") // killed by O1
            .statement("delete //x")
            .statement("insert <b>1</b> into //z") // merged by I5/A1
            .statement("insert <b>2</b> into //z")
            .commit()
            .unwrap();
        assert_eq!(report.statements, 5);
        assert!(
            report.optimized_ops < report.naive_ops,
            "optimizer must shrink the batch: {} -> {}",
            report.naive_ops,
            report.optimized_ops
        );
        assert!(report.optimized_ops < report.statements);
        check_consistent(&db);
    }

    #[test]
    fn sequential_transaction_equals_sequential_apply() {
        let script = ["insert <c><b/></c> into /a/f", "delete //c//b", "insert <b/> into //f"];
        let mut one_by_one = db();
        for s in script {
            one_by_one.apply(s).unwrap();
        }
        let mut batched = db();
        let mut tx = batched.transaction();
        for s in script {
            tx = tx.statement(s);
        }
        tx.commit().unwrap();
        assert_eq!(one_by_one.serialize(), batched.serialize());
        for (h1, h2) in one_by_one.handles().into_iter().zip(batched.handles()) {
            assert!(one_by_one.store(h1).same_content_as(batched.store(h2)));
        }
        check_consistent(&batched);
    }

    #[test]
    fn later_statements_see_earlier_effects() {
        // The second statement targets a node the first one inserts:
        // only sequential composition can express this.
        let mut db = Database::builder()
            .document("<r><x/></r>")
            .view("rq", "//r{id}//q{id}")
            .build()
            .unwrap();
        db.transaction()
            .statement("insert <p/> into //x")
            .statement("insert <q/> into //p")
            .commit()
            .unwrap();
        assert_eq!(db.serialize(), "<r><x><p><q/></p></x></r>");
        check_consistent(&db);
    }

    #[test]
    fn independent_transaction_rejects_conflicts() {
        let mut db = db();
        let err = db
            .transaction()
            .independent()
            .statement("delete /a/f")
            .statement("insert <b/> into /a/f")
            .commit()
            .unwrap_err();
        let Error::Conflict(conflicts) = err else { panic!("expected a conflict") };
        assert!(!conflicts.is_empty());
        // a failed commit leaves everything untouched
        assert_eq!(db.serialize(), FIG12);
        check_consistent(&db);
        // conflict-free independent batches commit fine
        db.transaction()
            .independent()
            .statement("insert <b/> into /a/c")
            .statement("delete /a/f")
            .commit()
            .unwrap();
        check_consistent(&db);
    }

    #[test]
    fn independent_transaction_with_resolving_policy() {
        let mut db = db();
        let report = db
            .transaction()
            .independent()
            .on_conflict(ConflictPolicy::FirstWins)
            .statement("delete /a/f")
            .statement("insert <b/> into /a/f")
            .commit()
            .unwrap();
        assert_eq!(report.optimized_ops, 1, "the overridden insertion is dropped");
        check_consistent(&db);
    }

    #[test]
    fn empty_transaction_is_a_noop_but_still_sequences() {
        let mut db = db();
        let commit = db.transaction().commit().unwrap();
        assert_eq!(commit.statements, 0);
        assert!(commit.touched().is_empty(), "no view was touched");
        assert_eq!(commit.len(), 2, "but every view still gets a report entry");
        assert!(!commit.is_empty(), "is_empty mirrors len, not touchedness");
        assert_eq!(commit.seq, 1, "even a no-op commit gets a sequence number");
        // the accessors work uniformly on no-op commits
        let acb = db.view("acb").unwrap();
        assert!(commit.delta(acb).is_empty());
        assert_eq!(commit.report(acb).tuples_added, 0);
        assert_eq!(db.serialize(), FIG12);
    }

    #[test]
    fn cost_based_views_are_maintained() {
        let doc = parse_document(FIG12).unwrap();
        let pattern = parse_pattern("//a{id}[//c{id}]//b{id}").unwrap();
        let log = vec![parse_statement("insert <b/> into //c").unwrap()];
        let profile = UpdateProfile::from_log(&doc, &pattern, &log);
        let mut db = Database::builder()
            .document(doc)
            .cost_based(profile)
            .view("acb", pattern)
            .build()
            .unwrap();
        db.apply("insert <c><b/></c> into /a/f").unwrap();
        db.apply("delete /a/c").unwrap();
        check_consistent(&db);
    }

    #[test]
    fn worker_knob_keeps_results_identical() {
        let build = |workers: usize| {
            Database::builder()
                .document(FIG12)
                .view("ab", "//a{id}//b{id}")
                .view("acb", "//a{id}[//c{id}]//b{id}")
                .view("c_cont", "//c{id,cont}")
                .workers(workers)
                .build()
                .unwrap()
        };
        let mut seq = build(1);
        assert_eq!(seq.workers(), 1);
        let mut par = build(4);
        assert_eq!(par.workers(), 4);
        for script in ["insert <b/> into //c", "delete /a/f", "insert <c><b/></c> into /a"] {
            seq.apply(script).unwrap();
            par.apply(script).unwrap();
        }
        assert_eq!(seq.serialize(), par.serialize());
        for (a, b) in seq.handles().into_iter().zip(par.handles()) {
            assert!(seq.store(a).same_content_as(par.store(b)));
        }
        check_consistent(&par);
    }

    #[test]
    fn report_lookup_by_handle_and_name() {
        let mut db = db();
        let ab = db.view("ab").unwrap();
        let commit = db.apply("delete /a/f/c").unwrap();
        let r = commit.report(ab);
        assert!(r.tuples_removed > 0);
        assert_eq!(commit.report_by_name("ab").unwrap().tuples_removed, r.tuples_removed);
        assert!(commit.report_by_name("nope").is_none());
        assert_eq!(commit.touched(), vec!["ab", "acb"]);
        let order: Vec<&str> = commit.iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec!["ab", "acb"]);
    }

    #[test]
    fn commit_sequence_numbers_are_monotonic_and_gapless() {
        let mut db = db();
        for expected in 1..=4u64 {
            let commit = db.apply("insert <b/> into /a/c").unwrap();
            assert_eq!(commit.seq, expected);
        }
        // a failed apply consumes no sequence number
        assert!(db.apply("frobnicate //a").is_err());
        let commit = db.transaction().statement("delete //b").commit().unwrap();
        assert_eq!(commit.seq, 5);
    }

    #[test]
    fn apply_returns_replayable_deltas() {
        let mut db = db();
        let acb = db.view("acb").unwrap();
        let mut snapshot = db.store(acb).clone();
        let commit = db.apply("delete /a/f/c").unwrap();
        let delta = commit.delta(acb);
        assert!(!delta.is_empty());
        assert_eq!(delta.removed.iter().map(|(_, c)| *c).sum::<u64>(), 5, "Example 4.5");
        delta.replay(&mut snapshot);
        assert!(snapshot.identical_to(db.store(acb)), "snapshot + delta == post-commit store");
    }

    #[test]
    fn typed_builder_statements_match_their_textual_equivalents() {
        use xivm_update::builder::{delete, element, insert, replace};
        let cases: [(UpdateBuilder, &str); 3] = [
            (insert(element("b")).into("/a/c"), "insert <b/> into /a/c"),
            (delete("/a/f/c"), "delete /a/f/c"),
            (
                replace("/a/c").with(element("g").child(element("b"))),
                "replace /a/c with <g><b/></g>",
            ),
        ];
        for (builder, text) in cases {
            let mut typed = db();
            let mut textual = db();
            let ct = typed.apply(builder).unwrap();
            let cx = textual.apply(text).unwrap();
            assert_eq!(typed.serialize(), textual.serialize(), "{text}");
            for (h1, h2) in typed.handles().into_iter().zip(textual.handles()) {
                assert!(typed.store(h1).identical_to(textual.store(h2)), "{text}");
                assert_eq!(ct.delta(h1), cx.delta(h2), "{text}: deltas must be bit-identical");
            }
            check_consistent(&typed);
        }
    }

    #[test]
    fn subscriptions_accumulate_deltas_across_commits() {
        let mut db = db();
        let acb = db.view("acb").unwrap();
        let ab = db.view("ab").unwrap();
        let sub = db.subscribe(acb);
        assert_eq!(db.subscription_view(&sub), acb);
        let mut snapshot = db.store(acb).clone();

        db.apply("delete /a/f/c").unwrap();
        db.transaction()
            .statement("insert <b/> into /a/c")
            .statement("insert <c><b/></c> into /a")
            .commit()
            .unwrap();
        db.apply("delete //zz").unwrap(); // touches nothing

        assert_eq!(db.pending(&sub), 3);
        let events = db.drain(&sub);
        assert_eq!(events.len(), 3);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "one event per commit, gapless");
        assert!(events[2].delta.is_empty(), "no-op commits still appear, with empty deltas");
        for e in &events {
            e.delta.replay(&mut snapshot);
        }
        assert!(snapshot.identical_to(db.store(acb)));
        assert_eq!(db.pending(&sub), 0, "drain empties the queue");

        // a second, later subscription only sees later commits
        let sub2 = db.subscribe(ab);
        db.apply("delete //b").unwrap();
        assert_eq!(db.drain(&sub).len(), 1);
        let ev2 = db.drain(&sub2);
        assert_eq!(ev2.len(), 1);
        assert_eq!(ev2[0].seq, 4);
        db.unsubscribe(sub);
        db.unsubscribe(sub2);
    }

    /// A DTD the `FIG12` document conforms to (all-star content
    /// models, so the test scripts stay conformance-preserving).
    const FIG12_DTD: &str = "a -> (c | f | b)*\nc -> b*\nf -> (c | b)*\nb -> ()";

    fn analyzing_db(mode: AnalyzeMode) -> Database {
        Database::builder()
            .document(FIG12)
            .dtd(FIG12_DTD)
            .analyze(mode)
            .view("ab", "//a{id}//b{id}")
            .view("f_only", "//f{id}")
            .build()
            .unwrap()
    }

    #[test]
    fn analyze_strict_rejects_dead_views_and_warn_records_them() {
        let strict = Database::builder()
            .document(FIG12)
            .dtd(FIG12_DTD)
            .analyze(AnalyzeMode::Strict)
            .view("dead", "//zzz{id}")
            .build();
        assert!(matches!(strict, Err(Error::Analysis(ref f)) if f.len() == 1));
        let warn = Database::builder()
            .document(FIG12)
            .dtd(FIG12_DTD)
            .analyze(AnalyzeMode::Warn)
            .view("dead", "//zzz{id}")
            .build()
            .unwrap();
        assert!(warn.analysis_report().unwrap().has_errors());
        assert_eq!(warn.analyze_mode(), AnalyzeMode::Warn);
        // a live catalog passes Strict
        let ok = analyzing_db(AnalyzeMode::Strict);
        assert!(!ok.analysis_report().unwrap().has_errors());
        // no analysis by default
        assert_eq!(db().analyze_mode(), AnalyzeMode::Off);
        assert!(db().analysis_report().is_none());
        // a malformed DTD errors regardless of mode
        assert!(matches!(
            Database::builder().document(FIG12).dtd("nonsense").view("v", "//a{id}").build(),
            Err(Error::Dtd(_))
        ));
    }

    #[test]
    fn static_skips_are_outcome_identical_to_the_dynamic_path() {
        let mut on = analyzing_db(AnalyzeMode::Warn);
        let mut off = Database::builder()
            .document(FIG12)
            .view("ab", "//a{id}//b{id}")
            .view("f_only", "//f{id}")
            .build()
            .unwrap();
        let mut saw_skip = false;
        for script in ["insert <b/> into /a/c", "delete /a/f/c", "delete //b"] {
            let c_on = on.apply(script).unwrap();
            let c_off = off.apply(script).unwrap();
            assert!(c_on.same_outcome(&c_off), "outcomes diverged under {script}");
            saw_skip |= c_on.static_skips() > 0;
            assert_eq!(c_off.static_skips(), 0, "no skips without analyze(..)");
            check_consistent(&on);
        }
        assert!(saw_skip, "the f_only view is statically irrelevant to every script statement");
        assert_eq!(on.serialize(), off.serialize());
    }

    #[test]
    fn pipelined_static_skips_stay_bit_identical() {
        let build = |mode: AnalyzeMode| {
            Database::builder()
                .document(FIG12)
                .dtd(FIG12_DTD)
                .analyze(mode)
                .view("ab", "//a{id}//b{id}")
                .view("f_only", "//f{id}")
                .workers(2)
                .pipeline(3)
                .build()
                .unwrap()
        };
        let mut on = build(AnalyzeMode::Warn);
        let mut off = build(AnalyzeMode::Off);
        let script =
            ["insert <b/> into /a/c", "delete /a/f/c", "insert <c><b/></c> into /a", "delete //b"];
        let cs_on = on.apply_pipelined(script).unwrap();
        let cs_off = off.apply_pipelined(script).unwrap();
        assert_eq!(cs_on.len(), cs_off.len());
        let mut skips = 0;
        for (a, b) in cs_on.iter().zip(&cs_off) {
            assert!(a.same_outcome(b), "pipelined outcomes diverged at seq {}", a.seq);
            skips += a.static_skips();
        }
        assert!(skips > 0, "pipelined windows must honor the skip masks");
        assert_eq!(on.serialize(), off.serialize());
        check_consistent(&on);
    }

    #[test]
    fn independent_transactions_skip_the_conflict_scan_when_provable() {
        let mut db = analyzing_db(AnalyzeMode::Warn);
        assert_eq!(db.conflict_scans_skipped(), 0);
        // insert-into-c vs delete-of-b: no IO / LO / NLO rule can fire
        // for any label pair, so the pairwise scan is skipped.
        db.transaction()
            .independent()
            .statement("insert <b/> into /a/c")
            .statement("delete //f/b")
            .commit()
            .unwrap();
        assert_eq!(db.conflict_scans_skipped(), 1);
        check_consistent(&db);
        // a genuinely conflicting batch still fails: the static check
        // returns Unknown and the dynamic scan runs.
        let err = db
            .transaction()
            .independent()
            .statement("delete /a/f")
            .statement("insert <b/> into /a/f")
            .commit()
            .unwrap_err();
        assert!(matches!(err, Error::Conflict(_)));
        assert_eq!(db.conflict_scans_skipped(), 1, "unknown batches fall back to the scan");
        check_consistent(&db);
    }

    #[test]
    fn prune_totals_aggregate_per_view_statistics() {
        let mut db = db();
        let commit = db.apply("insert <b/> into /a/c").unwrap();
        let (ins, del) = commit.prune_totals();
        assert!(ins.before > 0, "insertion terms were expanded");
        assert!(
            ins.after_id_reasoning <= ins.before && del.after_id_reasoning <= del.before,
            "pruning never adds terms"
        );
        let per_view_before: usize = commit.iter().map(|(_, r)| r.insert_prune.before).sum();
        assert_eq!(ins.before, per_view_before, "totals are the per-view sums");
    }

    #[test]
    fn cursor_reads_sorted_without_cloning() {
        let mut db = db();
        let ab = db.view("ab").unwrap();
        db.apply("insert <b/> into /a/c").unwrap();
        let ords: Vec<_> = db.cursor(ab).map(|(t, c)| (t.id_key(), c)).collect();
        let cloned: Vec<_> = db.store(ab).sorted_tuples();
        assert_eq!(ords.len(), cloned.len());
        for ((k, c), (t, c2)) in ords.iter().zip(cloned.iter()) {
            assert_eq!(k, &t.id_key());
            assert_eq!(c, c2);
        }
    }

    // -----------------------------------------------------------------
    // Deferred maintenance
    // -----------------------------------------------------------------

    fn deferred_db() -> Database {
        Database::builder()
            .document(FIG12)
            .view("ab", "//a{id}//b{id}")
            .view_deferred("acb", "//a{id}[//c{id}]//b{id}")
            .build()
            .unwrap()
    }

    const SCRIPT: [&str; 4] = [
        "insert <b/> into /a/c",
        "insert <c><b/></c> into /a/f",
        "delete /a/f/c/b",
        "insert <b>x</b> into /a",
    ];

    #[test]
    fn deferred_view_is_left_out_of_the_seal_and_refresh_converges() {
        let mut immediate = db();
        let mut deferred = deferred_db();
        let acb = deferred.view("acb").unwrap();
        let ab = deferred.view("ab").unwrap();
        assert_eq!(deferred.maintenance(acb), MaintenanceMode::Deferred);
        assert_eq!(deferred.maintenance(ab), MaintenanceMode::Immediate);
        let stale = deferred.store(acb).clone();

        for s in SCRIPT {
            let ci = immediate.apply(s).unwrap();
            let cd = deferred.apply(s).unwrap();
            assert_eq!(cd.seq, ci.seq);
            // The deferred view's report is the honest marker: store
            // untouched, delta empty.
            assert!(cd.report(acb).deferred);
            assert!(cd.delta(acb).is_empty());
            // The immediate view is maintained as always.
            assert!(!cd.report(ab).deferred);
            assert!(deferred
                .store(ab)
                .identical_to(immediate.store(immediate.view("ab").unwrap())));
        }
        assert!(deferred.store(acb).identical_to(&stale), "deferred store must not move");
        assert_eq!(deferred.deferred_commits(acb), SCRIPT.len() as u64);

        // The refresh seals its own commit with the coalesced range.
        let seq_before = deferred.last_seq();
        let refresh = deferred.refresh(acb).unwrap().expect("batch pending");
        assert_eq!(refresh.seq, seq_before + 1);
        assert_eq!(refresh.statements, 0, "a refresh commits no statements");
        assert_eq!(refresh.report(acb).coalesced, Some(1..=seq_before));
        assert!(!refresh.delta(acb).is_empty());
        assert_eq!(deferred.deferred_commits(acb), 0);
        check_consistent(&deferred);
        assert!(
            deferred.store(acb).identical_to(immediate.store(immediate.view("acb").unwrap())),
            "refresh must be bit-identical to immediate maintenance"
        );

        // Nothing pending: refresh is a no-op, no commit.
        assert!(deferred.refresh(acb).unwrap().is_none());
        assert_eq!(deferred.last_seq(), seq_before + 1);
    }

    #[test]
    fn deferred_events_stay_gapless_and_fold_metadata_marks_the_refresh() {
        let mut db = deferred_db();
        let acb = db.view("acb").unwrap();
        let sub = db.subscribe(acb);
        for s in SCRIPT {
            db.apply(s).unwrap();
        }
        db.refresh_all().unwrap();
        let events = db.drain(&sub);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5], "one event per seq, refresh included");
        for e in &events[..4] {
            assert!(e.folded.is_none());
            assert!(e.delta.is_empty(), "deferred commits carry empty deltas");
        }
        assert_eq!(events[4].folded, Some(1..=4));
        assert!(!events[4].delta.is_empty());
        db.unsubscribe(sub);
    }

    #[test]
    fn transactions_and_pipelined_applies_defer_identically() {
        for pipeline in [1, 4] {
            let mut immediate = db();
            let mut deferred = Database::builder()
                .document(FIG12)
                .view("ab", "//a{id}//b{id}")
                .view_deferred("acb", "//a{id}[//c{id}]//b{id}")
                .pipeline(pipeline)
                .build()
                .unwrap();
            let acb = deferred.view("acb").unwrap();
            deferred.apply_pipelined(SCRIPT).unwrap();
            for s in SCRIPT {
                immediate.apply(s).unwrap();
            }
            let tx = ["insert <b/> into /a/c", "delete //f//b"];
            immediate.transaction().statement(tx[0]).statement(tx[1]).commit().unwrap();
            deferred.transaction().statement(tx[0]).statement(tx[1]).commit().unwrap();

            deferred.refresh(acb).unwrap().expect("pending");
            check_consistent(&deferred);
            assert!(deferred
                .store(acb)
                .identical_to(immediate.store(immediate.view("acb").unwrap())));
        }
    }

    #[test]
    fn set_maintenance_back_to_immediate_refreshes_first() {
        let mut db = deferred_db();
        let acb = db.view("acb").unwrap();
        db.apply(SCRIPT[0]).unwrap();
        let commit = db.set_maintenance(acb, MaintenanceMode::Immediate).unwrap();
        assert!(commit.is_some(), "leaving Deferred folds the batch");
        assert_eq!(db.maintenance(acb), MaintenanceMode::Immediate);
        check_consistent(&db);
        // Subsequent commits maintain immediately again.
        let c = db.apply(SCRIPT[1]).unwrap();
        assert!(!c.report(acb).deferred);
        check_consistent(&db);
        // Entering Deferred never commits.
        assert!(db.set_maintenance(acb, MaintenanceMode::Deferred).unwrap().is_none());
    }

    #[test]
    fn refresh_every_policy_fires_at_the_threshold() {
        let mut db = Database::builder()
            .document(FIG12)
            .view_deferred("acb", "//a{id}[//c{id}]//b{id}")
            .refresh_every(3)
            .build()
            .unwrap();
        let acb = db.view("acb").unwrap();
        db.apply(SCRIPT[0]).unwrap();
        db.apply(SCRIPT[1]).unwrap();
        assert_eq!(db.deferred_commits(acb), 2);
        db.apply(SCRIPT[2]).unwrap();
        // The third deferred commit crossed the threshold: the
        // refresh sealed as commit 4 on the way out of apply().
        assert_eq!(db.deferred_commits(acb), 0);
        assert_eq!(db.last_seq(), 4);
        check_consistent(&db);
    }
}
