//! Soundness of the static analyzer against the dynamic engine.
//!
//! Every verdict `xivm_analyze` emits is a claim about *all*
//! DTD-conforming documents; this suite checks those claims against
//! the runtime on random conforming documents and random
//! conformance-preserving update scripts:
//!
//! * **relevance** — a view proved `Irrelevant` to a statement has an
//!   empty dynamic delta when the statement runs without any static
//!   machinery;
//! * **independence** — a batch proved pairwise independent has zero
//!   dynamic `find_conflicts` hits between any two of its PULs;
//! * **transparency** — a database built with `.analyze(Warn)` (skip
//!   masks and the conflict-scan fast path active) produces commits
//!   bit-identical to one built without analysis, on the plain,
//!   pipelined and transactional paths at every worker count.

use proptest::prelude::*;
use xivm::analyze::Analyzer;
use xivm::pattern::compile::view_tuples;
use xivm::prelude::*;
use xivm::pulopt::find_conflicts;
use xivm::update::compute_pul;

// ---------------------------------------------------------------------
// A hierarchical DTD and a generator for conforming documents
// ---------------------------------------------------------------------

/// Star-only content models: deleting any node or inserting any
/// allowed child preserves conformance, so every intermediate document
/// a script produces stays inside the analyzer's soundness domain.
const DTD: &str = "r -> (a | d)*\n\
                   a -> (a | b | c)*\n\
                   b -> (b | c)*\n\
                   c -> c*\n\
                   d -> d*";

fn allowed_children(tag: &str) -> &'static [&'static str] {
    match tag {
        "r" => &["a", "d"],
        "a" => &["a", "b", "c"],
        "b" => &["b", "c"],
        "c" => &["c"],
        _ => &["d"],
    }
}

/// Decodes a byte seed into a DTD-conforming document: child tags are
/// only ever drawn from the parent's content model.
fn grow(tag: &str, seeds: &mut std::vec::IntoIter<u8>, depth: u32, out: &mut String) {
    let n = seeds.next().map_or(0, |s| s % 4);
    if depth == 0 || n == 0 {
        out.push_str(&format!("<{tag}/>"));
        return;
    }
    out.push_str(&format!("<{tag}>"));
    for _ in 0..n {
        let kids = allowed_children(tag);
        let pick = seeds.next().map_or(0, |s| s as usize % kids.len());
        grow(kids[pick], seeds, depth - 1, out);
    }
    out.push_str(&format!("</{tag}>"));
}

fn arb_conforming_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..255, 8..64).prop_map(|seeds| {
        let mut out = String::new();
        grow("r", &mut seeds.into_iter(), 4, &mut out);
        out
    })
}

const VIEWS: [(&str, &str); 5] = [
    ("ab", "//a{id}//b{id}"),
    ("d_only", "//d{id}"),
    ("b_text", "//b{val}"),
    ("ac", "//a{id}//c{id}"),
    ("rd", "//r{id}//d{id,val}"),
];

/// Conformance-preserving statement pool: every insert adds children
/// the target's content model allows.
const STATEMENTS: [&str; 10] = [
    "insert <c/> into //b",
    "insert <b><c/></b> into //a",
    "insert <d/> into /r",
    "insert <c/> into //a//c",
    "insert <a><b/></a> into /r/a",
    "insert <d><d/></d> into //d",
    "delete //c",
    "delete //b//c",
    "delete //a//b",
    "delete //d//d",
];

fn make_analyzer() -> Analyzer {
    let dtd = xivm::dtd::parse_dtd(DTD).unwrap();
    let patterns: Vec<(&str, TreePattern)> =
        VIEWS.iter().map(|&(n, p)| (n, parse_pattern(p).unwrap())).collect();
    Analyzer::new(Some(&dtd), patterns.iter().map(|(n, p)| (*n, p)))
}

fn build_db(doc: &str, workers: usize, pipeline: usize, analyze: bool) -> Database {
    let mut b = Database::builder().document(doc).workers(workers).pipeline(pipeline);
    if analyze {
        b = b.dtd(DTD).analyze(AnalyzeMode::Warn);
    }
    for (name, pattern) in VIEWS {
        b = b.view(name, pattern);
    }
    b.build().unwrap()
}

/// Every view of `db` must equal its from-scratch evaluation.
fn consistent(db: &Database) -> Result<(), TestCaseError> {
    for h in db.handles() {
        let pattern = db.pattern(h).clone();
        let expected = ViewStore::from_counted(&pattern, view_tuples(db.document(), &pattern));
        prop_assert!(
            db.store(h).same_content_as(&expected),
            "view {} diverged:\n{}",
            db.name(h),
            db.store(h).diff_description(&expected)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Relevance soundness and transparency: a view the analyzer
    /// proves `Irrelevant` to a statement has an *empty dynamic
    /// delta* (measured on a database with no static machinery at
    /// all), and the analyzing database — which skips exactly those
    /// views — stays bit-identical to the plain one.
    #[test]
    fn static_verdicts_are_sound(
        doc in arb_conforming_doc(),
        script in prop::collection::vec(0usize..STATEMENTS.len(), 1..5),
        workers in 1usize..5,
    ) {
        let analyzer = make_analyzer();
        let mut on = build_db(&doc, workers, 1, true);
        let mut off = build_db(&doc, workers, 1, false);
        for &s in &script {
            let text = STATEMENTS[s];
            let stmt = parse_statement(text).unwrap();
            let verdicts = analyzer.verdicts(&analyzer.statement_shape(&stmt));
            let c_on = on.apply(text).unwrap();
            let c_off = off.apply(text).unwrap();
            prop_assert!(c_on.same_outcome(&c_off), "outcomes diverged under `{text}`");
            prop_assert_eq!(c_off.static_skips(), 0, "no skips without analyze(..)");
            for (i, h) in off.handles().into_iter().enumerate() {
                if verdicts[i].can_skip() {
                    prop_assert!(
                        c_off.delta(h).is_empty(),
                        "view {} was proved irrelevant to `{text}` on doc {} \
                         but its dynamic delta is non-empty",
                        off.name(h),
                        doc
                    );
                    let r = c_off.report(h);
                    prop_assert_eq!(
                        r.tuples_added + r.tuples_removed + r.tuples_modified,
                        0,
                        "irrelevant views must see no dynamic tuple change"
                    );
                    prop_assert_eq!(
                        r.derivations_added + r.derivations_removed,
                        0,
                        "irrelevant views must see no dynamic derivation change"
                    );
                }
            }
            consistent(&on)?;
        }
        prop_assert_eq!(on.serialize(), off.serialize());
    }

    /// Independence soundness: a batch the analyzer proves pairwise
    /// independent has zero dynamic conflicts — checked directly on
    /// the raw PULs with `find_conflicts` — and the user-facing
    /// `independent()` transaction commits identically with the scan
    /// skipped (analysis on) or run (analysis off).
    #[test]
    fn static_independence_implies_no_dynamic_conflicts(
        doc in arb_conforming_doc(),
        picks in prop::collection::vec(0usize..STATEMENTS.len(), 2..4),
    ) {
        let analyzer = make_analyzer();
        let stmts: Vec<UpdateStatement> =
            picks.iter().map(|&i| parse_statement(STATEMENTS[i]).unwrap()).collect();
        if !analyzer.batch_independent(&stmts) {
            return Ok(()); // nothing claimed, nothing to check
        }
        // the dynamic oracle: no Figure 15 conflict between any pair
        let d = parse_document(&doc).unwrap();
        let puls: Vec<_> = stmts.iter().map(|s| compute_pul(&d, s)).collect();
        for i in 0..puls.len() {
            for j in i + 1..puls.len() {
                let conflicts = find_conflicts(&puls[i], &puls[j]);
                prop_assert!(
                    conflicts.is_empty(),
                    "statically independent batch {:?} has dynamic conflicts {:?} on doc {}",
                    picks.iter().map(|&i| STATEMENTS[i]).collect::<Vec<_>>(),
                    conflicts,
                    doc
                );
            }
        }
        // and through the façade: scan skipped, outcome identical
        let mut on = build_db(&doc, 1, 1, true);
        let mut off = build_db(&doc, 1, 1, false);
        let commit_with = |db: &mut Database| {
            let mut tx = db.transaction().independent();
            for &i in &picks {
                tx = tx.statement(STATEMENTS[i]);
            }
            tx.commit().unwrap()
        };
        let c_on = commit_with(&mut on);
        let c_off = commit_with(&mut off);
        prop_assert!(c_on.same_outcome(&c_off));
        prop_assert_eq!(on.conflict_scans_skipped(), 1, "the provable batch skips the scan");
        prop_assert_eq!(off.conflict_scans_skipped(), 0);
        prop_assert_eq!(on.serialize(), off.serialize());
        consistent(&on)?;
    }

    /// Transparency on the overlapped path: with pipelining at depth 4
    /// the per-commit skip masks ride the window steps, and every
    /// commit stays bit-identical to the unanalyzed database.
    #[test]
    fn pipelined_masks_are_bit_identical(
        doc in arb_conforming_doc(),
        script in prop::collection::vec(0usize..STATEMENTS.len(), 2..6),
        workers in 1usize..4,
    ) {
        let mut on = build_db(&doc, workers, 4, true);
        let mut off = build_db(&doc, workers, 4, false);
        let stmts: Vec<&str> = script.iter().map(|&i| STATEMENTS[i]).collect();
        let cs_on = on.apply_pipelined(stmts.clone()).unwrap();
        let cs_off = off.apply_pipelined(stmts).unwrap();
        prop_assert_eq!(cs_on.len(), cs_off.len());
        for (a, b) in cs_on.iter().zip(&cs_off) {
            prop_assert!(a.same_outcome(b), "pipelined outcomes diverged at seq {}", a.seq);
        }
        prop_assert_eq!(on.serialize(), off.serialize());
        consistent(&on)?;
    }
}

/// The suite is not vacuous: on this catalog the analyzer does prove
/// skips (d_only × subtree-of-a statements) and the engine does take
/// them.
#[test]
fn skips_actually_fire_on_this_catalog() {
    let analyzer = make_analyzer();
    let stmt = parse_statement("insert <c/> into //b").unwrap();
    let verdicts = analyzer.verdicts(&analyzer.statement_shape(&stmt));
    assert!(verdicts.iter().any(|v| v.can_skip()), "the catalog must exercise Irrelevant");

    let mut db = build_db("<r><a><b/><c/></a><d/></r>", 1, 1, true);
    let commit = db.apply("insert <c/> into //b").unwrap();
    assert!(commit.static_skips() > 0, "the engine must take the proved skips");
}
