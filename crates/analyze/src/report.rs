//! Findings, severities and the analysis report.

use crate::relevance::RelevanceMatrix;
use std::fmt;

/// How the `Database` builder reacts to analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// Error-severity findings (dead views) abort `build()`.
    Strict,
    /// Findings are recorded on the report but never abort; static
    /// skip and independence fast paths stay active.
    Warn,
    /// No analysis: no findings, no static fast paths. The default —
    /// analysis is opt-in per database.
    #[default]
    Off,
}

/// Severity of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (e.g. a statement pattern that is always a no-op).
    Warning,
    /// A definite defect (e.g. a view that can never hold a tuple).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub severity: Severity,
    /// The view or statement the finding is about.
    pub subject: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.severity, self.subject, self.message)
    }
}

/// Everything one analysis run produced: findings plus the relevance
/// matrix the engine's skip masks are derived from.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    pub findings: Vec<Finding>,
    pub matrix: RelevanceMatrix,
    /// Whether a schema (DTD) informed the analysis; without one the
    /// verdicts rely on label alphabets alone.
    pub schema_informed: bool,
}

impl AnalysisReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// True when any error-severity finding exists — the condition
    /// that fails `AnalyzeMode::Strict` builds and the CI lint gate.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "analysis clean ({} views)", self.matrix.views.len());
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}
