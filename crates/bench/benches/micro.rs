//! Criterion micro-benchmarks for the substrate operators: Dewey ID
//! operations, the stack-based structural join, XPath target finding
//! and full pattern evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use xivm_algebra::{structural_join, Axis, Column, Field, Relation, Schema, Tuple};
use xivm_pattern::compile::view_tuples;
use xivm_pattern::xpath::{eval_path, parse_xpath};
use xivm_xmark::{generate_sized, view_pattern};
use xivm_xml::{dewey::Step, DeweyId, LabelId};

fn dewey_ops(c: &mut Criterion) {
    let deep =
        DeweyId::from_steps((0..12).map(|i| Step::new(LabelId(i), 7 + u64::from(i))).collect());
    let mid = deep.parent().unwrap().parent().unwrap();
    c.bench_function("dewey/is_ancestor_of", |b| {
        b.iter(|| black_box(mid.is_ancestor_of(black_box(&deep))))
    });
    c.bench_function("dewey/doc_cmp", |b| b.iter(|| black_box(mid.doc_cmp(black_box(&deep)))));
    c.bench_function("dewey/encode_decode", |b| {
        b.iter(|| {
            let enc = deep.encode();
            black_box(DeweyId::decode(&enc))
        })
    });
}

fn one_col(name: &str, ids: Vec<DeweyId>) -> Relation {
    let mut r = Relation::with_rows(
        Schema::new(vec![Column::id_only(name)]),
        ids.into_iter().map(|i| Tuple::new(vec![Field::id_only(i)])).collect(),
    );
    r.sort_by_col(0);
    r
}

fn struct_join(c: &mut Criterion) {
    // a synthetic two-level tree: 1000 parents × 10 children
    let parents: Vec<DeweyId> = (0..1000u64)
        .map(|i| DeweyId::from_steps(vec![Step::new(LabelId(0), 1), Step::new(LabelId(1), i + 1)]))
        .collect();
    let children: Vec<DeweyId> =
        parents.iter().flat_map(|p| (0..10u64).map(move |j| p.child(LabelId(2), j + 1))).collect();
    let left = one_col("p", parents);
    let right = one_col("c", children);
    c.bench_function("structjoin/1000x10000_descendant", |b| {
        b.iter(|| black_box(structural_join(&left, 0, &right, 0, Axis::Descendant).len()))
    });
    c.bench_function("structjoin/1000x10000_child", |b| {
        b.iter(|| black_box(structural_join(&left, 0, &right, 0, Axis::Child).len()))
    });
}

fn xpath_and_views(c: &mut Criterion) {
    let doc = generate_sized(200 * 1024);
    let path = parse_xpath("/site/people/person[phone and homepage]").unwrap();
    c.bench_function("xpath/find_targets_200KB", |b| {
        b.iter(|| black_box(eval_path(&doc, &path).len()))
    });
    let q1 = view_pattern("Q1");
    c.bench_function("pattern/eval_q1_200KB", |b| {
        b.iter_batched(|| (), |_| black_box(view_tuples(&doc, &q1).len()), BatchSize::SmallInput)
    });
}

fn holistic_vs_binary(c: &mut Criterion) {
    use xivm_algebra::{path_stack, ChainLevel};
    // three-level chain: 200 a's × 5 b's × 4 c's
    let a: Vec<DeweyId> = (0..200u64)
        .map(|i| DeweyId::from_steps(vec![Step::new(LabelId(0), 1), Step::new(LabelId(1), i + 1)]))
        .collect();
    let b: Vec<DeweyId> =
        a.iter().flat_map(|p| (0..5u64).map(move |j| p.child(LabelId(2), j + 1))).collect();
    let cs: Vec<DeweyId> =
        b.iter().flat_map(|p| (0..4u64).map(move |j| p.child(LabelId(3), j + 1))).collect();
    let (ra, rb, rc) = (one_col("a", a), one_col("b", b), one_col("c", cs));
    c.bench_function("twig/path_stack_chain3", |bch| {
        bch.iter(|| {
            let levels = [
                ChainLevel { input: &ra, axis: Axis::Descendant },
                ChainLevel { input: &rb, axis: Axis::Descendant },
                ChainLevel { input: &rc, axis: Axis::Descendant },
            ];
            black_box(path_stack(&levels).len())
        })
    });
    c.bench_function("twig/binary_joins_chain3", |bch| {
        bch.iter(|| {
            let mut ab = structural_join(&ra, 0, &rb, 0, Axis::Descendant);
            ab.sort_by_col(1);
            black_box(structural_join(&ab, 1, &rc, 0, Axis::Descendant).len())
        })
    });
}

criterion_group!(benches, dewey_ops, struct_join, xpath_and_views, holistic_vs_binary);
criterion_main!(benches);
