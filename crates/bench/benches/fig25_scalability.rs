//! Figure 25: scalability with source-document size — insert (a) and
//! delete (b) propagation of update A6_A to view Q1 across the size
//! ladder, with the full phase breakdown.

use xivm_bench::{averaged, figure_header, phase_cells, repetitions, row, PHASE_COLUMNS};
use xivm_core::SnowcapStrategy;
use xivm_xmark::sizes::ladder;
use xivm_xmark::{generate_sized, update_by_name, view_pattern};

fn main() {
    let reps = repetitions();
    let pattern = view_pattern("Q1");
    let update = update_by_name("A6_A");
    for (figure, is_insert) in [("Figure 25a", true), ("Figure 25b", false)] {
        let kind = if is_insert { "insert" } else { "delete" };
        figure_header(figure, &format!("scalability of view {kind} (view Q1, update A6_A)"));
        let mut header = vec!["doc_size".to_owned()];
        header.extend(PHASE_COLUMNS.iter().map(|s| s.to_string()));
        row(&header);
        for size in ladder() {
            let doc = generate_sized(size.bytes);
            let stmt = if is_insert { update.insert_stmt() } else { update.delete_stmt() };
            let t = averaged(reps, || {
                xivm_bench::run_once(&doc, &pattern, &stmt, SnowcapStrategy::MinimalChain).timings
            });
            let mut cells = vec![size.label.to_owned()];
            cells.extend(phase_cells(&t));
            row(&cells);
        }
    }
}
