//! A sorted index over a set of subtree roots (a "forest" of Dewey
//! IDs), answering coverage queries in `O(log n)`.
//!
//! The maintenance engine asks two questions against potentially large
//! root sets (e.g. the targets of `delete /site/people/person`):
//! *is this node inside any of the subtrees?* (snowcap retain
//! filtering) and *does this node's subtree contain any root?*
//! (PIMT / PDMT affectedness). Linear scans make both O(|rel|·|roots|);
//! this index reduces them to binary searches over the maximal roots.

use crate::dewey::DeweyId;

/// An immutable set of subtree roots in document order.
///
/// [`Self::new`] reduces the set to its maximal elements (roots nested
/// under other roots are redundant for *coverage*); [`Self::with_nested`]
/// keeps every root, which the subtree-containment queries need when
/// roots may nest — e.g. insertion targets, where `insert into //a`
/// legitimately targets both an `a` and an `a` inside it.
#[derive(Debug, Clone, Default)]
pub struct DeweyForest {
    /// Roots in document order; maximal (no element an ancestor of
    /// another) iff `reduced`.
    roots: Vec<DeweyId>,
    reduced: bool,
}

impl DeweyForest {
    /// Builds the reduced (maximal-roots) form — the right shape for
    /// [`Self::covers`].
    pub fn new(mut roots: Vec<DeweyId>) -> Self {
        roots.sort_by(|a, b| a.doc_cmp(b));
        let mut maximal: Vec<DeweyId> = Vec::with_capacity(roots.len());
        for r in roots {
            match maximal.last() {
                Some(last) if last.is_ancestor_or_self_of(&r) => {} // nested: drop
                _ => maximal.push(r),
            }
        }
        DeweyForest { roots: maximal, reduced: true }
    }

    /// Keeps every distinct root, including nested ones. Required for
    /// [`Self::has_descendant_or_self_root`] /
    /// [`Self::has_proper_descendant_root`] when roots may nest: the
    /// maximal-roots reduction would hide an inner root from a probe
    /// that lies strictly between it and an outer root. Not usable
    /// with [`Self::covers`].
    pub fn with_nested(mut roots: Vec<DeweyId>) -> Self {
        roots.sort_by(|a, b| a.doc_cmp(b));
        roots.dedup();
        DeweyForest { roots, reduced: false }
    }

    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    pub fn len(&self) -> usize {
        self.roots.len()
    }

    pub fn roots(&self) -> &[DeweyId] {
        &self.roots
    }

    /// True iff `id` lies inside (or is) one of the subtrees.
    ///
    /// Because the maximal roots are disjoint subtrees in document
    /// order, the only candidate is the last root ≤ `id`. Only valid
    /// on the reduced form built by [`Self::new`].
    pub fn covers(&self, id: &DeweyId) -> bool {
        debug_assert!(self.reduced, "covers requires the maximal-roots form");
        let pos = self.roots.partition_point(|r| r.doc_cmp(id).is_le());
        pos > 0 && self.roots[pos - 1].is_ancestor_or_self_of(id)
    }

    /// True iff the subtree rooted at `id` contains at least one root
    /// (including `id` itself).
    ///
    /// Roots inside `id`'s subtree form a contiguous doc-order range
    /// starting at the first root ≥ `id`.
    pub fn intersects_subtree(&self, id: &DeweyId) -> bool {
        let pos = self.roots.partition_point(|r| r.doc_cmp(id).is_lt());
        if pos < self.roots.len() && id.is_ancestor_or_self_of(&self.roots[pos]) {
            return true;
        }
        // a root strictly before `id` could still cover it
        pos > 0 && self.roots[pos - 1].is_ancestor_or_self_of(id)
    }

    /// True iff the subtree rooted at `id` *properly* contains a root
    /// (the PDMT condition: a surviving node whose content shrank).
    pub fn has_proper_descendant_root(&self, id: &DeweyId) -> bool {
        let pos = self.roots.partition_point(|r| r.doc_cmp(id).is_le());
        pos < self.roots.len() && id.is_ancestor_of(&self.roots[pos])
    }

    /// True iff the subtree rooted at `id` contains a root, `id`
    /// itself included (the PIMT condition: the stored node is an
    /// insertion target or an ancestor of one).
    pub fn has_descendant_or_self_root(&self, id: &DeweyId) -> bool {
        let pos = self.roots.partition_point(|r| r.doc_cmp(id).is_lt());
        pos < self.roots.len() && id.is_ancestor_or_self_of(&self.roots[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dewey::Step;
    use crate::label::LabelId;

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    #[test]
    fn nested_roots_are_reduced() {
        let f = DeweyForest::new(vec![
            id(&[(0, 1), (1, 2)]),
            id(&[(0, 1), (1, 2), (2, 3)]), // nested under the first
            id(&[(0, 1), (1, 9)]),
        ]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn covers_matches_linear_scan() {
        let roots =
            vec![id(&[(0, 1), (1, 2)]), id(&[(0, 1), (1, 7)]), id(&[(0, 1), (1, 9), (2, 1)])];
        let f = DeweyForest::new(roots.clone());
        let probes = [
            id(&[(0, 1)]),
            id(&[(0, 1), (1, 2)]),
            id(&[(0, 1), (1, 2), (5, 5)]),
            id(&[(0, 1), (1, 3)]),
            id(&[(0, 1), (1, 7), (2, 2), (3, 3)]),
            id(&[(0, 1), (1, 9)]),
            id(&[(0, 1), (1, 9), (2, 1), (9, 9)]),
        ];
        for p in &probes {
            let expected = roots.iter().any(|r| r.is_ancestor_or_self_of(p));
            assert_eq!(f.covers(p), expected, "{p}");
        }
    }

    #[test]
    fn subtree_intersection_matches_linear_scan() {
        let roots = vec![id(&[(0, 1), (1, 2), (2, 3)]), id(&[(0, 1), (1, 7)])];
        let f = DeweyForest::new(roots.clone());
        let probes = [
            id(&[(0, 1)]),
            id(&[(0, 1), (1, 2)]),
            id(&[(0, 1), (1, 2), (2, 3)]),
            id(&[(0, 1), (1, 2), (2, 4)]),
            id(&[(0, 1), (1, 3)]),
            id(&[(0, 1), (1, 7), (2, 8)]),
        ];
        for p in &probes {
            let expected =
                roots.iter().any(|r| p.is_ancestor_or_self_of(r) || r.is_ancestor_or_self_of(p));
            assert_eq!(f.intersects_subtree(p), expected, "{p}");
            let expected_proper = roots.iter().any(|r| p.is_ancestor_of(r));
            assert_eq!(f.has_proper_descendant_root(p), expected_proper, "{p}");
        }
    }

    #[test]
    fn nested_form_sees_inner_roots() {
        // outer root a, inner root a.b.c — a probe at a.b lies strictly
        // between them.
        let outer = id(&[(0, 1)]);
        let probe = id(&[(0, 1), (1, 2)]);
        let inner = id(&[(0, 1), (1, 2), (2, 3)]);
        let reduced = DeweyForest::new(vec![outer.clone(), inner.clone()]);
        assert_eq!(reduced.len(), 1, "reduction keeps only the outer root");
        assert!(!reduced.has_descendant_or_self_root(&probe), "inner root was hidden");
        let nested = DeweyForest::with_nested(vec![outer, inner]);
        assert_eq!(nested.len(), 2);
        assert!(nested.has_descendant_or_self_root(&probe));
        assert!(nested.has_proper_descendant_root(&probe));
        assert!(!nested.has_descendant_or_self_root(&id(&[(0, 1), (1, 9)])));
    }

    #[test]
    fn nested_form_dedups_exact_duplicates() {
        let r = id(&[(0, 1), (1, 2)]);
        let f = DeweyForest::with_nested(vec![r.clone(), r.clone(), r]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn empty_forest() {
        let f = DeweyForest::new(vec![]);
        assert!(f.is_empty());
        assert!(!f.covers(&id(&[(0, 1)])));
        assert!(!f.intersects_subtree(&id(&[(0, 1)])));
    }
}
