//! Runtime Δ⁺ constraint checking (Section 3.3).
//!
//! "From the DTD rules, one can infer a set of constraints on the Δ⁺
//! tables, and check them before applying the update." Two constraint
//! families are derived:
//!
//! 1. *mandatory descendants* — every inserted node labeled `l` must
//!    contain each label of `mandatory(l)` in its subtree
//!    (Example 3.9: inserting `<a><b/></a>` under d1 is rejected
//!    because `b` requires a `c`);
//! 2. *sibling co-occurrence* — inserting a child whose label belongs
//!    to a repeated group of the target's content model requires the
//!    whole group in the same insertion (Example 3.10).

use crate::analysis::{cooccurrence_groups, mandatory_descendants};
use crate::grammar::Dtd;
use std::collections::BTreeSet;
use std::fmt;
use xivm_xml::{parse_document, Document, NodeId, XmlError};

/// A Δ⁺ implication derived from the DTD, e.g.
/// `Δ⁺_b ≠ ∅ ⇒ Δ⁺_c ≠ ∅`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Implication {
    pub if_present: String,
    pub then_present: String,
}

impl fmt::Display for Implication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ⁺_{} ≠ ∅ ⇒ Δ⁺_{} ≠ ∅", self.if_present, self.then_present)
    }
}

/// Why an insertion was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaViolation {
    /// A node labeled `label` lacks mandatory descendant `missing`.
    MissingDescendant { label: String, missing: String },
    /// Label `label` was inserted under `target` without its group
    /// partners.
    MissingSibling { target: String, label: String, missing: String },
    /// The inserted fragment is not well-formed XML.
    Malformed(String),
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaViolation::MissingDescendant { label, missing } => {
                write!(f, "inserted <{label}> lacks mandatory descendant <{missing}>")
            }
            SchemaViolation::MissingSibling { target, label, missing } => write!(
                f,
                "inserting <{label}> under <{target}> requires <{missing}> in the same insertion"
            ),
            SchemaViolation::Malformed(m) => write!(f, "malformed insertion fragment: {m}"),
        }
    }
}

impl std::error::Error for SchemaViolation {}

/// The full set of pairwise Δ⁺ implications the DTD induces
/// (Examples 3.9 / 3.10 list instances of these).
pub fn implications(dtd: &Dtd) -> Vec<Implication> {
    let mut out = Vec::new();
    for (label, mandatory) in mandatory_descendants(dtd) {
        for m in mandatory {
            out.push(Implication { if_present: label.clone(), then_present: m });
        }
    }
    for groups in cooccurrence_groups(dtd).values() {
        for group in groups {
            for a in group {
                for b in group {
                    if a != b {
                        out.push(Implication { if_present: a.clone(), then_present: b.clone() });
                    }
                }
            }
        }
    }
    out.sort_by(|x, y| {
        (x.if_present.as_str(), x.then_present.as_str())
            .cmp(&(y.if_present.as_str(), y.then_present.as_str()))
    });
    out.dedup();
    out
}

/// Checks an insertion of `forest_xml` under an element labeled
/// `target_label` against the DTD-derived constraints. `Ok(())` means
/// the update passes the (necessary, not sufficient) Δ⁺ checks; an
/// `Err` identifies a certain violation, letting the user "proceed or
/// reformulate the update".
pub fn check_insert(
    dtd: &Dtd,
    target_label: &str,
    forest_xml: &str,
) -> Result<(), SchemaViolation> {
    let scratch = parse_document(&format!("<dtd-check-root>{forest_xml}</dtd-check-root>"))
        .map_err(|e: XmlError| SchemaViolation::Malformed(e.to_string()))?;
    let root = scratch.root().expect("scratch root exists");

    // 1. mandatory descendants, per inserted node
    let mandatory = mandatory_descendants(dtd);
    for n in scratch.descendants_or_self(root) {
        if n == root || !scratch.node(n).is_element() {
            continue;
        }
        let label = scratch.label_name(scratch.node(n).label).to_owned();
        if let Some(required) = mandatory.get(&label) {
            for miss in required {
                if !subtree_contains_label(&scratch, n, miss) {
                    return Err(SchemaViolation::MissingDescendant {
                        label,
                        missing: miss.clone(),
                    });
                }
            }
        }
    }

    // 2. sibling co-occurrence under the target
    let top_labels: BTreeSet<String> = scratch
        .children_of(root)
        .iter()
        .filter(|&&c| scratch.node(c).is_element())
        .map(|&c| scratch.label_name(scratch.node(c).label).to_owned())
        .collect();
    if let Some(groups) = cooccurrence_groups(dtd).get(target_label) {
        for group in groups {
            let touches = top_labels.iter().any(|l| group.contains(l));
            if touches {
                for member in group {
                    if !top_labels.contains(member) {
                        return Err(SchemaViolation::MissingSibling {
                            target: target_label.to_owned(),
                            label: top_labels
                                .iter()
                                .find(|l| group.contains(*l))
                                .cloned()
                                .unwrap_or_default(),
                            missing: member.clone(),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

fn subtree_contains_label(doc: &Document, node: NodeId, label: &str) -> bool {
    doc.descendants_or_self(node)
        .into_iter()
        .skip(1)
        .any(|n| doc.node(n).is_element() && doc.label_name(doc.node(n).label) == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{figure_5a, figure_5b};

    /// Example 3.9: inserting <a><b/></a> violates d1 (b needs a c).
    #[test]
    fn example_3_9_rejected() {
        let dtd = figure_5a();
        let err = check_insert(&dtd, "AS", "<a><b></b></a>").unwrap_err();
        // detected on `a` (whose transitive requirements include c) —
        // the same root cause the paper pins on b's missing c
        assert!(matches!(
            err,
            SchemaViolation::MissingDescendant { ref missing, .. } if missing == "c"
        ));
        // the repaired update passes
        assert!(check_insert(&dtd, "AS", "<a><b><c/></b></a>").is_ok());
    }

    /// Example 3.10: inserting an `a` under d2 without b and c fails.
    #[test]
    fn example_3_10_sibling_groups() {
        let dtd = figure_5b();
        let err = check_insert(&dtd, "d2", "<a/>").unwrap_err();
        assert!(matches!(err, SchemaViolation::MissingSibling { .. }));
        assert!(check_insert(&dtd, "d2", "<a/><b/><c/>").is_ok());
    }

    #[test]
    fn implications_match_the_examples() {
        let d1 = implications(&figure_5a());
        assert!(d1.iter().any(|i| i.if_present == "b" && i.then_present == "c"), "{d1:?}");
        let d2 = implications(&figure_5b());
        assert!(d2.iter().any(|i| i.if_present == "a" && i.then_present == "b"));
        assert!(d2.iter().any(|i| i.if_present == "a" && i.then_present == "c"));
        // display form
        assert!(d2[0].to_string().contains("≠ ∅"));
    }

    #[test]
    fn malformed_fragment_is_reported() {
        let dtd = figure_5a();
        assert!(matches!(
            check_insert(&dtd, "AS", "<a><b></a>"),
            Err(SchemaViolation::Malformed(_))
        ));
    }

    #[test]
    fn unconstrained_labels_pass() {
        let dtd = figure_5a();
        assert!(check_insert(&dtd, "c", "<unknown/>").is_ok());
    }
}
