//! Pending update lists (Section 3.4).
//!
//! `compute-pul(u)` evaluates the statement's target path(s) and turns
//! the statement into a list of *atomic* operations over structural
//! IDs: `ins↘(n, forest)` (insert a forest after the last child of
//! `n`) and `del(n)` — the two fundamental operations of Section 5.2.

use crate::statement::UpdateStatement;
use xivm_pattern::xpath::eval_path;
use xivm_xml::{DeweyId, Document, NodeKind};

/// An atomic update operation, addressed by structural ID so PULs are
/// standalone values (they can be optimized away from the store,
/// Section 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicOp {
    /// `ins↘(target, forest)` — append the parsed forest as children.
    InsertInto { target: DeweyId, forest: String },
    /// `del(node)` — remove the subtree rooted at `node`.
    Delete { node: DeweyId },
}

impl AtomicOp {
    /// The target node the operation is addressed to.
    pub fn target(&self) -> &DeweyId {
        match self {
            AtomicOp::InsertInto { target, .. } => target,
            AtomicOp::Delete { node } => node,
        }
    }

    pub fn is_insert(&self) -> bool {
        matches!(self, AtomicOp::InsertInto { .. })
    }
}

/// A pending update list: the ordered atomic operations a statement
/// expands to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pul {
    pub ops: Vec<AtomicOp>,
}

impl Pul {
    pub fn new(ops: Vec<AtomicOp>) -> Self {
        Pul { ops }
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// IDs of all insertion targets (the `p1 … pk` of Proposition 3.8).
    pub fn insert_targets(&self) -> Vec<&DeweyId> {
        self.ops.iter().filter(|o| o.is_insert()).map(|o| o.target()).collect()
    }
}

/// `compute-pul`: expands a statement against the current document.
pub fn compute_pul(doc: &Document, stmt: &UpdateStatement) -> Pul {
    let mut ops = Vec::new();
    match stmt {
        UpdateStatement::Delete { target } => {
            for n in eval_path(doc, target) {
                ops.push(AtomicOp::Delete { node: doc.dewey(n) });
            }
        }
        UpdateStatement::Insert { target, xml } => {
            for n in eval_path(doc, target) {
                if doc.node(n).kind == NodeKind::Element {
                    ops.push(AtomicOp::InsertInto { target: doc.dewey(n), forest: xml.clone() });
                }
            }
        }
        UpdateStatement::InsertFrom { source, target } => {
            // Evaluate q1 on the *original* document (Section 2.3),
            // then insert the serialized copies under each q2 result.
            let forest: String =
                eval_path(doc, source).into_iter().map(|n| doc.content(n)).collect();
            if forest.is_empty() {
                return Pul::default();
            }
            for n in eval_path(doc, target) {
                if doc.node(n).kind == NodeKind::Element {
                    ops.push(AtomicOp::InsertInto { target: doc.dewey(n), forest: forest.clone() });
                }
            }
        }
        UpdateStatement::Replace { target, xml } => {
            // Lowered to the two fundamental operations: `del(n)` plus
            // `ins↘(parent(n), forest)`. The root has no parent and is
            // skipped; for nested targets the inner ops become no-ops
            // at apply time (their context vanishes with the outer
            // subtree), so only the outermost occurrence is replaced.
            for n in eval_path(doc, target) {
                let Some(parent) = doc.parent_of(n) else { continue };
                if doc.node(parent).kind != NodeKind::Element {
                    continue;
                }
                ops.push(AtomicOp::Delete { node: doc.dewey(n) });
                ops.push(AtomicOp::InsertInto { target: doc.dewey(parent), forest: xml.clone() });
            }
        }
    }
    Pul::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_xml::parse_document;

    fn doc() -> Document {
        parse_document("<a><c><b/></c><f><b/></f></a>").unwrap()
    }

    #[test]
    fn delete_pul_lists_matching_nodes() {
        let d = doc();
        let stmt = UpdateStatement::delete("//c//b").unwrap();
        let pul = compute_pul(&d, &stmt);
        assert_eq!(pul.len(), 1);
        assert!(!pul.ops[0].is_insert());
    }

    #[test]
    fn insert_pul_one_op_per_target() {
        let d = doc();
        let stmt = UpdateStatement::insert("//b", "<x/>").unwrap();
        let pul = compute_pul(&d, &stmt);
        assert_eq!(pul.len(), 2);
        assert_eq!(pul.insert_targets().len(), 2);
    }

    #[test]
    fn insert_skips_non_element_targets() {
        let d = parse_document("<a>txt<b/></a>").unwrap();
        let stmt = UpdateStatement::insert("//a/text()", "<x/>").unwrap();
        assert!(compute_pul(&d, &stmt).is_empty());
    }

    #[test]
    fn insert_from_copies_source_content() {
        let d = parse_document("<r><tpl><i>1</i></tpl><dst/></r>").unwrap();
        let stmt = UpdateStatement::insert_from("//tpl/i", "//dst").unwrap();
        let pul = compute_pul(&d, &stmt);
        assert_eq!(pul.len(), 1);
        match &pul.ops[0] {
            AtomicOp::InsertInto { forest, .. } => assert_eq!(forest, "<i>1</i>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_source_yields_empty_pul() {
        let d = doc();
        let stmt = UpdateStatement::insert_from("//nothing", "//c").unwrap();
        assert!(compute_pul(&d, &stmt).is_empty());
    }

    #[test]
    fn replace_lowers_to_delete_plus_insert_at_parent() {
        let d = doc();
        let stmt = UpdateStatement::replace("//c//b", "<x/>").unwrap();
        let pul = compute_pul(&d, &stmt);
        assert_eq!(pul.len(), 2);
        let AtomicOp::Delete { node } = &pul.ops[0] else { panic!("expected del first") };
        let AtomicOp::InsertInto { target, forest } = &pul.ops[1] else {
            panic!("expected ins second")
        };
        assert_eq!(forest, "<x/>");
        assert!(target.is_parent_of(node), "insert goes to the deleted node's parent");
    }

    #[test]
    fn replace_of_root_is_skipped() {
        let d = doc();
        let stmt = UpdateStatement::replace("/a", "<z/>").unwrap();
        assert!(compute_pul(&d, &stmt).is_empty());
    }

    #[test]
    fn replace_applies_end_to_end() {
        let mut d = parse_document("<a><c><b/></c><f><b/></f></a>").unwrap();
        let stmt = UpdateStatement::replace("//c", "<g><h/></g>").unwrap();
        let pul = compute_pul(&d, &stmt);
        crate::apply::apply_pul(&mut d, &pul).unwrap();
        assert_eq!(
            xivm_xml::serialize_document(&d),
            "<a><f><b/></f><g><h/></g></a>",
            "old subtree removed, replacement appended under the parent"
        );
    }
}
