//! Stack-based structural join.
//!
//! The physical join the paper assumes from the host engine
//! (Section 3.4): given two relations sorted in document order on their
//! join columns, produce all concatenated tuples whose IDs satisfy a
//! `≺` (parent) or `≺≺` (ancestor) relationship, in time
//! `O(|L| + |R| + |out|)` — the Stack-Tree join of Al-Khalifa et al.,
//! adapted to Dewey IDs where the ancestor test is a prefix test.

use crate::predicate::Axis;
use crate::relation::Relation;
use std::ops::Range;
use xivm_xml::DeweyId;

/// Joins `left` (the upper/ancestor side, on `left_col`) with `right`
/// (the lower/descendant side, on `right_col`).
///
/// Both inputs must be sorted in document order on their join columns;
/// this is asserted in debug builds. The output schema is the
/// concatenation of the input schemas and the output is sorted by the
/// right join column (a property downstream joins rely on).
pub fn structural_join(
    left: &Relation,
    left_col: usize,
    right: &Relation,
    right_col: usize,
    axis: Axis,
) -> Relation {
    debug_assert!(left.is_sorted_by_col(left_col), "left input must be sorted");
    debug_assert!(right.is_sorted_by_col(right_col), "right input must be sorted");

    let schema = left.schema.concat(&right.schema);
    let mut out = Relation::new(schema);
    if left.is_empty() || right.is_empty() {
        return out;
    }

    let left_groups = group_by_id(left, left_col);
    let right_groups = group_by_id(right, right_col);

    // Stack of left groups forming a nested ancestor chain.
    let mut stack: Vec<(DeweyId, Range<usize>)> = Vec::new();
    let mut li = 0usize;

    for (rid, rrange) in right_groups {
        // Push every left group that starts before (or at) the current
        // right node in document order.
        while li < left_groups.len() && left_groups[li].0.doc_cmp(&rid).is_le() {
            let (lid, lrange) = left_groups[li].clone();
            while let Some((top, _)) = stack.last() {
                if top.is_ancestor_or_self_of(&lid) {
                    break;
                }
                stack.pop();
            }
            stack.push((lid, lrange));
            li += 1;
        }
        // Drop finished groups: anything on the stack that is neither
        // the current right node nor an ancestor of it precedes it in
        // document order with a closed subtree, so it can never match a
        // later right node either. Ancestor-*or-self* keeps left nodes
        // equal to the right node alive for their own descendants.
        while let Some((top, _)) = stack.last() {
            if top.is_ancestor_or_self_of(&rid) {
                break;
            }
            stack.pop();
        }
        if stack.is_empty() {
            continue;
        }
        match axis {
            Axis::Descendant => {
                for (lid, lrange) in &stack {
                    if lid.is_ancestor_of(&rid) {
                        emit(&mut out, left, lrange.clone(), right, rrange.clone());
                    }
                }
            }
            Axis::Child => {
                // In a nested chain at most one entry can be the parent.
                let want_depth = rid.depth().saturating_sub(1);
                if let Some((lid, lrange)) = stack.iter().find(|(lid, _)| lid.depth() == want_depth)
                {
                    if lid.is_parent_of(&rid) {
                        emit(&mut out, left, lrange.clone(), right, rrange.clone());
                    }
                }
            }
        }
    }
    out
}

fn group_by_id(rel: &Relation, col: usize) -> Vec<(DeweyId, Range<usize>)> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < rel.rows.len() {
        let id = rel.rows[start].field(col).id.clone();
        let mut end = start + 1;
        while end < rel.rows.len() && rel.rows[end].field(col).id == id {
            end += 1;
        }
        groups.push((id, start..end));
        start = end;
    }
    groups
}

fn emit(
    out: &mut Relation,
    left: &Relation,
    lrange: Range<usize>,
    right: &Relation,
    rrange: Range<usize>,
) {
    for l in lrange {
        for r in rrange.clone() {
            out.rows.push(left.rows[l].concat(&right.rows[r]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Column, Schema};
    use crate::tuple::{Field, Tuple};
    use xivm_xml::{dewey::Step, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    fn rel(name: &str, ids: Vec<DeweyId>) -> Relation {
        let schema = Schema::new(vec![Column::id_only(name)]);
        let rows = ids.into_iter().map(|i| Tuple::new(vec![Field::id_only(i)])).collect();
        let mut r = Relation::with_rows(schema, rows);
        r.sort_by_col(0);
        r
    }

    /// Nested-loop reference implementation.
    fn naive(left: &Relation, right: &Relation, axis: Axis) -> Vec<(DeweyId, DeweyId)> {
        let mut out = Vec::new();
        for l in &left.rows {
            for r in &right.rows {
                if axis.holds(&l.field(0).id, &r.field(0).id) {
                    out.push((l.field(0).id.clone(), r.field(0).id.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.1.doc_cmp(&b.1).then(a.0.doc_cmp(&b.0)));
        out
    }

    fn run_both(left: &Relation, right: &Relation, axis: Axis) {
        let joined = structural_join(left, 0, right, 0, axis);
        let mut got: Vec<_> =
            joined.rows.iter().map(|t| (t.field(0).id.clone(), t.field(1).id.clone())).collect();
        got.sort_by(|a, b| a.1.doc_cmp(&b.1).then(a.0.doc_cmp(&b.0)));
        assert_eq!(got, naive(left, right, axis));
    }

    #[test]
    fn ancestor_join_matches_naive() {
        // a tree:  a1 { b1 { c1 }, b2, a2 { b3 { c2 } } }
        let ancestors = rel(
            "a",
            vec![id(&[(0, 1)]), id(&[(0, 1), (0, 9)])], // a1, a2
        );
        let descendants = rel(
            "c",
            vec![
                id(&[(0, 1), (1, 2), (2, 3)]),         // c1 under b1
                id(&[(0, 1), (0, 9), (1, 4), (2, 5)]), // c2 under a2/b3
            ],
        );
        run_both(&ancestors, &descendants, Axis::Descendant);
        let j = structural_join(&ancestors, 0, &descendants, 0, Axis::Descendant);
        assert_eq!(j.len(), 3); // (a1,c1), (a1,c2), (a2,c2)
    }

    #[test]
    fn parent_join_matches_naive() {
        let parents = rel("b", vec![id(&[(0, 1), (1, 2)]), id(&[(0, 1), (1, 8)])]);
        let kids = rel(
            "c",
            vec![
                id(&[(0, 1), (1, 2), (2, 3)]),
                id(&[(0, 1), (1, 2), (2, 4)]),
                id(&[(0, 1), (1, 8), (3, 1), (2, 9)]), // grandchild, not child
            ],
        );
        run_both(&parents, &kids, Axis::Child);
        let j = structural_join(&parents, 0, &kids, 0, Axis::Child);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let a = rel("a", vec![id(&[(0, 1)])]);
        let none = rel("b", vec![]);
        assert!(structural_join(&a, 0, &none, 0, Axis::Descendant).is_empty());
        assert!(structural_join(&none, 0, &a, 0, Axis::Descendant).is_empty());
    }

    #[test]
    fn duplicate_ids_produce_cross_products() {
        // Two left tuples share the same a-node; both must pair with the
        // descendant.
        let schema = Schema::new(vec![Column::id_only("a"), Column::id_only("x")]);
        let a = id(&[(0, 1)]);
        let rows = vec![
            Tuple::new(vec![Field::id_only(a.clone()), Field::id_only(id(&[(9, 1)]))]),
            Tuple::new(vec![Field::id_only(a.clone()), Field::id_only(id(&[(9, 2)]))]),
        ];
        let left = Relation::with_rows(schema, rows);
        let right = rel("b", vec![id(&[(0, 1), (1, 5)])]);
        let j = structural_join(&left, 0, &right, 0, Axis::Descendant);
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema.arity(), 3);
    }

    #[test]
    fn output_is_sorted_by_right_column() {
        let ancestors = rel("a", vec![id(&[(0, 1)])]);
        let descendants =
            rel("b", vec![id(&[(0, 1), (1, 2)]), id(&[(0, 1), (1, 5)]), id(&[(0, 1), (1, 9)])]);
        let j = structural_join(&ancestors, 0, &descendants, 0, Axis::Descendant);
        assert!(j.is_sorted_by_col(1));
    }

    #[test]
    fn randomized_against_naive() {
        // Deterministic pseudo-random tree exercise.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let mut left_ids = Vec::new();
            let mut right_ids = Vec::new();
            for _ in 0..30 {
                let depth = 1 + (next() % 4) as usize;
                let steps: Vec<_> = (0..depth).map(|d| (d as u32, 1 + next() % 3)).collect();
                let d = id(&steps);
                if next() % 2 == 0 {
                    left_ids.push(d);
                } else {
                    right_ids.push(d);
                }
            }
            let l = rel("l", left_ids);
            let r = rel("r", right_ids);
            run_both(&l, &r, Axis::Descendant);
            run_both(&l, &r, Axis::Child);
        }
    }
}
