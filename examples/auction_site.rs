//! Auction-site scenario: the paper's XMark workload end to end.
//!
//! Generates an auction document, builds a [`Database`] materializing
//! two of the paper's views (Q1: person names, Q6: all items), then
//! streams a mix of catalog updates through it, comparing each
//! propagation against full recomputation.
//!
//! ```sh
//! cargo run --release --example auction_site
//! ```

use std::time::Instant;
use xivm::ivma::recompute_store;
use xivm::prelude::*;
use xivm::xmark::{generate_sized, update_by_name, view_pattern};

fn main() -> Result<(), Error> {
    let doc0 = generate_sized(200 * 1024);
    println!(
        "generated auction document: {} live nodes, {} persons, {} items",
        doc0.live_count(),
        doc0.canonical_nodes_named("person").len(),
        doc0.canonical_nodes_named("item").len(),
    );

    for view_name in ["Q1", "Q6"] {
        let mut db = Database::builder()
            .document(doc0.clone())
            .view(view_name, view_pattern(view_name))
            .build()?;
        let view = db.view(view_name)?;
        println!("\n=== view {view_name}: {} tuples materialized ===", db.store(view).len());

        // a day in the life of the auction site
        let script = [
            ("new names for active people", update_by_name("A6_A").insert_stmt()),
            ("items arrive in every region", update_by_name("E6_L").insert_stmt()),
            ("spam items purged", update_by_name("X8_AO").delete_stmt()),
            ("privacy-conscious bidders bid", update_by_name("X4_O").insert_stmt()),
        ];
        for (what, stmt) in script {
            let commit = db.apply(stmt)?;
            let report = commit.report(view);
            // sanity: full recomputation agrees
            let check = Instant::now();
            let fresh = recompute_store(db.document(), db.pattern(view));
            let recompute_ms = check.elapsed().as_secs_f64() * 1e3;
            assert!(
                db.store(view).same_content_as(&fresh),
                "incremental and recomputed views diverged"
            );
            println!(
                "  {what:<32} +{:<4} -{:<4} tuples | incremental {:>8.3} ms | recompute {:>8.3} ms",
                report.tuples_added,
                report.tuples_removed,
                report.timings.maintenance_total().as_secs_f64() * 1e3,
                recompute_ms,
            );
        }
        println!("  final view size: {} tuples", db.store(view).len());
    }
    Ok(())
}
