//! Parallel multi-view propagation: the per-view fan-out of the
//! shared [`crate::multiview::MultiViewEngine`] pass.
//!
//! Section 3.5's multi-view setting shares the view-independent work
//! of an update (one PUL, one document mutation) and leaves each view
//! its own Δ-table extraction and term evaluation — which touch only
//! that view's store and snowcaps and read the document immutably.
//! That makes the per-view phases embarrassingly parallel, and this
//! module supplies the scheduler:
//!
//! * [`effective_workers`] (re-exported from [`crate::runtime`])
//!   resolves the worker count from the `Database` builder knob and
//!   the `XIVM_WORKERS` environment variable;
//! * [`PropagationPlan`] partitions the views into order-independent
//!   groups with the Figure 15 conflict rules
//!   ([`xivm_pulopt::partition`]): each view is projected to the PUL
//!   operations that can touch it, and two views are grouped exactly
//!   when their projections contain two *distinct* conflicting
//!   operations. The partition is the unit of scheduling here and the
//!   shard-assignment function of the ROADMAP's sharding direction —
//!   views in different groups could apply their projections on
//!   different document replicas in any order;
//! * `prepare_all` / `finish_all` (crate-internal) run the per-view
//!   phases on the persistent [`Runtime`] pool: jobs sit behind a
//!   shared atomic cursor and an idle worker claims ("steals") the
//!   next unclaimed one instead of owning a fixed slice. Results are
//!   merged back by declaration-order index, so the outcome is
//!   bit-identical to the sequential pass no matter how the jobs were
//!   interleaved.
//! * `run_window` (crate-internal) is the deep-pipelined composite
//!   behind [`MultiViewEngine::propagate_pipelined`]: a window of up
//!   to `depth` consecutive commits is propagated at once, each
//!   commit carrying copy-on-write document snapshots from before and
//!   after its apply (`WindowStep`). The per-commit Figure 15
//!   partitions are merged (union-find) into window-wide *shards*;
//!   one job per shard walks the commits in order running
//!   `prepare(pre₍ⱼ₎)` then `finish(post₍ⱼ₎)` for its views, so
//!   commit *k+d*'s prepare overlaps commit *k*'s finish on every
//!   disjoint shard — for any window depth, not just one commit
//!   ahead. Within a shard each view's store is written by exactly
//!   one job, so shards need no synchronization at all.
//!
//! [`MultiViewEngine::propagate_pipelined`]: crate::multiview::MultiViewEngine
//!
//! Determinism does not *depend* on the plan: every view writes only
//! its own state. The plan bounds scheduling (co-locating views that
//! care about order-dependent ops, exactly what a sharded deployment
//! must do) and the merge restores declaration order unconditionally.

use crate::engine::{MaintenanceEngine, PreparedUpdate, UpdateReport};
use crate::runtime::{Job, Runtime};
use std::collections::HashSet;
use std::sync::Mutex;
use xivm_pattern::TreePattern;
use xivm_update::{ApplyResult, AtomicOp, Pul};
use xivm_xml::{Document, LabelId};

pub use crate::runtime::{effective_workers, env_workers};

/// Caps the subtree walk when computing a deletion's label footprint;
/// a larger subtree falls back to "touches everything" so plan
/// computation stays cheap relative to propagation itself.
const FOOTPRINT_WALK_CAP: usize = 4096;

/// The labels an atomic operation can create or destroy.
enum Footprint {
    /// Labels interned in the host document (target path, deleted
    /// subtree) plus label *names* new to the document (insert
    /// forests can introduce labels the document never had).
    Labels { ids: HashSet<LabelId>, new_names: HashSet<String> },
    /// Unknown — treat as intersecting every view.
    All,
}

/// The labels a pattern can bind, or `None` when a wildcard node
/// makes every label bindable.
fn pattern_labels(pattern: &TreePattern) -> Option<HashSet<&str>> {
    let mut labels = HashSet::new();
    for id in pattern.node_ids() {
        match pattern.node(id).test.name() {
            Some(name) => {
                labels.insert(name);
            }
            None => return None, // wildcard: binds anything
        }
    }
    Some(labels)
}

/// The label footprint of one atomic operation: the labels on its
/// target path, plus — for a deletion — every label in the doomed
/// subtree (resolved against the intact document, walk capped), plus
/// — for an insertion — every label in the parsed forest.
fn op_footprint(doc: &Document, op: &AtomicOp) -> Footprint {
    let mut ids: HashSet<LabelId> = op.target().label_path().into_iter().collect();
    let mut new_names = HashSet::new();
    match op {
        AtomicOp::Delete { node } => {
            let Some(root) = doc.find_node(node) else { return Footprint::All };
            let mut stack = vec![root];
            let mut walked = 0usize;
            while let Some(n) = stack.pop() {
                walked += 1;
                if walked > FOOTPRINT_WALK_CAP {
                    return Footprint::All;
                }
                ids.insert(doc.node(n).label);
                stack.extend_from_slice(doc.children_of(n));
            }
        }
        AtomicOp::InsertInto { forest, .. } => {
            // Parse into a scratch document with the same forest
            // parser `apply_pul` uses, and walk only the forest's own
            // subtrees (the scratch root is not inserted content).
            let mut scratch = Document::new();
            let Ok(root) = scratch.set_root("xivm-forest-scan") else { return Footprint::All };
            let Ok(roots) = xivm_xml::parser::parse_forest_into(&mut scratch, root, forest) else {
                return Footprint::All;
            };
            for r in roots {
                for n in scratch.descendants_or_self(r) {
                    let name = scratch.label_name(scratch.node(n).label);
                    match doc.label_id(name) {
                        Some(id) => {
                            ids.insert(id);
                        }
                        None => {
                            new_names.insert(name.to_owned());
                        }
                    }
                }
            }
        }
    }
    Footprint::Labels { ids, new_names }
}

/// Does the op's footprint intersect a view's bindable labels?
fn touches(doc: &Document, footprint: &Footprint, bindable: &HashSet<&str>) -> bool {
    match footprint {
        Footprint::All => true,
        Footprint::Labels { ids, new_names } => {
            ids.iter().any(|&id| bindable.contains(doc.label_name(id)))
                || new_names.iter().any(|n| bindable.contains(n.as_str()))
        }
    }
}

/// Projects the ops named by `op_idxs` onto every view by label
/// footprint: one index list per pattern, restricted to `op_idxs`.
/// Shared by [`PropagationPlan::compute`] (all ops) and
/// [`schedule_groups`] (conflict-involved ops only) so the two can
/// never drift apart.
fn project(
    doc: &Document,
    pul: &Pul,
    op_idxs: &[usize],
    patterns: &[&TreePattern],
) -> Vec<Vec<usize>> {
    let footprints: Vec<(usize, Footprint)> =
        op_idxs.iter().map(|&i| (i, op_footprint(doc, &pul.ops[i]))).collect();
    patterns
        .iter()
        .map(|p| match pattern_labels(p) {
            None => op_idxs.to_vec(),
            Some(bindable) => footprints
                .iter()
                .filter(|(_, fp)| touches(doc, fp, &bindable))
                .map(|(i, _)| *i)
                .collect(),
        })
        .collect()
}

/// How one shared PUL fans out over the views of a multi-view host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationPlan {
    /// Per-view projections: for each view (declaration order), the
    /// indices of the PUL operations whose label footprint intersects
    /// the view's bindable labels. A scheduling heuristic, not a
    /// correctness filter — every view still propagates the full PUL.
    pub projections: Vec<Vec<usize>>,
    /// Declaration-order view indices partitioned into
    /// order-independent groups (see [`xivm_pulopt::partition`]):
    /// groups are the unit of worker scheduling and the shard
    /// assignment of the sharding direction. Ordered by smallest
    /// member, members ascending.
    pub groups: Vec<Vec<usize>>,
}

impl PropagationPlan {
    /// Projects the PUL onto every view (by label footprint, against
    /// the still-intact document) and partitions the views with the
    /// Figure 15 conflict rules.
    pub fn compute(doc: &Document, pul: &Pul, patterns: &[&TreePattern]) -> Self {
        let all: Vec<usize> = (0..pul.ops.len()).collect();
        let projections = project(doc, pul, &all, patterns);
        let groups = xivm_pulopt::partition_projections(pul, &projections);
        PropagationPlan { projections, groups }
    }

    /// A degenerate single-group plan covering `n` views, used for the
    /// sequential path so both paths walk identical structures.
    pub fn single_group(n: usize) -> Self {
        PropagationPlan { projections: Vec::new(), groups: vec![(0..n).collect()] }
    }
}

/// The scheduling partition for one propagation — the same groups as
/// [`PropagationPlan::compute`], skipping all footprint work when the
/// PUL has no internal Figure 15 conflicts (the common case for
/// single-statement PULs: no two of its ops can be order-dependent,
/// so every view is its own group). When conflicts exist, footprints
/// are computed only for the ops involved in them — ops outside every
/// conflict pair can never group two views.
pub fn schedule_groups(doc: &Document, pul: &Pul, patterns: &[&TreePattern]) -> Vec<Vec<usize>> {
    let pairs = xivm_pulopt::internal_conflict_pairs(pul);
    if pairs.is_empty() {
        return (0..patterns.len()).map(|i| vec![i]).collect();
    }
    let mut involved: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    involved.sort_unstable();
    involved.dedup();
    let projections = project(doc, pul, &involved, patterns);
    xivm_pulopt::partition_projections(pul, &projections)
}

/// Is view `i` statically skipped under `skip` (`None` = no mask)?
fn masked(skip: Option<&[bool]>, i: usize) -> bool {
    skip.is_some_and(|m| m.get(i).copied().unwrap_or(false))
}

/// Runs [`MaintenanceEngine::prepare`] for every view against the
/// intact document, one pool job per view. Returns the prepared
/// states in declaration order; a `None` entry is a view the static
/// analyzer proved irrelevant (`skip[i]`), whose prepare was never
/// run and whose finish must be skipped too.
pub(crate) fn prepare_all(
    views: &[(String, MaintenanceEngine)],
    doc: &Document,
    pul: &Pul,
    skip: Option<&[bool]>,
    runtime: &Runtime,
) -> Vec<Option<PreparedUpdate>> {
    if runtime.size() <= 1 || views.len() <= 1 {
        return views
            .iter()
            .enumerate()
            .map(|(i, (_, e))| (!masked(skip, i)).then(|| e.prepare(doc, pul)))
            .collect();
    }
    let slots: Vec<Mutex<Option<PreparedUpdate>>> =
        views.iter().map(|_| Mutex::new(None)).collect();
    let jobs: Vec<Job<'_>> = views
        .iter()
        .zip(&slots)
        .enumerate()
        .filter(|(i, _)| !masked(skip, *i))
        .map(|(_, ((_, engine), slot))| {
            Box::new(move || {
                *slot.lock().expect("prepare slot unpoisoned") = Some(engine.prepare(doc, pul));
            }) as Job<'_>
        })
        .collect();
    runtime.run(jobs);
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let prep = s.into_inner().expect("prepare slot unpoisoned");
            debug_assert_eq!(prep.is_none(), masked(skip, i), "every unmasked view prepared");
            prep
        })
        .collect()
}

/// Runs [`MaintenanceEngine::finish`] for every view against the
/// updated document, one pool job per Figure 15 group. Per-view
/// reports are merged back by declaration-order index, so the result
/// is bit-identical to the sequential pass. A view whose prepared
/// state is `None` was statically skipped: its engine is not touched
/// and it reports [`UpdateReport::skipped`].
pub(crate) fn finish_all(
    views: &mut [(String, MaintenanceEngine)],
    doc: &Document,
    apply_res: &ApplyResult,
    prepared: Vec<Option<PreparedUpdate>>,
    groups: &[Vec<usize>],
    runtime: &Runtime,
) -> Vec<(String, UpdateReport)> {
    let n = views.len();
    debug_assert_eq!(prepared.len(), n);
    debug_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), n);

    // Hand each group exclusive access to its views: the declaration-
    // order slots are taken out once, so the borrow checker sees the
    // per-group &mut engines as disjoint.
    type Slot<'a> = (&'a mut (String, MaintenanceEngine), Option<PreparedUpdate>);
    let mut slots: Vec<Option<Slot<'_>>> = views.iter_mut().zip(prepared).map(Some).collect();
    let group_views: Vec<Vec<(usize, Slot<'_>)>> = groups
        .iter()
        .map(|g| g.iter().map(|&i| (i, slots[i].take().expect("view in one group"))).collect())
        .collect();

    let finished: Vec<Mutex<Option<(String, UpdateReport)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    let jobs: Vec<Job<'_>> = group_views
        .into_iter()
        .map(|mut group| {
            let finished = &finished;
            Box::new(move || {
                for (idx, (entry, prep)) in group.drain(..) {
                    let report = match prep {
                        Some(prep) => entry.1.finish(doc, apply_res, prep),
                        None => UpdateReport::skipped(),
                    };
                    *finished[idx].lock().expect("finish slot unpoisoned") =
                        Some((entry.0.clone(), report));
                }
            }) as Job<'_>
        })
        .collect();
    runtime.run(jobs);

    finished
        .into_iter()
        .map(|s| s.into_inner().expect("finish slot unpoisoned").expect("every view finished"))
        .collect()
}

/// One commit of a pipelined window: its PUL and schedule, the frozen
/// copy-on-write document snapshots from *before* and *after* its
/// apply, the apply result, and the submitting thread's timings
/// (stamped onto every per-view report when the window drains).
pub(crate) struct WindowStep {
    pub(crate) pul: Pul,
    /// The commit's own Figure 15 partition (view indices).
    pub(crate) groups: Vec<Vec<usize>>,
    /// Static skip mask for this commit (`skip[i]` = view `i` is
    /// provably untouched and its prepare/finish are never run).
    /// Empty when no analyzer is installed.
    pub(crate) skip: Vec<bool>,
    /// The document version the commit's `prepare` phase reads.
    pub(crate) pre: Document,
    /// The document version the commit's `finish` phase reads.
    pub(crate) post: Document,
    pub(crate) apply_res: ApplyResult,
    pub(crate) t_find: std::time::Duration,
    pub(crate) t_apply: std::time::Duration,
}

/// Merges every commit's Figure 15 partition into one window-wide
/// shard assignment (union-find): two views share a shard iff *some*
/// commit in the window co-groups them. A shard's views can then be
/// chained through all commits by a single job with no cross-job
/// ordering constraint — the per-view constraint (finish commit *j*
/// before commit *j+1*) holds inside the chain, and any two views a
/// commit declared order-dependent sit in the same chain.
fn merge_window_shards(steps: &[WindowStep], n: usize) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for step in steps {
        for group in &step.groups {
            for pair in group.windows(2) {
                let (a, b) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
    }
    // Canonical order: shards by smallest member, members ascending —
    // the same convention as `partition_projections`.
    let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for v in 0..n {
        by_root.entry(find(&mut parent, v)).or_default().push(v);
    }
    by_root.into_values().collect()
}

/// Propagates a whole window of consecutive commits: one pool job per
/// merged shard (see [`merge_window_shards`]), each chaining
/// `prepare(pre₍ⱼ₎)` → `finish(post₍ⱼ₎)` for its views through every
/// commit *j* in order. Because each chain holds its views' engines
/// exclusively and reads only frozen snapshots, shards proceed fully
/// independently: commit *k+depth−1*'s prepare on one shard overlaps
/// commit *k*'s finish on another, and nothing blocks on anything but
/// job completion.
///
/// Returns per-commit, declaration-ordered reports with the steps'
/// timings already stamped. Bit-identical to the sequential pass: a
/// view's `prepare` reads only the pre-apply document and its pattern,
/// and its `finish` calls happen in commit order within its chain.
pub(crate) fn run_window(
    views: &mut [(String, MaintenanceEngine)],
    steps: &[WindowStep],
    runtime: &Runtime,
) -> Vec<Vec<(String, UpdateReport)>> {
    let n = views.len();
    let w = steps.len();
    let shards = merge_window_shards(steps, n);

    let mut slots: Vec<Option<&mut (String, MaintenanceEngine)>> =
        views.iter_mut().map(Some).collect();
    let shard_views: Vec<Vec<(usize, &mut (String, MaintenanceEngine))>> = shards
        .iter()
        .map(|g| g.iter().map(|&i| (i, slots[i].take().expect("view in one shard"))).collect())
        .collect();

    // One slot per (commit, view), commit-major.
    let reports: Vec<Mutex<Option<(String, UpdateReport)>>> =
        (0..n * w).map(|_| Mutex::new(None)).collect();

    let jobs: Vec<Job<'_>> = shard_views
        .into_iter()
        .map(|mut shard| {
            let reports = &reports;
            Box::new(move || {
                for (j, step) in steps.iter().enumerate() {
                    for (idx, entry) in shard.iter_mut() {
                        let report = if step.skip.get(*idx).copied().unwrap_or(false) {
                            UpdateReport::skipped()
                        } else {
                            let prep = entry.1.prepare(&step.pre, &step.pul);
                            entry.1.finish(&step.post, &step.apply_res, prep)
                        };
                        *reports[j * n + *idx].lock().expect("report slot unpoisoned") =
                            Some((entry.0.clone(), report));
                    }
                }
            }) as Job<'_>
        })
        .collect();
    runtime.run(jobs);

    let mut slot_iter = reports.into_iter();
    steps
        .iter()
        .map(|step| {
            (0..n)
                .map(|_| {
                    let (name, mut report) = slot_iter
                        .next()
                        .expect("n * w slots")
                        .into_inner()
                        .expect("report slot unpoisoned")
                        .expect("every view finished every commit");
                    report.timings.find_target_nodes = step.t_find;
                    report.timings.apply_document = step.t_apply;
                    (name, report)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::parse_pattern;
    use xivm_update::{compute_pul, statement::parse_statement};
    use xivm_xml::parse_document;

    #[test]
    fn explicit_worker_count_wins_and_zero_clamps() {
        assert_eq!(effective_workers(Some(3)), 3);
        assert_eq!(effective_workers(Some(0)), 1);
    }

    #[test]
    fn wildcard_patterns_project_to_every_op() {
        let doc = parse_document("<r><x><y/></x><z/></r>").unwrap();
        let pul = compute_pul(&doc, &parse_statement("insert <q/> into //z").unwrap());
        let wild = parse_pattern("/r{id}/*/q{id}").unwrap();
        let plan = PropagationPlan::compute(&doc, &pul, &[&wild]);
        assert_eq!(plan.projections, vec![vec![0]]);
    }

    #[test]
    fn label_disjoint_views_get_empty_projections() {
        let doc = parse_document("<r><x><y/></x><z/></r>").unwrap();
        let pul = compute_pul(&doc, &parse_statement("insert <q/> into //z").unwrap());
        let touched = parse_pattern("//z{id}//q{id}").unwrap();
        let untouched = parse_pattern("//x{id}//y{id}").unwrap();
        let plan = PropagationPlan::compute(&doc, &pul, &[&touched, &untouched]);
        assert_eq!(plan.projections, vec![vec![0], vec![]]);
        // no distinct conflicting ops → every view is its own group
        assert_eq!(plan.groups, vec![vec![0], vec![1]]);
    }

    #[test]
    fn delete_footprint_covers_the_doomed_subtree() {
        let doc = parse_document("<r><x><y/></x><z/></r>").unwrap();
        let pul = compute_pul(&doc, &parse_statement("delete //x").unwrap());
        // binds y, which only occurs inside the deleted subtree
        let inner = parse_pattern("//y{id}").unwrap();
        let plan = PropagationPlan::compute(&doc, &pul, &[&inner]);
        assert_eq!(plan.projections, vec![vec![0]]);
    }

    #[test]
    fn order_dependent_projections_share_a_group() {
        // del //x (op 0) NLO-conflicts with ins into //y (op 1): a view
        // caring about op 0 and a view caring about op 1 must co-locate.
        let doc = parse_document("<r><x><y/></x><z/></r>").unwrap();
        let mut ops = compute_pul(&doc, &parse_statement("delete //x").unwrap()).ops;
        ops.extend(compute_pul(&doc, &parse_statement("insert <w/> into //y").unwrap()).ops);
        let pul = Pul::new(ops);
        let vx = parse_pattern("//x{id}").unwrap();
        let vw = parse_pattern("//y{id}//w{id}").unwrap();
        let vz = parse_pattern("//z{id}").unwrap();
        let plan = PropagationPlan::compute(&doc, &pul, &[&vx, &vw, &vz]);
        assert_eq!(plan.projections[2], Vec::<usize>::new());
        assert_eq!(plan.groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn single_group_plan_covers_all_views() {
        let plan = PropagationPlan::single_group(3);
        assert_eq!(plan.groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn schedule_groups_equals_the_full_plan() {
        // documented equivalence: the fast path must yield the same
        // groups as PropagationPlan::compute — on a conflict-free PUL
        // (fast path short-circuits) and on a conflicting one (fast
        // path computes footprints for involved ops only).
        let doc = parse_document("<r><x><y/></x><z/><w/></r>").unwrap();
        let patterns = [
            parse_pattern("//x{id}").unwrap(),
            parse_pattern("//y{id}//w{id}").unwrap(),
            parse_pattern("//z{id}").unwrap(),
            parse_pattern("/r{id}/*{id}").unwrap(),
        ];
        let refs: Vec<&TreePattern> = patterns.iter().collect();
        let conflict_free = compute_pul(&doc, &parse_statement("insert <q/> into //z").unwrap());
        let mut ops = compute_pul(&doc, &parse_statement("delete //x").unwrap()).ops;
        ops.extend(compute_pul(&doc, &parse_statement("insert <w/> into //y").unwrap()).ops);
        let conflicting = Pul::new(ops);
        for pul in [&conflict_free, &conflicting] {
            assert_eq!(
                schedule_groups(&doc, pul, &refs),
                PropagationPlan::compute(&doc, pul, &refs).groups
            );
        }
    }

    #[test]
    fn forest_scan_wrapper_label_does_not_leak_into_footprints() {
        // a view binding the literal label "xivm-forest-scan" must not
        // be treated as touched by arbitrary inserts
        let doc = parse_document("<r><x><y/></x><z/></r>").unwrap();
        let pul = compute_pul(&doc, &parse_statement("insert <q/> into //z").unwrap());
        let odd = parse_pattern("//xivm-forest-scan{id}").unwrap();
        let plan = PropagationPlan::compute(&doc, &pul, &[&odd]);
        assert_eq!(plan.projections, vec![Vec::<usize>::new()]);
    }
}
