//! DTDs as extended context-free grammars (Figure 5) and their
//! textual syntax.
//!
//! ```text
//! dtd   := rule+
//! rule  := name "->" rx
//! rx    := alt
//! alt   := seq ("|" seq)*
//! seq   := rep ("," rep)*
//! rep   := atom ("*" | "+" | "?")?
//! atom  := name | "(" rx ")" | "()"          ("()" is ε)
//! ```
//!
//! Symbols with a rule whose name starts with an uppercase letter are
//! treated as *non-terminals* (the `AS`, `BS` of Figure 5); everything
//! else is an element label.

use crate::regex::Rx;
use std::collections::HashMap;
use std::fmt;

/// A parsed DTD.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    pub rules: HashMap<String, Rx>,
    /// Rule names in declaration order; the first is the start symbol.
    pub order: Vec<String>,
}

impl Dtd {
    pub fn start(&self) -> Option<&str> {
        self.order.first().map(|s| s.as_str())
    }

    pub fn rule(&self, symbol: &str) -> Option<&Rx> {
        self.rules.get(symbol)
    }

    /// Non-terminals: rule names starting with an uppercase letter.
    pub fn is_nonterminal(&self, symbol: &str) -> bool {
        self.rules.contains_key(symbol)
            && symbol.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    }

    /// Element labels: rule names that are not non-terminals.
    pub fn element_labels(&self) -> Vec<&str> {
        self.order.iter().filter(|s| !self.is_nonterminal(s)).map(|s| s.as_str()).collect()
    }
}

/// DTD syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for DtdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dtd parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DtdParseError {}

/// Parses one rule per line; blank lines and `#` comments are skipped.
pub fn parse_dtd(input: &str) -> Result<Dtd, DtdParseError> {
    let mut dtd = Dtd::default();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, rhs) = line.split_once("->").ok_or_else(|| DtdParseError {
            line: lineno + 1,
            message: "expected 'name -> rx'".into(),
        })?;
        let name = name.trim().to_owned();
        let rx =
            parse_rx(rhs.trim()).map_err(|message| DtdParseError { line: lineno + 1, message })?;
        if dtd.rules.insert(name.clone(), rx).is_none() {
            dtd.order.push(name);
        }
    }
    Ok(dtd)
}

fn parse_rx(input: &str) -> Result<Rx, String> {
    let mut p = RxParser { bytes: input.as_bytes(), pos: 0 };
    let rx = p.alt()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(rx)
}

struct RxParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RxParser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn alt(&mut self) -> Result<Rx, String> {
        let mut parts = vec![self.seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                self.skip_ws();
                // a trailing `|` (Figure 5's `x |` notation) means "or ε"
                if self.peek().is_none() || self.peek() == Some(b')') {
                    parts.push(Rx::Epsilon);
                } else {
                    parts.push(self.seq()?);
                }
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Rx::Alt(parts) })
    }

    fn seq(&mut self) -> Result<Rx, String> {
        let mut parts = vec![self.rep()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                parts.push(self.rep()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Rx::Seq(parts) })
    }

    fn rep(&mut self) -> Result<Rx, String> {
        let atom = self.atom()?;
        self.skip_ws();
        Ok(match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Rx::Star(Box::new(atom))
            }
            Some(b'+') => {
                self.pos += 1;
                Rx::Plus(Box::new(atom))
            }
            Some(b'?') => {
                self.pos += 1;
                Rx::Opt(Box::new(atom))
            }
            _ => atom,
        })
    }

    fn atom(&mut self) -> Result<Rx, String> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            self.skip_ws();
            if self.peek() == Some(b')') {
                self.pos += 1;
                return Ok(Rx::Epsilon);
            }
            let inner = self.alt()?;
            self.skip_ws();
            if self.peek() != Some(b')') {
                return Err("expected ')'".into());
            }
            self.pos += 1;
            return Ok(inner);
        }
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a symbol at byte {}", self.pos));
        }
        Ok(Rx::Symbol(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned()))
    }
}

/// The DTD `d1` of Figure 5(a).
pub fn figure_5a() -> Dtd {
    parse_dtd(
        "d1 -> AS\n\
         AS -> a+\n\
         a -> BS\n\
         BS -> b+\n\
         b -> c\n\
         c -> ()",
    )
    .expect("figure 5a is well-formed")
}

/// The DTD `d2` of Figure 5(b).
pub fn figure_5b() -> Dtd {
    parse_dtd(
        "d2 -> (a, b, c)+\n\
         a -> BS\n\
         BS -> x |\n\
         x -> x |\n\
         b -> ()\n\
         c -> ()",
    )
    .expect("figure 5b is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure_5a() {
        let d = figure_5a();
        assert_eq!(d.start(), Some("d1"));
        assert!(d.is_nonterminal("AS"));
        assert!(!d.is_nonterminal("a"));
        assert_eq!(d.rule("b"), Some(&Rx::sym("c")));
        assert_eq!(d.rule("c"), Some(&Rx::Epsilon));
    }

    #[test]
    fn parse_figure_5b() {
        let d = figure_5b();
        let d2 = d.rule("d2").unwrap();
        assert_eq!(d2.to_string(), "(a, b, c)+");
        // BS -> x |  (alternation with ε)
        assert!(d.rule("BS").unwrap().nullable());
        assert!(d.rule("x").unwrap().nullable());
    }

    #[test]
    fn element_labels_exclude_nonterminals() {
        let d = figure_5a();
        let labels = d.element_labels();
        assert!(labels.contains(&"a"));
        assert!(labels.contains(&"b"));
        assert!(!labels.contains(&"AS"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_dtd("oops").is_err());
        assert!(parse_dtd("a -> (b").is_err());
        assert!(parse_dtd("a -> b,, c").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let d = parse_dtd("# a comment\n\na -> b?\n").unwrap();
        assert_eq!(d.order, vec!["a"]);
    }
}
