//! The update catalog of Appendix A.
//!
//! Each entry carries the XPath of its target nodes and the XML
//! fragment its insertion variant adds; its deletion variant removes
//! the target nodes instead ("inserting dummy elements into each of —
//! or deleting, respectively — the nodes returned by the respective
//! XPathMark query"). The five syntactic classes are those of the
//! appendix: L (linear), LB (linear + boolean filter), A (and), O
//! (or), AO (and + or).

use xivm_pattern::xpath::parse_xpath;
use xivm_update::UpdateStatement;

/// The update's syntactic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateClass {
    L,
    LB,
    A,
    O,
    AO,
}

impl UpdateClass {
    pub fn name(self) -> &'static str {
        match self {
            UpdateClass::L => "L",
            UpdateClass::LB => "LB",
            UpdateClass::A => "A",
            UpdateClass::O => "O",
            UpdateClass::AO => "AO",
        }
    }
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct BenchUpdate {
    pub name: &'static str,
    pub class: UpdateClass,
    /// Target path (over the generated auction document).
    pub path: &'static str,
    /// The forest its insertion variant adds under each target.
    pub insert_xml: &'static str,
}

impl BenchUpdate {
    /// `for $x in path insert xml into $x`.
    pub fn insert_stmt(&self) -> UpdateStatement {
        UpdateStatement::Insert {
            target: parse_xpath(self.path).expect("catalog paths parse"),
            xml: self.insert_xml.to_owned(),
        }
    }

    /// `delete path`.
    pub fn delete_stmt(&self) -> UpdateStatement {
        UpdateStatement::Delete { target: parse_xpath(self.path).expect("catalog paths parse") }
    }
}

const NAME_XML: &str = "<name>Martin<name>and</name><name>some</name><name>test</name>\
                        <name>nodes</name></name>";
const INCREASE_XML: &str = "<increase>inserted 100.00<increase>and</increase>\
                            <increase>some</increase><increase>test</increase>\
                            <increase>nodes</increase></increase>";
const ITEM_XML: &str = "<item><location>Unknown</location><quantity>1</quantity>\
                        <name>inserted item</name>\
                        <payment>Creditcard, Personal Check, Cash</payment></item>";
const ITEM_DESC_XML: &str = "<item><location>Unknown</location><quantity>1</quantity>\
                             <name>inserted item</name>\
                             <payment>Creditcard, Personal Check, Cash</payment>\
                             <description>Test description</description></item>";

/// The full catalog (Appendix A.1–A.5).
pub fn all_updates() -> Vec<BenchUpdate> {
    use UpdateClass::*;
    vec![
        // --- A.1 linear path expressions
        BenchUpdate { name: "X1_L", class: L, path: "/site/people/person", insert_xml: NAME_XML },
        BenchUpdate {
            name: "X2_L",
            class: L,
            path: "/site/open_auctions/open_auction/bidder",
            insert_xml: INCREASE_XML,
        },
        BenchUpdate {
            name: "B3_L",
            class: L,
            path: "//open_auction/bidder",
            insert_xml: INCREASE_XML,
        },
        BenchUpdate { name: "E6_L", class: L, path: "/site/regions/*/item", insert_xml: ITEM_XML },
        BenchUpdate {
            name: "X17_L",
            class: L,
            path: "/site/regions//item",
            insert_xml: ITEM_DESC_XML,
        },
        BenchUpdate {
            name: "B5_L",
            class: L,
            path: "/site/regions/*/item/name",
            insert_xml: ITEM_XML,
        },
        // --- A.2 linear with boolean filter
        BenchUpdate {
            name: "B7_LB",
            class: LB,
            path: "//person[profile/@income]",
            insert_xml: NAME_XML,
        },
        BenchUpdate {
            name: "B3_LB",
            class: LB,
            path: "/site/open_auctions/open_auction[reserve]/bidder",
            insert_xml: INCREASE_XML,
        },
        BenchUpdate {
            name: "B5_LB",
            class: LB,
            path: "/site/regions/*/item[name]",
            insert_xml: ITEM_XML,
        },
        // --- A.3 AND predicates
        BenchUpdate {
            name: "A6_A",
            class: A,
            path: "/site/people/person[phone and homepage]",
            insert_xml: NAME_XML,
        },
        BenchUpdate {
            name: "X3_A",
            class: A,
            path: "/site/open_auctions/open_auction[privacy and bidder]/bidder",
            insert_xml: INCREASE_XML,
        },
        BenchUpdate {
            name: "B1_A",
            class: A,
            path: "/site/regions[namerica or samerica]//item",
            insert_xml: ITEM_XML,
        },
        BenchUpdate {
            name: "E6_A",
            class: A,
            path: "/site/regions/*/item[description][name]",
            insert_xml: ITEM_XML,
        },
        BenchUpdate {
            name: "X16_A",
            class: A,
            path: "/site/regions//item[description][name]",
            insert_xml: ITEM_DESC_XML,
        },
        // --- A.4 OR predicates
        BenchUpdate {
            name: "A7_O",
            class: O,
            path: "/site/people/person[phone or homepage]",
            insert_xml: NAME_XML,
        },
        BenchUpdate {
            name: "X4_O",
            class: O,
            path: "/site/open_auctions/open_auction[bidder or privacy]/bidder",
            insert_xml: INCREASE_XML,
        },
        BenchUpdate {
            name: "X7_O",
            class: O,
            path: "/site/regions//item[description or name]",
            insert_xml: ITEM_XML,
        },
        BenchUpdate {
            name: "B1_O",
            class: O,
            path: "/site/regions[namerica or samerica]/item",
            insert_xml: ITEM_DESC_XML,
        },
        // --- A.5 AND + OR predicates
        BenchUpdate {
            name: "A8_AO",
            class: AO,
            path:
                "/site/people/person[address and (phone or homepage) and (creditcard or profile)]",
            insert_xml: NAME_XML,
        },
        BenchUpdate {
            name: "X5_AO",
            class: AO,
            path: "/site/open_auctions/open_auction[current and (bidder or reserve)]/bidder",
            insert_xml: INCREASE_XML,
        },
        BenchUpdate {
            name: "X8_AO",
            class: AO,
            path: "/site/regions//item[description and (name or mailbox)]",
            insert_xml: ITEM_XML,
        },
    ]
}

/// Looks up a catalog entry by name.
pub fn update_by_name(name: &str) -> BenchUpdate {
    all_updates()
        .into_iter()
        .find(|u| u.name == name)
        .unwrap_or_else(|| panic!("unknown update {name}"))
}

/// The (view, update) pairs of Figures 18–21: five updates per view,
/// one per class.
pub fn updates_for_view(view: &str) -> Vec<BenchUpdate> {
    let names: [&str; 5] = match view {
        "Q1" | "Q17" => ["X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"],
        "Q2" | "Q3" | "Q4" => ["X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"],
        "Q6" => ["B1_A", "B5_LB", "E6_L", "X7_O", "X8_AO"],
        "Q13" => ["B1_O", "B5_LB", "X16_A", "X17_L", "X8_AO"],
        other => panic!("unknown view {other}"),
    };
    names.into_iter().map(update_by_name).collect()
}

/// The X1_L depth ladder of Figures 22–23.
pub const DEPTH_LADDER: [&str; 5] = [
    "/site",
    "/site/people",
    "/site/people/person",
    "/site/people/person/@id",
    "/site/people/person/name",
];

/// The fixed predicated X1_L of Figure 24.
pub const X1_L_PRED: &str = "/site/people/person[@id=\"person0\"]";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_sized;
    use xivm_pattern::xpath::eval_path;
    use xivm_update::compute_pul;

    #[test]
    fn catalog_paths_parse_and_match() {
        let d = generate_sized(120 * 1024);
        for u in all_updates() {
            let path = parse_xpath(u.path).unwrap();
            let targets = eval_path(&d, &path);
            // B1_O legitimately matches nothing (regions has no direct
            // item children); everything else must hit.
            if u.name != "B1_O" {
                assert!(!targets.is_empty(), "{} matched nothing", u.name);
            }
        }
    }

    #[test]
    fn classes_cover_all_five() {
        let classes: std::collections::BTreeSet<&str> =
            all_updates().iter().map(|u| u.class.name()).collect();
        assert_eq!(classes.len(), 5);
    }

    #[test]
    fn per_view_catalog_is_one_per_class() {
        for v in crate::views::VIEW_NAMES {
            let ups = updates_for_view(v);
            assert_eq!(ups.len(), 5, "{v}");
            let classes: std::collections::BTreeSet<&str> =
                ups.iter().map(|u| u.class.name()).collect();
            assert_eq!(classes.len(), 5, "{v} must span all classes");
        }
    }

    #[test]
    fn statements_expand_to_puls() {
        let d = generate_sized(60 * 1024);
        let u = update_by_name("X1_L");
        let ins = compute_pul(&d, &u.insert_stmt());
        let del = compute_pul(&d, &u.delete_stmt());
        assert!(!ins.is_empty());
        assert_eq!(ins.len(), del.len(), "same targets for both variants");
        assert!(ins.ops.iter().all(|o| o.is_insert()));
        assert!(del.ops.iter().all(|o| !o.is_insert()));
    }

    #[test]
    fn depth_ladder_parses() {
        for p in DEPTH_LADDER {
            parse_xpath(p).unwrap();
        }
        parse_xpath(X1_L_PRED).unwrap();
    }
}
