//! Maintaining several materialized views over one document.
//!
//! Section 3.5 notes that "in a context where several views are
//! materialized and some snowcaps may be shared, it makes sense to sum
//! up the respective maintenance costs" — the first step of which is
//! sharing the per-update work that does not depend on the view: the
//! PUL is computed once and the document is updated once; each view
//! then runs only its own Δ-table extraction and term evaluation.
//!
//! [`MultiViewEngine`] is the low-level multi-view host; the
//! [`crate::database::Database`] façade owns one (together with the
//! document) and is the recommended entry point.

use crate::engine::{MaintenanceEngine, UpdateReport};
use crate::error::Error;
use crate::parallel::{self, PropagationPlan};
use crate::runtime::Runtime;
use crate::strategy::SnowcapStrategy;
use crate::timing::timed;
use std::collections::HashMap;
use xivm_pattern::TreePattern;
use xivm_update::{apply_pul, compute_pul, Pul, UpdateStatement};
use xivm_xml::Document;

/// A set of named views maintained together.
///
/// Views are looked up by name through an index map; iteration orders
/// (`names()`, per-view reports) remain the declaration order.
///
/// The per-view propagation phases fan out across the persistent
/// [`Runtime`] worker pool when [`Self::set_workers`] (or the
/// `XIVM_WORKERS` environment variable) asks for more than one worker
/// — see [`crate::parallel`] and [`crate::runtime`]. The pool is
/// lazy-started on the first propagation that needs it and lives
/// until the engine is dropped (or [`Self::shutdown_runtime`] retires
/// it), so steady-state propagation spawns zero new threads. Results
/// are bit-identical to the sequential pass either way.
pub struct MultiViewEngine {
    views: Vec<(String, MaintenanceEngine)>,
    /// Name → position in `views`. On duplicate names the first
    /// declaration wins, matching the previous linear-scan behavior.
    index: HashMap<String, usize>,
    /// Worker pool size for the per-view phases (1 = sequential).
    workers: usize,
    /// The persistent worker pool, created lazily at the configured
    /// size by [`Self::ensure_runtime`] and replaced when
    /// [`Self::set_workers`] changes the size.
    runtime: Option<Runtime>,
    /// Threads spawned by runtimes this engine has already retired
    /// (resize, shutdown) — keeps [`Self::threads_spawned`] monotonic.
    retired_spawns: u64,
}

impl MultiViewEngine {
    /// Materializes every view over `doc`.
    pub fn new(
        doc: &Document,
        views: impl IntoIterator<Item = (String, TreePattern, SnowcapStrategy)>,
    ) -> Self {
        Self::from_engines(
            views
                .into_iter()
                .map(|(name, pattern, strategy)| {
                    (name, MaintenanceEngine::new(doc, pattern, strategy))
                })
                .collect(),
        )
    }

    /// Wraps already-materialized engines (used by the `Database`
    /// builder, whose views may mix strategies and cost-based choices).
    pub fn from_engines(views: Vec<(String, MaintenanceEngine)>) -> Self {
        let mut index = HashMap::with_capacity(views.len());
        for (i, (name, _)) in views.iter().enumerate() {
            index.entry(name.clone()).or_insert(i);
        }
        MultiViewEngine {
            views,
            index,
            workers: parallel::effective_workers(None),
            runtime: None,
            retired_spawns: 0,
        }
    }

    /// Sets the worker pool size for the per-view propagation phases
    /// (clamped to at least 1; 1 = sequential). Overrides the
    /// `XIVM_WORKERS` default picked up at construction. A live pool
    /// of a different size is retired (its threads joined) and a new
    /// one lazy-starts on the next propagation.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
        if self.runtime.as_ref().is_some_and(|r| r.size() != self.workers) {
            self.shutdown_runtime();
        }
    }

    /// The configured worker pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The live worker pool, if one has been started.
    pub fn runtime(&self) -> Option<&Runtime> {
        self.runtime.as_ref()
    }

    /// Retires the worker pool: shutdown is flagged, every worker is
    /// joined, and the next propagation lazy-starts a fresh pool. The
    /// `fig_parallel` bench uses this to measure cold-spawn cost; a
    /// long-idle host can use it to release its threads.
    pub fn shutdown_runtime(&mut self) {
        if let Some(old) = self.runtime.take() {
            self.retired_spawns += old.threads_spawned();
        }
    }

    /// Threads ever spawned by this engine's pools (current and
    /// retired) — monotonic. Flat across steady-state propagations:
    /// the pool spawns on first use only.
    pub fn threads_spawned(&self) -> u64 {
        self.retired_spawns + self.runtime.as_ref().map_or(0, Runtime::threads_spawned)
    }

    /// Lazy-starts (or resizes) the pool to the configured worker
    /// count. A free function over the fields so callers can keep
    /// disjoint borrows of `self.views` alive.
    fn ensure_runtime<'rt>(
        runtime: &'rt mut Option<Runtime>,
        retired_spawns: &mut u64,
        workers: usize,
    ) -> &'rt Runtime {
        if runtime.as_ref().is_none_or(|r| r.size() != workers) {
            if let Some(old) = runtime.take() {
                *retired_spawns += old.threads_spawned();
            }
            *runtime = Some(Runtime::new(workers));
        }
        runtime.as_ref().expect("runtime just ensured")
    }

    /// Toggles per-view Δ harvesting on every hosted engine (see
    /// [`MaintenanceEngine::collect_deltas`]). On by default; the
    /// `fig_delta` bench turns it off to measure the report overhead.
    pub fn set_collect_deltas(&mut self, collect: bool) {
        for (_, engine) in &mut self.views {
            engine.collect_deltas = collect;
        }
    }

    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Position of a view in declaration order.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    pub fn view(&self, name: &str) -> Option<&MaintenanceEngine> {
        self.position(name).map(|i| &self.views[i].1)
    }

    pub fn view_mut(&mut self, name: &str) -> Option<&mut MaintenanceEngine> {
        let i = self.position(name)?;
        Some(&mut self.views[i].1)
    }

    /// The view at a declaration-order position.
    pub fn get(&self, i: usize) -> Option<(&str, &MaintenanceEngine)> {
        self.views.get(i).map(|(n, e)| (n.as_str(), e))
    }

    /// View names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.views.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Every view's store behind its `Arc`, in declaration order —
    /// the capture step of [`crate::snapshot::DatabaseSnapshot`] and
    /// [`crate::view_store::ShardedStores`]. O(views): no tuple is
    /// copied.
    pub(crate) fn store_arcs(&self) -> Vec<(String, std::sync::Arc<crate::view_store::ViewStore>)> {
        self.views.iter().map(|(n, e)| (n.clone(), e.store_arc())).collect()
    }

    /// Rebuilds every view's store and snowcaps from scratch against
    /// `doc`. This is the recovery path of last resort: after a panic
    /// mid-window the per-view stores may hold a mix of pre- and
    /// post-fault states, so the async service rolls the document back
    /// to the last sealed commit and recomputes everything.
    pub(crate) fn recompute_all(&mut self, doc: &Document) {
        for (_, engine) in &mut self.views {
            engine.recompute(doc);
        }
    }

    /// Propagates one statement to *all* views: the target path is
    /// evaluated once, the document updated once, and each view
    /// finishes its own propagation. Returns per-view reports in
    /// declaration order.
    pub fn apply_statement(
        &mut self,
        doc: &mut Document,
        stmt: &UpdateStatement,
    ) -> Result<Vec<(String, UpdateReport)>, Error> {
        self.apply_statement_counted(doc, stmt, None).map(|(_, reports)| reports)
    }

    /// [`Self::apply_statement`] plus the statement's computed PUL —
    /// the single implementation behind both this engine's public
    /// entry point and the `Database` façade (whose commit report
    /// needs the op count, and whose deferred-maintenance batching
    /// needs the PUL itself). `skip[i]` marks view `i` statically
    /// irrelevant: its maintenance is skipped entirely and its report
    /// comes back as [`UpdateReport::skipped`].
    pub(crate) fn apply_statement_counted(
        &mut self,
        doc: &mut Document,
        stmt: &UpdateStatement,
        skip: Option<&[bool]>,
    ) -> Result<(Pul, Vec<(String, UpdateReport)>), Error> {
        // Find Target Nodes — once, shared by every view.
        let (pul, t_find) = timed(|| compute_pul(doc, stmt));
        let mut out = self.propagate_pul_masked(doc, &pul, skip)?;
        for (_, report) in &mut out {
            report.timings.find_target_nodes = t_find;
        }
        Ok((pul, out))
    }

    /// One-view refresh propagation for deferred maintenance: folds an
    /// aggregated multi-commit PUL into view `i` through the same
    /// `prepare`/`finish` split a live commit uses, reading the
    /// pre-batch document for the delete side and the post-batch
    /// document for the insert side. The other views are untouched.
    pub(crate) fn refresh_view(
        &mut self,
        i: usize,
        pre: &Document,
        post: &Document,
        pul: &Pul,
        apply_res: &xivm_update::ApplyResult,
    ) -> UpdateReport {
        let engine = &mut self.views[i].1;
        let prepared = engine.prepare(pre, pul);
        engine.finish(post, apply_res, prepared)
    }

    /// Propagates an already-computed (possibly optimizer-reduced,
    /// Section 5) PUL to all views in one shared pass: per-view
    /// pre-update capture, one document update, per-view Δ extraction.
    ///
    /// With more than one configured worker the per-view phases fan
    /// out across scoped threads grouped by the Figure 15 partition
    /// ([`Self::partition`]); reports come back merged in declaration
    /// order and every view's state is bit-identical to the
    /// sequential pass.
    pub fn propagate_pul(
        &mut self,
        doc: &mut Document,
        pul: &Pul,
    ) -> Result<Vec<(String, UpdateReport)>, Error> {
        self.propagate_pul_masked(doc, pul, None)
    }

    /// [`Self::propagate_pul`] under a static skip mask: `skip[i]`
    /// marks view `i` provably untouched by the PUL's statement (the
    /// analyzer's relevance verdict), so its prepare/finish phases are
    /// never run and it reports [`UpdateReport::skipped`]. `None`
    /// disables masking (the public entry point).
    pub(crate) fn propagate_pul_masked(
        &mut self,
        doc: &mut Document,
        pul: &Pul,
        skip: Option<&[bool]>,
    ) -> Result<Vec<(String, UpdateReport)>, Error> {
        let runtime =
            Self::ensure_runtime(&mut self.runtime, &mut self.retired_spawns, self.workers);
        // Scheduling groups against the intact document (deletion
        // footprints need the doomed subtrees still present).
        let groups = schedule(&self.views, self.workers, doc, pul);
        // Per-view pre-update capture against the intact document.
        let prepared = parallel::prepare_all(&self.views, doc, pul, skip, runtime);
        // One document update.
        let (apply_res, t_apply) = timed(|| apply_pul(doc, pul));
        let apply_res = apply_res?;
        // Per-view propagation, fanned out over the groups.
        let mut out =
            parallel::finish_all(&mut self.views, doc, &apply_res, prepared, &groups, runtime);
        for (_, report) in &mut out {
            report.timings.apply_document = t_apply;
        }
        Ok(out)
    }

    /// Propagates a stream of statements as *individual commits* with
    /// up to `depth` consecutive commits in flight (the pipelined mode
    /// behind [`Database::apply_pipelined`]), built on copy-on-write
    /// document snapshots: the submitting thread walks a window of
    /// `depth` statements computing each commit's PUL, applying it,
    /// and freezing the document *before* and *after* the apply
    /// (cheap O(chunks) clones, see [`xivm_xml::Arena`]). The whole
    /// window then drains through [`crate::parallel`]'s `run_window`:
    /// the per-commit Figure 15 partitions are merged into
    /// window-wide shards and one pool job per shard chains
    /// `prepare`/`finish` through all commits — so commit *k+depth−1*
    /// overlaps commit *k* on every disjoint shard, at any depth, not
    /// just one commit ahead.
    ///
    /// `on_commit(k, pul, pre, reports)` fires for each statement in
    /// order as its window drains — callers seal sequence numbers and
    /// fan out subscription events there, which is what keeps
    /// changefeeds gapless and bit-identical to the sequential pass.
    /// `pul` is the commit's computed PUL and `pre` the document
    /// *before* that commit's apply — `Some` only when the caller
    /// asked for it with `want_pre` (deferred-view batching folds the
    /// PUL against exactly that document); the windowed path has the
    /// pre-images anyway, the degenerate sequential path clones one
    /// per commit only on request. With `depth <= 1` or fewer than two
    /// statements this is exactly a sequential loop of
    /// [`Self::apply_statement_counted`].
    ///
    /// On an apply error the pipeline stops: the window's commits that
    /// applied *before* the failure still drain (their `on_commit`
    /// fires), then the error is returned — exactly like a sequential
    /// loop that stops at the first failing statement.
    ///
    /// `masks`, when present, carries one static skip mask per
    /// statement (`masks[k][i]` = view `i` is provably untouched by
    /// statement `k`): masked views skip their prepare/finish for that
    /// commit and report [`UpdateReport::skipped`].
    ///
    /// [`Database::apply_pipelined`]: crate::database::Database::apply_pipelined
    pub(crate) fn propagate_pipelined<F>(
        &mut self,
        doc: &mut Document,
        stmts: &[UpdateStatement],
        depth: usize,
        masks: Option<&[Vec<bool>]>,
        want_pre: bool,
        mut on_commit: F,
    ) -> Result<(), Error>
    where
        F: FnMut(usize, &Pul, Option<&Document>, Vec<(String, UpdateReport)>),
    {
        debug_assert!(masks.is_none_or(|m| m.len() == stmts.len()));
        let mask_of = |k: usize| masks.map(|m| m[k].as_slice());
        if depth <= 1 || stmts.len() <= 1 {
            for (k, stmt) in stmts.iter().enumerate() {
                let pre = want_pre.then(|| doc.clone());
                let (pul, reports) = self.apply_statement_counted(doc, stmt, mask_of(k))?;
                on_commit(k, &pul, pre.as_ref(), reports);
            }
            return Ok(());
        }
        let runtime =
            Self::ensure_runtime(&mut self.runtime, &mut self.retired_spawns, self.workers);

        let mut k0 = 0usize;
        while k0 < stmts.len() {
            let window = depth.min(stmts.len() - k0);
            // Phase A (submitting thread): apply the window's PULs one
            // after another, freezing a snapshot around every apply.
            // Each step's prepare must read the document *before* its
            // own apply and its finish the document *after* — both
            // versions stay alive (and frozen) for the pool below.
            let mut steps: Vec<parallel::WindowStep> = Vec::with_capacity(window);
            let mut failure: Option<Error> = None;
            for (j, stmt) in stmts[k0..k0 + window].iter().enumerate() {
                let (pul, t_find) = timed(|| compute_pul(doc, stmt));
                let groups = schedule(&self.views, self.workers, doc, &pul);
                let pre = doc.clone();
                let (apply_res, t_apply) = timed(|| apply_pul(doc, &pul));
                let apply_res = match apply_res {
                    Ok(res) => res,
                    Err(e) => {
                        failure = Some(e.into());
                        break;
                    }
                };
                let post = doc.clone();
                steps.push(parallel::WindowStep {
                    pul,
                    groups,
                    skip: mask_of(k0 + j).map(<[bool]>::to_vec).unwrap_or_default(),
                    pre,
                    post,
                    apply_res,
                    t_find,
                    t_apply,
                });
            }
            // Phase B (pool): drain the window — one chained job per
            // merged shard. Phase C: seal strictly in commit order.
            if !steps.is_empty() {
                let reports = parallel::run_window(&mut self.views, &steps, runtime);
                for (j, (step, per_view)) in steps.iter().zip(reports).enumerate() {
                    on_commit(k0 + j, &step.pul, want_pre.then_some(&step.pre), per_view);
                }
            }
            if let Some(e) = failure {
                return Err(e);
            }
            k0 += window;
        }
        Ok(())
    }

    /// The Figure 15 partition of the views under `pul`: views in
    /// distinct groups have order-independent PUL projections (they
    /// could live on different shards). Exactly the grouping a
    /// multi-worker `propagate_pul` schedules — both go through
    /// [`crate::parallel::schedule_groups`]; with one worker the
    /// sequential pass runs all views as a single merged group
    /// instead. For the per-view op projections themselves (the
    /// shard-assignment detail), see
    /// [`crate::parallel::PropagationPlan`].
    pub fn partition(&self, doc: &Document, pul: &Pul) -> Vec<Vec<usize>> {
        let patterns: Vec<&TreePattern> = self.views.iter().map(|(_, e)| e.pattern()).collect();
        parallel::schedule_groups(doc, pul, &patterns)
    }
}

/// The scheduling groups for one propagation: the Figure 15 partition
/// with more than one worker, a single merged group otherwise (the
/// sequential pass skips all footprint work). A free function so
/// callers can hold disjoint borrows of the engine's other fields.
fn schedule(
    views: &[(String, MaintenanceEngine)],
    workers: usize,
    doc: &Document,
    pul: &Pul,
) -> Vec<Vec<usize>> {
    if workers.min(views.len()) > 1 {
        let patterns: Vec<&TreePattern> = views.iter().map(|(_, e)| e.pattern()).collect();
        parallel::schedule_groups(doc, pul, &patterns)
    } else {
        PropagationPlan::single_group(views.len()).groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_store::ViewStore;
    use xivm_pattern::compile::view_tuples;
    use xivm_pattern::parse_pattern;
    use xivm_update::statement::parse_statement;
    use xivm_xml::parse_document;

    fn multi() -> (Document, MultiViewEngine) {
        let doc = parse_document("<a><c><b/><b/></c><f><c><b/></c><b/></f></a>").unwrap();
        let engine = MultiViewEngine::new(
            &doc,
            [
                (
                    "ab".to_owned(),
                    parse_pattern("//a{id}//b{id}").unwrap(),
                    SnowcapStrategy::MinimalChain,
                ),
                (
                    "acb".to_owned(),
                    parse_pattern("//a{id}[//c{id}]//b{id}").unwrap(),
                    SnowcapStrategy::LeavesOnly,
                ),
                (
                    "c_cont".to_owned(),
                    parse_pattern("//c{id,cont}").unwrap(),
                    SnowcapStrategy::MinimalChain,
                ),
            ],
        );
        (doc, engine)
    }

    #[test]
    fn all_views_stay_consistent_under_a_shared_update() {
        let (mut doc, mut engine) = multi();
        assert_eq!(engine.len(), 3);
        for stmt_text in ["delete /a/f/c", "insert <c><b/></c> into /a/f", "delete //b"] {
            let stmt = parse_statement(stmt_text).unwrap();
            let reports = engine.apply_statement(&mut doc, &stmt).unwrap();
            assert_eq!(reports.len(), 3);
            for name in engine.names() {
                let pattern = engine.view(name).unwrap().pattern().clone();
                let expected = ViewStore::from_counted(&pattern, view_tuples(&doc, &pattern));
                assert!(
                    engine.view(name).unwrap().store().same_content_as(&expected),
                    "view {name} diverged after {stmt_text}"
                );
            }
        }
    }

    #[test]
    fn shared_target_finding_reports_identical_find_times() {
        let (mut doc, mut engine) = multi();
        let stmt = parse_statement("insert <b/> into //c").unwrap();
        let reports = engine.apply_statement(&mut doc, &stmt).unwrap();
        let t0 = reports[0].1.timings.find_target_nodes;
        assert!(reports.iter().all(|(_, r)| r.timings.find_target_nodes == t0));
    }

    #[test]
    fn view_lookup() {
        let (_, mut engine) = multi();
        assert!(engine.view("ab").is_some());
        assert!(engine.view("nope").is_none());
        assert!(engine.view_mut("acb").is_some());
        assert!(engine.view_mut("nope").is_none());
        assert_eq!(engine.position("c_cont"), Some(2));
        assert_eq!(engine.get(1).map(|(n, _)| n), Some("acb"));
        assert!(!engine.is_empty());
    }

    #[test]
    fn declaration_order_is_preserved_by_names_and_reports() {
        let (mut doc, mut engine) = multi();
        assert_eq!(engine.names(), vec!["ab", "acb", "c_cont"]);
        let stmt = parse_statement("insert <b/> into //c").unwrap();
        let reports = engine.apply_statement(&mut doc, &stmt).unwrap();
        let order: Vec<&str> = reports.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(order, vec!["ab", "acb", "c_cont"]);
    }

    #[test]
    fn parallel_propagation_matches_sequential_exactly() {
        // workers beyond the view count, equal to it, and degenerate 1
        for workers in [1usize, 2, 3, 8] {
            let (mut seq_doc, mut seq) = multi();
            let (mut par_doc, mut par) = multi();
            seq.set_workers(1);
            par.set_workers(workers);
            for stmt_text in [
                "insert <b/> into //c",
                "delete /a/f/c",
                "insert <c><b/></c> into /a",
                "delete //b",
            ] {
                let stmt = parse_statement(stmt_text).unwrap();
                let seq_reports = seq.apply_statement(&mut seq_doc, &stmt).unwrap();
                let par_reports = par.apply_statement(&mut par_doc, &stmt).unwrap();
                assert_eq!(
                    xivm_xml::serialize_document(&seq_doc),
                    xivm_xml::serialize_document(&par_doc)
                );
                for ((n1, r1), (n2, r2)) in seq_reports.iter().zip(&par_reports) {
                    assert_eq!(n1, n2, "report order must stay declaration order");
                    assert_eq!(r1.tuples_added, r2.tuples_added, "{n1} after {stmt_text}");
                    assert_eq!(r1.tuples_removed, r2.tuples_removed, "{n1} after {stmt_text}");
                    assert_eq!(r1.tuples_modified, r2.tuples_modified, "{n1} after {stmt_text}");
                    assert_eq!(r1.derivations_added, r2.derivations_added);
                    assert_eq!(r1.derivations_removed, r2.derivations_removed);
                }
                for name in seq.names() {
                    assert!(
                        seq.view(name)
                            .unwrap()
                            .store()
                            .same_content_as(par.view(name).unwrap().store()),
                        "view {name} diverged under {workers} workers after {stmt_text}"
                    );
                }
            }
        }
    }

    #[test]
    fn workers_knob_clamps_and_reports() {
        let (_, mut engine) = multi();
        engine.set_workers(0);
        assert_eq!(engine.workers(), 1);
        engine.set_workers(4);
        assert_eq!(engine.workers(), 4);
    }

    #[test]
    fn partition_separates_label_disjoint_views() {
        let (doc, engine) = multi();
        // all three fixture views bind b or c → one shared group for a
        // PUL with distinct conflicting ops is possible, but a plain
        // insert has one op: no distinct conflicting pair, so every
        // view is its own group.
        let stmt = parse_statement("insert <b/> into //c").unwrap();
        let pul = xivm_update::compute_pul(&doc, &stmt);
        let groups = engine.partition(&doc, &pul);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn duplicate_names_keep_the_first_declaration() {
        let doc = parse_document("<a><b/></a>").unwrap();
        let engine = MultiViewEngine::new(
            &doc,
            [
                ("v".to_owned(), parse_pattern("//a{id}").unwrap(), SnowcapStrategy::MinimalChain),
                ("v".to_owned(), parse_pattern("//b{id}").unwrap(), SnowcapStrategy::MinimalChain),
            ],
        );
        assert_eq!(engine.position("v"), Some(0));
        assert_eq!(engine.view("v").unwrap().pattern().to_text(), "//a{id}");
    }
}
