//! Compact textual syntax for tree patterns.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! pattern := step
//! step    := ('/' | '//') test ann? vpred? branch* step?
//! test    := name | '@' name | '*'
//! ann     := '{' item (',' item)* '}'     item ∈ {id, val, cont}
//! vpred   := '[val=' '"' chars '"' ']'
//! branch  := '[' step ']'
//! ```
//!
//! Examples: `//a{id}//b{id}`, `//a[val="5"]//b{id}`,
//! `/site/people/person{id}[/@id]/name{id,val}`.

use crate::pattern::{Annotations, NodeTest, PatternNodeId, TreePattern};
use std::fmt;
use xivm_algebra::Axis;

/// Pattern syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for PatternParseError {}

/// Parses the compact pattern syntax into a [`TreePattern`].
pub fn parse_pattern(input: &str) -> Result<TreePattern, PatternParseError> {
    let mut p = Parser { bytes: input.trim().as_bytes(), pos: 0 };
    let (axis, test) = p.axis_and_test()?;
    let mut pattern = TreePattern::new(test);
    // The root's incoming edge encodes whether the pattern is anchored
    // at the document root (`/site…`) or floats (`//a…`).
    pattern.set_root_edge(axis);
    let root = pattern.root();
    p.node_suffix(&mut pattern, root)?;
    p.steps(&mut pattern, root)?;
    if !p.at_end() {
        return Err(p.err("trailing input"));
    }
    Ok(pattern)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn err(&self, m: &str) -> PatternParseError {
        PatternParseError { offset: self.pos, message: m.to_owned() }
    }

    fn axis(&mut self) -> Result<Axis, PatternParseError> {
        if self.starts_with("//") {
            self.pos += 2;
            Ok(Axis::Descendant)
        } else if self.peek() == Some(b'/') {
            self.pos += 1;
            Ok(Axis::Child)
        } else {
            Err(self.err("expected '/' or '//'"))
        }
    }

    fn axis_and_test(&mut self) -> Result<(Axis, NodeTest), PatternParseError> {
        let axis = self.axis()?;
        let test = self.test()?;
        Ok((axis, test))
    }

    fn test(&mut self) -> Result<NodeTest, PatternParseError> {
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Ok(NodeTest::Wildcard)
            }
            Some(b'@') => {
                self.pos += 1;
                let n = self.name()?;
                Ok(NodeTest::Name(format!("@{n}")))
            }
            _ => Ok(NodeTest::Name(self.name()?)),
        }
    }

    fn name(&mut self) -> Result<String, PatternParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a label"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned())
    }

    /// Annotations, value predicate and branches of the current node.
    fn node_suffix(
        &mut self,
        pattern: &mut TreePattern,
        node: PatternNodeId,
    ) -> Result<(), PatternParseError> {
        if self.peek() == Some(b'{') {
            self.pos += 1;
            let mut ann = Annotations::NONE;
            loop {
                let item = self.name()?;
                match item.as_str() {
                    "id" => ann.id = true,
                    "val" => ann.val = true,
                    "cont" => ann.cont = true,
                    other => return Err(self.err(&format!("unknown annotation '{other}'"))),
                }
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
            pattern.annotate(node, ann);
        }
        if self.starts_with("[val=") {
            self.pos += 5;
            if self.peek() != Some(b'"') {
                return Err(self.err("expected '\"' after [val="));
            }
            self.pos += 1;
            let start = self.pos;
            while self.peek() != Some(b'"') {
                if self.at_end() {
                    return Err(self.err("unterminated value predicate"));
                }
                self.pos += 1;
            }
            let value = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned();
            self.pos += 1;
            if self.peek() != Some(b']') {
                return Err(self.err("expected ']' after value predicate"));
            }
            self.pos += 1;
            pattern.set_val_pred(node, value);
        }
        // branches
        while self.peek() == Some(b'[') {
            self.pos += 1;
            let (axis, test) = self.axis_and_test()?;
            let child = pattern.add_child(node, axis, test);
            self.node_suffix(pattern, child)?;
            self.steps(pattern, child)?;
            if self.peek() != Some(b']') {
                return Err(self.err("expected ']' to close branch"));
            }
            self.pos += 1;
        }
        Ok(())
    }

    /// Continuation of the main path under `node`.
    fn steps(
        &mut self,
        pattern: &mut TreePattern,
        node: PatternNodeId,
    ) -> Result<(), PatternParseError> {
        let mut cur = node;
        while !self.at_end() && self.peek() == Some(b'/') {
            let (axis, test) = self.axis_and_test()?;
            let child = pattern.add_child(cur, axis, test);
            self.node_suffix(pattern, child)?;
            cur = child;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_chain() {
        let p = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_text(), "//a{id}//b{id}//c{id}");
    }

    #[test]
    fn parse_branches_and_predicates() {
        let p = parse_pattern("//a{id}[//b//c]//d{id,cont}").unwrap();
        assert_eq!(p.len(), 4);
        let root = p.root();
        assert_eq!(p.node(root).children.len(), 2);
        let d = *p.node(root).children.last().unwrap();
        assert!(p.node(d).ann.cont);
        assert_eq!(p.to_text(), "//a{id}[//b//c]//d{id,cont}");
    }

    #[test]
    fn parse_value_predicate() {
        let p = parse_pattern("//a[val=\"5\"]//b{id}").unwrap();
        assert_eq!(p.node(p.root()).val_pred.as_deref(), Some("5"));
        assert_eq!(p.to_text(), "//a[val=\"5\"]//b{id}");
    }

    #[test]
    fn parse_child_edges_attributes_wildcards() {
        let p = parse_pattern("/site{id}/regions/*{id}/item{id}[/@id{id,val}]").unwrap();
        assert_eq!(p.len(), 5);
        let order = p.preorder();
        let names: Vec<_> = order.iter().map(|&n| p.node(n).base_label()).collect();
        assert_eq!(names, vec!["site", "regions", "*", "item", "@id"]);
        assert_eq!(p.node(order[4]).edge, Axis::Child);
    }

    #[test]
    fn roundtrip_nested_branches() {
        let src = "//a{id}[//b[//x]//c]//d{id}";
        let p = parse_pattern(src).unwrap();
        assert_eq!(p.to_text(), src);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_pattern("a//b").is_err());
        assert!(parse_pattern("//a{bogus}").is_err());
        assert!(parse_pattern("//a[//b").is_err());
        assert!(parse_pattern("//a]").is_err());
        assert!(parse_pattern("//a[val=5]").is_err());
    }
}
