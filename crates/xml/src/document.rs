//! The arena-based XML document store.

use crate::arena::Arena;
use crate::canonical::CanonicalIndex;
use crate::dewey::{between_ord, next_sibling_ord, DeweyId};
use crate::error::XmlError;
use crate::label::{attribute_label, LabelId, LabelInterner, TEXT_LABEL};
use crate::node::{Node, NodeId, NodeKind};
use crate::serializer::serialize_node;
use std::sync::Arc;

/// An ordered labeled tree of element, attribute and text nodes, with
/// update-stable Dewey identifiers and per-label canonical relations.
///
/// Deletion marks nodes dead rather than reclaiming arena slots, so
/// `NodeId`s held by in-flight operations never dangle; all traversal
/// APIs skip dead nodes.
///
/// `Clone` is a cheap copy-on-write snapshot, not a deep copy: the
/// node [`Arena`] shares its chunks and the [`CanonicalIndex`] its
/// per-label lists via `Arc`, so cloning is O(chunks + labels) and a
/// later mutation copies only the chunks and lists it touches. A held
/// clone is a frozen, immutable image of the document at clone time —
/// the MVCC substrate behind database snapshots and deep pipelining.
#[derive(Debug, Default, Clone)]
pub struct Document {
    nodes: Arena,
    root: Option<NodeId>,
    labels: Arc<LabelInterner>,
    canonical: CanonicalIndex,
}

impl Document {
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Label management
    // ------------------------------------------------------------------

    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// The canonical index itself, read-only (per-label node lists in
    /// document order). Exposed for the copy-on-write diagnostics.
    pub fn canonical_index(&self) -> &CanonicalIndex {
        &self.canonical
    }

    /// How many node-arena chunks this document physically shares with
    /// `other`: a fresh clone shares every chunk; each chunk a
    /// mutation touched after the clone drops out. See
    /// [`Arena::shared_chunks_with`].
    pub fn shared_chunks_with(&self, other: &Document) -> usize {
        self.nodes.shared_chunks_with(&other.nodes)
    }

    /// Total arena chunk count — the cost of one [`Clone`] in pointer
    /// copies.
    pub fn chunk_count(&self) -> usize {
        self.nodes.chunk_count()
    }

    pub fn intern_label(&mut self, name: &str) -> LabelId {
        Arc::make_mut(&mut self.labels).intern(name)
    }

    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name)
    }

    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id)
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates the root element. Fails if a root already exists.
    pub fn set_root(&mut self, tag: &str) -> Result<NodeId, XmlError> {
        if self.root.is_some() {
            return Err(XmlError::InvalidTarget("document already has a root".into()));
        }
        let label = self.intern_label(tag);
        let id = self.push_node(Node {
            kind: NodeKind::Element,
            label,
            ord: next_sibling_ord(None),
            parent: None,
            children: Vec::new(),
            text: None,
            alive: true,
            max_child_ord: 0,
        });
        self.root = Some(id);
        self.canonical.insert(&self.nodes, label, id);
        Ok(id)
    }

    /// Appends a new element child after the current last child.
    pub fn append_element(&mut self, parent: NodeId, tag: &str) -> Result<NodeId, XmlError> {
        let label = self.intern_label(tag);
        self.append_node(parent, NodeKind::Element, label, None)
    }

    /// Appends an attribute node (interned under `@name`).
    pub fn append_attribute(
        &mut self,
        parent: NodeId,
        name: &str,
        value: &str,
    ) -> Result<NodeId, XmlError> {
        let label = self.intern_label(&attribute_label(name));
        self.append_node(parent, NodeKind::Attribute, label, Some(value.to_owned()))
    }

    /// Appends a text node.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> Result<NodeId, XmlError> {
        let label = self.intern_label(TEXT_LABEL);
        self.append_node(parent, NodeKind::Text, label, Some(text.to_owned()))
    }

    /// Inserts a new element *before* an existing child, exercising the
    /// midpoint ordinal allocation (no relabeling of existing nodes).
    pub fn insert_element_before(
        &mut self,
        parent: NodeId,
        before: NodeId,
        tag: &str,
    ) -> Result<NodeId, XmlError> {
        self.check_alive(parent)?;
        self.check_alive(before)?;
        let pos =
            self.nodes[parent.index()].children.iter().position(|&c| c == before).ok_or_else(
                || XmlError::InvalidTarget("`before` is not a child of parent".into()),
            )?;
        let right = self.nodes[before.index()].ord;
        let left = if pos == 0 {
            0
        } else {
            let prev = self.nodes[parent.index()].children[pos - 1];
            self.nodes[prev.index()].ord
        };
        let ord = between_ord(left, right)
            .ok_or_else(|| XmlError::InvalidTarget("sibling ordinal gap exhausted".into()))?;
        let label = self.intern_label(tag);
        let id = self.push_node(Node {
            kind: NodeKind::Element,
            label,
            ord,
            parent: Some(parent),
            children: Vec::new(),
            text: None,
            alive: true,
            max_child_ord: 0,
        });
        self.nodes.get_mut(parent.index()).children.insert(pos, id);
        self.canonical.insert(&self.nodes, label, id);
        Ok(id)
    }

    fn append_node(
        &mut self,
        parent: NodeId,
        kind: NodeKind,
        label: LabelId,
        text: Option<String>,
    ) -> Result<NodeId, XmlError> {
        self.check_alive(parent)?;
        if !self.nodes[parent.index()].is_element() {
            return Err(XmlError::InvalidTarget("children can only be added to elements".into()));
        }
        // Allocate past the highest ordinal *ever* used under this
        // parent (not just the current last child): ordinals of deleted
        // children are never reused, so their IDs stay dead forever.
        let max = self.nodes[parent.index()].max_child_ord;
        let ord = next_sibling_ord((max > 0).then_some(max));
        let id = self.push_node(Node {
            kind,
            label,
            ord,
            parent: Some(parent),
            children: Vec::new(),
            text,
            alive: true,
            max_child_ord: 0,
        });
        let pnode = self.nodes.get_mut(parent.index());
        pnode.children.push(id);
        pnode.max_child_ord = ord;
        self.canonical.insert(&self.nodes, label, id);
        Ok(id)
    }

    /// Highest sibling ordinal ever allocated under `parent` (deleted
    /// children included): appended children always receive ordinals
    /// strictly beyond this value, in [`crate::dewey::ORD_STRIDE`]
    /// increments.
    pub fn max_child_ord(&self, parent: NodeId) -> u64 {
        self.nodes[parent.index()].max_child_ord
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node)
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes the subtree rooted at `node` (XQuery Update `delete`
    /// semantics: all descendants go too). Returns the removed nodes in
    /// pre-order, which is exactly what Δ⁻ extraction needs.
    pub fn remove_subtree(&mut self, node: NodeId) -> Result<Vec<NodeId>, XmlError> {
        self.check_alive(node)?;
        if Some(node) == self.root {
            self.root = None;
        }
        if let Some(p) = self.nodes[node.index()].parent {
            self.nodes.get_mut(p.index()).children.retain(|&c| c != node);
        }
        let removed = self.descendants_or_self(node);
        for &n in &removed {
            let label = self.nodes[n.index()].label;
            self.canonical.remove(label, n);
            self.nodes.get_mut(n.index()).alive = false;
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && self.nodes[id.index()].alive
    }

    pub fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Live children in document order.
    pub fn children_of(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// All nodes in the arena (including dead ones); mostly for
    /// debugging and invariant checks.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// Materializes the full Dewey ID of a node by climbing to the root.
    pub fn dewey(&self, id: NodeId) -> DeweyId {
        let mut steps = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = &self.nodes[c.index()];
            steps.push(crate::dewey::Step::new(n.label, n.ord));
            cur = n.parent;
        }
        steps.reverse();
        DeweyId::from_steps(steps)
    }

    /// Finds the live node identified by a Dewey ID, if any.
    pub fn find_node(&self, id: &DeweyId) -> Option<NodeId> {
        let root = self.root?;
        let steps = id.steps();
        if steps.is_empty() || self.nodes[root.index()].ord != steps[0].ord {
            return None;
        }
        let mut cur = root;
        for step in &steps[1..] {
            let children = &self.nodes[cur.index()].children;
            let found =
                children.binary_search_by(|c| self.nodes[c.index()].ord.cmp(&step.ord)).ok()?;
            cur = children[found];
            if self.nodes[cur.index()].label != step.label {
                return None; // stale ID from a different document era
            }
        }
        self.nodes[cur.index()].alive.then_some(cur)
    }

    /// Pre-order traversal of the live subtree rooted at `id`
    /// (attributes included, in document order).
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if !self.nodes[n.index()].alive {
                continue;
            }
            out.push(n);
            // push children reversed so pop yields document order
            for &c in self.nodes[n.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The string *value* of a node: concatenation of its text
    /// descendants in document order (XPath string-value). Attribute
    /// subtrees are excluded for elements; attributes and text nodes
    /// yield their own text.
    pub fn value(&self, id: NodeId) -> String {
        let n = &self.nodes[id.index()];
        match n.kind {
            NodeKind::Text | NodeKind::Attribute => n.text.clone().unwrap_or_default(),
            NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for &c in &self.nodes[id.index()].children {
            let n = &self.nodes[c.index()];
            if !n.alive {
                continue;
            }
            match n.kind {
                NodeKind::Text => out.push_str(n.text.as_deref().unwrap_or("")),
                NodeKind::Element => self.collect_text(c, out),
                NodeKind::Attribute => {}
            }
        }
    }

    /// The *content* of a node: its full serialized subtree image.
    pub fn content(&self, id: NodeId) -> String {
        serialize_node(self, id)
    }

    /// Live members of the canonical relation `R_label`, in document
    /// order.
    pub fn canonical_nodes(&self, label: LabelId) -> &[NodeId] {
        self.canonical.nodes(label)
    }

    /// Canonical relation by label *name*; empty when the label never
    /// occurred in the document.
    pub fn canonical_nodes_named(&self, name: &str) -> &[NodeId] {
        match self.labels.get(name) {
            Some(l) => self.canonical.nodes(l),
            None => &[],
        }
    }

    fn check_alive(&self, id: NodeId) -> Result<(), XmlError> {
        if self.is_alive(id) {
            Ok(())
        } else {
            Err(XmlError::DeadNode)
        }
    }

    /// Verifies internal invariants (parent/child symmetry, ordinal
    /// monotonicity, canonical-index consistency). Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            let id = NodeId(i as u32);
            let mut last_ord = 0u64;
            for &c in &n.children {
                let cn = &self.nodes[c.index()];
                if !cn.alive {
                    return Err(format!("dead child {c:?} retained under {id:?}"));
                }
                if cn.parent != Some(id) {
                    return Err(format!("child {c:?} does not point back to {id:?}"));
                }
                if cn.ord <= last_ord {
                    return Err(format!("non-monotonic ordinals under {id:?}"));
                }
                last_ord = cn.ord;
            }
            if !self.canonical.contains(n.label, id) {
                return Err(format!("node {id:?} missing from canonical relation"));
            }
        }
        self.canonical.check_sorted(&self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        // <a><c><b/></c><f><b/></f></a>  (Figure 2 of the paper)
        let mut d = Document::new();
        let a = d.set_root("a").unwrap();
        let c = d.append_element(a, "c").unwrap();
        let b1 = d.append_element(c, "b").unwrap();
        let f = d.append_element(a, "f").unwrap();
        let _b2 = d.append_element(f, "b").unwrap();
        d.check_invariants().unwrap();
        (d, a, c, b1)
    }

    #[test]
    fn structure_matches_figure_2() {
        let (d, a, c, b1) = sample();
        assert!(d.dewey(a).is_parent_of(&d.dewey(c)));
        assert!(d.dewey(a).is_ancestor_of(&d.dewey(b1)));
        assert!(d.dewey(c).is_parent_of(&d.dewey(b1)));
        let b_label = d.label_id("b").unwrap();
        assert_eq!(d.canonical_nodes(b_label).len(), 2);
    }

    #[test]
    fn only_one_root_allowed() {
        let mut d = Document::new();
        d.set_root("a").unwrap();
        assert!(d.set_root("b").is_err());
    }

    #[test]
    fn value_concatenates_text_descendants() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        d.append_text(r, "x").unwrap();
        let b = d.append_element(r, "b").unwrap();
        d.append_attribute(b, "id", "skip-me").unwrap();
        d.append_text(b, "y").unwrap();
        assert_eq!(d.value(r), "xy");
        assert_eq!(d.value(b), "y");
    }

    #[test]
    fn attribute_value_is_its_own_value() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        let at = d.append_attribute(r, "id", "person0").unwrap();
        assert_eq!(d.value(at), "person0");
        assert_eq!(d.label_name(d.node(at).label), "@id");
    }

    #[test]
    fn remove_subtree_returns_preorder_and_updates_canonical() {
        let (mut d, _a, c, b1) = sample();
        let removed = d.remove_subtree(c).unwrap();
        assert_eq!(removed, vec![c, b1]);
        assert!(!d.is_alive(c));
        assert!(!d.is_alive(b1));
        let b_label = d.label_id("b").unwrap();
        assert_eq!(d.canonical_nodes(b_label).len(), 1);
        d.check_invariants().unwrap();
    }

    #[test]
    fn remove_then_access_is_error() {
        let (mut d, _, c, _) = sample();
        d.remove_subtree(c).unwrap();
        assert_eq!(d.remove_subtree(c), Err(XmlError::DeadNode));
        assert!(d.append_element(c, "z").is_err());
    }

    #[test]
    fn dewey_find_roundtrip() {
        let (d, a, c, b1) = sample();
        for n in [a, c, b1] {
            assert_eq!(d.find_node(&d.dewey(n)), Some(n));
        }
        // deleted node is not found
        let mut d2 = d.clone();
        let id = d2.dewey(b1);
        d2.remove_subtree(b1).unwrap();
        assert_eq!(d2.find_node(&id), None);
    }

    #[test]
    fn insert_before_keeps_existing_ids_stable() {
        let (mut d, a, c, _) = sample();
        let c_id_before = d.dewey(c);
        let f = d.children_of(a)[1];
        let new = d.insert_element_before(a, f, "z").unwrap();
        assert_eq!(d.dewey(c), c_id_before, "existing IDs must not change");
        let ids: Vec<_> = d.children_of(a).to_vec();
        assert_eq!(ids, vec![c, new, f]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn descendants_or_self_is_preorder() {
        let (d, a, c, b1) = sample();
        let all = d.descendants_or_self(a);
        assert_eq!(all[0], a);
        assert_eq!(all[1], c);
        assert_eq!(all[2], b1);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn canonical_relation_in_document_order() {
        let (d, _, _, _) = sample();
        let b = d.label_id("b").unwrap();
        let rel = d.canonical_nodes(b);
        assert!(d.dewey(rel[0]).doc_cmp(&d.dewey(rel[1])).is_lt());
    }

    #[test]
    fn children_can_only_be_added_to_elements() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        let t = d.append_text(r, "hello").unwrap();
        assert!(d.append_element(t, "b").is_err());
    }

    #[test]
    fn content_serializes_subtree() {
        let (d, _, c, _) = sample();
        assert_eq!(d.content(c), "<c><b/></c>");
    }
}
