//! Error type shared by the XML substrate.

use std::fmt;

/// Errors raised while parsing or manipulating XML documents.
///
/// Marked `#[non_exhaustive]`: new failure classes may be added
/// without a breaking release, so downstream matches need a `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// The parser encountered malformed input at the given byte offset.
    Parse { offset: usize, message: String },
    /// An operation referenced a node that does not exist or was deleted.
    DeadNode,
    /// An operation was attempted on a node of an unsupported kind,
    /// e.g. appending a child to a text node.
    InvalidTarget(String),
    /// The document has no root yet.
    NoRoot,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            XmlError::DeadNode => write!(f, "operation on a deleted or unknown node"),
            XmlError::InvalidTarget(what) => write!(f, "invalid target node: {what}"),
            XmlError::NoRoot => write!(f, "document has no root element"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

    #[test]
    fn xml_error_is_a_std_error() {
        assert_error::<XmlError>();
    }

    #[test]
    fn display_is_informative() {
        let e = XmlError::Parse { offset: 7, message: "unexpected '<'".into() };
        assert!(e.to_string().contains("byte 7"));
        assert!(XmlError::DeadNode.to_string().contains("deleted"));
        assert!(XmlError::NoRoot.to_string().contains("root"));
        assert!(XmlError::InvalidTarget("text".into()).to_string().contains("text"));
    }
}
