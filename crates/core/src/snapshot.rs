//! Snapshots: frozen in-memory database images and binary view images.
//!
//! Two layers share this module:
//!
//! * [`DatabaseSnapshot`] — a cheap MVCC snapshot of a whole
//!   [`Database`](crate::database::Database): the document (a
//!   copy-on-write [`Document`] clone, O(chunks)) plus every view
//!   store behind an `Arc`, stamped with the sequence number of the
//!   last sealed commit. Readers iterate, cursor and evaluate XPath
//!   against the frozen image while commits keep landing on the live
//!   database; a commit that must mutate a store still held by a
//!   snapshot copies it first (`Arc::make_mut`), so neither side ever
//!   blocks the other.
//! * [`encode_store`] / [`decode_store`] — the on-disk image. Section
//!   7 contrasts the approach with Galax's algebra-based maintenance
//!   precisely on this point: "our approach requires manipulating only
//!   tuples of IDs, that may be stored on disk … and read as needed".
//!   The encoding is a compact self-describing image of a
//!   [`ViewStore`] built on the variable-length Dewey ID encoding.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "XIVM" · version u16 · arity u16
//! per column:  name (len-prefixed utf-8) · flags u8 (val|cont)
//! tuple count u64
//! per tuple:   derivation count u64
//!              per field: dewey (len-prefixed) ·
//!                         val  (0u32 or len-prefixed utf-8) ·
//!                         cont (0u32 or len-prefixed utf-8)
//! ```

use crate::commit::ViewDelta;
use crate::database::ViewHandle;
use crate::error::Error;
use crate::subscribe::{DeltaEvent, FeedEvent, Lagged};
use crate::view_store::{Cursor, TupleKey, ViewStore};
use std::sync::Arc;
use xivm_algebra::{Column, Field, Schema, Tuple};
use xivm_pattern::xpath::{eval_path, parse_xpath};
use xivm_xml::{serialize_document, DeweyId, Document, NodeId};

const MAGIC: &[u8; 4] = b"XIVM";
const VERSION: u16 = 1;

/// Magic for framed feed events ([`encode_event`] / [`decode_event`]):
/// same family as the store image, distinct so a store image fed to the
/// event decoder (or vice versa) fails loudly at the first four bytes.
const EVENT_MAGIC: &[u8; 4] = b"XIVE";
const EVENT_VERSION: u16 = 1;

/// Snapshot and wire-frame decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    BadMagic,
    UnsupportedVersion(u16),
    Truncated,
    /// Structurally invalid input: `what` names the field, `pos` is the
    /// byte offset the decoder had reached — enough to diagnose which
    /// frame of a wire stream went bad.
    Corrupt {
        what: &'static str,
        pos: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a xivm snapshot"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt { what, pos } => {
                write!(f, "corrupt snapshot: {what} at byte {pos}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes the store (schema, tuples, derivation counts).
pub fn encode_store(store: &ViewStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + store.len() * 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let schema = store.schema();
    out.extend_from_slice(&(schema.arity() as u16).to_le_bytes());
    for col in &schema.columns {
        write_bytes(&mut out, col.name.as_bytes());
        out.push(u8::from(col.stores_val) | (u8::from(col.stores_cont) << 1));
    }
    let tuples = store.cursor();
    out.extend_from_slice(&(tuples.len() as u64).to_le_bytes());
    for (t, count) in tuples {
        out.extend_from_slice(&count.to_le_bytes());
        for field in t.fields() {
            write_bytes(&mut out, &field.id.encode());
            write_opt_str(&mut out, field.val.as_deref());
            write_opt_str(&mut out, field.cont.as_deref());
        }
    }
    out
}

/// Reconstructs a store from [`encode_store`]'s output.
pub fn decode_store(bytes: &[u8]) -> Result<ViewStore, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let arity = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let pos = r.pos;
        let name = String::from_utf8(r.bytes_field()?.to_vec())
            .map_err(|_| SnapshotError::Corrupt { what: "column name", pos })?;
        let flags = r.take(1)?[0];
        columns.push(Column::with(name, flags & 1 != 0, flags & 2 != 0));
    }
    let schema = Schema::new(columns);
    let n = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")) as usize;
    let mut store = ViewStore::from_schema(schema);
    for _ in 0..n {
        let count = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            fields.push(read_field(&mut r)?);
        }
        store.add(Tuple::new(fields), count);
    }
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupt { what: "trailing bytes", pos: r.pos });
    }
    Ok(store)
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn write_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
        Some(s) => write_bytes(out, s.as_bytes()),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        // Bound against the *remaining* bytes, never `pos + n`: a
        // length prefix near usize::MAX must read as Truncated, not
        // wrap the addition and hand out a bogus slice.
        if n > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")) as usize;
        self.take(len)
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<Arc<str>>, SnapshotError> {
    let pos = r.pos;
    let len = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
    if len == u32::MAX {
        return Ok(None);
    }
    let s = std::str::from_utf8(r.take(len as usize)?)
        .map_err(|_| SnapshotError::Corrupt { what: "utf-8 string", pos })?;
    Ok(Some(Arc::from(s)))
}

fn read_dewey(r: &mut Reader<'_>) -> Result<DeweyId, SnapshotError> {
    let pos = r.pos;
    DeweyId::decode(r.bytes_field()?).ok_or(SnapshotError::Corrupt { what: "dewey id", pos })
}

fn write_field(out: &mut Vec<u8>, field: &Field) {
    write_bytes(out, &field.id.encode());
    write_opt_str(out, field.val.as_deref());
    write_opt_str(out, field.cont.as_deref());
}

fn read_field(r: &mut Reader<'_>) -> Result<Field, SnapshotError> {
    let id = read_dewey(r)?;
    let val = read_opt_str(r)?;
    let cont = read_opt_str(r)?;
    Ok(Field::new(id, val, cont))
}

// ---------------------------------------------------------------------
// Feed-event wire frames
// ---------------------------------------------------------------------

fn write_tuple(out: &mut Vec<u8>, tuple: &Tuple) {
    out.extend_from_slice(&(tuple.arity() as u16).to_le_bytes());
    for field in tuple.fields() {
        write_field(out, field);
    }
}

fn read_tuple(r: &mut Reader<'_>) -> Result<Tuple, SnapshotError> {
    let arity = r.u16()? as usize;
    let mut fields = Vec::with_capacity(arity.min(256));
    for _ in 0..arity {
        fields.push(read_field(r)?);
    }
    Ok(Tuple::new(fields))
}

fn write_key(out: &mut Vec<u8>, key: &TupleKey) {
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    for id in key {
        write_bytes(out, &id.encode());
    }
}

fn read_key(r: &mut Reader<'_>) -> Result<TupleKey, SnapshotError> {
    let n = r.u16()? as usize;
    let mut key = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        key.push(read_dewey(r)?);
    }
    Ok(key)
}

const EVENT_KIND_DELTA: u8 = 0;
const EVENT_KIND_LAGGED: u8 = 1;

/// Serializes one feed element — a commit's [`DeltaEvent`] or a
/// [`Lagged`] gap marker — as one self-describing frame, in the same
/// magic/version/length-prefixed style as [`encode_store`]:
///
/// ```text
/// magic "XIVE" · version u16 · kind u8
/// kind 0 (delta):  seq u64 · folded u8 (0|1) [· lo u64 · hi u64]
///                  inserted u64 · per: count u64 · tuple
///                  removed  u64 · per: key · count u64
///                  modified u64 · per: key · tuple
/// kind 1 (lagged): lo u64 · hi u64
/// tuple: arity u16 · per field: dewey · val · cont   (as encode_store)
/// key:   len u16 · per id: dewey (len-prefixed)
/// ```
pub fn encode_event(event: &FeedEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(EVENT_MAGIC);
    out.extend_from_slice(&EVENT_VERSION.to_le_bytes());
    match event {
        FeedEvent::Delta(e) => {
            out.push(EVENT_KIND_DELTA);
            out.extend_from_slice(&e.seq.to_le_bytes());
            match &e.folded {
                None => out.push(0),
                Some(range) => {
                    out.push(1);
                    out.extend_from_slice(&range.start().to_le_bytes());
                    out.extend_from_slice(&range.end().to_le_bytes());
                }
            }
            let d = &e.delta;
            out.extend_from_slice(&(d.inserted.len() as u64).to_le_bytes());
            for (tuple, count) in &d.inserted {
                out.extend_from_slice(&count.to_le_bytes());
                write_tuple(&mut out, tuple);
            }
            out.extend_from_slice(&(d.removed.len() as u64).to_le_bytes());
            for (key, count) in &d.removed {
                write_key(&mut out, key);
                out.extend_from_slice(&count.to_le_bytes());
            }
            out.extend_from_slice(&(d.modified.len() as u64).to_le_bytes());
            for (key, tuple) in &d.modified {
                write_key(&mut out, key);
                write_tuple(&mut out, tuple);
            }
        }
        FeedEvent::Lagged(lag) => {
            out.push(EVENT_KIND_LAGGED);
            out.extend_from_slice(&lag.missed_range.start().to_le_bytes());
            out.extend_from_slice(&lag.missed_range.end().to_le_bytes());
        }
    }
    out
}

/// Reconstructs a feed element from [`encode_event`]'s output. All the
/// [`decode_store`] hardening guarantees apply: corrupt or truncated
/// frames yield a typed [`SnapshotError`] (with the byte position for
/// `Corrupt`), never a panic or an attacker-sized allocation.
pub fn decode_event(bytes: &[u8]) -> Result<FeedEvent, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != EVENT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != EVENT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let kind_pos = r.pos;
    let kind = r.take(1)?[0];
    let event = match kind {
        EVENT_KIND_DELTA => {
            let seq = r.u64()?;
            let folded_pos = r.pos;
            let folded = match r.take(1)?[0] {
                0 => None,
                1 => {
                    let lo = r.u64()?;
                    let hi = r.u64()?;
                    if lo > hi || hi > seq {
                        return Err(SnapshotError::Corrupt {
                            what: "folded range",
                            pos: folded_pos,
                        });
                    }
                    Some(lo..=hi)
                }
                _ => return Err(SnapshotError::Corrupt { what: "folded flag", pos: folded_pos }),
            };
            let mut delta = ViewDelta::default();
            for _ in 0..r.u64()? {
                let count = r.u64()?;
                delta.inserted.push((read_tuple(&mut r)?, count));
            }
            for _ in 0..r.u64()? {
                let key = read_key(&mut r)?;
                delta.removed.push((key, r.u64()?));
            }
            for _ in 0..r.u64()? {
                let key = read_key(&mut r)?;
                delta.modified.push((key, read_tuple(&mut r)?));
            }
            FeedEvent::Delta(DeltaEvent { seq, folded, delta: Arc::new(delta) })
        }
        EVENT_KIND_LAGGED => {
            let lo = r.u64()?;
            let hi = r.u64()?;
            if lo > hi {
                return Err(SnapshotError::Corrupt { what: "lag range", pos: kind_pos });
            }
            FeedEvent::Lagged(Lagged { missed_range: lo..=hi })
        }
        _ => return Err(SnapshotError::Corrupt { what: "event kind", pos: kind_pos }),
    };
    if r.pos != bytes.len() {
        return Err(SnapshotError::Corrupt { what: "trailing bytes", pos: r.pos });
    }
    Ok(event)
}

// ---------------------------------------------------------------------
// In-memory MVCC snapshots
// ---------------------------------------------------------------------

/// A frozen image of a whole database at one commit boundary.
///
/// Produced by [`Database::snapshot`]: the document is a copy-on-write
/// clone (chunk pointers only, see [`xivm_xml::Arena`]) and every view
/// store is the live `Arc` at capture time, so taking a snapshot is
/// O(views + document chunks) — no tuple and no node is copied. The
/// image is gapless: it reflects exactly the commits `1..=seq()`,
/// never a half-propagated state, because [`Database`] only exposes
/// `&self` between commits.
///
/// Later commits never show through: the first mutation of any chunk,
/// canonical-relation list or store still shared with this snapshot
/// copies it on the writer's side (`Arc::make_mut`), so readers keep
/// the frozen originals without ever blocking a commit.
///
/// [`Database`]: crate::database::Database
/// [`Database::snapshot`]: crate::database::DbInner::snapshot
pub struct DatabaseSnapshot {
    seq: u64,
    doc: Document,
    views: Vec<(String, Arc<ViewStore>)>,
}

impl DatabaseSnapshot {
    /// Captures an image (called by `Database::snapshot` with its
    /// current commit counter, document and store `Arc`s).
    pub(crate) fn new(seq: u64, doc: Document, views: Vec<(String, Arc<ViewStore>)>) -> Self {
        DatabaseSnapshot { seq, doc, views }
    }

    /// The sequence number of the last commit this snapshot reflects
    /// (0 for a snapshot of a fresh database).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The frozen document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Serializes the frozen document.
    pub fn serialize(&self) -> String {
        serialize_document(&self.doc)
    }

    /// Number of views in the image.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Resolves a view name to its handle. Handles are interchangeable
    /// with the originating database's: both index declaration order.
    pub fn view(&self, name: &str) -> Result<ViewHandle, Error> {
        self.views
            .iter()
            .position(|(n, _)| n == name)
            .map(ViewHandle)
            .ok_or_else(|| Error::UnknownView(name.into()))
    }

    /// View names in declaration order.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The name behind a handle.
    pub fn name(&self, view: ViewHandle) -> &str {
        &self.views.get(view.index()).expect("handle from this snapshot").0
    }

    /// The frozen tuples of a view.
    pub fn store(&self, view: ViewHandle) -> &ViewStore {
        &self.views.get(view.index()).expect("handle from this snapshot").1
    }

    /// Document-order cursor over a view's frozen tuples.
    pub fn cursor(&self, view: ViewHandle) -> Cursor<'_> {
        self.store(view).cursor()
    }

    /// Evaluates an XPath location path against the frozen document —
    /// reads see exactly the state at [`Self::seq`], no matter how many
    /// commits have landed on the live database since.
    pub fn xpath(&self, path: &str) -> Result<Vec<NodeId>, Error> {
        let parsed = parse_xpath(path)?;
        Ok(eval_path(&self.doc, &parsed))
    }

    /// Binary image of one view ([`encode_store`]): snapshots are the
    /// natural producer of on-disk images, being immutable by
    /// construction.
    pub fn encode_view(&self, view: ViewHandle) -> Vec<u8> {
        encode_store(self.store(view))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::compile::view_tuples;
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    fn sample_store() -> ViewStore {
        let d = parse_document("<a>x<c><b>t</b><b/></c><f><c><b/></c></f></a>").unwrap();
        let p = parse_pattern("//a{id,val}[//c{id}]//b{id,cont}").unwrap();
        ViewStore::from_counted(&p, view_tuples(&d, &p))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let bytes = encode_store(&store);
        let back = decode_store(&bytes).unwrap();
        assert!(store.same_content_as(&back));
        assert_eq!(store.schema(), back.schema());
        // val/cont strings survive too
        assert!(store.identical_to(&back));
    }

    #[test]
    fn empty_store_roundtrips() {
        let p = parse_pattern("//a{id}").unwrap();
        let store = ViewStore::new(&p);
        let back = decode_store(&encode_store(&store)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let store = sample_store();
        let bytes = encode_store(&store);
        assert!(matches!(decode_store(b"nope"), Err(SnapshotError::BadMagic)));
        assert_eq!(
            decode_store(&bytes[..bytes.len() - 3]).map(|_| ()).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut versioned = bytes.clone();
        versioned[4] = 99;
        assert!(matches!(decode_store(&versioned), Err(SnapshotError::UnsupportedVersion(_))));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_store(&trailing).map(|_| ()).unwrap_err(),
            SnapshotError::Corrupt { what: "trailing bytes", pos: bytes.len() }
        );
    }

    #[test]
    fn hostile_length_prefix_is_truncated_not_allocated() {
        // A frame whose first length prefix claims u32::MAX-ish bytes
        // must fail as Truncated without reserving that much: overwrite
        // the first column-name length field of a valid image.
        let bytes = encode_store(&sample_store());
        let mut hostile = bytes.clone();
        hostile[8..12].copy_from_slice(&(u32::MAX - 1).to_le_bytes());
        assert_eq!(decode_store(&hostile).map(|_| ()).unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn errors_display() {
        assert!(SnapshotError::BadMagic.to_string().contains("snapshot"));
        let c = SnapshotError::Corrupt { what: "x", pos: 7 };
        assert!(c.to_string().contains('x') && c.to_string().contains('7'));
    }

    #[test]
    fn event_frames_roundtrip() {
        use crate::subscribe::{DeltaEvent, FeedEvent, Lagged};

        let store = sample_store();
        let tuples: Vec<(Tuple, u64)> = store.cursor().map(|(t, c)| (t.clone(), c)).collect();
        let mut delta = ViewDelta::default();
        delta.inserted.push(tuples[0].clone());
        delta.removed.push((tuples[1].0.id_key(), 2));
        delta.modified.push((tuples[2].0.id_key(), tuples[2].0.clone()));

        for event in [
            FeedEvent::Delta(DeltaEvent { seq: 42, folded: None, delta: Arc::new(delta.clone()) }),
            FeedEvent::Delta(DeltaEvent {
                seq: 9,
                folded: Some(3..=9),
                delta: Arc::new(delta.clone()),
            }),
            FeedEvent::Delta(DeltaEvent { seq: 1, folded: None, delta: Arc::default() }),
            FeedEvent::Lagged(Lagged { missed_range: 4..=17 }),
        ] {
            let bytes = encode_event(&event);
            let back = decode_event(&bytes).unwrap();
            // re-encoding the decoded event must reproduce the frame
            // byte for byte — the replica path depends on it
            assert_eq!(encode_event(&back), bytes);
            match (&event, &back) {
                (FeedEvent::Delta(a), FeedEvent::Delta(b)) => {
                    assert_eq!(a.seq, b.seq);
                    assert_eq!(a.folded, b.folded);
                    assert_eq!(a.delta.inserted, b.delta.inserted);
                    assert_eq!(a.delta.removed, b.delta.removed);
                    assert_eq!(a.delta.modified, b.delta.modified);
                }
                (FeedEvent::Lagged(a), FeedEvent::Lagged(b)) => {
                    assert_eq!(a.missed_range, b.missed_range);
                }
                _ => panic!("event kind changed in flight"),
            }
        }
    }

    #[test]
    fn event_frame_corruption_is_detected() {
        use crate::subscribe::{FeedEvent, Lagged};

        assert!(matches!(decode_event(b"nope"), Err(SnapshotError::BadMagic)));
        let bytes = encode_event(&FeedEvent::Lagged(Lagged { missed_range: 4..=17 }));
        // store magic into the event decoder: BadMagic, not a misparse
        assert!(matches!(
            decode_event(&encode_store(&sample_store())),
            Err(SnapshotError::BadMagic)
        ));
        assert!(decode_event(&bytes[..bytes.len() - 1]).is_err());
        let mut kind = bytes.clone();
        kind[6] = 9;
        assert!(matches!(
            decode_event(&kind),
            Err(SnapshotError::Corrupt { what: "event kind", .. })
        ));
        // inverted lag range
        let mut inv = bytes.clone();
        inv[7..15].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(
            decode_event(&inv),
            Err(SnapshotError::Corrupt { what: "lag range", .. })
        ));
    }
}
