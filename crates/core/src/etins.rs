//! Bulk term evaluation (Algorithm 3, ET-INS, and its deletion
//! counterpart ET-DEL).
//!
//! A term assigns each node of a (sub-)pattern to `R` or `Δ`; its
//! value is the structural join of the corresponding leaf relations.
//! Evaluation starts from the largest materialized snowcap contained
//! in the term's R-part and joins the remaining leaves in pre-order,
//! one stack-based structural join per pattern edge.
//!
//! The same machinery maintains the materialized snowcaps themselves
//! (Proposition 3.13): a snowcap is just a smaller sub-pattern whose
//! added bindings come from its own terms.

use crate::snowcap::{best_cover, MaterializedSnowcap};
use crate::term::Term;
use std::collections::BTreeSet;
use xivm_algebra::ops;
use xivm_algebra::Relation;
use xivm_pattern::{PatternNodeId, TreePattern};

/// Enumerates the maintenance terms of the sub-pattern induced by
/// `subset`: non-empty Δ-sets closed under pattern children *within
/// the subset* (Propositions 3.3 / 4.2 applied to the sub-pattern).
pub fn subset_terms(pattern: &TreePattern, subset: &BTreeSet<PatternNodeId>) -> Vec<Term> {
    let nodes: Vec<PatternNodeId> = subset.iter().copied().collect();
    let k = nodes.len();
    assert!(k < 31, "term expansion is exponential; sub-pattern too large");
    let mut out = Vec::new();
    'mask: for mask in 1u32..(1 << k) {
        let delta: BTreeSet<PatternNodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &n)| n)
            .collect();
        // descendant-closed within the subset
        for &n in &delta {
            for c in &pattern.node(n).children {
                if subset.contains(c) && !delta.contains(c) {
                    continue 'mask;
                }
            }
        }
        out.push(Term::new(delta));
    }
    out.sort();
    out
}

/// Evaluates one term over the sub-pattern `subset_preorder` (pattern
/// pre-order, parent-closed). `r_leaf` / `delta_leaf` supply the leaf
/// relations; `materialized` offers snowcap shortcuts for the R-part.
///
/// Returns the term's bindings with columns in `subset_preorder`
/// order; an empty default relation when any intermediate result is
/// empty.
pub fn eval_term(
    pattern: &TreePattern,
    subset_preorder: &[PatternNodeId],
    term: &Term,
    materialized: &[MaterializedSnowcap],
    r_leaf: &mut dyn FnMut(PatternNodeId) -> Relation,
    delta_leaf: &mut dyn FnMut(PatternNodeId) -> Relation,
) -> Relation {
    let r_set: BTreeSet<PatternNodeId> =
        subset_preorder.iter().copied().filter(|n| !term.is_delta(*n)).collect();
    let cover = if r_set.is_empty() { None } else { best_cover(materialized, &r_set) };

    let mut placed: Vec<PatternNodeId> = Vec::with_capacity(subset_preorder.len());
    let mut cur = Relation::default();
    if let Some(m) = cover {
        placed.extend(m.nodes.iter().copied());
        cur = m.rel.clone();
        if cur.is_empty() {
            return Relation::default();
        }
    }
    for &n in subset_preorder {
        if placed.contains(&n) {
            continue;
        }
        let leaf = if term.is_delta(n) { delta_leaf(n) } else { r_leaf(n) };
        if leaf.is_empty() {
            return Relation::default();
        }
        if placed.is_empty() {
            cur = leaf;
            placed.push(n);
            continue;
        }
        let parent =
            pattern.node(n).parent.expect("non-root nodes of a parent-closed subset have parents");
        let pcol = placed
            .iter()
            .position(|&p| p == parent)
            .expect("pre-order placement guarantees the parent is placed");
        if !cur.is_sorted_by_col(pcol) {
            cur.sort_by_col(pcol);
        }
        cur = xivm_algebra::structural_join(&cur, pcol, &leaf, 0, pattern.node(n).edge);
        placed.push(n);
        if cur.is_empty() {
            return Relation::default();
        }
    }
    // Reorder columns to subset pre-order.
    let cols: Vec<usize> = subset_preorder
        .iter()
        .map(|n| placed.iter().position(|p| p == n).expect("all subset nodes placed"))
        .collect();
    if cols.iter().enumerate().all(|(i, &c)| i == c) {
        cur
    } else {
        ops::project(&cur, &cols)
    }
}

/// Evaluates a list of terms and accumulates their bindings into one
/// bag relation over `subset_preorder` columns.
pub fn eval_terms(
    pattern: &TreePattern,
    subset_preorder: &[PatternNodeId],
    terms: &[Term],
    materialized: &[MaterializedSnowcap],
    r_leaf: &mut dyn FnMut(PatternNodeId) -> Relation,
    delta_leaf: &mut dyn FnMut(PatternNodeId) -> Relation,
) -> Relation {
    let mut acc = Relation::default();
    for term in terms {
        let rel = eval_term(pattern, subset_preorder, term, materialized, r_leaf, delta_leaf);
        if rel.is_empty() {
            continue;
        }
        if acc.schema.arity() == 0 {
            acc = rel;
        } else {
            acc.rows.extend(rel.rows);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_pattern::compile::{canonical_relation, relation_from_nodes};
    use xivm_pattern::parse_pattern;
    use xivm_xml::parse_document;

    #[test]
    fn subset_terms_on_full_pattern_match_expand() {
        let p = parse_pattern("//a[//b//c]//d").unwrap();
        let full: BTreeSet<_> = p.node_ids().collect();
        let got = subset_terms(&p, &full);
        let expected = crate::expand::surviving_terms(&p);
        assert_eq!(got, expected);
    }

    #[test]
    fn subset_terms_on_proper_subset() {
        // subset {a, b} of //a//b//c: Δ-sets {b}, {a,b} (c ignored)
        let p = parse_pattern("//a//b//c").unwrap();
        let subset: BTreeSet<_> = [PatternNodeId(0), PatternNodeId(1)].into();
        let terms = subset_terms(&p, &subset);
        assert_eq!(terms.len(), 2);
        assert!(terms.iter().any(|t| t.delta_count() == 1 && t.is_delta(PatternNodeId(1))));
        assert!(terms.iter().any(|t| t.delta_count() == 2));
    }

    #[test]
    fn eval_term_with_canonical_leaves_matches_direct_join() {
        // With Δ = canonical and R unused, the all-Δ term is just the
        // pattern evaluation.
        let d = parse_document("<a><b><c/></b><b/></a>").unwrap();
        let p = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
        let order = p.preorder();
        let full: BTreeSet<_> = order.iter().copied().collect();
        let all_delta = Term::new(full.clone());
        let rel =
            eval_term(&p, &order, &all_delta, &[], &mut |_| unreachable!("no R nodes"), &mut |n| {
                canonical_relation(&d, &p, n)
            });
        let direct = xivm_pattern::compile::eval_bindings(&d, &p);
        assert_eq!(rel.len(), direct.len());
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn eval_term_uses_materialized_cover() {
        let d = parse_document("<a><b><c/></b></a>").unwrap();
        let p = parse_pattern("//a{id}//b{id}//c{id}").unwrap();
        let order = p.preorder();
        // materialize the {a,b} snowcap
        let ab: Vec<PatternNodeId> = order[..2].to_vec();
        let ab_set: BTreeSet<_> = ab.iter().copied().collect();
        let ab_rel = {
            let terms = subset_terms(&p, &ab_set);
            let all = terms.iter().find(|t| t.delta_count() == 2).unwrap(); // all-Δ over {a,b}
            eval_term(&p, &ab, all, &[], &mut |_| unreachable!(), &mut |n| {
                canonical_relation(&d, &p, n)
            })
        };
        let mat = vec![MaterializedSnowcap { nodes: ab, rel: ab_rel }];
        // term Δ{c}: R-part {a,b} should come from the materialization
        let term = Term::from_iter([PatternNodeId(2)]);
        let mut r_calls = 0;
        let rel = eval_term(
            &p,
            &order,
            &term,
            &mat,
            &mut |n| {
                r_calls += 1;
                canonical_relation(&d, &p, n)
            },
            &mut |n| canonical_relation(&d, &p, n),
        );
        assert_eq!(rel.len(), 1);
        assert_eq!(r_calls, 0, "R-part entirely covered by the snowcap");
    }

    #[test]
    fn eval_terms_accumulates() {
        let d = parse_document("<a><b/><b/></a>").unwrap();
        let p = parse_pattern("//a{id}//b{id}").unwrap();
        let order = p.preorder();
        let full: BTreeSet<_> = order.iter().copied().collect();
        let terms = subset_terms(&p, &full); // Δ{b}, Δ{a,b}
        let rel =
            eval_terms(&p, &order, &terms, &[], &mut |n| canonical_relation(&d, &p, n), &mut |n| {
                canonical_relation(&d, &p, n)
            });
        // Δ{b}: 2 bindings; Δ{a,b}: 2 bindings — bag accumulation
        assert_eq!(rel.len(), 4);
        // empty delta leaf kills terms
        let empty =
            eval_terms(&p, &order, &terms, &[], &mut |n| canonical_relation(&d, &p, n), &mut |n| {
                relation_from_nodes(&d, &p, n, &[])
            });
        assert!(empty.is_empty());
    }
}
