//! Partitioning PULs — and views, via their op projections — into
//! order-independent groups with the Figure 15 conflict rules.
//!
//! Two PULs with no IO / LO / NLO conflict between them can run in
//! either order (or in parallel) with the same outcome. Lifted to a
//! *set* of PULs this yields [`partition_puls`]: the finest partition
//! such that any two conflicting PULs share a group — groups are
//! internally order-dependent, while distinct groups commute and may
//! be dispatched to different workers or shards.
//!
//! [`partition_projections`] applies the same construction to
//! *projections* of one shared PUL (per-view or per-shard subsets of
//! its operations, given as index lists). An op index shared by two
//! projections is the *same* operation on both sides and therefore
//! never order-dependent with itself; only a Figure 15 conflict
//! between two **distinct** operations makes the projections
//! order-dependent. This is the shard-assignment function used by the
//! parallel propagation scheduler in `xivm_core::parallel`: views
//! whose projections land in different groups can safely live on
//! different shards, because the operations they would each apply
//! commute.

use crate::conflict::{find_conflicts, op_conflict};
use xivm_update::Pul;

/// Plain union-find over `0..n`, path-halving, union by index (the
/// smaller root wins so group identity is deterministic).
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }

    /// The groups, ordered by their smallest member; members ascend.
    fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = self.find(x);
            by_root[r].push(x);
        }
        by_root.into_iter().filter(|g| !g.is_empty()).collect()
    }
}

/// The finest partition of `0..n` such that any `dependent` pair
/// shares a group. `dependent` is only consulted for `i < j`. Groups
/// come out ordered by their smallest member, members ascending —
/// fully deterministic for a deterministic predicate.
pub fn partition_by(n: usize, mut dependent: impl FnMut(usize, usize) -> bool) -> Vec<Vec<usize>> {
    let mut dsu = Dsu::new(n);
    for i in 0..n {
        for j in i + 1..n {
            // skip the probe when already grouped transitively
            if dsu.find(i) != dsu.find(j) && dependent(i, j) {
                dsu.union(i, j);
            }
        }
    }
    dsu.groups()
}

/// Partitions a set of PULs into order-independent groups: PULs in
/// distinct groups have no IO / LO / NLO conflict (directly or
/// transitively) and can run in any order or in parallel.
pub fn partition_puls(puls: &[Pul]) -> Vec<Vec<usize>> {
    partition_by(puls.len(), |i, j| !find_conflicts(&puls[i], &puls[j]).is_empty())
}

/// True when two projections of `parent` (index lists into
/// `parent.ops`) are order-dependent: they contain two **distinct**
/// operations related by a Figure 15 conflict. Sharing an op index is
/// harmless — replaying the same operation on two shards is
/// deterministic.
pub fn projections_conflict(parent: &Pul, a: &[usize], b: &[usize]) -> bool {
    a.iter().any(|&i| {
        b.iter().any(|&j| i != j && op_conflict(&parent.ops[i], &parent.ops[j]).is_some())
    })
}

/// Partitions projections of one shared PUL into order-independent
/// groups — the same connected components [`partition_by`] over
/// [`projections_conflict`] would produce, computed without the
/// quadratic pairwise probe (PULs routinely expand to hundreds of
/// ops, and the parallel scheduler runs this per update).
///
/// Figure 15 conflicts inside one PUL only arise in two shapes, both
/// enumerable near-linearly:
///
/// * **same target** — two `ins↘` on one target (IO) or a `del` and
///   an `ins↘` on one target (LO): grouped with a target index;
/// * **NLO** — a `del` above an `ins↘`: found by sorting insertion
///   targets in document order, where the descendants of a deleted
///   node form a contiguous run.
///
/// Every conflict edge connects the projections holding its two
/// (distinct) ops; the partition is the connected components of that
/// graph. Out-of-range indices in a projection are a caller bug and
/// panic.
pub fn partition_projections(parent: &Pul, projections: &[Vec<usize>]) -> Vec<Vec<usize>> {
    // op index → projections containing it.
    let mut views_of: Vec<Vec<usize>> = vec![Vec::new(); parent.ops.len()];
    for (v, proj) in projections.iter().enumerate() {
        for &i in proj {
            views_of[i].push(v);
        }
    }
    let mut dsu = Dsu::new(projections.len());
    for_each_internal_conflict(parent, |a, b| {
        // Connect every projection holding op `a` with every one
        // holding op `b`; chaining through the two anchors yields the
        // same connected components as the full biclique.
        let (va, vb) = (&views_of[a], &views_of[b]);
        if !va.is_empty() && !vb.is_empty() {
            for &v in va {
                dsu.union(v, vb[0]);
            }
            for &w in vb {
                dsu.union(w, va[0]);
            }
        }
    });
    dsu.groups()
}

/// Calls `f(i, j)` for every distinct-index Figure 15 conflict pair
/// inside one PUL, enumerated without the quadratic all-pairs probe:
///
/// * **same target** (hash-grouped): two `ins↘` → IO, `del` + `ins↘`
///   → LO (two `del` on one node commute);
/// * **NLO** (sorted scan): the proper descendants of a deleted node
///   form a contiguous run in document order, so each deletion probes
///   a binary-searched range of the insertion targets.
pub fn for_each_internal_conflict(pul: &Pul, mut f: impl FnMut(usize, usize)) {
    use std::collections::HashMap;
    use xivm_update::AtomicOp;

    // Same-target clusters.
    let mut by_target: HashMap<&xivm_xml::DeweyId, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (i, op) in pul.ops.iter().enumerate() {
        let slot = by_target.entry(op.target()).or_default();
        match op {
            AtomicOp::InsertInto { .. } => slot.0.push(i),
            AtomicOp::Delete { .. } => slot.1.push(i),
        }
    }
    for (inserts, deletes) in by_target.values() {
        for (k, &i) in inserts.iter().enumerate() {
            for &j in &inserts[k + 1..] {
                f(i, j); // IO
            }
            for &d in deletes {
                f(d, i); // LO
            }
        }
    }

    // NLO: a delete above an insertion target.
    let mut ins_sorted: Vec<usize> =
        (0..pul.ops.len()).filter(|&i| pul.ops[i].is_insert()).collect();
    ins_sorted.sort_by(|&a, &b| pul.ops[a].target().doc_cmp(pul.ops[b].target()));
    for (d, op) in pul.ops.iter().enumerate() {
        let AtomicOp::Delete { node } = op else { continue };
        let start = ins_sorted
            .partition_point(|&i| pul.ops[i].target().doc_cmp(node) != std::cmp::Ordering::Greater);
        for &i in &ins_sorted[start..] {
            if !node.is_ancestor_of(pul.ops[i].target()) {
                break;
            }
            f(d, i);
        }
    }
}

/// All distinct-index Figure 15 conflict pairs inside one PUL. Empty
/// exactly when every pair of the PUL's operations commutes — the
/// common case for single-statement PULs, which lets a scheduler skip
/// projection computation entirely.
pub fn internal_conflict_pairs(pul: &Pul) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for_each_internal_conflict(pul, |i, j| out.push((i, j)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xivm_update::compute_pul;
    use xivm_update::statement::parse_statement;
    use xivm_xml::parse_document;

    const DOC: &str = "<r><x><y/></x><z/><w/></r>";

    fn pul(stmt: &str) -> Pul {
        let d = parse_document(DOC).unwrap();
        let s = xivm_update::statement::parse_statement(stmt).unwrap();
        compute_pul(&d, &s)
    }

    #[test]
    fn disjoint_puls_form_singleton_groups() {
        let puls = [pul("insert <a/> into //y"), pul("insert <a/> into //z"), pul("delete //w")];
        assert_eq!(partition_puls(&puls), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn conflicting_puls_are_grouped_transitively() {
        // 0 NLO-conflicts with 1 (delete //x covers //y), 1 IO-conflicts
        // with 2 (same target), 3 is independent of all.
        let puls = [
            pul("delete //x"),
            pul("insert <a/> into //y"),
            pul("insert <b/> into //y"),
            pul("delete //w"),
        ];
        assert_eq!(partition_puls(&puls), vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn shared_ops_do_not_make_projections_dependent() {
        // One PUL with two independent inserts; two projections that
        // both contain op 0 — the shared op is the same op, so the
        // projections commute.
        let d = parse_document(DOC).unwrap();
        let s = xivm_update::statement::parse_statement("insert <a/> into //y").unwrap();
        let t = xivm_update::statement::parse_statement("insert <a/> into //z").unwrap();
        let mut ops = compute_pul(&d, &s).ops;
        ops.extend(compute_pul(&d, &t).ops);
        let parent = Pul::new(ops);
        let projections = vec![vec![0], vec![0, 1]];
        assert!(!projections_conflict(&parent, &projections[0], &projections[1]));
        assert_eq!(partition_projections(&parent, &projections), vec![vec![0], vec![1]]);
    }

    #[test]
    fn distinct_conflicting_ops_group_their_projections() {
        // ops: del //x (op 0), ins into //y (op 1) — NLO between two
        // distinct ops, so a projection holding op 0 is order-dependent
        // with one holding op 1.
        let d = parse_document(DOC).unwrap();
        let del = xivm_update::statement::parse_statement("delete //x").unwrap();
        let ins = xivm_update::statement::parse_statement("insert <a/> into //y").unwrap();
        let mut ops = compute_pul(&d, &del).ops;
        ops.extend(compute_pul(&d, &ins).ops);
        let parent = Pul::new(ops);
        let projections = vec![vec![0], vec![1], vec![]];
        assert_eq!(partition_projections(&parent, &projections), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn partition_by_is_deterministic_and_covers_all() {
        let groups = partition_by(5, |i, j| (i + j) % 4 == 0);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(groups, partition_by(5, |i, j| (i + j) % 4 == 0));
    }

    #[test]
    fn internal_conflicts_enumerate_all_three_kinds() {
        let d = parse_document(DOC).unwrap();
        let mut ops = Vec::new();
        // op 0: del //x — NLO over op 3 (ins into //y, below x)
        ops.extend(compute_pul(&d, &parse_statement("delete //x").unwrap()).ops);
        // ops 1, 2: two inserts into //z — IO; op 1/2 also LO with op 4
        ops.extend(compute_pul(&d, &parse_statement("insert <a/> into //z").unwrap()).ops);
        ops.extend(compute_pul(&d, &parse_statement("insert <b/> into //z").unwrap()).ops);
        // op 3: ins into //y
        ops.extend(compute_pul(&d, &parse_statement("insert <c/> into //y").unwrap()).ops);
        // op 4: del //z — LO with ops 1 and 2
        ops.extend(compute_pul(&d, &parse_statement("delete //z").unwrap()).ops);
        let pul = Pul::new(ops);
        let mut pairs = internal_conflict_pairs(&pul);
        for p in &mut pairs {
            *p = (p.0.min(p.1), p.0.max(p.1));
        }
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 3), (1, 2), (1, 4), (2, 4)]);
    }

    #[test]
    fn conflict_free_pul_has_no_internal_pairs() {
        let d = parse_document(DOC).unwrap();
        let mut ops = compute_pul(&d, &parse_statement("insert <a/> into //y").unwrap()).ops;
        ops.extend(compute_pul(&d, &parse_statement("delete //w").unwrap()).ops);
        assert!(internal_conflict_pairs(&Pul::new(ops)).is_empty());
    }

    #[test]
    fn empty_input_yields_empty_partition() {
        assert!(partition_puls(&[]).is_empty());
        assert!(partition_projections(&Pul::default(), &[]).is_empty());
    }
}
