//! Commit-report overhead: what does the delta-first API cost on top
//! of plain propagation?
//!
//! The full XMark view catalog is maintained under one shared update
//! stream three ways:
//!
//! * `plain` — `MultiViewEngine::propagate_pul` with Δ harvesting off
//!   (`set_collect_deltas(false)`): the pre-delta-API behavior, views
//!   are patched and the deltas thrown away;
//! * `report` — the same engine with harvesting on: every propagation
//!   additionally clones its store patches into the per-view
//!   [`xivm_core::ViewDelta`]s a `Commit` carries;
//! * `facade` — the whole `Database::apply` path with one subscriber
//!   on every view, drained (and its deltas replayed onto replicas)
//!   after each commit: the end-to-end changefeed cost;
//! * `analyzed` — the facade workload with the static analyzer armed
//!   (`.dtd(XMARK_DTD).analyze(Warn)`): views the relevance matrix
//!   proves irrelevant to a statement skip maintenance entirely;
//! * `pipelined` — the same facade workload through
//!   `Database::apply_pipelined` at depth 2 on a 2-worker pool: the
//!   finish of each commit overlaps the prepare of the next, and the
//!   drained streams must still replay to the exact stores.
//!
//! Reported: wall time per mode for the whole stream, overhead vs
//! `plain`, the total delta entries harvested — the O(|Δ|) a consumer
//! processes instead of re-reading stores — and the static skips
//! taken. A second table records the static skip *rate* on skewed
//! streams (all statements drawn from one view's update set), where
//! most of the catalog is provably untouched per commit.

use std::time::Instant;
use xivm_bench::{figure_header, ms, repetitions, row};
use xivm_core::database::Database;
use xivm_core::{AnalyzeMode, MultiViewEngine, SnowcapStrategy, ViewStore};
use xivm_update::UpdateStatement;
use xivm_xmark::sizes::reference_size;
use xivm_xmark::{generate_sized, updates_for_view, view_pattern, VIEW_NAMES, XMARK_DTD};
use xivm_xml::Document;

fn catalog_engine(doc: &Document) -> MultiViewEngine {
    MultiViewEngine::new(
        doc,
        VIEW_NAMES.iter().map(|v| (v.to_string(), view_pattern(v), SnowcapStrategy::MinimalChain)),
    )
}

fn catalog_database(doc: &Document, pipelined: bool, analyzed: bool) -> Database {
    let mut b = Database::builder().document(doc.clone());
    if pipelined {
        b = b.workers(2).pipeline(2);
    }
    if analyzed {
        b = b.dtd(XMARK_DTD).analyze(AnalyzeMode::Warn);
    }
    for v in VIEW_NAMES {
        b = b.view(v, view_pattern(v));
    }
    b.build().expect("catalog database builds")
}

/// One insert and one delete per catalog view (the `fig_parallel`
/// stream): every view sees real delta traffic.
fn update_stream() -> Vec<UpdateStatement> {
    let mut stream = Vec::new();
    for view in VIEW_NAMES {
        if let Some(u) = updates_for_view(view).first() {
            stream.push(u.insert_stmt());
            stream.push(u.delete_stmt());
        }
    }
    stream
}

fn main() {
    let size = reference_size();
    let doc = generate_sized(size.bytes);
    let stream = update_stream();
    let reps = repetitions();

    figure_header(
        "Delta report overhead",
        &format!(
            "commit reports vs plain propagation, {} views x {} statements, {} document",
            VIEW_NAMES.len(),
            stream.len(),
            size.label
        ),
    );
    row(&[
        "mode".to_owned(),
        "total_ms".to_owned(),
        "overhead_vs_plain".to_owned(),
        "delta_entries".to_owned(),
        "static_skips".to_owned(),
    ]);

    let mut baseline_ms = None;
    for mode in ["plain", "report", "facade", "analyzed", "pipelined"] {
        let mut total = 0.0;
        let mut delta_entries = 0usize;
        let mut static_skips = 0usize;
        for _ in 0..reps {
            match mode {
                "facade" | "analyzed" | "pipelined" => {
                    let mut db = catalog_database(&doc, mode == "pipelined", mode == "analyzed");
                    let handles = db.handles();
                    let subs: Vec<_> = handles.iter().map(|&h| db.subscribe(h)).collect();
                    let mut replicas: Vec<ViewStore> =
                        handles.iter().map(|&h| db.store(h).clone()).collect();
                    if mode == "pipelined" {
                        // Timed region matches the facade mode: apply
                        // + delta counting + drain + replica replay
                        // (the statement clone stays outside it).
                        let batch = stream.clone();
                        let start = Instant::now();
                        let commits = db.apply_pipelined(batch).expect("catalog updates apply");
                        for commit in &commits {
                            delta_entries +=
                                handles.iter().map(|&h| commit.delta(h).len()).sum::<usize>();
                            static_skips += commit.static_skips();
                        }
                        for (sub, replica) in subs.iter().zip(replicas.iter_mut()) {
                            for event in db.drain(sub) {
                                event.delta.replay(replica);
                            }
                        }
                        total += ms(start.elapsed());
                    } else {
                        for stmt in &stream {
                            let start = Instant::now();
                            let commit = db.apply(stmt).expect("catalog updates apply");
                            delta_entries +=
                                handles.iter().map(|&h| commit.delta(h).len()).sum::<usize>();
                            static_skips += commit.static_skips();
                            for (sub, replica) in subs.iter().zip(replicas.iter_mut()) {
                                for event in db.drain(sub) {
                                    event.delta.replay(replica);
                                }
                            }
                            total += ms(start.elapsed());
                        }
                    }
                    for ((&h, replica), sub) in handles.iter().zip(replicas.iter_mut()).zip(&subs) {
                        for event in db.drain(sub) {
                            event.delta.replay(replica);
                        }
                        assert!(
                            replica.identical_to(db.store(h)),
                            "replayed replicas must track the live views"
                        );
                    }
                }
                _ => {
                    let mut d = doc.clone();
                    let mut engine = catalog_engine(&d);
                    engine.set_collect_deltas(mode == "report");
                    for stmt in &stream {
                        let pul = xivm_update::compute_pul(&d, stmt);
                        let start = Instant::now();
                        let reports =
                            engine.propagate_pul(&mut d, &pul).expect("propagation succeeds");
                        total += ms(start.elapsed());
                        delta_entries += reports.iter().map(|(_, r)| r.delta.len()).sum::<usize>();
                    }
                }
            }
        }
        let avg = total / reps as f64;
        let baseline = *baseline_ms.get_or_insert(avg);
        row(&[
            mode.to_owned(),
            format!("{avg:.3}"),
            format!("{:.3}x", avg / baseline),
            (delta_entries / reps as usize).to_string(),
            (static_skips / reps as usize).to_string(),
        ]);
    }

    // ------------------------------------------------------------------
    // Static skip rate on skewed streams: every statement of a stream
    // targets one view's update set, so the rest of the catalog is
    // provably irrelevant commit after commit. Reported per stream:
    // wall time without and with analysis, the skips taken and the
    // skip rate over all (commit, view) propagations.
    // ------------------------------------------------------------------
    figure_header(
        "Static skip rate",
        &format!(
            "skewed single-view streams over the {}-view catalog, {} document",
            VIEW_NAMES.len(),
            size.label
        ),
    );
    row(&[
        "stream".to_owned(),
        "commits".to_owned(),
        "plain_ms".to_owned(),
        "analyzed_ms".to_owned(),
        "static_skips".to_owned(),
        "skip_rate".to_owned(),
    ]);
    for view in ["Q1", "Q4", "Q17"] {
        let skewed: Vec<UpdateStatement> = updates_for_view(view)
            .iter()
            .flat_map(|u| [u.insert_stmt(), u.delete_stmt()])
            .collect();
        let mut plain_ms = 0.0;
        let mut analyzed_ms = 0.0;
        let mut static_skips = 0usize;
        for _ in 0..reps {
            for analyzed in [false, true] {
                let mut db = catalog_database(&doc, false, analyzed);
                let start = Instant::now();
                for stmt in &skewed {
                    let commit = db.apply(stmt).expect("catalog updates apply");
                    if analyzed {
                        static_skips += commit.static_skips();
                    }
                }
                let elapsed = ms(start.elapsed());
                if analyzed {
                    analyzed_ms += elapsed;
                } else {
                    plain_ms += elapsed;
                }
            }
        }
        let propagations = skewed.len() * VIEW_NAMES.len();
        let skips = static_skips / reps as usize;
        row(&[
            format!("{view}-only"),
            skewed.len().to_string(),
            format!("{:.3}", plain_ms / reps as f64),
            format!("{:.3}", analyzed_ms / reps as f64),
            skips.to_string(),
            format!("{:.3}", skips as f64 / propagations as f64),
        ]);
    }
}
