//! The view catalog (Appendix A.6) and the Q1 annotation variants of
//! Figure 24.

use xivm_pattern::view::parse_view;
use xivm_pattern::{parse_pattern, TreePattern};

/// The XMark views the experiments use.
pub const VIEW_NAMES: [&str; 7] = ["Q1", "Q2", "Q3", "Q4", "Q6", "Q13", "Q17"];

/// The XQuery text of a view, as listed in Appendix A.6 (modulo the
/// auction.xml binding).
pub fn view_query(name: &str) -> &'static str {
    match name {
        "Q1" => {
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/people/person[@id] return $b/name/text()"
        }
        "Q2" => {
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/open_auctions/open_auction \
             return $b/bidder/increase"
        }
        "Q3" => {
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/open_auctions/open_auction \
             where $b/bidder/increase = \"4.50\" \
             return $b/bidder/increase/text()"
        }
        "Q4" => {
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/open_auctions/open_auction \
             where $b/bidder/personref[@person = \"person12\"] \
             return $b/bidder/increase/text()"
        }
        "Q6" => {
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/regions return $b//item"
        }
        "Q13" => {
            "let $auction := doc(\"auction.xml\") return \
             for $i in $auction/site/regions/namerica/item \
             return ($i/name/text(), $i/description)"
        }
        "Q17" => {
            "let $auction := doc(\"auction.xml\") return \
             for $b in $auction/site/people/person[homepage] return $b/name/text()"
        }
        other => panic!("unknown view {other}"),
    }
}

/// The view's tree pattern, via the Figure 3 dialect translation.
pub fn view_pattern(name: &str) -> TreePattern {
    parse_view(view_query(name)).expect("catalog views are well-formed")
}

/// The Q1 annotation variants of Figure 24 (Section 6.3). All variants
/// store IDs for all nodes; they differ in where `val`+`cont` sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Q1Variant {
    /// IDs only.
    Ids,
    /// val+cont on the `name` leaf.
    VcLeaf,
    /// val+cont on the `site` root.
    VcRoot,
    /// val+cont on every node but the root.
    VcAllButRoot,
    /// val+cont everywhere.
    VcAll,
}

impl Q1Variant {
    pub const ALL: [Q1Variant; 5] = [
        Q1Variant::Ids,
        Q1Variant::VcLeaf,
        Q1Variant::VcRoot,
        Q1Variant::VcAllButRoot,
        Q1Variant::VcAll,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Q1Variant::Ids => "IDs",
            Q1Variant::VcLeaf => "VC Leaf",
            Q1Variant::VcRoot => "VC Root",
            Q1Variant::VcAllButRoot => "VC All Nodes but Root",
            Q1Variant::VcAll => "VC All Nodes",
        }
    }
}

/// Builds the Q1 pattern
/// `/site/people/person[@id]/name` with the variant's annotations.
pub fn q1_variant(variant: Q1Variant) -> TreePattern {
    let vc = "{id,val,cont}";
    let id = "{id}";
    let (site, people, person, at_id, name) = match variant {
        Q1Variant::Ids => (id, id, id, id, id),
        Q1Variant::VcLeaf => (id, id, id, id, vc),
        Q1Variant::VcRoot => (vc, id, id, id, id),
        Q1Variant::VcAllButRoot => (id, vc, vc, id, vc),
        Q1Variant::VcAll => (vc, vc, vc, id, vc),
    };
    let text = format!("/site{site}/people{people}/person{person}[/@id{at_id}]/name{name}");
    parse_pattern(&text).expect("variant syntax is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_views_parse_to_patterns() {
        for name in VIEW_NAMES {
            let p = view_pattern(name);
            assert!(p.len() >= 2, "{name} has at least two nodes");
            assert!(!p.stored_nodes().is_empty(), "{name} stores something");
        }
    }

    #[test]
    fn view_shapes_match_the_appendix() {
        assert_eq!(view_pattern("Q1").to_text(), "/site/people/person[/@id]/name{id,val}");
        assert_eq!(
            view_pattern("Q2").to_text(),
            "/site/open_auctions/open_auction/bidder/increase{id,cont}"
        );
        assert_eq!(view_pattern("Q6").to_text(), "/site/regions//item{id,cont}");
        assert!(view_pattern("Q3").to_text().contains("[val=\"4.50\"]"));
        assert!(view_pattern("Q4").to_text().contains("@person[val=\"person12\"]"));
        assert!(view_pattern("Q17").to_text().contains("[/homepage]"));
    }

    #[test]
    fn q1_variants_differ_only_in_annotations() {
        for v in Q1Variant::ALL {
            let p = q1_variant(v);
            assert_eq!(p.len(), 5, "{}", v.name());
        }
        let ids = q1_variant(Q1Variant::Ids);
        assert!(ids.cvn().is_empty());
        let all = q1_variant(Q1Variant::VcAll);
        assert_eq!(all.cvn().len(), 4, "every element node stores text");
        let leaf = q1_variant(Q1Variant::VcLeaf);
        assert_eq!(leaf.cvn().len(), 1);
    }

    #[test]
    fn views_evaluate_on_generated_documents() {
        let d = crate::generator::generate_sized(60 * 1024);
        for name in VIEW_NAMES {
            let p = view_pattern(name);
            let tuples = xivm_pattern::compile::view_tuples(&d, &p);
            // Q4 may be empty on tiny documents; everything else must hit
            if name != "Q4" {
                assert!(!tuples.is_empty(), "{name} found nothing");
            }
        }
    }
}
