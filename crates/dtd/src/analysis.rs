//! Grammar analyses deriving Δ⁺ constraints.

use crate::grammar::Dtd;
use std::collections::{BTreeSet, HashMap, HashSet};

/// [`mandatory_descendants`] plus an explicit record of where the
/// required-closure had to cut a cycle.
///
/// A cycle through *required* positions (`a` must contain `b`, `b`
/// must contain `a`) forces infinite nesting: no finite subtree rooted
/// at any symbol on such a cycle is valid, so those symbols have an
/// empty language. The closure cuts the recursion there; instead of
/// doing so silently it records every symbol on the cut path in
/// [`Self::empty_language`], so callers (the static analyzer, schema
/// lints) can flag the labels as unsatisfiable rather than mistaking
/// "empty requirement set" for "no constraints".
#[derive(Debug, Clone, Default)]
pub struct MandatoryReport {
    /// For every rule symbol, the element labels that must occur
    /// somewhere inside any valid subtree rooted at it.
    pub descendants: HashMap<String, BTreeSet<String>>,
    /// Symbols whose required-closure was cut by a cycle — their
    /// language is empty (no finite valid subtree exists).
    pub empty_language: BTreeSet<String>,
}

/// For every element label, the set of element labels that *must*
/// occur somewhere inside any valid subtree rooted at it.
///
/// Non-terminals are spliced transparently (their required symbols are
/// inherited by whoever requires them). Cycles through required
/// positions make the language empty; they are cut off conservatively
/// — use [`mandatory_descendants_checked`] to learn *where* the cut
/// happened.
pub fn mandatory_descendants(dtd: &Dtd) -> HashMap<String, BTreeSet<String>> {
    mandatory_descendants_checked(dtd).descendants
}

/// [`mandatory_descendants`] with the cycle cuts reported instead of
/// swallowed — see [`MandatoryReport`].
pub fn mandatory_descendants_checked(dtd: &Dtd) -> MandatoryReport {
    let mut report = MandatoryReport::default();
    for label in dtd.order.iter() {
        let mut visiting = HashSet::new();
        let set = required_closure(dtd, label, &mut visiting, &mut report.empty_language);
        report.descendants.insert(label.clone(), set);
    }
    report
}

fn required_closure(
    dtd: &Dtd,
    symbol: &str,
    visiting: &mut HashSet<String>,
    empty: &mut BTreeSet<String>,
) -> BTreeSet<String> {
    if !visiting.insert(symbol.to_owned()) {
        // Cycle through required positions: `symbol` transitively
        // requires itself, so no finite subtree satisfies it — and
        // every symbol on the path requires `symbol`, so their
        // languages are empty too. Record the cut instead of silently
        // returning "no requirements".
        empty.extend(visiting.iter().cloned());
        return BTreeSet::new();
    }
    let mut out = BTreeSet::new();
    if let Some(rx) = dtd.rule(symbol) {
        for req in rx.required_symbols() {
            let sub = required_closure(dtd, &req, visiting, empty);
            if dtd.is_nonterminal(&req) {
                // splice the non-terminal: only its own requirements
                out.extend(sub);
            } else {
                out.insert(req.clone());
                out.extend(sub);
            }
        }
    }
    visiting.remove(symbol);
    out
}

/// Sibling co-occurrence groups: for each element label, the
/// required-symbol sets of repeated groups in its content model.
/// Inserting one member of a group as a child requires inserting the
/// others (Example 3.10).
pub fn cooccurrence_groups(dtd: &Dtd) -> HashMap<String, Vec<BTreeSet<String>>> {
    let mut out = HashMap::new();
    for label in dtd.order.iter() {
        if let Some(rx) = dtd.rule(label) {
            let groups = rx.repeated_groups();
            if !groups.is_empty() {
                out.insert(label.clone(), groups);
            }
        }
    }
    out
}

/// For every element label, the element labels that can occur as its
/// *direct children* in some valid document — the rule's symbols with
/// non-terminals spliced transparently (a non-terminal contributes the
/// labels it can expand to, not itself).
pub fn child_label_map(dtd: &Dtd) -> HashMap<String, BTreeSet<String>> {
    // Labels one non-terminal can expand to, memoized across rules.
    fn expand(
        dtd: &Dtd,
        symbol: &str,
        cache: &mut HashMap<String, BTreeSet<String>>,
        visiting: &mut HashSet<String>,
    ) -> BTreeSet<String> {
        if let Some(done) = cache.get(symbol) {
            return done.clone();
        }
        if !visiting.insert(symbol.to_owned()) {
            return BTreeSet::new(); // non-terminal cycle: nothing new
        }
        let mut out = BTreeSet::new();
        if let Some(rx) = dtd.rule(symbol) {
            for sym in rx.all_symbols() {
                if dtd.is_nonterminal(&sym) {
                    out.extend(expand(dtd, &sym, cache, visiting));
                } else {
                    out.insert(sym);
                }
            }
        }
        visiting.remove(symbol);
        cache.insert(symbol.to_owned(), out.clone());
        out
    }

    let mut cache = HashMap::new();
    let mut out = HashMap::new();
    for label in dtd.order.iter().filter(|s| !dtd.is_nonterminal(s)) {
        let mut children = BTreeSet::new();
        if let Some(rx) = dtd.rule(label) {
            for sym in rx.all_symbols() {
                if dtd.is_nonterminal(&sym) {
                    let mut visiting = HashSet::new();
                    children.extend(expand(dtd, &sym, &mut cache, &mut visiting));
                } else {
                    children.insert(sym);
                }
            }
        }
        out.insert(label.clone(), children);
    }
    out
}

/// For every element label, the element labels reachable as *strict
/// descendants* in some valid document: the transitive closure of
/// [`child_label_map`]. Labels without a rule (mentioned on a
/// right-hand side only) are leaves — they appear in other labels'
/// closures but have an empty closure of their own.
pub fn reachable_label_map(dtd: &Dtd) -> HashMap<String, BTreeSet<String>> {
    let children = child_label_map(dtd);
    let mut out: HashMap<String, BTreeSet<String>> = children.clone();
    // Fixpoint: union each label's closure with its children's.
    loop {
        let mut changed = false;
        for label in dtd.order.iter().filter(|s| !dtd.is_nonterminal(s)) {
            let mut next = out.get(label).cloned().unwrap_or_default();
            let before = next.len();
            for child in children.get(label).into_iter().flatten() {
                if let Some(sub) = out.get(child) {
                    next.extend(sub.iter().cloned());
                }
            }
            if next.len() > before {
                out.insert(label.clone(), next);
                changed = true;
            }
        }
        if !changed {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{figure_5a, figure_5b, parse_dtd};

    /// Example 3.9: in d1, every b must contain a c.
    #[test]
    fn figure_5a_b_requires_c() {
        let m = mandatory_descendants(&figure_5a());
        assert!(m["b"].contains("c"));
        assert!(m["a"].contains("b"), "a → BS → b+ requires b");
        assert!(m["a"].contains("c"), "transitively through b");
        assert!(m["c"].is_empty());
    }

    /// Example 3.10: in d2, a/b/c must be inserted together under d2.
    #[test]
    fn figure_5b_abc_cooccur() {
        let g = cooccurrence_groups(&figure_5b());
        let groups = &g["d2"];
        assert_eq!(groups.len(), 1);
        let expected: BTreeSet<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(groups[0], expected);
    }

    /// In d2, `a`'s content is BS → x | ε: nothing mandatory.
    #[test]
    fn figure_5b_a_has_no_mandatory_children() {
        let m = mandatory_descendants(&figure_5b());
        assert!(m["a"].is_empty());
    }

    #[test]
    fn recursive_rules_terminate() {
        // x → x |  (recursive, nullable): the analysis must not loop.
        let m = mandatory_descendants(&figure_5b());
        assert!(m["x"].is_empty());
    }

    /// A cycle through *required* positions is reported, not silently
    /// cut: `a` must contain `b` and `b` must contain `a`, so neither
    /// has a finite valid subtree.
    #[test]
    fn required_cycle_is_reported_as_empty_language() {
        let dtd = parse_dtd("r -> a | c\na -> b\nb -> a\nc -> ()").unwrap();
        let report = mandatory_descendants_checked(&dtd);
        assert!(report.empty_language.contains("a"), "a requires b requires a");
        assert!(report.empty_language.contains("b"));
        assert!(!report.empty_language.contains("c"), "c is plain");
        assert!(!report.empty_language.contains("r"), "r -> a | c requires neither");
        // The legacy entry point still terminates and stays
        // conservative (no spurious requirements on the cyclic labels).
        let m = mandatory_descendants(&dtd);
        assert_eq!(m["c"], BTreeSet::new());
    }

    /// Nullable recursion (x → x | ε) is *not* a required cycle: the
    /// empty expansion always exists.
    #[test]
    fn nullable_recursion_is_not_empty_language() {
        let report = mandatory_descendants_checked(&figure_5b());
        assert!(report.empty_language.is_empty());
    }

    #[test]
    fn child_labels_splice_nonterminals() {
        let c = child_label_map(&figure_5a());
        // d1 -> AS, AS -> a AS | a: d1's direct children are a's.
        assert_eq!(c["d1"], ["a"].iter().map(|s| s.to_string()).collect());
        assert!(c["b"].contains("c"));
        assert!(c["c"].is_empty());
    }

    #[test]
    fn reachability_is_transitive() {
        let r = reachable_label_map(&figure_5a());
        assert!(r["d1"].contains("a"));
        assert!(r["d1"].contains("b"), "through a");
        assert!(r["d1"].contains("c"), "through a and b");
        assert!(!r["c"].contains("d1"), "no cycle back to the root");
    }
}
