//! Figures 33–35: benefit of the PUL reduction rules O1, O3 and I5
//! (Section 6.8) when propagating overlapping update sequences to
//! view Q1 over a 100 KB document.
//!
//! For each rule, a base update runs alongside a second update whose
//! targets overlap the base's by 20 % … 100 %; the sequence is
//! propagated once as-is and once after reduction (optimization time
//! included). Expected shape: optimization wins, and more as the
//! overlap percentage grows.

use std::time::Instant;
use xivm_bench::{figure_header, ms, repetitions, row};
use xivm_core::{MaintenanceEngine, SnowcapStrategy};
use xivm_pulopt::reduce;
use xivm_update::{compute_pul, Pul, UpdateStatement};
use xivm_xmark::sizes::small_size;
use xivm_xmark::{generate_sized, view_pattern};
use xivm_xml::Document;

const PERCENTAGES: [usize; 5] = [20, 40, 60, 80, 100];

fn main() {
    let size = small_size();
    let doc = generate_sized(size.bytes);
    let reps = repetitions();
    for rule in ["O1", "O3", "I5"] {
        let figure = match rule {
            "O1" => "Figure 33",
            "O3" => "Figure 34",
            _ => "Figure 35",
        };
        figure_header(figure, &format!("optimisation {rule}, view Q1, {} document", size.label));
        row(&[
            "overlap_pct".to_owned(),
            "optimise_ms".to_owned(),
            "no_optimise_ms".to_owned(),
            "ops_before".to_owned(),
            "ops_after".to_owned(),
        ]);
        for pct in PERCENTAGES {
            let pul = build_sequence(&doc, rule, pct);
            let (opt, ops_after) = run(&doc, &pul, true, reps);
            let (plain, _) = run(&doc, &pul, false, reps);
            row(&[
                format!("{pct}%"),
                format!("{opt:.3}"),
                format!("{plain:.3}"),
                pul.len().to_string(),
                ops_after.to_string(),
            ]);
        }
    }
}

/// Builds the overlapping atomic-operation sequence for one rule.
fn build_sequence(doc: &Document, rule: &str, pct: usize) -> Pul {
    let persons = UpdateStatement::delete("/site/people/person").unwrap();
    let person_pul = compute_pul(doc, &persons);
    let n_overlap = person_pul.len() * pct / 100;
    match rule {
        "O1" => {
            // insert under X% of the persons, then delete all persons:
            // O1 drops every insertion whose target a later deletion
            // removes — unoptimized propagation pays for the doomed
            // insertions first.
            let ins = UpdateStatement::insert(
                "/site/people/person",
                "<name>doomed<name>a</name><name>b</name></name>",
            )
            .unwrap();
            let ins_pul = compute_pul(doc, &ins);
            let mut ops: Vec<_> = ins_pul.ops[..n_overlap].to_vec();
            ops.extend(person_pul.ops.iter().cloned());
            Pul::new(ops)
        }
        "O3" => {
            // insert under X% of the person *names* (descendants),
            // then delete all persons: O3 drops the insertions because
            // an ancestor is deleted later.
            let ins = UpdateStatement::insert(
                "/site/people/person/name",
                "<name>doomed<name>a</name><name>b</name></name>",
            )
            .unwrap();
            let ins_pul = compute_pul(doc, &ins);
            let take = ins_pul.len() * pct / 100;
            let mut ops: Vec<_> = ins_pul.ops[..take].to_vec();
            ops.extend(person_pul.ops.iter().cloned());
            Pul::new(ops)
        }
        "I5" => {
            // two insertions on the same person targets
            let ins1 =
                UpdateStatement::insert("/site/people/person", "<name>first<name>a</name></name>")
                    .unwrap();
            let ins2 =
                UpdateStatement::insert("/site/people/person", "<name>second<name>b</name></name>")
                    .unwrap();
            let p1 = compute_pul(doc, &ins1);
            let p2 = compute_pul(doc, &ins2);
            let mut ops = p1.ops;
            ops.extend(p2.ops[..n_overlap].iter().cloned());
            Pul::new(ops)
        }
        other => panic!("unknown rule {other}"),
    }
}

/// Propagates the sequence to a fresh Q1 engine, optionally reducing
/// it first (reduction time included). Returns (avg ms, ops after).
fn run(doc: &Document, pul: &Pul, optimize: bool, reps: usize) -> (f64, usize) {
    let pattern = view_pattern("Q1");
    let mut total = 0.0;
    let mut ops_after = pul.len();
    for _ in 0..reps {
        let mut d = doc.clone();
        let mut engine = MaintenanceEngine::new(&d, pattern.clone(), SnowcapStrategy::MinimalChain);
        let start = Instant::now();
        let effective = if optimize {
            let (reduced, trace) = reduce(pul);
            ops_after = trace.ops_after;
            reduced
        } else {
            pul.clone()
        };
        let report = engine.propagate_pul(&mut d, &effective).expect("propagation succeeds");
        total += ms(start.elapsed());
        std::hint::black_box(report.tuples_added);
    }
    (total / reps as f64, ops_after)
}
