//! Derived-view maintenance: circuit sync vs full recomputation.
//!
//! The claim behind `xivm_circuit` mirrors the paper's claim for base
//! views: maintaining a derived result under a commit should cost
//! O(|Δ|), not O(store). Two sweeps over the `derived_views` circuit
//! shape (sellers ⋈ per-auction bid counts → per-seller sums over the
//! XMark open-auction subtree) measure exactly that:
//!
//! * **Δ sweep** — fixed reference document, one commit inserting k
//!   auctions (k = 1, 8, 64): `Circuit::sync` time must grow with k
//!   while `Circuit::recompute` stays flat at its O(store) cost;
//! * **store sweep** — fixed k = 8 commit against growing documents:
//!   sync must stay (nearly) flat while recompute grows with the
//!   document.
//!
//! Reported per point: delta rows entering the circuit, source store
//! rows, and mean/min/median/stddev over the repetitions for both
//! paths (PR 6 statistics — a bare mean hides scheduler noise).

use std::time::Instant;
use xivm_bench::{figure_header, ms, rep_stats, repetitions, row};
use xivm_circuit::{Circuit, CircuitExt, Node};
use xivm_core::database::Database;
use xivm_xmark::sizes::{reference_size, DocSize, KB, MB};
use xivm_xmark::{generate_sized, sizes};

fn auction_database(bytes: usize) -> Database {
    Database::builder()
        .document(generate_sized(bytes))
        .view("sellers", "/site/open_auctions/open_auction{id}/seller/@person{id,val}")
        .view("bidders", "/site/open_auctions/open_auction{id}/bidder{id}")
        .build()
        .expect("auction database builds")
}

/// The `derived_views` example's circuit: project → count → join →
/// sum. Returns the circuit and its source nodes (for store sizing).
fn seller_circuit(db: &mut Database) -> (Circuit, Vec<Node>) {
    let mut b = db.circuit();
    let sellers = b.source("sellers").expect("sellers view");
    let bidders = b.source("bidders").expect("bidders view");
    let seller_of = b.project(sellers, vec![0, 2]);
    let _by_seller = b.count(seller_of, |r| r.project(&[1]));
    let bids_per_auction = b.count(bidders, |r| r.project(&[0]));
    let joined = b.join(seller_of, bids_per_auction, |r| r.project(&[0]), |r| r.project(&[0]));
    let _bids_per_seller = b.sum(joined, |r| r.project(&[1]), |r| r.datum(3).as_int().unwrap_or(0));
    (b.build(), vec![sellers, bidders])
}

fn insert_stmt(i: usize) -> String {
    format!(
        "insert <open_auction id=\"bench{i}\">\
           <seller person=\"person0\"/>\
           <bidder><personref person=\"person1\"/><increase>1.50</increase></bidder>\
           <bidder><personref person=\"person2\"/><increase>4.50</increase></bidder>\
         </open_auction> into /site/open_auctions"
    )
}

fn delete_stmt(i: usize) -> String {
    format!("delete /site/open_auctions/open_auction[@id = \"bench{i}\"]")
}

/// One measured point: a single commit inserting `k` auctions, synced
/// through the circuit and recomputed from scratch; then reverted so
/// the next repetition sees the same store. Returns per-repetition
/// (delta_rows, sync_ms, recompute_ms).
fn measure(
    db: &mut Database,
    circuit: &mut Circuit,
    k: usize,
    reps: usize,
) -> (usize, Vec<f64>, Vec<f64>) {
    let handles = db.handles();
    let mut delta_rows = 0usize;
    let mut sync_ms = Vec::with_capacity(reps);
    let mut recompute_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut tx = db.transaction();
        for i in 0..k {
            tx = tx.statement(insert_stmt(i).as_str());
        }
        let commit = tx.commit().expect("insert batch commits");
        delta_rows = handles.iter().map(|&h| commit.delta(h).len()).sum();

        let start = Instant::now();
        circuit.sync(db);
        sync_ms.push(ms(start.elapsed()));

        let start = Instant::now();
        let stores = circuit.recompute(db);
        recompute_ms.push(ms(start.elapsed()));
        assert_eq!(stores.len(), circuit.len(), "recompute covers every node");

        // Revert, and keep the circuit in step so the next repetition
        // starts from the same state.
        let mut tx = db.transaction();
        for i in 0..k {
            tx = tx.statement(delete_stmt(i).as_str());
        }
        tx.commit().expect("delete batch commits");
        circuit.sync(db);
    }
    (delta_rows, sync_ms, recompute_ms)
}

fn stat_cells(values: &[f64]) -> Vec<String> {
    let s = rep_stats(values);
    vec![
        format!("{:.3}", s.mean),
        format!("{:.3}", s.min),
        format!("{:.3}", s.median),
        format!("{:.3}", s.stddev),
    ]
}

const COLUMNS: [&str; 12] = [
    "doc",
    "delta_k",
    "store_rows",
    "delta_rows",
    "sync_mean_ms",
    "sync_min_ms",
    "sync_median_ms",
    "sync_stddev_ms",
    "recompute_mean_ms",
    "recompute_min_ms",
    "recompute_median_ms",
    "recompute_stddev_ms",
];

fn run_point(size: DocSize, k: usize, reps: usize) {
    let mut db = auction_database(size.bytes);
    let (mut circuit, sources) = seller_circuit(&mut db);
    let store_rows: usize = sources.iter().map(|&s| circuit.store(s).len()).sum();
    let (delta_rows, sync_ms, recompute_ms) = measure(&mut db, &mut circuit, k, reps);
    let mut cells =
        vec![size.label.to_owned(), k.to_string(), store_rows.to_string(), delta_rows.to_string()];
    cells.extend(stat_cells(&sync_ms));
    cells.extend(stat_cells(&recompute_ms));
    row(&cells);
    circuit.detach(&mut db);
}

fn main() {
    let reps = repetitions();
    let reference = reference_size();

    figure_header(
        "Circuit maintenance vs recomputation (delta sweep)",
        &format!(
            "derived-view circuit over the open-auction subtree, {} document, \
             one commit of k auction inserts, {} repetitions",
            reference.label, reps
        ),
    );
    row(&COLUMNS.map(str::to_owned));
    for k in [1usize, 8, 64] {
        run_point(reference, k, reps);
    }

    figure_header(
        "Circuit maintenance vs recomputation (store sweep)",
        &format!("same circuit, fixed k=8 commit, growing documents, {reps} repetitions"),
    );
    row(&COLUMNS.map(str::to_owned));
    let store_ladder: &[DocSize] = if sizes::full_scale() {
        &[
            DocSize { label: "100KB", bytes: 100 * KB },
            DocSize { label: "1MB", bytes: MB },
            DocSize { label: "10MB", bytes: 10 * MB },
        ]
    } else {
        &[
            DocSize { label: "100KB", bytes: 100 * KB },
            DocSize { label: "500KB", bytes: 500 * KB },
            DocSize { label: "1MB", bytes: MB },
        ]
    };
    for &size in store_ladder {
        run_point(size, 8, reps);
    }
}
