//! The document-size ladder of Section 6.
//!
//! The paper measures at 100 KB, 500 KB, 1 MB, 10 MB and 50 MB. The
//! harness defaults to a scaled-down ladder so `cargo bench` completes
//! in minutes; set `XIVM_FULL=1` to use the paper's sizes.

/// A named document size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocSize {
    pub label: &'static str,
    pub bytes: usize,
}

pub const KB: usize = 1024;
pub const MB: usize = 1024 * 1024;

/// The paper's ladder (Figure 25 spans 500 KB – 50 MB).
pub const PAPER_LADDER: [DocSize; 5] = [
    DocSize { label: "100KB", bytes: 100 * KB },
    DocSize { label: "500KB", bytes: 500 * KB },
    DocSize { label: "1MB", bytes: MB },
    DocSize { label: "10MB", bytes: 10 * MB },
    DocSize { label: "50MB", bytes: 50 * MB },
];

/// Scaled-down ladder for default harness runs.
pub const QUICK_LADDER: [DocSize; 5] = [
    DocSize { label: "100KB", bytes: 100 * KB },
    DocSize { label: "250KB", bytes: 250 * KB },
    DocSize { label: "500KB", bytes: 500 * KB },
    DocSize { label: "1MB", bytes: MB },
    DocSize { label: "2MB", bytes: 2 * MB },
]; // labels keep the relative 1:20 span of the paper's ladder in spirit

/// True when the environment asks for paper-scale runs.
pub fn full_scale() -> bool {
    std::env::var("XIVM_FULL").is_ok_and(|v| v == "1")
}

/// The ladder to use for scalability experiments.
pub fn ladder() -> &'static [DocSize] {
    if full_scale() {
        &PAPER_LADDER
    } else {
        &QUICK_LADDER
    }
}

/// The single "reference document" size (the paper's 10 MB; 1 MB in
/// quick mode).
pub fn reference_size() -> DocSize {
    if full_scale() {
        DocSize { label: "10MB", bytes: 10 * MB }
    } else {
        DocSize { label: "1MB", bytes: MB }
    }
}

/// The small comparison size (the paper's 100 KB).
pub fn small_size() -> DocSize {
    DocSize { label: "100KB", bytes: 100 * KB }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_increasing() {
        for w in PAPER_LADDER.windows(2) {
            assert!(w[0].bytes < w[1].bytes);
        }
        for w in QUICK_LADDER.windows(2) {
            assert!(w[0].bytes < w[1].bytes);
        }
    }

    #[test]
    fn reference_sizes() {
        assert_eq!(small_size().bytes, 100 * KB);
        assert!(reference_size().bytes >= MB);
    }
}
