//! Statement-level updates (Section 2.3).

use std::fmt;
use xivm_pattern::xpath::{parse_xpath, LocationPath, XPathParseError};

/// A statement-level XML update.
///
/// `for $x in q insert xml into $x` and `insert xml into q` coincide
/// here: both insert the forest under every node returned by `q`.
/// `insert q1 into q2` copies the forests rooted at `q1`'s results
/// under every `q2` result. `replace q with xml` removes each `q`
/// result's subtree and appends the forest under its parent (the root
/// cannot be replaced; nested targets are replaced at the outermost
/// occurrence only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateStatement {
    /// `delete q`.
    Delete { target: LocationPath },
    /// `insert xml into q` / `for $x in q insert xml into $x`.
    Insert { target: LocationPath, xml: String },
    /// `insert q1 into q2` — both paths over the same document.
    InsertFrom { source: LocationPath, target: LocationPath },
    /// `replace q with xml` — `del(n)` + `ins↘(parent(n), xml)` for
    /// every `q` result `n`.
    Replace { target: LocationPath, xml: String },
}

impl UpdateStatement {
    /// `delete <path>`.
    pub fn delete(path: &str) -> Result<Self, XPathParseError> {
        Ok(UpdateStatement::Delete { target: parse_xpath(path)? })
    }

    /// `insert <xml> into <path>`.
    pub fn insert(path: &str, xml: impl Into<String>) -> Result<Self, XPathParseError> {
        Ok(UpdateStatement::Insert { target: parse_xpath(path)?, xml: xml.into() })
    }

    /// `insert <source-path> into <target-path>`.
    pub fn insert_from(source: &str, target: &str) -> Result<Self, XPathParseError> {
        Ok(UpdateStatement::InsertFrom {
            source: parse_xpath(source)?,
            target: parse_xpath(target)?,
        })
    }

    /// `replace <path> with <xml>`.
    pub fn replace(path: &str, xml: impl Into<String>) -> Result<Self, XPathParseError> {
        Ok(UpdateStatement::Replace { target: parse_xpath(path)?, xml: xml.into() })
    }

    /// True for the statements that insert content (`Replace` both
    /// deletes and inserts, so it counts).
    pub fn is_insert(&self) -> bool {
        !matches!(self, UpdateStatement::Delete { .. })
    }

    /// The statement's target path (where nodes are added / removed).
    pub fn target(&self) -> &LocationPath {
        match self {
            UpdateStatement::Delete { target }
            | UpdateStatement::Insert { target, .. }
            | UpdateStatement::InsertFrom { target, .. }
            | UpdateStatement::Replace { target, .. } => target,
        }
    }
}

/// Parses the textual statement forms used in the paper's test set:
/// `delete PATH`, `insert XML into PATH`,
/// `for $x in PATH insert XML into $x`, `insert PATH1 into PATH2`,
/// `replace PATH with XML`.
pub fn parse_statement(input: &str) -> Result<UpdateStatement, StatementParseError> {
    let text = input.trim();
    if let Some(rest) = text.strip_prefix("delete ") {
        return UpdateStatement::delete(rest.trim()).map_err(StatementParseError::from);
    }
    if let Some(rest) = text.strip_prefix("replace ") {
        // The path may itself contain " with " inside a quoted value
        // predicate (`//order[sku = "tea with milk"]`), so take the
        // first separator that sits *outside* any quoted literal and
        // whose right-hand side is an XML forest.
        let with_pos = replace_split_pos(rest).ok_or_else(|| {
            StatementParseError::syntax("missing 'with' followed by an XML forest")
        })?;
        let path = rest[..with_pos].trim();
        let xml = rest[with_pos + " with ".len()..].trim();
        return UpdateStatement::replace(path, xml).map_err(StatementParseError::from);
    }
    if let Some(rest) = text.strip_prefix("for ") {
        // for $x in PATH insert XML into $x
        let in_pos =
            rest.find(" in ").ok_or_else(|| StatementParseError::syntax("missing 'in'"))?;
        let after_in = &rest[in_pos + 4..];
        let ins_pos = after_in
            .find(" insert ")
            .ok_or_else(|| StatementParseError::syntax("missing 'insert'"))?;
        let path = after_in[..ins_pos].trim();
        let after_insert = &after_in[ins_pos + " insert ".len()..];
        let into_pos = after_insert
            .rfind(" into ")
            .ok_or_else(|| StatementParseError::syntax("missing 'into'"))?;
        let xml = after_insert[..into_pos].trim();
        return UpdateStatement::insert(path, xml).map_err(StatementParseError::from);
    }
    if let Some(rest) = text.strip_prefix("insert ") {
        let into_pos =
            rest.rfind(" into ").ok_or_else(|| StatementParseError::syntax("missing 'into'"))?;
        let what = rest[..into_pos].trim();
        let target = rest[into_pos + " into ".len()..].trim();
        if what.starts_with('<') {
            return UpdateStatement::insert(target, what).map_err(StatementParseError::from);
        }
        return UpdateStatement::insert_from(what, target).map_err(StatementParseError::from);
    }
    Err(StatementParseError::syntax("expected 'delete', 'insert' or 'for'"))
}

/// Position of the `" with "` separating a replace statement's path
/// from its content: the first occurrence at quote depth 0 whose
/// right-hand side starts an XML forest. Quoted string literals in
/// value predicates may contain anything (including `" with <"`)
/// without confusing the split.
fn replace_split_pos(rest: &str) -> Option<usize> {
    let mut in_quotes = false;
    for (i, c) in rest.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ' ' if !in_quotes
                && rest[i..].starts_with(" with ")
                && rest[i + " with ".len()..].trim_start().starts_with('<') =>
            {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

/// Statement parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementParseError {
    pub message: String,
}

impl StatementParseError {
    fn syntax(m: &str) -> Self {
        StatementParseError { message: m.to_owned() }
    }
}

impl From<XPathParseError> for StatementParseError {
    fn from(e: XPathParseError) -> Self {
        StatementParseError { message: e.to_string() }
    }
}

impl fmt::Display for StatementParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update statement parse error: {}", self.message)
    }
}

impl std::error::Error for StatementParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_delete() {
        let s = parse_statement("delete //c//b").unwrap();
        assert!(matches!(s, UpdateStatement::Delete { .. }));
        assert!(!s.is_insert());
        assert_eq!(s.target().len(), 2);
    }

    #[test]
    fn parse_insert_xml() {
        let s = parse_statement("insert <a><b/></a> into //x/y").unwrap();
        match s {
            UpdateStatement::Insert { xml, target } => {
                assert_eq!(xml, "<a><b/></a>");
                assert_eq!(target.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_for_insert() {
        let s = parse_statement("for $x in //site/people/person insert <name>N</name> into $x")
            .unwrap();
        match s {
            UpdateStatement::Insert { xml, target } => {
                assert_eq!(xml, "<name>N</name>");
                assert_eq!(target.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_insert_from_path() {
        let s = parse_statement("insert //templates/item into //regions/asia").unwrap();
        assert!(matches!(s, UpdateStatement::InsertFrom { .. }));
    }

    #[test]
    fn parse_replace() {
        let s = parse_statement("replace //a/b with <c>1</c>").unwrap();
        match s {
            UpdateStatement::Replace { xml, target } => {
                assert_eq!(xml, "<c>1</c>");
                assert_eq!(target.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_replace_with_quoted_with_in_the_predicate() {
        let s = parse_statement(r#"replace //order[sku = "tea with milk"] with <order/>"#).unwrap();
        match s {
            UpdateStatement::Replace { xml, target } => {
                assert_eq!(xml, "<order/>");
                assert_eq!(target.len(), 1, "the quoted ' with ' stays inside the path");
            }
            other => panic!("unexpected {other:?}"),
        }
        // even a quoted literal containing " with <" cannot fake the
        // separator
        let s = parse_statement(r#"replace //order[sku = " with <tea"] with <order/>"#).unwrap();
        match s {
            UpdateStatement::Replace { xml, .. } => assert_eq!(xml, "<order/>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_statement("rename //a as b").is_err());
        assert!(parse_statement("insert <a/> //x").is_err());
        assert!(parse_statement("for $x insert <a/> into $x").is_err());
        assert!(parse_statement("replace //a <b/>").is_err());
        assert!(parse_statement("replace //a with //b").is_err());
    }
}
