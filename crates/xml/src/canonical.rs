//! Canonical relations.
//!
//! For a document `d` and label `a`, the paper's *virtual canonical
//! relation* `R_a^d` is the list of `(ID, val, cont)` tuples of all
//! `a`-labeled nodes, sorted in document order (Section 2.2). This
//! module maintains the node-id backbone of those relations
//! incrementally under updates; `val` / `cont` are materialized lazily
//! by the algebra layer when a view actually stores them.
//!
//! Like the node [`Arena`], the index is copy-on-write: each per-label
//! list sits behind an [`Arc`], so cloning the index for a snapshot
//! copies only the list pointers, and a later insert or remove copies
//! exactly the one list it touches ([`Arc::make_mut`]) — the spine of
//! the PUL, never the whole index.

use crate::arena::Arena;
use crate::label::LabelId;
use crate::node::NodeId;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-label lists of live nodes in document order.
#[derive(Debug, Default, Clone)]
pub struct CanonicalIndex {
    map: HashMap<LabelId, Arc<Vec<NodeId>>>,
}

/// Compares two arena nodes in document order by climbing to the root
/// (cheaper than materializing both Dewey IDs).
fn doc_cmp(nodes: &Arena, a: NodeId, b: NodeId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let path = |mut n: NodeId| {
        let mut ords = Vec::new();
        loop {
            let node = &nodes[n.index()];
            ords.push(node.ord);
            match node.parent {
                Some(p) => n = p,
                None => break,
            }
        }
        ords.reverse();
        ords
    };
    let (pa, pb) = (path(a), path(b));
    pa.cmp(&pb)
}

impl CanonicalIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a (new) node under its label, preserving document
    /// order via binary search. Copy-on-write: a list shared with a
    /// snapshot is copied before the edit.
    pub fn insert(&mut self, nodes: &Arena, label: LabelId, id: NodeId) {
        let list = Arc::make_mut(self.map.entry(label).or_default());
        // Fast path: appends at document end are the common case when
        // bulk-loading or running XQuery-Update style insertions.
        if list.last().is_some_and(|&l| doc_cmp(nodes, l, id) == Ordering::Less) || list.is_empty()
        {
            list.push(id);
            return;
        }
        let pos = list.partition_point(|&n| doc_cmp(nodes, n, id) == Ordering::Less);
        list.insert(pos, id);
    }

    /// Removes a node from its label's relation (copy-on-write, like
    /// [`Self::insert`]).
    pub fn remove(&mut self, label: LabelId, id: NodeId) {
        if let Some(list) = self.map.get_mut(&label) {
            if list.contains(&id) {
                let list = Arc::make_mut(list);
                if let Some(pos) = list.iter().position(|&n| n == id) {
                    list.remove(pos);
                }
            }
        }
    }

    /// Live members of `R_label` in document order.
    pub fn nodes(&self, label: LabelId) -> &[NodeId] {
        self.map.get(&label).map_or(&[], |v| v.as_slice())
    }

    pub fn contains(&self, label: LabelId, id: NodeId) -> bool {
        self.map.get(&label).is_some_and(|v| v.contains(&id))
    }

    /// How many per-label lists two indexes physically share (same
    /// `Arc`) — the copy-on-write diagnostic mirroring
    /// [`Arena::shared_chunks_with`].
    pub fn shared_lists_with(&self, other: &CanonicalIndex) -> usize {
        self.map
            .iter()
            .filter(|(label, list)| other.map.get(label).is_some_and(|o| Arc::ptr_eq(list, o)))
            .count()
    }

    /// Validates that every relation is sorted in document order.
    pub fn check_sorted(&self, nodes: &Arena) -> Result<(), String> {
        for (label, list) in &self.map {
            for w in list.windows(2) {
                if doc_cmp(nodes, w[0], w[1]) != Ordering::Less {
                    return Err(format!("canonical relation for {label:?} out of order"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    #[test]
    fn insert_in_middle_keeps_order() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        let x1 = d.append_element(r, "x").unwrap();
        let x3 = d.append_element(r, "x").unwrap();
        // Insert an x between the two existing ones.
        let x2 = d.insert_element_before(r, x3, "x").unwrap();
        let label = d.label_id("x").unwrap();
        assert_eq!(d.canonical_nodes(label), &[x1, x2, x3]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn nested_before_following_sibling_in_doc_order() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        let b1 = d.append_element(r, "b").unwrap();
        let deep = d.append_element(b1, "x").unwrap();
        let b2 = d.append_element(r, "b").unwrap();
        let late = d.append_element(b2, "x").unwrap();
        let label = d.label_id("x").unwrap();
        assert_eq!(d.canonical_nodes(label), &[deep, late]);
    }

    #[test]
    fn remove_unknown_is_noop() {
        let mut idx = CanonicalIndex::new();
        idx.remove(LabelId(3), NodeId(9));
        assert!(idx.nodes(LabelId(3)).is_empty());
    }

    #[test]
    fn empty_relation_for_unknown_label() {
        let idx = CanonicalIndex::new();
        assert!(idx.nodes(LabelId(42)).is_empty());
        assert!(!idx.contains(LabelId(42), NodeId(0)));
    }

    #[test]
    fn clone_shares_lists_until_written() {
        let mut d = Document::new();
        let r = d.set_root("a").unwrap();
        d.append_element(r, "x").unwrap();
        d.append_element(r, "y").unwrap();
        let mut live = d.clone();
        // The snapshot shares every per-label list with the original…
        let shared_before = live.canonical_index().shared_lists_with(d.canonical_index());
        assert!(shared_before >= 3, "a, x, y lists all shared, got {shared_before}");
        // …and inserting one more x copies only the x list.
        live.append_element(live.root().unwrap(), "x").unwrap();
        let shared_after = live.canonical_index().shared_lists_with(d.canonical_index());
        assert_eq!(shared_after, shared_before - 1);
    }
}
