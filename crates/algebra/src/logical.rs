//! The logical algebra **A** as a composable plan tree.
//!
//! The maintenance engine mostly composes physical operators directly,
//! but the logical plan is what gives tree patterns their *algebraic
//! semantics* (Figure 4 of the paper): one scan per pattern node,
//! products, a selection enforcing value and structural constraints,
//! projection, duplicate elimination and sort.

use crate::ops;
use crate::predicate::{Axis, Predicate};
use crate::relation::Relation;
use crate::structjoin::structural_join;

/// A logical plan over materialized leaf relations.
#[derive(Debug, Clone)]
pub enum Plan {
    /// A materialized leaf (canonical relation or Δ table).
    Scan(Relation),
    /// σ_pred.
    Select { input: Box<Plan>, pred: Predicate },
    /// n-ary ×.
    Product(Vec<Plan>),
    /// Structural join: upper side `left` on `left_col`, lower side
    /// `right` on `right_col`.
    StructJoin { left: Box<Plan>, left_col: usize, right: Box<Plan>, right_col: usize, axis: Axis },
    /// π_cols.
    Project { input: Box<Plan>, cols: Vec<usize> },
    /// δ (without counts; counts are taken at the view-store boundary).
    DupElim(Box<Plan>),
    /// s — sort by all ID columns.
    Sort(Box<Plan>),
}

impl Plan {
    /// Evaluates the plan bottom-up.
    ///
    /// `StructJoin` inputs are re-sorted on their join columns when
    /// needed, so plans stay correct regardless of upstream order.
    pub fn eval(&self) -> Relation {
        match self {
            Plan::Scan(rel) => rel.clone(),
            Plan::Select { input, pred } => ops::select(&input.eval(), pred),
            Plan::Product(inputs) => {
                let rels: Vec<Relation> = inputs.iter().map(|p| p.eval()).collect();
                let refs: Vec<&Relation> = rels.iter().collect();
                ops::product(&refs)
            }
            Plan::StructJoin { left, left_col, right, right_col, axis } => {
                let mut l = left.eval();
                let mut r = right.eval();
                if !l.is_sorted_by_col(*left_col) {
                    l.sort_by_col(*left_col);
                }
                if !r.is_sorted_by_col(*right_col) {
                    r.sort_by_col(*right_col);
                }
                structural_join(&l, *left_col, &r, *right_col, *axis)
            }
            Plan::Project { input, cols } => ops::project(&input.eval(), cols),
            Plan::DupElim(input) => ops::dupelim(&input.eval()),
            Plan::Sort(input) => {
                let mut r = input.eval();
                ops::sort_all(&mut r);
                r
            }
        }
    }

    /// Output arity of the plan (number of columns).
    pub fn arity(&self) -> usize {
        match self {
            Plan::Scan(rel) => rel.schema.arity(),
            Plan::Select { input, .. } | Plan::DupElim(input) | Plan::Sort(input) => input.arity(),
            Plan::Product(inputs) => inputs.iter().map(|p| p.arity()).sum(),
            Plan::StructJoin { left, right, .. } => left.arity() + right.arity(),
            Plan::Project { cols, .. } => cols.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Column, Schema};
    use crate::tuple::{Field, Tuple};
    use xivm_xml::{dewey::Step, DeweyId, LabelId};

    fn id(parts: &[(u32, u64)]) -> DeweyId {
        DeweyId::from_steps(parts.iter().map(|&(a, b)| Step::new(LabelId(a), b)).collect())
    }

    fn one_col(name: &str, ids: Vec<DeweyId>) -> Relation {
        Relation::with_rows(
            Schema::new(vec![Column::id_only(name)]),
            ids.into_iter().map(|i| Tuple::new(vec![Field::id_only(i)])).collect(),
        )
    }

    /// The //a//b pattern as product+select vs. structural join must
    /// agree — this is the equivalence Figure 4 relies on.
    #[test]
    fn product_select_equals_structural_join() {
        let ra = one_col("a", vec![id(&[(0, 1)]), id(&[(0, 1), (0, 2)])]);
        let rb =
            one_col("b", vec![id(&[(0, 1), (1, 3)]), id(&[(0, 1), (0, 2), (1, 4)]), id(&[(9, 9)])]);
        let via_product = Plan::Select {
            input: Box::new(Plan::Product(vec![Plan::Scan(ra.clone()), Plan::Scan(rb.clone())])),
            pred: Predicate::Structural { upper: 0, lower: 1, axis: Axis::Descendant },
        };
        let via_join = Plan::StructJoin {
            left: Box::new(Plan::Scan(ra)),
            left_col: 0,
            right: Box::new(Plan::Scan(rb)),
            right_col: 0,
            axis: Axis::Descendant,
        };
        let mut p = via_product.eval();
        let mut j = via_join.eval();
        ops::sort_all(&mut p);
        ops::sort_all(&mut j);
        assert_eq!(p.rows, j.rows);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn full_pipeline_project_dupelim_sort() {
        let ra = one_col("a", vec![id(&[(0, 1)])]);
        let rb = one_col("b", vec![id(&[(0, 1), (1, 3)]), id(&[(0, 1), (1, 2)])]);
        let plan = Plan::Sort(Box::new(Plan::DupElim(Box::new(Plan::Project {
            input: Box::new(Plan::StructJoin {
                left: Box::new(Plan::Scan(ra)),
                left_col: 0,
                right: Box::new(Plan::Scan(rb)),
                right_col: 0,
                axis: Axis::Descendant,
            }),
            cols: vec![0],
        }))));
        assert_eq!(plan.arity(), 1);
        let out = plan.eval();
        assert_eq!(out.len(), 1, "projection then dupelim collapses to one a-binding");
    }
}
